"""The bottleneck profiler, its CLI verbs, and trace non-interference."""

import json

import numpy
import pytest

from repro.__main__ import main
from repro.apps import PAPER_ORDER, make_app, small_params
from repro.harness import run_app
from repro.obs.analyzers import BREAKDOWN_NARRATIVE
from repro.obs.profile import (
    PROFILE_KINDS,
    format_bottleneck,
    format_profile_diff,
    format_profile_table,
    profile_app,
)
from repro.obs.schema import KINDS
from repro.sim import Tracer


# ----------------------------------------------------------- profile_app

@pytest.mark.parametrize("app_name", PAPER_ORDER)
def test_profile_every_app(app_name):
    report = profile_app(app_name, "original", 2, 2,
                         params=small_params(app_name))
    assert report.app == app_name
    assert report.elapsed > 0
    assert report.n_records > 0
    assert set(report.categories) == set(BREAKDOWN_NARRATIVE)
    assert report.dominant in BREAKDOWN_NARRATIVE  # 2 clusters: never none
    assert 0.0 < report.dominant_share <= 1.0
    assert 0.0 <= report.cpu_mean <= 1.0
    assert report.narrative == BREAKDOWN_NARRATIVE[report.dominant]
    assert format_bottleneck(report)  # renders


def test_profile_kinds_filter_is_a_strict_subset():
    assert PROFILE_KINDS < set(KINDS)
    # The analyzers' inputs all survive the filter.
    for needed in ("link.busy", "gw.forward", "wan.xfer", "rpc.complete",
                   "seq.request", "seq.grant", "seq.acquire",
                   "bcast.complete"):
        assert needed in PROFILE_KINDS


def test_profile_reuses_and_clears_a_shared_tracer():
    tracer = Tracer()
    r1 = profile_app("tsp", "original", 2, 2,
                     params=small_params("tsp"), tracer=tracer)
    assert tracer.records == []  # grid-point hygiene
    r2 = profile_app("tsp", "original", 2, 2,
                     params=small_params("tsp"), tracer=tracer)
    assert r1.elapsed == r2.elapsed
    assert r1.categories == pytest.approx(r2.categories)


def test_profile_table_renders_one_row_per_report():
    reports = [profile_app(name, "original", 2, 2,
                           params=small_params(name))
               for name in ("tsp", "asp")]
    table = format_profile_table(reports)
    assert "tsp" in table and "asp" in table
    assert len(table.splitlines()) == 3  # header + 2 rows


def test_format_profile_diff_renders_both_variants():
    params = small_params("tsp")
    before = profile_app("tsp", "original", 2, 2, params=params)
    after = profile_app("tsp", "optimized", 2, 2, params=params)
    text = format_profile_diff(before, after)
    assert "original" in text and "optimized" in text
    assert "elapsed" in text and "delta" in text
    for key in set(before.categories) | set(after.categories):
        assert key in text
    # The diff names both dominant mechanisms.
    assert before.narrative in text and after.narrative in text


def test_format_profile_diff_zero_baseline_category():
    params = small_params("asp")
    before = profile_app("asp", "original", 1, 2, params=params)
    after = profile_app("asp", "original", 2, 2, params=params)
    # Single-cluster runs attribute no intercluster time; a category
    # appearing only in the after column renders as "new", not a crash.
    text = format_profile_diff(before, after)
    assert "new" in text or all(v == 0 for v in after.categories.values())


# ----------------------------------------------- trace non-interference

@pytest.mark.parametrize("app_name", ["tsp", "asp", "ra"])
def test_tracing_does_not_change_results(app_name):
    app = make_app(app_name)
    params = small_params(app_name)
    plain = run_app(app, "original", 2, 2, params)
    traced = run_app(app, "original", 2, 2, params, trace=True,
                     tracer=Tracer())
    assert traced.elapsed == plain.elapsed  # bit-identical, not approx
    same = traced.answer == plain.answer
    assert same if isinstance(same, bool) else bool(numpy.all(same))
    assert traced.traffic == plain.traffic


# -------------------------------------------------------------- the CLI

def test_cli_profile(capsys, monkeypatch):
    monkeypatch.setattr("repro.harness.figures.bench_params", small_params)
    assert main(["profile", "tsp", "--clusters", "2", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "dominant wide-area cost" in out
    assert "trace records" in out


def test_cli_profile_diff(capsys, monkeypatch):
    monkeypatch.setattr("repro.harness.figures.bench_params", small_params)
    assert main(["profile", "tsp", "--clusters", "2", "--nodes", "2",
                 "--diff", "original", "optimized"]) == 0
    out = capsys.readouterr().out
    assert "original vs optimized" in out
    assert "delta" in out


def test_cli_trace_chrome(tmp_path, capsys, monkeypatch):
    # cmd_trace binds the re-export, not the defining module
    monkeypatch.setattr("repro.harness.bench_params", small_params)
    out_file = tmp_path / "tsp.trace.json"
    assert main(["trace", "tsp", "--clusters", "2", "--nodes", "2",
                 "--out", str(out_file)]) == 0
    assert "perfetto" in capsys.readouterr().out
    obj = json.loads(out_file.read_text())
    assert obj["traceEvents"]
    assert {ev["ph"] for ev in obj["traceEvents"]} <= {"M", "X", "i",
                                                       "s", "t", "f"}


def test_cli_trace_jsonl_with_kind_filter(tmp_path, monkeypatch):
    monkeypatch.setattr("repro.harness.bench_params", small_params)
    out_file = tmp_path / "tsp.trace.jsonl"
    assert main(["trace", "tsp", "--clusters", "2", "--nodes", "2",
                 "--format", "jsonl", "--kinds", "msg.send,msg.deliver",
                 "--out", str(out_file)]) == 0
    lines = out_file.read_text().splitlines()
    assert json.loads(lines[0])["schema"] == "repro.trace"
    kinds = {json.loads(line)["kind"] for line in lines[1:]}
    assert kinds == {"msg.send", "msg.deliver"}


def test_cli_trace_rejects_unknown_kind(tmp_path, capsys):
    assert main(["trace", "tsp", "--kinds", "no.such_kind",
                 "--out", str(tmp_path / "x.jsonl")]) == 2
    assert "unknown kinds" in capsys.readouterr().err
