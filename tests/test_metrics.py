"""Tests for traffic metering and the tracer."""

from hypothesis import given, strategies as st

from repro.metrics import TrafficMeter, TrafficRow
from repro.sim import Tracer


def test_row_accumulates():
    row = TrafficRow()
    row.add(100)
    row.add(50)
    assert row.count == 2 and row.bytes == 150
    assert row.kbytes == 150 / 1024


def test_row_merge():
    a, b = TrafficRow(2, 10), TrafficRow(3, 20)
    m = a.merged(b)
    assert (m.count, m.bytes) == (5, 30)
    assert (a.count, b.count) == (2, 3)  # inputs untouched


def test_meter_buckets_by_kind_and_locality():
    m = TrafficMeter()
    m.record("rpc", 100, intercluster=False)
    m.record("rpc", 200, intercluster=True)
    m.record("bcast", 50, intercluster=True)
    assert m.row("rpc", False).bytes == 100
    assert m.row("rpc", True).bytes == 200
    assert m.total("rpc").count == 2
    assert m.row("bcast", False).count == 0


def test_meter_wan_accounting_and_reset():
    m = TrafficMeter()
    m.record_wan(1000)
    m.record_wan(500)
    assert m.wan_messages == 2 and m.wan_bytes == 1500
    m.reset()
    assert m.wan_messages == 0
    assert m.snapshot() == {"wan": {"count": 0, "bytes": 0}}


def test_meter_snapshot_shape():
    m = TrafficMeter()
    m.record("msg", 10, intercluster=True)
    snap = m.snapshot()
    assert snap["inter.msg"] == {"count": 1, "bytes": 10}
    assert "wan" in snap


@given(st.lists(st.tuples(st.sampled_from(["rpc", "bcast", "msg"]),
                          st.integers(0, 10_000),
                          st.booleans()), max_size=200))
def test_meter_totals_property(events):
    m = TrafficMeter()
    for kind, size, inter in events:
        m.record(kind, size, intercluster=inter)
    for kind in ("rpc", "bcast", "msg"):
        expected = [s for k, s, _ in events if k == kind]
        assert m.total(kind).count == len(expected)
        assert m.total(kind).bytes == sum(expected)
        split = m.row(kind, True).count + m.row(kind, False).count
        assert split == len(expected)


def test_tracer_disabled_by_default():
    t = Tracer()
    t.emit(1.0, "deliver", src=0)
    assert len(t) == 0


def test_tracer_records_and_selects():
    t = Tracer(enabled=True)
    t.emit(1.0, "deliver", src=0, dst=1)
    t.emit(2.0, "send", src=1)
    t.emit(3.0, "deliver", src=2, dst=3)
    assert len(t) == 3
    delivers = t.select("deliver")
    assert [r.time for r in delivers] == [1.0, 3.0]
    big = t.select("deliver", pred=lambda r: r.detail["src"] > 0)
    assert len(big) == 1
    assert t.span() == (1.0, 3.0)


def test_tracer_kind_filter():
    t = Tracer(enabled=True, kinds=frozenset({"send"}))
    t.emit(1.0, "deliver", x=1)
    t.emit(2.0, "send", x=2)
    assert len(t) == 1
    t.clear()
    assert t.span() == (0.0, 0.0)
