"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.5)
        yield sim.timeout(2.5)
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(4.0)


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        v = yield sim.timeout(1.0, value="hello")
        return v

    assert sim.run_process(proc()) == "hello"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def maker(tag):
        def proc():
            yield sim.timeout(1.0)
            order.append(tag)
        return proc

    for tag in range(5):
        sim.spawn(maker(tag)())
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value():
    sim = Simulator()

    def child():
        yield sim.timeout(3.0)
        return 42

    def parent():
        result = yield sim.spawn(child())
        return result * 2

    assert sim.run_process(parent()) == 84
    assert sim.now == pytest.approx(3.0)


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.spawn(child())
        except ValueError as exc:
            return f"caught {exc}"

    assert sim.run_process(parent()) == "caught boom"


def test_uncaught_process_exception_raises_from_run_process():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise KeyError("lost")

    with pytest.raises(KeyError):
        sim.run_process(proc())


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        v = yield ev
        return v

    def firer():
        yield sim.timeout(2.0)
        ev.succeed("fired")

    p = sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert p.value == "fired"
    assert sim.now == pytest.approx(2.0)


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")


def test_waiting_on_already_processed_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    sim.run()  # process the event so callbacks are consumed

    def late_waiter():
        v = yield ev
        return v

    assert sim.run_process(late_waiter()) == "early"


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(1.0, "a")
        t2 = sim.timeout(3.0, "b")
        t3 = sim.timeout(2.0, "c")
        vals = yield sim.all_of([t1, t2, t3])
        return vals

    assert sim.run_process(proc()) == ["a", "b", "c"]
    assert sim.now == pytest.approx(3.0)


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc():
        vals = yield sim.all_of([])
        return vals

    assert sim.run_process(proc()) == []
    assert sim.now == 0.0


def test_any_of_fires_on_first():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(5.0, "slow")
        t2 = sim.timeout(1.0, "fast")
        ev, val = yield sim.any_of([t1, t2])
        assert ev is t2
        return val

    assert sim.run_process(proc()) == "fast"
    assert sim.now == pytest.approx(1.0)


def test_interrupt_thrown_into_waiting_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
            return "slept"
        except Interrupt as intr:
            return f"interrupted:{intr.cause}"

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt("wakeup")

    p = sim.spawn(sleeper())
    sim.spawn(interrupter(p))
    sim.run()
    assert p.value == "interrupted:wakeup"
    # The interrupt itself happened at t=2; the orphaned 100 s timer may
    # still drain the heap afterwards, which is fine — what matters is the
    # process observed the interrupt, not the final clock value.


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)
        return "done"

    p = sim.spawn(quick())
    sim.run()
    p.interrupt("late")  # must not raise
    assert p.value == "done"


def test_run_until_stops_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(10.0)

    sim.spawn(proc())
    final = sim.run(until=4.0)
    assert final == pytest.approx(4.0)
    assert sim.now == pytest.approx(4.0)


def test_deadlock_detection_in_run_process():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never fired

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(stuck())


def test_call_at_runs_function_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.call_at(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [pytest.approx(5.0)]


def test_call_at_past_rejected():
    sim = Simulator()

    def proc():
        yield sim.timeout(10.0)
        sim.call_at(5.0, lambda: None)

    with pytest.raises(SimulationError):
        sim.run_process(proc())


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    with pytest.raises(SimulationError):
        sim.run_process(bad())


def test_nested_process_trees():
    sim = Simulator()
    results = []

    def leaf(i):
        yield sim.timeout(float(i))
        return i

    def branch(lo, hi):
        procs = [sim.spawn(leaf(i)) for i in range(lo, hi)]
        vals = yield sim.all_of(procs)
        return sum(vals)

    def root():
        a = sim.spawn(branch(0, 5))
        b = sim.spawn(branch(5, 10))
        vals = yield sim.all_of([a, b])
        results.append(vals)
        return sum(vals)

    assert sim.run_process(root()) == sum(range(10))
    assert results == [[10, 35]]


def test_non_event_yield_recovery_by_reyield():
    """A generator that catches the misuse error and yields a real Event
    must keep running (the engine used to drop the throw's response)."""
    sim = Simulator()

    def recovers():
        try:
            yield "not an event"
        except SimulationError:
            yield sim.timeout(2.0)
        return "recovered"

    assert sim.run_process(recovers()) == "recovered"
    assert sim.now == pytest.approx(2.0)


def test_non_event_yield_recovery_by_return():
    """Catching the misuse error and returning completes the process."""
    sim = Simulator()

    def bails():
        try:
            yield object()
        except SimulationError:
            return "bailed"

    assert sim.run_process(bails()) == "bailed"


def test_non_event_yield_repeated_misuse_still_fails():
    sim = Simulator()

    def stubborn():
        try:
            yield 1
        except SimulationError:
            pass
        try:
            yield 2
        except SimulationError:
            raise ValueError("gave up")

    with pytest.raises(ValueError, match="gave up"):
        sim.run_process(stubborn())


def test_non_event_yield_failure_reaches_waiting_parent():
    sim = Simulator()

    def bad():
        yield 42

    def parent():
        try:
            yield sim.spawn(bad())
        except SimulationError as exc:
            return f"child misused: {exc}"

    out = sim.run_process(parent())
    assert "expected an Event" in out


def test_stats_counters():
    sim = Simulator()
    assert sim.stats() == {"events_processed": 0, "processes_spawned": 0,
                           "spawns": 0, "fast_completions": 0, "fallbacks": 0}

    def child():
        yield sim.timeout(1.0)

    def proc():
        yield sim.spawn(child())
        yield sim.timeout(1.0)

    sim.run_process(proc())
    stats = sim.stats()
    assert stats["processes_spawned"] == 2
    # Two bootstraps, two timeouts, and the process-completion events.
    assert stats["events_processed"] >= 5


def test_stats_counts_kick_resumes():
    """Waiting on an already-processed event costs exactly one extra
    (recycled) kick event per resume."""
    sim = Simulator()
    fired = sim.event()
    fired.succeed("v")

    def proc():
        yield sim.timeout(1.0)  # lets the fired event get processed
        before = sim.stats()["events_processed"]
        for _ in range(3):
            v = yield fired
            assert v == "v"
        return sim.stats()["events_processed"] - before

    # 3 kick events, each popped once (plus nothing else in the heap).
    assert sim.run_process(proc()) == 3
    assert sim.now == pytest.approx(1.0)


def test_interrupt_while_waiting_on_processed_event():
    """Interrupting a process parked on a recycled kick keeps both the
    interrupt and subsequent waits working."""
    sim = Simulator()
    fired = sim.event()
    fired.succeed("v")
    log = []

    def victim():
        yield sim.timeout(1.0)
        try:
            while True:
                yield fired  # spins on the kick path until interrupted
        except Interrupt as intr:
            log.append(intr.cause)
        yield sim.timeout(1.0)
        return "done"

    def interrupter(p):
        yield sim.timeout(1.0)
        p.interrupt("stop-spinning")

    p = sim.spawn(victim())
    sim.spawn(interrupter(p))
    sim.run()
    assert p.value == "done"
    assert log == ["stop-spinning"]
