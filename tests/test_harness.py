"""Tests for the experiment harness and figure/table registry."""

import pytest

from repro.apps import PAPER_ORDER, make_app, paper_params, small_params
from repro.apps.atpg import ATPGParams
from repro.apps.base import AppResult
from repro.harness import (
    SPEEDUP_FIGURES,
    bench_params,
    figure_curves,
    format_curves,
    run_app,
    speedup_curve,
)


def test_registry_covers_all_eight_apps():
    assert sorted(PAPER_ORDER) == sorted(
        ["water", "tsp", "asp", "atpg", "ida", "ra", "acp", "sor"])
    for name in PAPER_ORDER:
        app = make_app(name)
        assert app.name == name
        assert "original" in app.variants
        paper_params(name)
        small_params(name)


def test_make_app_unknown_rejected():
    with pytest.raises(ValueError, match="unknown application"):
        make_app("nope")


def test_run_app_unknown_variant_rejected():
    with pytest.raises(ValueError, match="unknown variant"):
        run_app(make_app("water"), "bogus", 1, 2, small_params("water"))


def test_run_app_returns_complete_result():
    res = run_app(make_app("atpg"), "original", 2, 2,
                  ATPGParams.small(n_gates=24))
    assert isinstance(res, AppResult)
    assert res.n_nodes == 4
    assert res.elapsed > 0
    assert "wan" in res.traffic
    assert res.answer is not None


def test_run_app_deterministic():
    params = ATPGParams.small(n_gates=24)
    a = run_app(make_app("atpg"), "original", 2, 2, params)
    b = run_app(make_app("atpg"), "original", 2, 2, params)
    assert a.elapsed == b.elapsed
    assert a.traffic == b.traffic


def test_speedup_curve_monotone_cpu_filter():
    params = ATPGParams.small(n_gates=48)
    curves = speedup_curve(make_app("atpg"), "original", params,
                           cluster_counts=(1, 2), cpu_counts=(2, 3, 4))
    # 3 CPUs is not divisible over 2 clusters and must be skipped.
    assert [pt.n_cpus for pt in curves[2]] == [2, 4]
    assert [pt.n_cpus for pt in curves[1]] == [2, 3, 4]
    # More CPUs never slow this embarrassingly parallel app down much.
    assert curves[1][-1].speedup > curves[1][0].speedup * 0.8


def test_figure_registry_is_complete():
    # 14 speedup figures, covering every app at least once.
    assert len(SPEEDUP_FIGURES) == 14
    apps = {spec.app for spec in SPEEDUP_FIGURES.values()}
    assert apps == set(PAPER_ORDER)


def test_bench_params_asp_scaled():
    p = bench_params("asp")
    assert p.n_vertices == 1000
    assert bench_params("water").n_molecules == 4096


def test_figure_curves_and_formatting():
    curves = figure_curves("fig7", cpu_counts=(4,), cluster_counts=(1, 2))
    text = format_curves("fig7", curves)
    assert "ATPG" in text or "atpg" in text
    assert "speedup" in text
    assert len(curves[1]) == 1 and len(curves[2]) == 1


def test_run_app_on_real_das_topology():
    """Apps run unmodified on the real, nonuniform DAS layout."""
    from repro.network import ClusterSpec, Topology

    topo = Topology([ClusterSpec("VU", 6), ClusterSpec("Delft", 3)])
    res = run_app(make_app("atpg"), "original", 2, 0,
                  ATPGParams.small(n_gates=36), topology=topo)
    assert res.elapsed > 0
    assert res.traffic["wan"]["count"] > 0  # clusters really talked
