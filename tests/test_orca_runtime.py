"""Integration tests for the Orca runtime: RPC, replication, guards, order."""

import pytest

from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import Blocked, ObjectSpec, Operation, OrcaRuntime
from repro.sim import Simulator


def make_rts(n_clusters=2, nodes_per_cluster=4, sequencer="distributed",
             params=DAS_PARAMS):
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(n_clusters, nodes_per_cluster), params)
    rts = OrcaRuntime(sim, fabric, sequencer=sequencer)
    return sim, rts


def counter_spec(name="counter", replicated=False, owner=0):
    def incr(state, amount):
        state["v"] += amount
        return state["v"]

    def read(state):
        return state["v"]

    return ObjectSpec(
        name, lambda: {"v": 0},
        {"incr": Operation(fn=incr, writes=True, arg_bytes=8, result_bytes=8),
         "read": Operation(fn=read, result_bytes=8)},
        replicated=replicated, owner=owner)


# ------------------------------------------------------------------ RPC


def test_local_invocation_no_messages():
    sim, rts = make_rts()
    rts.register(counter_spec(owner=0))

    def proc():
        ctx = rts.context(0)
        v = yield from ctx.invoke("counter", "incr", 5)
        return v

    assert sim.run_process(proc()) == 5
    assert rts.meter.total("rpc").count == 0


def test_remote_invocation_is_rpc():
    sim, rts = make_rts()
    rts.register(counter_spec(owner=0))

    def proc():
        ctx = rts.context(1)  # same cluster as owner
        v = yield from ctx.invoke("counter", "incr", 3)
        return v

    assert sim.run_process(proc()) == 3
    assert rts.meter.row("rpc", intercluster=False).count == 1
    assert rts.meter.row("rpc", intercluster=True).count == 0


def test_intercluster_rpc_recorded_and_slow():
    sim, rts = make_rts()
    rts.register(counter_spec(owner=0))

    def proc():
        ctx = rts.context(4)  # cluster 1
        t0 = sim.now
        yield from ctx.invoke("counter", "incr", 1)
        return sim.now - t0

    elapsed = sim.run_process(proc())
    assert rts.meter.row("rpc", intercluster=True).count == 1
    assert elapsed > 2e-3  # WAN round trip


def test_rpc_serializes_state_correctly():
    sim, rts = make_rts()
    rts.register(counter_spec(owner=0))

    def worker(nid):
        ctx = rts.context(nid)
        for _ in range(10):
            yield from ctx.invoke("counter", "incr", 1)

    for nid in range(8):
        sim.spawn(worker(nid))
    sim.run()
    assert rts.state_of("counter")["v"] == 80


def test_rpc_null_roundtrip_lan_about_40us():
    sim, rts = make_rts()

    def nullfn(state):
        return None

    rts.register(ObjectSpec(
        "null", dict, {"nop": Operation(fn=nullfn, arg_bytes=0, result_bytes=0)},
        owner=0))

    def proc():
        ctx = rts.context(1)
        t0 = sim.now
        yield from ctx.invoke("null", "nop")
        return sim.now - t0

    rt = sim.run_process(proc())
    assert rt == pytest.approx(40e-6, rel=0.25)


# ------------------------------------------------------------ replication


def test_replicated_read_is_local_and_free_of_messages():
    sim, rts = make_rts()
    rts.register(counter_spec("rc", replicated=True))

    def proc():
        ctx = rts.context(5)
        t0 = sim.now
        v = yield from ctx.invoke("rc", "read")
        return v, sim.now - t0

    v, dt = sim.run_process(proc())
    assert v == 0
    assert dt < 1e-4
    assert rts.meter.total("rpc").count == 0
    assert rts.meter.total("bcast").count == 0


def test_replicated_write_updates_all_copies():
    sim, rts = make_rts()
    rts.register(counter_spec("rc", replicated=True))

    def writer():
        ctx = rts.context(3)
        v = yield from ctx.invoke("rc", "incr", 7)
        return v

    assert sim.run_process(writer()) == 7
    sim.run()  # drain remote applications
    for nid in range(rts.topo.n_nodes):
        assert rts.state_of("rc", nid)["v"] == 7
    assert rts.meter.total("bcast").count == 1


def test_total_order_is_global_across_objects():
    sim, rts = make_rts(n_clusters=2, nodes_per_cluster=3)
    rts.register(counter_spec("a", replicated=True))
    rts.register(counter_spec("b", replicated=True))

    def writer(nid, obj, n):
        ctx = rts.context(nid)
        for _ in range(n):
            yield from ctx.invoke(obj, "incr", 1)

    sim.spawn(writer(0, "a", 5))
    sim.spawn(writer(4, "b", 5))
    sim.spawn(writer(2, "a", 5))
    sim.run()
    # Every node applied the exact same global sequence 0..14.
    expect = list(range(15))
    for nid in range(rts.topo.n_nodes):
        assert rts.tob.applied_sequence(nid) == expect
    assert rts.state_of("a", 5)["v"] == 10
    assert rts.state_of("b", 5)["v"] == 5


def test_replicated_writes_from_all_nodes_converge():
    sim, rts = make_rts(n_clusters=4, nodes_per_cluster=2)
    rts.register(counter_spec("rc", replicated=True))

    def writer(nid):
        ctx = rts.context(nid)
        yield from ctx.invoke("rc", "incr", nid)

    for nid in range(8):
        sim.spawn(writer(nid))
    sim.run()
    expected = sum(range(8))
    for nid in range(8):
        assert rts.state_of("rc", nid)["v"] == expected


# ----------------------------------------------------------------- guards


def queue_spec(owner=0):
    def enq(state, item):
        state.append(item)

    def deq(state):
        if not state:
            raise Blocked
        return state.pop(0)

    return ObjectSpec(
        "queue", list,
        {"enq": Operation(fn=enq, writes=True),
         "deq": Operation(fn=deq, writes=True)},
        owner=owner)


def test_guard_blocks_local_consumer_until_producer_adds():
    sim, rts = make_rts()
    rts.register(queue_spec(owner=0))

    def consumer():
        ctx = rts.context(0)
        item = yield from ctx.invoke("queue", "deq")
        return (item, sim.now)

    def producer():
        ctx = rts.context(1)
        yield from ctx.sleep(0.01)
        yield from ctx.invoke("queue", "enq", "job")

    p = sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    item, t = p.value
    assert item == "job"
    assert t >= 0.01


def test_guard_blocks_remote_consumer_rpc():
    sim, rts = make_rts()
    rts.register(queue_spec(owner=0))

    def consumer(nid):
        ctx = rts.context(nid)
        item = yield from ctx.invoke("queue", "deq")
        return item

    def producer():
        ctx = rts.context(0)
        yield from ctx.sleep(0.005)
        for i in range(3):
            yield from ctx.invoke("queue", "enq", i)

    consumers = [sim.spawn(consumer(nid)) for nid in (1, 2, 5)]
    sim.spawn(producer())
    sim.run()
    got = sorted(c.value for c in consumers)
    assert got == [0, 1, 2]


def test_parked_rpc_does_not_block_other_requests():
    sim, rts = make_rts()
    rts.register(queue_spec(owner=0))
    rts.register(counter_spec(owner=0))

    def blocked_consumer():
        ctx = rts.context(1)
        item = yield from ctx.invoke("queue", "deq")
        return item

    def other():
        ctx = rts.context(2)
        v = yield from ctx.invoke("counter", "incr", 1)
        return (v, sim.now)

    sim.spawn(blocked_consumer())
    p = sim.spawn(other())
    sim.run(until=0.1)
    # The counter RPC completed promptly even though the dequeue is parked.
    assert p.triggered
    v, t = p.value
    assert v == 1 and t < 1e-3


# ------------------------------------------------------------- sequencers


@pytest.mark.parametrize("kind", ["centralized", "distributed", "migrating"])
def test_all_sequencers_deliver_total_order(kind):
    sim, rts = make_rts(n_clusters=3, nodes_per_cluster=2, sequencer=kind)
    rts.register(counter_spec("rc", replicated=True))

    def writer(nid):
        ctx = rts.context(nid)
        for _ in range(4):
            yield from ctx.invoke("rc", "incr", 1)

    for nid in range(6):
        sim.spawn(writer(nid))
    sim.run()
    expect = list(range(24))
    for nid in range(6):
        assert rts.tob.applied_sequence(nid) == expect
        assert rts.state_of("rc", nid)["v"] == 24


def test_migrating_sequencer_cheaper_for_phased_broadcasts():
    """A run of broadcasts from one cluster: migrating beats distributed."""

    def run(kind):
        sim, rts = make_rts(n_clusters=4, nodes_per_cluster=2, sequencer=kind)
        rts.register(counter_spec("rc", replicated=True))

        def writer():
            ctx = rts.context(1)
            for _ in range(20):
                yield from ctx.invoke("rc", "incr", 1)
            return sim.now

        return sim.run_process(writer())

    t_dist = run("distributed")
    t_migr = run("migrating")
    assert t_migr < t_dist / 2


def test_centralized_sequencer_penalizes_remote_clusters():
    def run(writer_node):
        sim, rts = make_rts(n_clusters=2, nodes_per_cluster=4,
                            sequencer="centralized")
        rts.register(counter_spec("rc", replicated=True))

        def writer():
            ctx = rts.context(writer_node)
            for _ in range(10):
                yield from ctx.invoke("rc", "incr", 1)
            return sim.now

        return sim.run_process(writer())

    t_home = run(0)   # on the sequencer's cluster
    t_far = run(4)    # remote cluster: each bcast crosses the WAN twice
    assert t_far > 3 * t_home


def test_unknown_sequencer_kind_rejected():
    with pytest.raises(ValueError, match="unknown sequencer"):
        make_rts(sequencer="nonsense")


# ------------------------------------------------------------------ misc


def test_register_duplicate_rejected():
    _, rts = make_rts()
    rts.register(counter_spec())
    with pytest.raises(ValueError, match="already registered"):
        rts.register(counter_spec())


def test_register_bad_owner_rejected():
    _, rts = make_rts()
    with pytest.raises(ValueError, match="owner"):
        rts.register(counter_spec(owner=99))


def test_context_out_of_range():
    _, rts = make_rts()
    with pytest.raises(ValueError):
        rts.context(100)


def test_raw_messages_between_nodes():
    sim, rts = make_rts()

    def sender():
        ctx = rts.context(0)
        yield from ctx.send(5, 128, payload={"k": 1}, port="data")

    def receiver():
        ctx = rts.context(5)
        msg = yield from ctx.receive(port="data")
        return msg.payload

    sim.spawn(sender())
    p = sim.spawn(receiver())
    sim.run()
    assert p.value == {"k": 1}
    assert rts.meter.row("msg", intercluster=True).count == 1
