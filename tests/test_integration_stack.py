"""Cross-cutting integration tests over the full stack."""

import pytest

from repro.apps import PAPER_ORDER, make_app, small_params
from repro.apps.base import KERNEL_REAL, KERNEL_SYNTHETIC
from repro.harness import run_app
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import ObjectSpec, Operation, OrcaRuntime
from repro.sim import Simulator


@pytest.mark.parametrize("name", PAPER_ORDER)
def test_every_app_runs_on_every_cluster_shape(name):
    """Smoke: all eight apps complete on 1, 2 and 4 clusters."""
    app = make_app(name)
    params = small_params(name)
    for shape in ((1, 4), (2, 2), (4, 1)):
        if name == "sor" and shape[0] * shape[1] > params.n_rows:
            continue
        res = run_app(app, "original", *shape, params)
        assert res.elapsed > 0


@pytest.mark.parametrize("name", PAPER_ORDER)
def test_every_app_is_deterministic(name):
    app = make_app(name)
    params = small_params(name)
    a = run_app(app, "original", 2, 2, params)
    b = run_app(make_app(name), "original", 2, 2, params)
    assert a.elapsed == b.elapsed
    assert a.traffic == b.traffic


@pytest.mark.parametrize("name", ["water", "tsp", "asp", "atpg", "ida"])
def test_synthetic_kernel_matches_real_timing(name):
    """The synthetic kernel must charge the same virtual time and move the
    same messages as the real kernel — that is its contract."""
    app = make_app(name)
    params = small_params(name)
    real = run_app(app, "original", 2, 2, params)
    synth = run_app(make_app(name), "original", 2, 2,
                    params.with_(kernel=KERNEL_SYNTHETIC))
    if name in ("water",):  # identical cost formulas
        assert synth.elapsed == pytest.approx(real.elapsed, rel=1e-9)
        for key in ("inter.rpc", "intra.rpc"):
            if key in real.traffic:
                assert real.traffic[key]["count"] == synth.traffic[key]["count"]
    else:
        # Synthetic work distributions differ from real search trees, but
        # the communication structure must be intact.
        assert synth.elapsed > 0
        assert set(k for k in synth.traffic if k.endswith("rpc")) \
            <= set(real.traffic) | {"intra.rpc", "inter.rpc"}


def test_wan_byte_conservation():
    """Every intercluster application byte must appear on a WAN link."""
    res = run_app(make_app("water"), "original", 2, 2,
                  small_params("water"))
    inter_bytes = sum(v["bytes"] for k, v in res.traffic.items()
                      if k.startswith("inter."))
    assert res.traffic["wan"]["bytes"] >= inter_bytes * 0.9


def test_single_cluster_runs_produce_no_wan_traffic():
    for name in PAPER_ORDER:
        res = run_app(make_app(name), "original", 1, 4, small_params(name))
        assert res.traffic["wan"]["count"] == 0, name
        for key in res.traffic:
            if key.startswith("inter."):
                assert res.traffic[key]["count"] == 0, (name, key)


def test_dedicated_sequencer_node_option():
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(2, 4), DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric, dedicated_sequencer_node=True)
    # The stamping node moves to the last node of each cluster.
    assert rts.tob.stamping_node(0) == 3
    assert rts.tob.stamping_node(1) == 7

    def bump(state):
        state["v"] = state.get("v", 0) + 1

    rts.register(ObjectSpec("c", dict,
                            {"bump": Operation(fn=bump, writes=True)},
                            replicated=True))

    def proc():
        ctx = rts.context(0)
        yield from ctx.invoke("c", "bump")

    sim.spawn(proc())
    sim.run()
    assert rts.state_of("c", 7)["v"] == 1
