"""Unit tests for the perf-baseline harness (no real measuring here:
the measure functions are stubbed, so these stay milliseconds-fast)."""

import json

from repro.harness import bench


def test_flat_engine_handles_both_layouts():
    # Pre-tier flat layout (old committed baselines) passes through...
    flat = {"timeout_chain": 100, "TOTAL": 100}
    assert bench._flat_engine(flat) == flat
    # ...and the sectioned per-tier layout flattens to tier/name keys.
    sectioned = {"python": {"timeout_chain": 100, "TOTAL": 100},
                 "compiled": {"timeout_chain": 400, "TOTAL": 400}}
    assert bench._flat_engine(sectioned) == {
        "python/timeout_chain": 100, "python/TOTAL": 100,
        "compiled/timeout_chain": 400, "compiled/TOTAL": 400}


def _fake_engine_suite(tmp_path, committed, measured, monkeypatch):
    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps({"bench": "engine", "results": committed}))
    monkeypatch.setitem(bench.SUITES, "engine",
                        (path, lambda repeat: measured, bench._flat_engine))
    return path


def test_check_skips_tier_unavailable_on_this_machine(tmp_path, capsys,
                                                      monkeypatch):
    """A baseline with a compiled section still checks cleanly where the
    compiled core cannot build — skipped with a log line, not failed."""
    committed = {"python": {"a": 100, "TOTAL": 100},
                 "compiled": {"a": 400, "TOTAL": 400}}
    measured = {"python": {"a": 100, "TOTAL": 100}}  # no compiler here
    _fake_engine_suite(tmp_path, committed, measured, monkeypatch)
    rc = bench.check_baselines(repeat=1, threshold=0.30, suites=["engine"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "compiled tier unavailable" in out
    assert "skipping its baselines" in out
    assert "compiled/a" not in out  # skipped rows don't show as MISSING


def test_check_still_fails_on_regression_in_available_tier(tmp_path, capsys,
                                                           monkeypatch):
    committed = {"python": {"a": 100, "TOTAL": 100}}
    measured = {"python": {"a": 10, "TOTAL": 10}}  # 90% drop
    _fake_engine_suite(tmp_path, committed, measured, monkeypatch)
    rc = bench.check_baselines(repeat=1, threshold=0.30, suites=["engine"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "REGRESSION" in out


def test_committed_engine_baseline_is_sectioned_per_tier():
    """The committed BENCH_engine.json carries at least the python tier
    in the per-tier layout (the compiled section depends on the writer
    machine having a C compiler)."""
    data = json.loads(bench.ENGINE_JSON.read_text())
    results = data["results"]
    assert "python" in results
    assert all(isinstance(v, dict) for v in results.values())
    for section in results.values():
        assert "TOTAL" in section


def test_parse_suite_request():
    suites, tier = bench.parse_suite_request("all")
    assert suites == sorted(bench.SUITES) and tier is None
    assert "collectives" in suites
    assert bench.parse_suite_request("orca") == (["orca"], None)
    assert bench.parse_suite_request("engine:compiled") \
        == (["engine"], "compiled")
    import pytest
    with pytest.raises(ValueError, match="unknown suite"):
        bench.parse_suite_request("nosuch")
    with pytest.raises(ValueError, match="no tiers"):
        bench.parse_suite_request("orca:python")
    with pytest.raises(ValueError, match="empty tier"):
        bench.parse_suite_request("engine:")


def test_check_explicit_tier_fails_when_not_committed(tmp_path, capsys,
                                                      monkeypatch):
    """suite:tier names a section the baseline file lacks -> hard fail,
    unlike the auto-discovery skip."""
    committed = {"python": {"a": 100, "TOTAL": 100}}
    measured = {"python": {"a": 100, "TOTAL": 100},
                "compiled": {"a": 400, "TOTAL": 400}}
    _fake_engine_suite(tmp_path, committed, measured, monkeypatch)
    rc = bench.check_baselines(repeat=1, threshold=0.30, suites=["engine"],
                               tier="compiled")
    out = capsys.readouterr().out
    assert rc == 1
    assert "no committed baseline section" in out


def test_check_explicit_tier_fails_when_unmeasurable(tmp_path, capsys,
                                                     monkeypatch):
    """An explicitly requested tier this host cannot measure fails
    instead of skipping loudly."""
    committed = {"python": {"a": 100, "TOTAL": 100},
                 "compiled": {"a": 400, "TOTAL": 400}}
    measured = {"python": {"a": 100, "TOTAL": 100}}  # no compiler here
    _fake_engine_suite(tmp_path, committed, measured, monkeypatch)
    rc = bench.check_baselines(repeat=1, threshold=0.30, suites=["engine"],
                               tier="compiled")
    out = capsys.readouterr().out
    assert rc == 1
    assert "explicitly requested tiers fail instead of skipping" in out


def test_check_explicit_tier_restricts_to_that_tier(tmp_path, capsys,
                                                    monkeypatch):
    committed = {"python": {"a": 100, "TOTAL": 100},
                 "compiled": {"a": 400, "TOTAL": 400}}
    measured = {"python": {"a": 5, "TOTAL": 5},  # would regress...
                "compiled": {"a": 400, "TOTAL": 400}}
    _fake_engine_suite(tmp_path, committed, measured, monkeypatch)
    rc = bench.check_baselines(repeat=1, threshold=0.30, suites=["engine"],
                               tier="compiled")
    out = capsys.readouterr().out
    assert rc == 0  # ...but only the requested tier is checked
    assert "python/a" not in out


def test_committed_collectives_baseline_exists():
    """PR 8 commits BENCH_collectives.json with the shaped/striped
    fan-out workloads and the tuner probe loop."""
    data = json.loads(bench.COLLECTIVES_JSON.read_text())
    assert data["bench"] == "collectives"
    names = set(data["results"])
    assert {"fanout_flat", "fanout_chain", "fanout_binomial", "stripe4",
            "tune_probe"} <= names
    for entry in data["results"].values():
        assert entry["ops_per_s"] > 0
