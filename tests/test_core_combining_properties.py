"""Property-based tests: the cluster combiner must be a transparent relay.

Whatever the flush policy, exactly the messages handed to the combiner
arrive at their destinations — no loss, no duplication — and per
(sender, destination) pairs the relative order is preserved.
"""

from hypothesis import given, settings, strategies as st

from repro.core import ClusterCombiner, CombinerConfig
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import OrcaRuntime
from repro.sim import Simulator


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 7),      # sender
                       st.integers(0, 7),      # destination
                       st.integers(1, 400)),   # size
            min_size=1, max_size=40),
    st.integers(1, 32),                        # max_messages
    st.sampled_from([1e-4, 1e-3, 1e-2]),       # max_delay
)
def test_combiner_is_lossless_and_pair_ordered(sends, max_messages, delay):
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(2, 4), DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)
    comb = ClusterCombiner(rts, CombinerConfig(
        max_messages=max_messages, max_bytes=8 * 1024, max_delay=delay))

    expected_per_dst = {}
    for i, (src, dst, size) in enumerate(sends):
        expected_per_dst[dst] = expected_per_dst.get(dst, 0) + 1

    received = {dst: [] for dst in range(8)}

    def sender(src, items):
        ctx = rts.context(src)
        for i, dst, size in items:
            yield from comb.send(ctx, dst, size, payload=(src, i), port="p")

    by_sender = {}
    for i, (src, dst, size) in enumerate(sends):
        by_sender.setdefault(src, []).append((i, dst, size))
    for src, items in by_sender.items():
        sim.spawn(sender(src, items))

    def receiver(dst, expect):
        ctx = rts.context(dst)
        for _ in range(expect):
            msg = yield from ctx.receive(port="p")
            received[dst].append(msg.payload)

    receivers = [sim.spawn(receiver(dst, n))
                 for dst, n in expected_per_dst.items()]
    sim.run()
    # No loss: every receiver saw its full count.
    assert all(r.triggered for r in receivers)
    got = sorted(p for msgs in received.values() for p in msgs)
    want = sorted((src, i) for i, (src, dst, sz) in enumerate(sends))
    assert got == want  # no duplication either
    # Per (sender, destination) order preserved.
    for dst, msgs in received.items():
        for src in range(8):
            seq = [i for s, i in msgs if s == src]
            assert seq == sorted(seq)
