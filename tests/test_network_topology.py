"""Unit tests for cluster topology."""

import pytest

from repro.network import (
    ClusterSpec,
    Topology,
    das_experimentation,
    das_real,
    uniform_clusters,
)


def test_das_real_shape():
    topo = das_real()
    assert topo.n_clusters == 4
    assert topo.n_nodes == 64 + 24 + 24 + 24  # 136 compute nodes
    assert topo.clusters[0].name == "VU-Amsterdam"
    assert topo.clusters[0].n_nodes == 64


def test_uniform_clusters_numbering():
    topo = uniform_clusters(4, 15)
    assert topo.n_nodes == 60
    assert list(topo.nodes_in(0)) == list(range(0, 15))
    assert list(topo.nodes_in(3)) == list(range(45, 60))


def test_cluster_of_boundaries():
    topo = uniform_clusters(3, 8)
    assert topo.cluster_of(0) == 0
    assert topo.cluster_of(7) == 0
    assert topo.cluster_of(8) == 1
    assert topo.cluster_of(23) == 2


def test_cluster_of_out_of_range():
    topo = uniform_clusters(2, 4)
    with pytest.raises(ValueError):
        topo.cluster_of(8)
    with pytest.raises(ValueError):
        topo.cluster_of(-1)


def test_local_rank():
    topo = uniform_clusters(4, 15)
    assert topo.local_rank(0) == 0
    assert topo.local_rank(14) == 14
    assert topo.local_rank(15) == 0
    assert topo.local_rank(59) == 14


def test_same_cluster():
    topo = uniform_clusters(2, 16)
    assert topo.same_cluster(0, 15)
    assert not topo.same_cluster(15, 16)


def test_peers_excludes_self():
    topo = uniform_clusters(2, 3)
    assert topo.peers(2) == [0, 1, 3, 4, 5]


def test_cluster_pairs_directed():
    topo = uniform_clusters(3, 2)
    pairs = topo.cluster_pairs()
    assert len(pairs) == 6
    assert (0, 1) in pairs and (1, 0) in pairs
    assert (0, 0) not in pairs


def test_das_experimentation_limits():
    topo = das_experimentation(4, 15)
    assert topo.n_nodes == 60
    with pytest.raises(ValueError):
        das_experimentation(4, 16)  # only 64 nodes: 4*15 + 4 gateways
    with pytest.raises(ValueError):
        das_experimentation(5, 8)


def test_nonuniform_topology():
    topo = Topology([ClusterSpec("big", 10), ClusterSpec("small", 2)])
    assert topo.n_nodes == 12
    assert topo.cluster_of(9) == 0
    assert topo.cluster_of(10) == 1
    assert topo.local_rank(11) == 1


def test_invalid_specs_rejected():
    with pytest.raises(ValueError):
        ClusterSpec("empty", 0)
    with pytest.raises(ValueError):
        Topology([])
    with pytest.raises(ValueError):
        uniform_clusters(0, 4)


def test_describe_mentions_every_cluster():
    topo = das_real()
    text = topo.describe()
    for c in topo.clusters:
        assert c.name in text
