"""Exporters: JSONL round-trip and Chrome trace_event structural validity."""

import io
import json

import pytest

from repro.apps import make_app, small_params
from repro.harness import run_app
from repro.obs.export import (
    JSONL_HEADER,
    chrome_trace,
    read_jsonl,
    write_chrome,
    write_jsonl,
)
from repro.obs.schema import KINDS, SCHEMA_VERSION, SPAN_KINDS
from repro.sim import Tracer


@pytest.fixture(scope="module")
def traced_records():
    tracer = Tracer()
    run_app(make_app("asp"), "original", 2, 2, small_params("asp"),
            trace=True, tracer=tracer)
    return list(tracer.records)


# ---------------------------------------------------------------- JSONL

def test_jsonl_round_trip(traced_records):
    buf = io.StringIO()
    n = write_jsonl(traced_records, buf)
    assert n == len(traced_records)
    buf.seek(0)
    assert read_jsonl(buf) == traced_records


def test_jsonl_header_is_versioned():
    buf = io.StringIO()
    write_jsonl([], buf)
    header = json.loads(buf.getvalue().splitlines()[0])
    assert header == {"schema": "repro.trace", "version": SCHEMA_VERSION}
    assert header == JSONL_HEADER


def test_jsonl_rejects_foreign_and_stale_files():
    with pytest.raises(ValueError, match="not a repro trace"):
        read_jsonl(io.StringIO('{"something": "else"}\n'))
    stale = json.dumps({"schema": "repro.trace",
                        "version": SCHEMA_VERSION + 1})
    with pytest.raises(ValueError, match="version"):
        read_jsonl(io.StringIO(stale + "\n"))


# --------------------------------------------------------- Chrome trace

def test_chrome_trace_is_structurally_valid(traced_records):
    trace = chrome_trace(traced_records)
    # JSON-serializable and shaped as Perfetto expects.
    json.dumps(trace)
    assert trace["otherData"]["version"] == SCHEMA_VERSION
    events = trace["traceEvents"]
    assert isinstance(events, list) and events
    phases = set()
    for ev in events:
        phases.add(ev["ph"])
        assert ev["ph"] in ("M", "X", "i")
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        if ev["ph"] == "M":
            assert ev["name"] in ("process_name", "thread_name")
            assert ev["args"]["name"]
        else:
            assert isinstance(ev["ts"], float) and ev["ts"] >= 0
            assert ev["name"] and ev["cat"] in KINDS
        if ev["ph"] == "X":
            assert isinstance(ev["dur"], float) and ev["dur"] >= 0
        if ev["ph"] == "i":
            assert ev["s"] == "t"
    assert phases == {"M", "X", "i"}


def test_chrome_trace_span_instant_mapping(traced_records):
    trace = chrome_trace(traced_records)
    data = [ev for ev in trace["traceEvents"] if ev["ph"] != "M"]
    assert len(data) == len(traced_records)
    for ev, rec in zip(data, traced_records):
        assert ev["cat"] == rec.kind
        if rec.kind in SPAN_KINDS:
            assert ev["ph"] == "X"
            assert ev["ts"] == pytest.approx(rec.detail["t0"] * 1e6)
            assert ev["dur"] == pytest.approx(rec.detail["dur"] * 1e6)
            # t0/dur live in ts/dur, not duplicated into args
            assert "t0" not in ev["args"] and "dur" not in ev["args"]
        else:
            assert ev["ph"] == "i"
            assert ev["ts"] == pytest.approx(rec.time * 1e6)


def test_write_chrome_counts_data_events(traced_records):
    buf = io.StringIO()
    n = write_chrome(traced_records, buf)
    assert n == len(traced_records)
    obj = json.loads(buf.getvalue())
    assert obj["displayTimeUnit"] == "ms"
