"""Exporters: JSONL round-trip, Chrome trace_event validity, flows, folded."""

import io
import json
import re

import pytest

from repro.apps import PAPER_ORDER, make_app, small_params
from repro.harness import run_app
from repro.obs.export import (
    JSONL_HEADER,
    _Lanes,
    chrome_trace,
    folded_stacks,
    read_jsonl,
    write_chrome,
    write_folded,
    write_jsonl,
)
from repro.obs.schema import KINDS, SCHEMA_VERSION, SPAN_KINDS
from repro.sim import Tracer
from repro.sim.trace import TraceRecord


@pytest.fixture(scope="module")
def traced_records():
    tracer = Tracer()
    run_app(make_app("asp"), "original", 2, 2, small_params("asp"),
            trace=True, tracer=tracer)
    return list(tracer.records)


# ---------------------------------------------------------------- JSONL

def test_jsonl_round_trip(traced_records):
    buf = io.StringIO()
    n = write_jsonl(traced_records, buf)
    assert n == len(traced_records)
    buf.seek(0)
    assert read_jsonl(buf) == traced_records


def test_jsonl_header_is_versioned():
    buf = io.StringIO()
    write_jsonl([], buf)
    header = json.loads(buf.getvalue().splitlines()[0])
    assert header == {"schema": "repro.trace", "version": SCHEMA_VERSION}
    assert header == JSONL_HEADER


def test_jsonl_rejects_foreign_and_stale_files():
    with pytest.raises(ValueError, match="not a repro trace"):
        read_jsonl(io.StringIO('{"something": "else"}\n'))
    stale = json.dumps({"schema": "repro.trace",
                        "version": SCHEMA_VERSION + 1})
    with pytest.raises(ValueError, match="version"):
        read_jsonl(io.StringIO(stale + "\n"))


def test_jsonl_rejects_detail_keys_colliding_with_envelope():
    # A detail field named "t" or "kind" would silently overwrite the
    # record's time/kind in the flattened JSON object.
    for key in ("t", "kind"):
        rec = TraceRecord(0.0, "proc.spawn", {"pid": 1, "name": "w",
                                              key: "boom"})
        with pytest.raises(ValueError, match="collides"):
            write_jsonl([rec], io.StringIO())


def test_jsonl_round_trips_tuple_valued_details():
    # JSON turns tuples into arrays; the reader must bring them back as
    # tuples (the emitters only ever attach tuples), including nested.
    rec = TraceRecord(1.0, "custom.kind", {
        "path": (0, 1, 2),
        "nested": ((1, 2), (3, 4)),
        "mixed": {"inner": (5, 6)},
        "plain": 7,
    })
    buf = io.StringIO()
    write_jsonl([rec], buf)
    buf.seek(0)
    (back,) = read_jsonl(buf)
    assert back == rec
    assert isinstance(back.detail["path"], tuple)
    assert isinstance(back.detail["nested"][0], tuple)
    assert isinstance(back.detail["mixed"]["inner"], tuple)


def test_jsonl_round_trip_lossless_for_every_kind_in_schema():
    # Synthetic coverage: one record per registered kind, every field
    # populated with a representative typed value.  Real traces cannot
    # guarantee rare kinds (seq.migrate) appear, so this pins the whole
    # registry.
    dummies = {"int": 3, "float": 0.25, "str": "x", "bool": True}
    records = []
    for name, spec in KINDS.items():
        detail = {f: dummies[t] for f, (t, _unit) in spec.fields.items()}
        if spec.span:
            detail["t0"], detail["dur"] = 1.0, 0.25
            records.append(TraceRecord(1.25, name, detail))
        else:
            records.append(TraceRecord(2.0, name, detail))
    from repro.obs.schema import validate_records
    assert validate_records(records) == []
    buf = io.StringIO()
    write_jsonl(records, buf)
    buf.seek(0)
    assert read_jsonl(buf) == records


@pytest.mark.parametrize("app_name", PAPER_ORDER)
def test_jsonl_round_trip_lossless_on_real_traces(app_name):
    tracer = Tracer()
    run_app(make_app(app_name), "original", 2, 2, small_params(app_name),
            trace=True, tracer=tracer)
    records = list(tracer.records)
    assert records
    buf = io.StringIO()
    write_jsonl(records, buf)
    buf.seek(0)
    back = read_jsonl(buf)
    assert back == records
    for orig, rt in zip(records, back):
        for field, value in orig.detail.items():
            assert type(rt.detail[field]) is type(value), (orig.kind, field)


# --------------------------------------------------------- Chrome trace

def test_chrome_trace_is_structurally_valid(traced_records):
    trace = chrome_trace(traced_records)
    # JSON-serializable and shaped as Perfetto expects.
    json.dumps(trace)
    assert trace["otherData"]["version"] == SCHEMA_VERSION
    events = trace["traceEvents"]
    assert isinstance(events, list) and events
    phases = set()
    for ev in events:
        phases.add(ev["ph"])
        assert ev["ph"] in ("M", "X", "i", "s", "t", "f")
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        if ev["ph"] == "M":
            assert ev["name"] in ("process_name", "thread_name")
            assert ev["args"]["name"]
        elif ev["ph"] in ("s", "t", "f"):
            assert ev["cat"] == "flow" and isinstance(ev["id"], int)
        else:
            assert isinstance(ev["ts"], float) and ev["ts"] >= 0
            assert ev["name"] and ev["cat"] in KINDS
        if ev["ph"] == "X":
            assert isinstance(ev["dur"], float) and ev["dur"] >= 0
        if ev["ph"] == "i":
            assert ev["s"] == "t"
    assert {"M", "X", "i", "s", "f"} <= phases <= {"M", "X", "i", "s", "t", "f"}


def test_chrome_trace_span_instant_mapping(traced_records):
    trace = chrome_trace(traced_records)
    data = [ev for ev in trace["traceEvents"]
            if ev["ph"] not in ("M", "s", "t", "f")]
    assert len(data) == len(traced_records)
    for ev, rec in zip(data, traced_records):
        assert ev["cat"] == rec.kind
        if rec.kind in SPAN_KINDS:
            assert ev["ph"] == "X"
            assert ev["ts"] == pytest.approx(rec.detail["t0"] * 1e6)
            assert ev["dur"] == pytest.approx(rec.detail["dur"] * 1e6)
            # t0/dur live in ts/dur, not duplicated into args
            assert "t0" not in ev["args"] and "dur" not in ev["args"]
        else:
            assert ev["ph"] == "i"
            assert ev["ts"] == pytest.approx(rec.time * 1e6)


def test_write_chrome_counts_data_events(traced_records):
    buf = io.StringIO()
    n = write_chrome(traced_records, buf)
    assert n == len(traced_records)
    obj = json.loads(buf.getvalue())
    assert obj["displayTimeUnit"] == "ms"


# ---------------------------------------------------------- flow events

def test_flow_events_form_valid_chains(traced_records):
    trace = chrome_trace(traced_records)
    events = trace["traceEvents"]
    flows = [ev for ev in events if ev["ph"] in ("s", "t", "f")]
    assert flows
    starts = [ev for ev in flows if ev["ph"] == "s"]
    finishes = [ev for ev in flows if ev["ph"] == "f"]
    # Every flow id opens exactly once and closes exactly once.
    assert len(starts) == len(finishes)
    assert {ev["id"] for ev in starts} == {ev["id"] for ev in finishes}
    assert len({ev["id"] for ev in starts}) == len(starts)
    by_id = {}
    for ev in flows:
        by_id.setdefault(ev["id"], []).append(ev)
    slices = [ev for ev in events if ev["ph"] == "X"]
    for msg_id, chain in by_id.items():
        assert chain[0]["ph"] == "s" and chain[-1]["ph"] == "f"
        assert all(ev["ph"] == "t" for ev in chain[1:-1])
        assert chain[-1]["bp"] == "e"
        assert all(ev["name"] == "message path" and ev["cat"] == "flow"
                   for ev in chain)
        # Each flow event binds inside an X slice on its pid/tid lane.
        for ev in chain:
            assert any(s["pid"] == ev["pid"] and s["tid"] == ev["tid"]
                       and s["ts"] <= ev["ts"] <= s["ts"] + s["dur"]
                       for s in slices), ev


def test_flow_events_can_be_disabled(traced_records):
    trace = chrome_trace(traced_records, flows=False)
    assert all(ev["ph"] in ("M", "X", "i") for ev in trace["traceEvents"])


def test_flow_events_follow_the_message_hops():
    # One hand-built two-hop message: the flow must start on the first
    # span's lane and finish on the second's, in span order.
    def busy(link, cls, t0, dur, msg_id):
        return TraceRecord(t0 + dur, "link.busy", dict(
            link=link, cls=cls, size=8, wait=0.0, msg_id=msg_id,
            t0=t0, dur=dur))

    records = [busy("lanout0", "lan_out", 0.0, 0.1, 5),
               busy("lanin1", "lan_in", 0.1, 0.1, 5),
               busy("lanout2", "lan_out", 0.0, 0.1, -1)]  # shared: no flow
    trace = chrome_trace(records)
    flows = [ev for ev in trace["traceEvents"] if ev["ph"] in ("s", "t", "f")]
    assert [ev["ph"] for ev in flows] == ["s", "f"]
    assert all(ev["id"] == 5 for ev in flows)
    assert flows[0]["ts"] < flows[1]["ts"]


# ------------------------------------------------------- lane stability

def test_lane_numbering_is_stable_and_per_pid():
    lanes = _Lanes()
    assert lanes.lane("net", "a") == (1, 1)
    assert lanes.lane("net", "b") == (1, 2)
    assert lanes.lane("orca", "x") == (2, 1)   # tids restart per pid
    assert lanes.lane("net", "c") == (1, 3)
    assert lanes.lane("orca", "x") == (2, 1)   # lookups never re-assign
    assert lanes.lane("net", "b") == (1, 2)
    # One metadata event per process + one per thread, no duplicates.
    names = [(ev["name"], ev["pid"], ev["tid"]) for ev in lanes.metadata]
    assert len(names) == len(set(names)) == 6


def test_lane_numbering_matches_many_thread_order():
    # Regression for the O(threads^2) scan this replaced: the counter
    # must hand out 1..n in first-seen order within each pid.
    lanes = _Lanes()
    for i in range(50):
        assert lanes.lane("p", f"thread{i}") == (1, i + 1)
    for i in range(50):
        assert lanes.lane("q", f"thread{i}") == (2, i + 1)


# -------------------------------------------------------- folded stacks

def _op_span(kind, t0, dur, **detail):
    detail.update(t0=t0, dur=dur)
    return TraceRecord(t0 + dur, kind, detail)


def test_folded_stacks_nest_by_containment():
    records = [
        _op_span("bcast.complete", 0.0, 1.0, sender=3, seq=0, obj="m",
                 op="put", size=64),
        _op_span("seq.request", 0.1, 0.3, sender=3, stamp_node=0, size=16,
                 bb=False, inter=True),
        _op_span("rpc.complete", 2.0, 0.5, req_id=1, caller=3, owner=0,
                 obj="q", op="get", bytes=32, inter=False),
    ]
    folded = folded_stacks(records)
    assert folded == pytest.approx({
        "node3;bcast m.put": 0.7,                       # 1.0 - nested 0.3
        "node3;bcast m.put;seq request [inter]": 0.3,
        "node3;rpc q.get": 0.5,
    })


def test_folded_stacks_separate_lanes_per_node():
    records = [
        _op_span("rpc.complete", 0.0, 1.0, req_id=1, caller=1, owner=0,
                 obj="q", op="get", bytes=32, inter=True),
        _op_span("rpc.complete", 0.0, 1.0, req_id=2, caller=2, owner=0,
                 obj="q", op="get", bytes=32, inter=True),
        _op_span("seq.acquire", 0.0, 0.4, cluster=0, seq=1,
                 protocol="migrating"),
    ]
    folded = folded_stacks(records)
    assert set(folded) == {"node1;rpc q.get [inter]",
                           "node2;rpc q.get [inter]",
                           "sequencer c0;seq acquire [migrating]"}


def test_write_folded_emits_parsable_lines(traced_records):
    buf = io.StringIO()
    n = write_folded(traced_records, buf)
    lines = buf.getvalue().splitlines()
    assert n == len(lines) > 0
    # flamegraph.pl's accepted shape: "frame;frame;... <number>".
    for line in lines:
        assert re.fullmatch(r"\S.* \d+(\.\d+)?", line), line
    assert lines == sorted(lines)  # reproducible output order
    # Self-times are non-negative and the total is positive.
    assert sum(float(line.rsplit(" ", 1)[1]) for line in lines) > 0
