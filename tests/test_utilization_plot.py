"""Tests for utilization reporting and ASCII plotting."""

import pytest

from repro.apps import make_app, small_params
from repro.apps.base import AppResult
from repro.harness import ascii_speedup_plot, run_app, speedup_curve
from repro.harness.experiment import CurvePoint
from repro.metrics import (
    UtilizationReport,
    collect_utilization,
    format_utilization,
)


# ------------------------------------------------------------- utilization


def test_utilization_report_fractions_bounded():
    res = run_app(make_app("atpg"), "original", 2, 3, small_params("atpg"),
                  utilization=True)
    rep = res.utilization
    assert isinstance(rep, UtilizationReport)
    assert all(0.0 <= u <= 1.0 for u in rep.cpu)
    assert all(0.0 <= u <= 1.0 for u in rep.gateway)
    assert all(0.0 <= u <= 1.0 for u in rep.wan.values())
    assert rep.cpu_max >= rep.cpu_mean


def test_utilization_off_by_default():
    res = run_app(make_app("atpg"), "original", 1, 2, small_params("atpg"))
    assert res.utilization is None


def test_atpg_is_cpu_bound():
    res = run_app(make_app("atpg"), "original", 2, 3, small_params("atpg"),
                  utilization=True)
    assert res.utilization.bottleneck() == "cpu"
    assert res.utilization.cpu_mean > 0.5


def test_ra_is_gateway_bound_on_wan():
    params = small_params("ra").with_(n_positions=2000)
    res = run_app(make_app("ra"), "original", 4, 2, params, utilization=True)
    assert res.utilization.bottleneck() == "gateway"


def test_format_utilization_mentions_bottleneck():
    rep = UtilizationReport(elapsed=1.0, cpu=[0.9, 0.8], gateway=[0.1],
                            wan={(0, 1): 0.05})
    text = format_utilization(rep)
    assert "cpu" in text and "90.0%" in text


def test_latency_bound_verdict():
    rep = UtilizationReport(elapsed=1.0, cpu=[0.1], gateway=[0.2],
                            wan={(0, 1): 0.1})
    assert rep.bottleneck() == "latency"


# ------------------------------------------------------------------- plot


def _point(clusters, cpus, speedup):
    res = AppResult(app="x", variant="original", n_clusters=clusters,
                    nodes_per_cluster=cpus // clusters, elapsed=1.0,
                    answer=None)
    return CurvePoint(clusters, cpus, 1.0, speedup, res)


def test_ascii_plot_renders_markers_and_axes():
    curves = {
        1: [_point(1, 15, 14.0), _point(1, 60, 50.0)],
        4: [_point(4, 60, 10.0)],
    }
    text = ascii_speedup_plot(curves, title="Test figure")
    assert "Test figure" in text
    assert "o" in text and "#" in text and "." in text
    assert "CPUs" in text
    # Higher speedups are drawn higher: find rows of the two "o" markers.
    rows_with_o = [i for i, line in enumerate(text.splitlines())
                   if "o" in line]
    assert rows_with_o[0] < rows_with_o[-1]


def test_ascii_plot_from_real_curve():
    curves = speedup_curve(make_app("atpg"), "original",
                           small_params("atpg"), cluster_counts=(1,),
                           cpu_counts=(2, 4))
    text = ascii_speedup_plot(curves)
    assert text.count("o") >= 2


def test_ascii_plot_clamps_out_of_range():
    curves = {1: [_point(1, 120, 200.0)]}  # beyond both axes
    text = ascii_speedup_plot(curves)
    assert "o" in text  # clamped into the grid, not crashed
