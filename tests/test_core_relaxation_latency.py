"""Unit tests for relaxation policies and split-phase exchange."""

import pytest
from hypothesis import given, strategies as st

from repro.core import ChaoticExchange, FullExchange, SplitPhaseExchange
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import OrcaRuntime
from repro.sim import Simulator


# ------------------------------------------------------------- relaxation


def test_full_exchange_always_exchanges():
    pol = FullExchange()
    assert all(pol.should_exchange(i, inter) for i in range(10)
               for inter in (True, False))


def test_chaotic_drops_two_of_three_intercluster():
    pol = ChaoticExchange(keep_one_in=3)
    kept = [i for i in range(12) if pol.should_exchange(i, intercluster=True)]
    assert kept == [0, 3, 6, 9]
    assert pol.drop_fraction == pytest.approx(2 / 3)


def test_chaotic_never_drops_intracluster():
    pol = ChaoticExchange(keep_one_in=3)
    assert all(pol.should_exchange(i, intercluster=False) for i in range(30))


def test_chaotic_keep_one_in_one_is_full():
    pol = ChaoticExchange(keep_one_in=1)
    assert all(pol.should_exchange(i, True) for i in range(10))
    assert pol.drop_fraction == 0.0


def test_chaotic_invalid():
    with pytest.raises(ValueError):
        ChaoticExchange(keep_one_in=0)


@given(st.integers(1, 10), st.integers(0, 1000))
def test_chaotic_keep_rate_property(k, i):
    pol = ChaoticExchange(keep_one_in=k)
    kept = sum(pol.should_exchange(j, True) for j in range(i, i + k))
    assert kept == 1  # exactly one exchange per window of k iterations


# ------------------------------------------------------------ split-phase


def test_split_phase_overlaps_compute_with_wan():
    """Blocking send+recv pays WAN latency on the critical path; the
    split-phase version hides it behind compute."""

    def run(split):
        sim = Simulator()
        fabric = Fabric(sim, uniform_clusters(2, 2), DAS_PARAMS)
        rts = OrcaRuntime(sim, fabric)
        compute = 2e-3  # comparable to one WAN crossing

        def peer(me, other):
            ctx = rts.context(me)
            xch = SplitPhaseExchange(ctx, tag="t")
            if split:
                yield from xch.post_send(other, 100, payload=me)
                yield from ctx.compute(compute)
                yield from xch.collect(expected=1)
            else:
                yield from xch.post_send(other, 100, payload=me)
                yield from xch.collect(expected=1)
                yield from ctx.compute(compute)
            return sim.now

        a = sim.spawn(peer(0, 2))
        b = sim.spawn(peer(2, 0))
        sim.run()
        return max(a.value, b.value)

    t_blocking = run(split=False)
    t_split = run(split=True)
    assert t_split < t_blocking
    # Near-perfect overlap: total ~ max(compute, wan), not sum.
    assert t_split < 0.75 * t_blocking


def test_split_phase_collect_by_key():
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(1, 3), DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)

    def sender(me, key):
        ctx = rts.context(me)
        xch = SplitPhaseExchange(ctx, tag="kv")
        yield from xch.post_send(0, 10, payload=(key, me * 10))

    def receiver():
        ctx = rts.context(0)
        xch = SplitPhaseExchange(ctx, tag="kv")
        out = yield from xch.collect_by_key(expected=2)
        return out

    sim.spawn(sender(1, "a"))
    sim.spawn(sender(2, "b"))
    p = sim.spawn(receiver())
    sim.run()
    assert p.value == {"a": 10, "b": 20}


def test_split_phase_counts_posted():
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(1, 2), DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)

    def proc():
        ctx = rts.context(0)
        xch = SplitPhaseExchange(ctx, tag="n")
        yield from xch.post_send(1, 5)
        yield from xch.post_send(1, 5)
        return xch.posted

    assert sim.run_process(proc()) == 2
