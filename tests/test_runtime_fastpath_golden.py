"""Golden equivalence: the Orca control-plane fast tier vs its legacy.

PR "event-minimizing message path" pinned the *fabric* fast paths to
their process-per-leg legacy.  This suite pins the layer above: the
callback-chained broadcast delivery (armed ports + holdback drain),
sequencer ``try_acquire`` analytic stamps, chained dissemination, and
the chained RPC service in :class:`repro.orca.OrcaRuntime` must be
bit-identical to the generator/process tier — same answers, same
elapsed virtual time, same traffic counters, and the same trace
records in the same order.

Isolation: both runs here use the *fast* fabric; only
``runtime_fast_paths`` toggles.  (The full fast stack vs the full
legacy stack is covered by ``test_fabric_fastpath_golden``, whose
``fast_paths=`` toggle now spans both layers.)

Also here:

* hypothesis property tests driving :class:`TotalOrderBroadcast`
  holdback delivery directly under adversarial arrival orders;
* assertions on the new ``Simulator.stats()`` counters (``spawns``,
  ``fast_completions``, ``fallbacks``) across the three tiers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import PAPER_ORDER, make_app, small_params
from repro.harness.experiment import run_app
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.network.message import Message, reset_ids
from repro.orca import OrcaRuntime
from repro.orca.broadcast import BCAST_PORT, TotalOrderBroadcast
from repro.orca.sequencer import CentralizedSequencer
from repro.sim import Simulator, Tracer

TOPOLOGIES = [(1, 4), (2, 3), (4, 2)]

#: The intended host-side difference: the fast tier replaces the per-node
#: dispatcher/server processes (and the fabric's per-leg processes).
PROCESS_KINDS = {"proc.spawn", "proc.finish"}


def _eq(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(a, b)
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_eq(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    return a == b


def _traced_run(app_name, runtime_fast, n_clusters, nodes_per_cluster):
    app = make_app(app_name)
    tracer = Tracer()
    result = run_app(app, app.variants[0], n_clusters, nodes_per_cluster,
                     small_params(app_name), trace=True, tracer=tracer,
                     fast_paths=True, runtime_fast_paths=runtime_fast)
    records = [(r.time, r.kind, tuple(sorted(r.detail.items())))
               for r in tracer.records if r.kind not in PROCESS_KINDS]
    return result, records


@pytest.mark.parametrize("app_name", PAPER_ORDER)
def test_runtime_fast_tier_bit_identical(app_name):
    touched = 0
    for n_clusters, nodes in TOPOLOGIES:
        fast, fast_recs = _traced_run(app_name, True, n_clusters, nodes)
        legacy, legacy_recs = _traced_run(app_name, False, n_clusters, nodes)
        label = f"{app_name} {n_clusters}x{nodes}"
        assert _eq(fast.answer, legacy.answer), label
        assert fast.elapsed == legacy.elapsed, label
        assert fast.traffic == legacy.traffic, label
        assert fast_recs == legacy_recs, label
        # The tiers differ exactly where intended: the fast run runs no
        # dispatcher/server processes, so it spawns strictly fewer.
        assert fast.sim_stats["spawns"] < legacy.sim_stats["spawns"], label
        touched += (fast.sim_stats["fast_completions"]
                    + fast.sim_stats["fallbacks"])
    # Every app exercises the fast-path sites somewhere in the sweep
    # (lockstep apps may see only busy instants — all fallbacks — on a
    # given topology, but never zero activity overall).
    assert touched > 0, app_name


def test_stats_counters_across_tiers():
    app, params = make_app("tsp"), small_params("tsp")
    fast = run_app(app, "original", 2, 2, params)
    mixed = run_app(app, "original", 2, 2, params, runtime_fast_paths=False)
    legacy = run_app(app, "original", 2, 2, params, fast_paths=False)
    assert _eq(fast.answer, legacy.answer)
    assert fast.elapsed == mixed.elapsed == legacy.elapsed
    # Host-side effort is strictly ordered: all-fast < fabric-fast-only
    # < all-legacy, both in processes spawned and events dispatched.
    assert (fast.sim_stats["spawns"] < mixed.sim_stats["spawns"]
            < legacy.sim_stats["spawns"])
    assert (fast.sim_stats["events_processed"]
            < mixed.sim_stats["events_processed"]
            < legacy.sim_stats["events_processed"])
    # The legacy tier never completes anything inline...
    assert legacy.sim_stats["fast_completions"] == 0
    assert legacy.sim_stats["fallbacks"] == 0
    # ...while the fast tiers do, deferring only at contended instants.
    assert fast.sim_stats["fast_completions"] > 0
    assert fast.sim_stats["spawns"] == fast.sim_stats["processes_spawned"]


def test_runtime_fast_requires_fast_fabric():
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(1, 2), DAS_PARAMS,
                    fast_paths=False)
    with pytest.raises(ValueError, match="fast_paths"):
        OrcaRuntime(sim, fabric, fast_paths=True)


# --------------------------------------------------------------------------
# Holdback delivery under adversarial arrival orders.
#
# Drives TotalOrderBroadcast directly: stamped payloads are deposited
# into a node's broadcast port in a hypothesis-chosen permutation at
# hypothesis-chosen (possibly colliding) instants.  Fast and legacy
# delivery must apply them in identical sequence order at identical
# virtual times.

_APPLY_COST = 1e-5


class _Recorder:
    """A minimal runtime stand-in: both apply tiers charge the same CPU
    cost and log (node, seq, time)."""

    def __init__(self, sim, fabric):
        self.sim = sim
        self.fabric = fabric
        self.log = []

    def apply_fn(self, node, payload):
        yield self.fabric.nodes[node].cpu.execute_ev(_APPLY_COST)
        self.log.append((node, payload.seq, self.sim.now))
        return payload.seq

    def apply_fast(self, node, payload, k):
        def _charged(_ev):
            self.log.append((node, payload.seq, self.sim.now))
            k(payload.seq)
        self.fabric.nodes[node].cpu.execute_ev(
            _APPLY_COST).callbacks.append(_charged)


def _drive_holdback(fast, order, delays):
    reset_ids()
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(1, 2), DAS_PARAMS,
                    fast_paths=True)
    rec = _Recorder(sim, fabric)
    protocol = CentralizedSequencer(sim, 1, 0.0)
    tob = TotalOrderBroadcast(
        sim, fabric, protocol, rec.apply_fn, fast_paths=fast,
        apply_fast=rec.apply_fast if fast else None)
    port = fabric.nodes[0].port(BCAST_PORT)
    from repro.orca.broadcast import BcastPayload
    for seq, delay in zip(order, delays):
        payload = BcastPayload(seq=seq, obj_name="o", op_name="w",
                               args=(), sender=1)
        msg = Message(src=1, dst=0, size=64, payload=payload,
                      port=BCAST_PORT, kind="bcast")
        sim.after(delay, lambda _ev, m=msg: port.put(m))
    sim.run()
    return rec.log, tob.applied_sequence(0)


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 7).flatmap(
    lambda n: st.tuples(
        st.permutations(list(range(n))),
        st.lists(st.integers(0, 4).map(lambda d: d * 0.25),
                 min_size=n, max_size=n))))
def test_holdback_delivery_matches_legacy(order_delays):
    order, delays = order_delays
    fast_log, fast_seq = _drive_holdback(True, order, delays)
    legacy_log, legacy_seq = _drive_holdback(False, order, delays)
    n = len(order)
    # Total order restored, exactly once per payload, in both tiers.
    assert fast_seq == legacy_seq == list(range(n))
    # Same applies at the same virtual times, in the same order.
    assert fast_log == legacy_log


@settings(max_examples=30, deadline=None)
@given(st.permutations(list(range(5))))
def test_holdback_same_instant_burst(order):
    """All arrivals in one instant: the drain loop applies the whole
    run in one go once the gap closes, identically in both tiers."""
    delays = [0.0] * len(order)
    fast_log, fast_seq = _drive_holdback(True, order, delays)
    legacy_log, legacy_seq = _drive_holdback(False, order, delays)
    assert fast_seq == legacy_seq == list(range(len(order)))
    assert fast_log == legacy_log
