"""Unit tests for the network fabric: paths, costs, ordering, accounting."""

import pytest

from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.sim import Simulator


def make_fabric(n_clusters=2, nodes_per_cluster=4, params=DAS_PARAMS):
    sim = Simulator()
    topo = uniform_clusters(n_clusters, nodes_per_cluster)
    return sim, Fabric(sim, topo, params)


def roundtrip(fab, a, b, size):
    """Null-RPC-style ping-pong; returns round-trip virtual time."""
    sim = fab.sim

    def server():
        msg = yield fab.nodes[b].port("rpc").get()
        yield from fab.send(b, msg.src, size, port="reply")

    def client():
        t0 = sim.now
        yield from fab.send(a, b, size, port="rpc")
        yield fab.nodes[a].port("reply").get()
        return sim.now - t0

    sim.spawn(server())
    return sim.run_process(client())


def test_lan_null_rpc_latency_about_40us():
    sim, fab = make_fabric()
    rt = roundtrip(fab, 0, 1, 0)
    assert rt == pytest.approx(40e-6, rel=0.15)


def test_wan_null_rpc_latency_about_2_7ms():
    sim, fab = make_fabric()
    rt = roundtrip(fab, 0, 4, 0)  # node 4 is in cluster 1
    assert rt == pytest.approx(2.7e-3, rel=0.1)


def test_wan_latency_dominates_lan_by_two_orders():
    _, fab1 = make_fabric()
    lan = roundtrip(fab1, 0, 1, 0)
    _, fab2 = make_fabric()
    wan = roundtrip(fab2, 0, 4, 0)
    assert wan / lan > 50


def test_lan_bandwidth_large_messages():
    # Stream 10 x 100 KB messages one-way; throughput ~ 208 Mbit/s.
    sim, fab = make_fabric()
    n, size = 10, 100 * 1024

    def sender():
        for _ in range(n):
            yield from fab.send(0, 1, size, port="data")

    def receiver():
        t0 = sim.now
        for _ in range(n):
            yield fab.nodes[1].port("data").get()
        return sim.now - t0

    sim.spawn(sender())
    elapsed = sim.run_process(receiver())
    mbit_s = n * size * 8 / elapsed / 1e6
    assert mbit_s == pytest.approx(208.0, rel=0.2)


def test_wan_bandwidth_large_messages():
    sim, fab = make_fabric()
    n, size = 5, 100 * 1024

    def sender():
        for _ in range(n):
            yield from fab.send(0, 4, size, port="data")

    def receiver():
        for _ in range(n):
            yield fab.nodes[4].port("data").get()
        return sim.now

    sim.spawn(sender())
    elapsed = sim.run_process(receiver())
    mbit_s = n * size * 8 / elapsed / 1e6
    assert mbit_s == pytest.approx(4.53, rel=0.15)


def test_same_pair_messages_arrive_in_order():
    sim, fab = make_fabric()
    seen = []

    def sender():
        for i in range(20):
            yield from fab.send(0, 1, 100 * (i % 3), payload=i, port="seq")

    def receiver():
        for _ in range(20):
            msg = yield fab.nodes[1].port("seq").get()
            seen.append(msg.payload)

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert seen == list(range(20))


def test_self_send_is_fast_and_delivered():
    sim, fab = make_fabric()

    def proc():
        yield from fab.send(2, 2, 64, payload="loop", port="self")
        msg = yield fab.nodes[2].port("self").get()
        return (msg.payload, sim.now)

    payload, t = sim.run_process(proc())
    assert payload == "loop"
    assert t < 1e-4


def test_multicast_local_reaches_whole_cluster():
    sim, fab = make_fabric(n_clusters=2, nodes_per_cluster=4)
    got = []

    def listener(nid):
        msg = yield fab.nodes[nid].port("mc").get()
        got.append((nid, msg.payload))

    for nid in range(4):
        sim.spawn(listener(nid))

    def sender():
        done = yield from fab.multicast_local(0, 1024, payload="bc", port="mc")
        yield done

    sim.run_process(sender())
    assert sorted(got) == [(i, "bc") for i in range(4)]


def test_multicast_exclude_self():
    sim, fab = make_fabric(n_clusters=1, nodes_per_cluster=3)

    def sender():
        done = yield from fab.multicast_local(0, 10, port="mc",
                                              include_self=False)
        n = yield done
        return n

    assert sim.run_process(sender()) == 2
    assert len(fab.nodes[0].port("mc")) == 0


def test_gateway_multicast_reaches_remote_cluster_only():
    sim, fab = make_fabric(n_clusters=2, nodes_per_cluster=3)

    def sender():
        done = yield from fab.gateway_multicast(0, 1, 256, payload="x",
                                                port="mc")
        n = yield done
        return n

    n = sim.run_process(sender())
    assert n == 3
    for nid in range(3, 6):
        assert len(fab.nodes[nid].port("mc")) == 1
    for nid in range(0, 3):
        assert len(fab.nodes[nid].port("mc")) == 0


def test_gateway_multicast_same_cluster_rejected():
    sim, fab = make_fabric()

    def sender():
        yield from fab.gateway_multicast(0, 0, 10)

    with pytest.raises(ValueError):
        sim.run_process(sender())


def test_wan_byte_accounting():
    sim, fab = make_fabric()

    def proc():
        yield from fab.send_and_wait(0, 4, 1000, port="d")
        yield from fab.send_and_wait(0, 1, 5000, port="d")  # LAN: not counted

    sim.run_process(proc())
    assert fab.meter.wan_messages == 1
    assert fab.meter.wan_bytes == 1000


def test_wan_link_is_shared_and_serializes():
    # Two concurrent senders from cluster 0 to cluster 1 share one PVC:
    # total time for 2 big messages ~ 2 * size/bw, not size/bw.
    sim, fab = make_fabric(n_clusters=2, nodes_per_cluster=4)
    size = 250 * 1024  # ~0.45 s each on 4.53 Mbit/s

    def sender(src, dst):
        yield from fab.send(src, dst, size, port="d")

    def receiver():
        yield fab.nodes[4].port("d").get()
        yield fab.nodes[5].port("d").get()
        return sim.now

    sim.spawn(sender(0, 4))
    sim.spawn(sender(1, 5))
    elapsed = sim.run_process(receiver())
    one_tx = size / (4.53e6 / 8)
    assert elapsed > 1.9 * one_tx  # serialized, not parallel


def test_negative_size_rejected():
    sim, fab = make_fabric()

    def proc():
        yield from fab.send(0, 1, -5)

    with pytest.raises(ValueError):
        sim.run_process(proc())
