"""Tests for the ATPG application."""

import numpy as np
import pytest

from repro.apps.atpg import ATPGApp, ATPGParams
from repro.apps.atpg import circuit as cmod
from repro.harness import run_app
from repro.network import SLOW_WAN_PARAMS


# ----------------------------------------------------------------- domain


def test_circuit_topological_and_deterministic():
    p = ATPGParams.small()
    c1 = cmod.build_circuit(p)
    c2 = cmod.build_circuit(p)
    assert c1.gates == c2.gates
    for g, (op, a, b) in enumerate(c1.gates):
        assert a < p.n_inputs + g and b < p.n_inputs + g


def test_circuit_evaluation_basic_ops():
    c = cmod.Circuit(2, [("AND", 0, 1), ("OR", 0, 1), ("XOR", 0, 1),
                         ("NOT", 0, 0), ("OR", 2, 5)])
    # Output = (a AND b) OR (NOT a)
    assert c.evaluate(np.array([1, 1], dtype=np.int8)) == 1
    assert c.evaluate(np.array([1, 0], dtype=np.int8)) == 0
    assert c.evaluate(np.array([0, 1], dtype=np.int8)) == 1


def test_fault_injection_changes_output():
    c = cmod.Circuit(2, [("AND", 0, 1)])
    vec = np.array([1, 1], dtype=np.int8)
    assert c.evaluate(vec) == 1
    assert c.evaluate(vec, fault=(0, 0)) == 0


def test_generate_for_gate_detects_faults():
    p = ATPGParams.small(n_gates=40)
    c = cmod.build_circuit(p)
    total = sum(cmod.generate_for_gate(c, g, p)[1] for g in range(40))
    assert total > 10  # a healthy fraction of faults is detectable


def test_synthetic_effort_deterministic():
    p = ATPGParams.paper()
    a = [cmod.synthetic_gate_effort(p, g) for g in range(30)]
    b = [cmod.synthetic_gate_effort(p, g) for g in range(30)]
    assert a == b
    assert all(t >= 1 for _, _, t in a)


# ------------------------------------------------------------ application


@pytest.mark.parametrize("variant", ["original", "optimized"])
@pytest.mark.parametrize("shape", [(1, 1), (2, 3), (4, 2)])
def test_atpg_totals_match_reference(variant, shape):
    params = ATPGParams.small(n_gates=60)
    ref = cmod.sequential_reference(params)
    res = run_app(ATPGApp(), variant, shape[0], shape[1], params)
    assert res.answer == ref


def test_atpg_variants_agree_synthetic():
    params = ATPGParams.paper().with_(n_gates=120)
    a = run_app(ATPGApp(), "original", 2, 4, params)
    b = run_app(ATPGApp(), "optimized", 2, 4, params)
    assert a.answer == b.answer


def test_atpg_optimized_single_intercluster_rpc_per_cluster():
    params = ATPGParams.paper().with_(n_gates=120)
    res = run_app(ATPGApp(), "optimized", 4, 4, params)
    # cluster_reduce: one combined RPC from each non-root cluster.
    assert res.traffic["inter.rpc"]["count"] == 3


def test_atpg_original_many_intercluster_rpcs():
    params = ATPGParams.paper().with_(n_gates=120)
    res = run_app(ATPGApp(), "original", 4, 4, params)
    assert res.traffic["inter.rpc"]["count"] > 50


def test_atpg_das_settings_optimization_insignificant():
    """Paper: at DAS bandwidth/latency the optimization hardly helps."""
    params = ATPGParams.paper().with_(n_gates=240)
    orig = run_app(ATPGApp(), "original", 4, 4, params)
    opt = run_app(ATPGApp(), "optimized", 4, 4, params)
    assert opt.elapsed < orig.elapsed * 1.02
    assert opt.elapsed > orig.elapsed * 0.7  # helps, but not dramatically


def test_atpg_slow_wan_optimization_significant():
    """Paper: on a 10 ms / 2 Mbit/s network the original degrades badly."""
    params = ATPGParams.paper().with_(n_gates=240)
    orig = run_app(ATPGApp(), "original", 4, 4, params,
                   network=SLOW_WAN_PARAMS)
    opt = run_app(ATPGApp(), "optimized", 4, 4, params,
                  network=SLOW_WAN_PARAMS)
    assert opt.elapsed < orig.elapsed * 0.9
