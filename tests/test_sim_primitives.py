"""Unit tests for channels, resources, CPUs, and barriers."""

import pytest

from repro.sim import Barrier, Channel, CPU, Resource, SimulationError, Simulator


# ---------------------------------------------------------------- Channel


def test_channel_put_then_get():
    sim = Simulator()
    ch = Channel(sim)
    ch.put("x")

    def proc():
        v = yield ch.get()
        return v

    assert sim.run_process(proc()) == "x"


def test_channel_get_blocks_until_put():
    sim = Simulator()
    ch = Channel(sim)

    def getter():
        v = yield ch.get()
        return (sim.now, v)

    def putter():
        yield sim.timeout(3.0)
        ch.put("late")

    p = sim.spawn(getter())
    sim.spawn(putter())
    sim.run()
    t, v = p.value
    assert t == pytest.approx(3.0)
    assert v == "late"


def test_channel_fifo_order():
    sim = Simulator()
    ch = Channel(sim)
    for i in range(5):
        ch.put(i)

    def proc():
        out = []
        for _ in range(5):
            out.append((yield ch.get()))
        return out

    assert sim.run_process(proc()) == [0, 1, 2, 3, 4]


def test_channel_getters_served_fifo():
    sim = Simulator()
    ch = Channel(sim)
    got = {}

    def getter(name):
        got[name] = yield ch.get()

    sim.spawn(getter("first"))
    sim.spawn(getter("second"))

    def putter():
        yield sim.timeout(1.0)
        ch.put("a")
        ch.put("b")

    sim.spawn(putter())
    sim.run()
    assert got == {"first": "a", "second": "b"}


def test_channel_try_get():
    sim = Simulator()
    ch = Channel(sim)
    assert ch.try_get() is None
    ch.put(7)
    assert ch.try_get() == 7
    assert len(ch) == 0


# ---------------------------------------------------------------- Resource


def test_resource_serializes_users():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    times = []

    def user(name):
        yield res.request()
        yield sim.timeout(2.0)
        times.append((name, sim.now))
        res.release()

    for i in range(3):
        sim.spawn(user(i))
    sim.run()
    assert times == [(0, pytest.approx(2.0)), (1, pytest.approx(4.0)),
                     (2, pytest.approx(6.0))]


def test_resource_capacity_two_runs_pairs():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def user(name):
        yield res.request()
        yield sim.timeout(1.0)
        done.append((name, sim.now))
        res.release()

    for i in range(4):
        sim.spawn(user(i))
    sim.run()
    assert [t for _, t in done] == [pytest.approx(1.0), pytest.approx(1.0),
                                    pytest.approx(2.0), pytest.approx(2.0)]


def test_resource_release_idle_rejected():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_bad_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_busy_time_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user():
        yield res.request()
        yield sim.timeout(5.0)
        res.release()
        yield sim.timeout(5.0)

    sim.run_process(user())
    assert res.busy_time() == pytest.approx(5.0)
    assert sim.now == pytest.approx(10.0)


# ---------------------------------------------------------------- CPU


def test_cpu_execute_charges_time():
    sim = Simulator()
    cpu = CPU(sim)

    def proc():
        yield sim.spawn(cpu.execute(1.25))
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(1.25)


def test_cpu_execute_serializes():
    sim = Simulator()
    cpu = CPU(sim)
    ends = []

    def proc(i):
        yield sim.spawn(cpu.execute(1.0))
        ends.append(sim.now)

    for i in range(3):
        sim.spawn(proc(i))
    sim.run()
    assert ends == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


def test_cpu_negative_time_rejected():
    sim = Simulator()
    cpu = CPU(sim)

    def proc():
        yield sim.spawn(cpu.execute(-0.1))

    with pytest.raises(SimulationError):
        sim.run_process(proc())


# ---------------------------------------------------------------- Barrier


def test_barrier_releases_all_at_last_arrival():
    sim = Simulator()
    bar = Barrier(sim, parties=3)
    release_times = []

    def party(i):
        yield sim.timeout(float(i))
        yield bar.wait()
        release_times.append(sim.now)

    for i in range(3):
        sim.spawn(party(i))
    sim.run()
    assert release_times == [pytest.approx(2.0)] * 3


def test_barrier_is_reusable():
    sim = Simulator()
    bar = Barrier(sim, parties=2)
    log = []

    def party(name, delays):
        for d in delays:
            yield sim.timeout(d)
            yield bar.wait()
            log.append((name, sim.now))

    sim.spawn(party("a", [1.0, 1.0]))
    sim.spawn(party("b", [2.0, 3.0]))
    sim.run()
    times = sorted(t for _, t in log)
    assert times == [pytest.approx(2.0), pytest.approx(2.0),
                     pytest.approx(5.0), pytest.approx(5.0)]
    assert bar.generation == 2


def test_barrier_single_party_never_blocks():
    sim = Simulator()
    bar = Barrier(sim, parties=1)

    def proc():
        yield bar.wait()
        yield bar.wait()
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_barrier_bad_parties_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Barrier(sim, parties=0)
