"""Unit tests for the cluster-level cache (Water's optimization)."""

import pytest

from repro.core import ClusterCache
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import OrcaRuntime
from repro.sim import Simulator


def make(n_clusters=2, nodes_per_cluster=4):
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(n_clusters, nodes_per_cluster),
                    DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)
    cache = ClusterCache(rts, reduce_fn=lambda a, b: a + b)
    # Every node provides "block of node n at epoch e" = n * 1000 + e.
    for nid in range(fabric.topo.n_nodes):
        cache.register_provider(
            nid, lambda e, nid=nid: (nid * 1000 + e, 256))
    return sim, rts, cache


def test_same_cluster_fetch_goes_direct():
    sim, rts, cache = make()

    def proc():
        ctx = rts.context(1)
        val = yield from cache.fetch(ctx, owner=2, epoch=0)
        return val

    assert sim.run_process(proc()) == 2000
    assert cache.wan_fetches == 0
    assert rts.meter.wan_messages == 0


def test_remote_fetch_crosses_wan_once():
    sim, rts, cache = make()

    def proc():
        ctx = rts.context(0)
        val = yield from cache.fetch(ctx, owner=5, epoch=3)
        return val

    assert sim.run_process(proc()) == 5003
    assert cache.wan_fetches == 1


def test_second_reader_hits_cache_no_second_wan_fetch():
    sim, rts, cache = make()
    owner = 5
    coord = cache.coordinator_for(0, owner)
    vals = []

    def reader(nid, delay):
        ctx = rts.context(nid)
        yield from ctx.sleep(delay)
        val = yield from cache.fetch(ctx, owner=owner, epoch=0)
        vals.append(val)

    # Two readers in cluster 0 (neither is the coordinator necessarily).
    readers = [nid for nid in range(4) if nid != coord][:2]
    sim.spawn(reader(readers[0], 0.0))
    sim.spawn(reader(readers[1], 0.05))  # well after the first completes
    sim.run()
    assert vals == [5000, 5000]
    assert cache.wan_fetches == 1
    assert cache.cache_hits == 1


def test_concurrent_readers_share_one_inflight_fetch():
    sim, rts, cache = make(n_clusters=2, nodes_per_cluster=4)
    owner = 6
    vals = []

    def reader(nid):
        ctx = rts.context(nid)
        val = yield from cache.fetch(ctx, owner=owner, epoch=1)
        vals.append(val)

    for nid in range(4):  # all of cluster 0, simultaneously
        sim.spawn(reader(nid))
    sim.run()
    assert vals == [6001] * 4
    assert cache.wan_fetches == 1


def test_epochs_are_not_conflated():
    sim, rts, cache = make()

    def proc():
        ctx = rts.context(0)
        v0 = yield from cache.fetch(ctx, owner=5, epoch=0)
        v1 = yield from cache.fetch(ctx, owner=5, epoch=1)
        return (v0, v1)

    v0, v1 = sim.run_process(proc())
    assert (v0, v1) == (5000, 5001)
    assert cache.wan_fetches == 2  # new epoch -> fresh fetch


def test_coordinator_itself_can_fetch_inline():
    sim, rts, cache = make()
    owner = 4
    coord = cache.coordinator_for(0, owner)

    def proc():
        ctx = rts.context(coord)
        val = yield from cache.fetch(ctx, owner=owner, epoch=2)
        return val

    assert sim.run_process(proc()) == 4002
    assert cache.wan_fetches == 1


def test_write_combined_reduces_before_wan():
    sim, rts, cache = make()
    updates = []
    cache.register_consumer(5, lambda e, v: updates.append((e, v)))

    def writer(nid, value):
        ctx = rts.context(nid)
        yield from cache.write_combined(ctx, dest=5, epoch=0, value=value,
                                        size=64, expected=4)

    wan_before = None
    for nid, val in zip(range(4), [1, 2, 3, 4]):
        sim.spawn(writer(nid, val))
    sim.run()
    assert updates == [(0, 10)]  # combined sum arrived once
    # Exactly one WAN message carried the combined update.
    assert rts.meter.wan_messages == 1


def test_write_same_cluster_goes_direct():
    sim, rts, cache = make()
    updates = []
    cache.register_consumer(2, lambda e, v: updates.append((e, v)))

    def writer():
        ctx = rts.context(1)
        yield from cache.write_combined(ctx, dest=2, epoch=7, value=42,
                                        size=8, expected=1)

    sim.spawn(writer())
    sim.run()
    assert updates == [(7, 42)]
    assert rts.meter.wan_messages == 0


def test_missing_provider_raises():
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(2, 2), DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)
    cache = ClusterCache(rts, reduce_fn=lambda a, b: a + b)

    def proc():
        ctx = rts.context(0)
        yield from cache.fetch(ctx, owner=1, epoch=0)

    with pytest.raises(Exception):
        sim.run_process(proc())
        sim.run()
