"""Tests for the TSP application."""

import numpy as np
import pytest

from repro.apps.tsp import TSPApp, TSPParams
from repro.apps.tsp import problem
from repro.harness import run_app


# ----------------------------------------------------------------- domain


def test_distance_matrix_symmetric_positive():
    d = problem.distance_matrix(TSPParams.small())
    assert (d == d.T).all()
    assert (np.diag(d) == 0).all()
    off = d[~np.eye(d.shape[0], dtype=bool)]
    assert (off >= 1).all() and (off <= 100).all()


def test_generate_jobs_counts():
    p = TSPParams(n_cities=6, job_depth=2)
    jobs = problem.generate_jobs(p)
    assert len(jobs) == 5 * 4
    assert all(j[0] == 0 and len(j) == 3 for j in jobs)
    assert len(set(jobs)) == len(jobs)


def test_optimal_tour_matches_bruteforce():
    from itertools import permutations
    p = TSPParams.small(n_cities=7)
    d = problem.distance_matrix(p)
    best = min(
        sum(d[t[i], t[i + 1]] for i in range(6)) + d[t[6], t[0]]
        for t in ((0,) + perm for perm in permutations(range(1, 7))))
    opt_len, opt_tour = problem.optimal_tour(d)
    assert opt_len == best
    assert sorted(opt_tour) == list(range(7))


def test_search_job_recovers_optimum_with_fixed_bound():
    p = TSPParams.small(n_cities=8)
    d = problem.distance_matrix(p)
    opt_len, _ = problem.optimal_tour(d)
    best = None
    for job in problem.generate_jobs(p.with_(n_cities=8)):
        length, tour, nodes = problem.search_job(d, job, opt_len)
        assert nodes >= 1
        if tour is not None:
            best = length if best is None else min(best, length)
    assert best == opt_len


def test_synthetic_job_nodes_deterministic_and_positive():
    p = TSPParams.paper()
    jobs = problem.generate_jobs(p)[:50]
    a = [problem.synthetic_job_nodes(p, j) for j in jobs]
    b = [problem.synthetic_job_nodes(p, j) for j in jobs]
    assert a == b
    assert all(n >= 1 for n in a)
    assert len(set(a)) > 10  # genuinely variable


# ------------------------------------------------------------ application


@pytest.mark.parametrize("variant", ["original", "optimized"])
@pytest.mark.parametrize("shape", [(1, 1), (1, 4), (2, 3), (4, 2)])
def test_tsp_finds_optimal_tour(variant, shape):
    params = TSPParams.small(n_cities=8)
    d = problem.distance_matrix(params)
    opt_len, _ = problem.optimal_tour(d)
    res = run_app(TSPApp(), variant, shape[0], shape[1], params)
    assert res.answer is not None
    assert res.answer[0] == opt_len


def test_tsp_all_jobs_processed():
    params = TSPParams.small(n_cities=8)
    res = run_app(TSPApp(), "original", 2, 2, params)
    expected_jobs = len(problem.generate_jobs(params))
    assert res.stats["jobs"] == expected_jobs


def test_tsp_optimized_reduces_intercluster_rpcs():
    params = TSPParams.paper().with_(n_cities=10, job_depth=2)
    orig = run_app(TSPApp(), "original", 4, 4, params)
    opt = run_app(TSPApp(), "optimized", 4, 4, params)
    oc = orig.traffic["inter.rpc"]["count"]
    nc = opt.traffic["inter.rpc"]["count"]
    # Paper: 12,221 -> 111; at this small job count the master's chunked
    # job shipments dominate the optimized count, so the ratio is smaller.
    assert nc < oc / 5


def test_tsp_optimized_faster_on_four_clusters():
    params = TSPParams.paper().with_(n_cities=10, job_depth=2)
    orig = run_app(TSPApp(), "original", 4, 4, params)
    opt = run_app(TSPApp(), "optimized", 4, 4, params)
    assert opt.elapsed < orig.elapsed


def test_tsp_workload_identical_across_variants():
    params = TSPParams.paper().with_(n_cities=9, job_depth=2)
    a = run_app(TSPApp(), "original", 2, 3, params)
    b = run_app(TSPApp(), "optimized", 2, 3, params)
    assert a.stats["nodes_expanded"] == b.stats["nodes_expanded"]
