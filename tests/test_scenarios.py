"""Tests for the scenario engine: spec values, parsing, determinism,
the no-op guarantee, faults, heterogeneity, and analyzer support.

The heavyweight guarantees (docs/SCENARIOS.md):

- a default ``Scenario()`` is trace-record-identical to a plain run on
  both engine tiers;
- a given scenario (seed included) is bit-identical across repeats and
  across serial vs. pooled sweeps;
- impairments and faults act through the resource model, so they can
  only slow a run down, never corrupt its answer.
"""

import pytest

from repro.apps import make_app, small_params
from repro.harness import run_app
from repro.harness.sweeps import ParallelRunner, ResultCache, RunSpec
from repro.obs import FaultWindow, fault_windows, impairment_summary
from repro.scenario import (
    FAULTS,
    IMPAIRMENTS,
    ClusterTweak,
    Fault,
    Impairment,
    Scenario,
    parse_cluster_tweak,
    parse_fault,
    scenario_topology,
)
from repro.sim import Tracer


def _run(app="ra", variant="original", clusters=2, nodes=2, scenario=None,
         trace=False, tracer=None, fast_paths=True):
    return run_app(make_app(app), variant, clusters, nodes,
                   small_params(app), scenario=scenario, trace=trace,
                   tracer=tracer, fast_paths=fast_paths)


# ------------------------------------------------------------ spec values


def test_impairment_of_fills_defaults_and_validates():
    imp = Impairment.of("loss", p=0.02)
    assert imp.param("p") == 0.02
    assert imp.param("rto") == IMPAIRMENTS["loss"].defaults()["rto"]
    assert imp == Impairment.of("loss", p=0.02)  # defaults filled -> equal
    with pytest.raises(ValueError, match="unknown scenario model"):
        Impairment.of("gremlins")
    with pytest.raises(ValueError, match="no parameter"):
        Impairment.of("jitter", sigmaa=0.3)
    with pytest.raises(ValueError, match="fault model, not"):
        Impairment.of("gw_outage")


def test_fault_of_validates_times_and_model():
    flt = Fault.of("slow_node", at=1.0, duration=0.5, target="n3",
                   factor=0.1)
    assert flt.param("factor") == 0.1
    with pytest.raises(ValueError, match="impairment model, not"):
        Fault.of("jitter", at=0.0, duration=1.0)
    with pytest.raises(ValueError, match="onset"):
        Fault.of("gw_outage", at=-1.0, duration=1.0)
    with pytest.raises(ValueError, match="duration"):
        Fault.of("gw_outage", at=0.0, duration=0.0)


def test_scenario_rejects_duplicate_impairment_models():
    with pytest.raises(ValueError, match="duplicate"):
        Scenario(impairments=(Impairment.of("jitter", sigma=0.1),
                              Impairment.of("jitter", sigma=0.2)))


def test_scenario_is_noop_and_describe():
    assert Scenario().is_noop()
    assert Scenario(seed=7).is_noop()  # seed alone changes nothing
    assert Scenario(clusters=(ClusterTweak(0),)).is_noop()
    assert not Scenario(impairments=(Impairment.of("jitter"),)).is_noop()
    assert not Scenario(clusters=(ClusterTweak(0, cpu_speed=2.0),)).is_noop()
    text = Scenario(
        impairments=(Impairment.of("jitter", sigma=0.3),),
        faults=(Fault.of("gw_outage", at=2.0, duration=0.5, target="c1"),),
        clusters=(ClusterTweak(1, cpu_speed=0.5),)).describe()
    assert "jitter" in text and "gw_outage@2s+0.5s:c1" in text
    assert "c1[cpu=0.5]" in text
    assert Scenario().describe().endswith("no-op")


def test_scenario_is_hashable_and_picklable():
    import pickle
    scn = Scenario(seed=3, impairments=(Impairment.of("loss", p=0.05),),
                   faults=(Fault.of("link_flap", at=1.0, duration=0.2),))
    assert hash(scn) == hash(pickle.loads(pickle.dumps(scn)))
    assert pickle.loads(pickle.dumps(scn)) == scn


def test_registries_cover_expected_models():
    assert set(IMPAIRMENTS) == {"jitter", "loss", "bw_dip", "cross_traffic"}
    assert set(FAULTS) == {"gw_outage", "link_flap", "slow_node"}


# ---------------------------------------------------------------- parsing


def test_parse_fault_full_and_minimal():
    flt = parse_fault("slow_node@0.5s+1s:n3,factor=0.1")
    assert (flt.model, flt.at, flt.duration, flt.target) == \
        ("slow_node", 0.5, 1.0, "n3")
    assert flt.param("factor") == 0.1
    assert parse_fault("gw_outage@2.0s+0.5s").target == ""


@pytest.mark.parametrize("bad", [
    "gw_outage",                # no @
    "gremlin@1s+1s",            # unknown model
    "gw_outage@1s",             # no +DUR
    "gw_outage@xs+1s",          # bad number
    "slow_node@1s+1s:n0,factor",   # param without =
    "slow_node@1s+1s:n0,factor=x", # bad param value
])
def test_parse_fault_rejects(bad):
    with pytest.raises(ValueError):
        parse_fault(bad)


def test_parse_cluster_tweak():
    tw = parse_cluster_tweak("1:cpu=0.5,nodes=8,link=fast-ethernet")
    assert (tw.cluster, tw.cpu_speed, tw.n_nodes, tw.link) == \
        (1, 0.5, 8, "fast-ethernet")
    with pytest.raises(ValueError):
        parse_cluster_tweak("x:cpu=2")
    with pytest.raises(ValueError):
        parse_cluster_tweak("1:")
    with pytest.raises(ValueError):
        parse_cluster_tweak("1:speed=2")
    with pytest.raises(ValueError, match="unknown link class"):
        ClusterTweak(0, link="token-ring")


def test_scenario_topology_applies_tweaks():
    from repro.network import uniform_clusters
    base = uniform_clusters(2, 4)
    scn = Scenario(clusters=(ClusterTweak(1, cpu_speed=2.0, n_nodes=2),))
    topo = scenario_topology(scn, base)
    assert [c.n_nodes for c in topo.clusters] == [4, 2]
    assert topo.clusters[1].cpu_speed == 2.0
    with pytest.raises(ValueError):
        scenario_topology(Scenario(clusters=(ClusterTweak(5),)), base)
    # No tweaks: the very same topology object comes back.
    assert scenario_topology(Scenario(), base) is base


# ------------------------------------------------- no-op trace identity


def _records(fast_paths, scenario):
    tracer = Tracer()
    res = _run("tsp", clusters=2, nodes=2, scenario=scenario, trace=True,
               tracer=tracer, fast_paths=fast_paths)
    return res, list(tracer.records)


@pytest.mark.parametrize("fast_paths", [True, False])
def test_noop_scenario_is_trace_identical_to_plain_run(fast_paths):
    plain, plain_recs = _records(fast_paths, None)
    noop, noop_recs = _records(fast_paths, Scenario(seed=42))
    assert noop.elapsed == plain.elapsed
    assert noop.answer == plain.answer
    assert noop.traffic == plain.traffic
    assert noop_recs == plain_recs


# ------------------------------------------------------ seed determinism


def _impaired_scenario(seed=0):
    return Scenario(
        seed=seed,
        impairments=(Impairment.of("jitter", sigma=0.3),
                     Impairment.of("loss", p=0.05, rto=0.01),
                     Impairment.of("cross_traffic", load=0.5)),
        faults=(Fault.of("gw_outage", at=0.05, duration=0.05),))


def test_impaired_run_is_deterministic_per_seed():
    a = _run(scenario=_impaired_scenario())
    b = _run(scenario=_impaired_scenario())
    assert a.elapsed == b.elapsed
    assert a.answer == b.answer
    assert a.traffic == b.traffic
    c = _run(scenario=_impaired_scenario(seed=1))
    assert c.elapsed != a.elapsed  # a different seed really re-draws
    assert c.answer == a.answer   # ... but never changes the answer


def test_impaired_sweep_serial_matches_pool():
    specs = [RunSpec("ra", "original", 2, 2, small_params("ra"),
                     scenario=_impaired_scenario(seed=s))
             for s in range(3)]
    serial = ParallelRunner(jobs=1, cache=None).run(specs)
    pooled = ParallelRunner(jobs=2, cache=None).run(specs)
    for a, b in zip(serial, pooled):
        assert (a.elapsed, a.answer, a.traffic) == \
            (b.elapsed, b.answer, b.traffic)


def test_impairments_slow_the_run_down_not_the_answer():
    clean = _run()
    impaired = _run(scenario=_impaired_scenario())
    assert impaired.elapsed > clean.elapsed
    assert impaired.answer == clean.answer


# ----------------------------------------------------------------- faults


def test_gw_outage_delays_elapsed_and_traces_its_window():
    clean = _run("tsp", clusters=2, nodes=2)
    # The small TSP run lasts ~13 ms of virtual time; park the outage
    # window over most of it.
    scn = Scenario(faults=(
        Fault.of("gw_outage", at=0.001, duration=0.05, target="c0"),))
    tracer = Tracer(kinds={"scn.fault"})
    res = _run("tsp", clusters=2, nodes=2, scenario=scn, trace=True,
               tracer=tracer)
    assert res.elapsed > clean.elapsed
    assert res.answer == clean.answer
    windows = fault_windows(tracer.records)
    assert len(windows) == 1
    win = windows[0]
    assert isinstance(win, FaultWindow)
    assert (win.model, win.target) == ("gw_outage", "c0")
    # In-service forwards drain first, so the window starts at or after
    # the requested onset and lasts exactly the requested duration.
    assert win.t0 >= 0.001
    assert win.duration == pytest.approx(0.05)
    assert win.covers(win.t0 + 0.01) and not win.covers(win.t1 + 1.0)


def test_link_flap_and_slow_node_run_and_trace():
    scn = Scenario(faults=(
        Fault.of("link_flap", at=0.05, duration=0.1, target="c0-c1"),
        Fault.of("slow_node", at=0.0, duration=0.2, target="n1",
                 factor=0.5)))
    tracer = Tracer(kinds={"scn.fault"})
    res = _run(scenario=scn, trace=True, tracer=tracer)
    clean = _run()
    assert res.answer == clean.answer
    assert res.elapsed >= clean.elapsed
    assert [(w.model, w.target) for w in fault_windows(tracer.records)] == \
        [("slow_node", "n1"), ("link_flap", "c0-c1")]  # sorted by onset


def test_fault_target_validation():
    from repro.network import uniform_clusters
    from repro.scenario import install
    from repro.sim import Simulator
    from repro.network import DAS_PARAMS, Fabric
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(2, 2), DAS_PARAMS)
    bad = Scenario(faults=(
        Fault.of("gw_outage", at=0.0, duration=1.0, target="c9"),))
    with pytest.raises(ValueError, match="c9"):
        install(sim, fabric, bad)
    with pytest.raises(ValueError):
        install(sim, fabric, Scenario(faults=(
            Fault.of("link_flap", at=0.0, duration=1.0, target="c0-c0"),)))
    with pytest.raises(ValueError):
        install(sim, fabric, Scenario(faults=(
            Fault.of("slow_node", at=0.0, duration=1.0, target="n99"),)))


# ---------------------------------------------------------- heterogeneity


def test_cluster_cpu_speed_changes_elapsed_not_answer():
    import numpy as np
    base = _run("sor", clusters=2, nodes=2)
    fast = _run("sor", clusters=2, nodes=2, scenario=Scenario(
        clusters=(ClusterTweak(0, cpu_speed=4.0),
                  ClusterTweak(1, cpu_speed=4.0))))
    slow = _run("sor", clusters=2, nodes=2, scenario=Scenario(
        clusters=(ClusterTweak(1, cpu_speed=0.25),)))
    assert fast.elapsed < base.elapsed < slow.elapsed
    assert np.array_equal(fast.answer["grid"], base.answer["grid"])
    assert np.array_equal(slow.answer["grid"], base.answer["grid"])


def test_cluster_link_class_changes_elapsed():
    import numpy as np
    base = _run("water", clusters=2, nodes=2)
    slow_lan = _run("water", clusters=2, nodes=2, scenario=Scenario(
        clusters=(ClusterTweak(0, link="internet-sunday"),)))
    assert slow_lan.elapsed > base.elapsed
    assert np.array_equal(np.asarray(slow_lan.answer),
                          np.asarray(base.answer))


def test_cluster_node_count_tweak_resizes_the_run():
    res = _run("tsp", clusters=2, nodes=2, scenario=Scenario(
        clusters=(ClusterTweak(1, n_nodes=4),)))
    base = _run("tsp", clusters=2, nodes=2)
    assert res.answer == base.answer
    assert res.elapsed != base.elapsed


# ---------------------------------------------------- analyzers and traces


def test_impairment_summary_totals_scn_impair_records():
    scn = Scenario(impairments=(Impairment.of("loss", p=0.2, rto=0.01),
                                Impairment.of("cross_traffic", load=1.0)))
    tracer = Tracer(kinds={"scn.impair"})
    _run(scenario=scn, trace=True, tracer=tracer)
    summary = impairment_summary(tracer.records)
    assert summary["cross_traffic"]["events"] > 0
    assert summary["cross_traffic"]["extra_s"] > 0
    assert summary["loss"]["retries"] > 0
    for rec in tracer.records:
        assert rec.kind == "scn.impair"
        assert rec.detail["model"] in IMPAIRMENTS
        assert rec.detail["extra"] > 0


def test_fault_windows_unit():
    assert fault_windows([]) == []
    win = FaultWindow("gw_outage", "c0", 1.0, 3.0)
    assert win.duration == 2.0
    assert win.covers(1.0) and win.covers(2.5) and not win.covers(3.5)


def test_traced_impaired_run_matches_untraced():
    scn = _impaired_scenario()
    untraced = _run(scenario=scn)
    traced = _run(scenario=scn, trace=True, tracer=Tracer())
    assert traced.elapsed == untraced.elapsed
    assert traced.traffic == untraced.traffic


# ------------------------------------------------------- sweeps and cache


def test_runspec_scenario_distinguishes_cache_keys():
    params = small_params("ra")
    clean = RunSpec("ra", "original", 2, 2, params)
    scn_a = RunSpec("ra", "original", 2, 2, params,
                    scenario=_impaired_scenario(seed=0))
    scn_b = RunSpec("ra", "original", 2, 2, params,
                    scenario=_impaired_scenario(seed=1))
    keys = {clean.key(), scn_a.key(), scn_b.key()}
    assert len(keys) == 3
    same = RunSpec("ra", "original", 2, 2, params,
                   scenario=_impaired_scenario(seed=0))
    assert same.key() == scn_a.key()


def test_scenario_sweep_warm_cache_hits(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    specs = [RunSpec("ra", "original", 2, 2, small_params("ra"),
                     scenario=_impaired_scenario())]
    cold = ParallelRunner(jobs=1, cache=cache)
    first = cold.run(specs)
    assert (cold.hits, cold.computed) == (0, 1)
    warm = ParallelRunner(jobs=1, cache=cache)
    second = warm.run(specs)
    assert (warm.hits, warm.computed) == (1, 0)
    assert first[0].elapsed == second[0].elapsed
    assert first[0].traffic == second[0].traffic


# ------------------------------------------------------------------- CLI


def test_cli_scenario_runs_and_caches(tmp_path, monkeypatch, capsys):
    from repro.__main__ import main
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    argv = ["scenario", "ra", "--clusters", "2", "--nodes", "2",
            "--wan-jitter", "lognormal:0.3",
            "--fault", "gw_outage@0.02s+0.05s"]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "ra" in out and "clean" in out and "slowdown" in out
    assert main(argv) == 0  # second invocation: both points cached
    err = capsys.readouterr().err
    assert "(2 cached, 0 simulated)" in err


def test_cli_scenario_rejects_bad_specs(capsys):
    from repro.__main__ import main
    assert main(["scenario", "ra", "--wan-jitter", "uniform:0.3"]) == 2
    assert main(["scenario", "ra", "--fault", "gw_outage"]) == 2
    assert main(["scenario", "ra", "--cluster", "x:cpu=2"]) == 2
