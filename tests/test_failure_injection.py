"""Failure-injection tests: the harness must report failures faithfully.

The simulator is deterministic, so "failures" here are programming-model
failures — workers crashing mid-protocol, lost wakeups, deadlocks — and
the contract under test is that nothing is swallowed: exceptions surface
with their original type, deadlocks are reported with the stuck worker's
name, and partial protocol state does not corrupt survivors.
"""

import pytest

from repro.apps.base import Application
from repro.harness import run_app
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import Blocked, ObjectSpec, Operation, OrcaRuntime
from repro.sim import SimulationError, Simulator


class CrashyApp(Application):
    """Workers that fail in configurable ways."""

    name = "crashy"
    variants = ("original",)

    def __init__(self, mode: str, crash_node: int = 1):
        self.mode = mode
        self.crash_node = crash_node

    def register(self, rts, params, variant):
        def bump(state):
            state["v"] = state.get("v", 0) + 1
            return state["v"]

        rts.register(ObjectSpec("ctr", dict,
                                {"bump": Operation(fn=bump, writes=True)},
                                owner=0))
        return {}

    def process(self, ctx, params, variant, shared):
        if ctx.node == self.crash_node:
            if self.mode == "raise_before":
                raise RuntimeError("worker died before communicating")
            if self.mode == "raise_mid_rpc":
                yield from ctx.invoke("ctr", "bump")
                raise ValueError("worker died after an RPC")
            if self.mode == "hang":
                yield from ctx.receive(port="never.sent")
        yield from ctx.invoke("ctr", "bump")
        yield from ctx.compute(1e-4)
        return None


def test_worker_exception_surfaces_with_type():
    with pytest.raises(ValueError, match="died after an RPC"):
        run_app(CrashyApp("raise_mid_rpc"), "original", 2, 2, None)


def test_worker_exception_before_any_io():
    with pytest.raises(RuntimeError, match="before communicating"):
        run_app(CrashyApp("raise_before"), "original", 1, 3, None)


def test_hung_worker_reported_as_deadlock_with_name():
    with pytest.raises(SimulationError) as exc:
        run_app(CrashyApp("hang"), "original", 2, 2, None)
    assert "crashy1" in str(exc.value)
    assert "deadlock" in str(exc.value)


def test_other_workers_progress_despite_crash():
    """A crashing worker doesn't corrupt the shared object: the survivors'
    RPCs all land (we observe the exception, but state is consistent)."""
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(2, 2), DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)

    def bump(state):
        state["v"] = state.get("v", 0) + 1

    rts.register(ObjectSpec("ctr", dict,
                            {"bump": Operation(fn=bump, writes=True)},
                            owner=0))

    def good(nid):
        ctx = rts.context(nid)
        for _ in range(5):
            yield from ctx.invoke("ctr", "bump")

    def bad():
        ctx = rts.context(3)
        yield from ctx.invoke("ctr", "bump")
        raise RuntimeError("boom")

    goods = [sim.spawn(good(nid)) for nid in range(3)]
    crash = sim.spawn(bad())
    sim.run()
    assert all(g.triggered and g._ok for g in goods)
    assert crash.triggered and not crash._ok
    assert rts.state_of("ctr")["v"] == 16  # 3*5 + 1


def test_guard_waiter_starvation_is_a_detectable_deadlock():
    """A consumer blocked on a guard nobody satisfies shows up as a
    deadlock, not as silent termination."""
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(1, 2), DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)

    def deq(state):
        raise Blocked  # never satisfiable

    rts.register(ObjectSpec("q", list, {"deq": Operation(fn=deq)}, owner=0))

    def consumer():
        ctx = rts.context(0)
        yield from ctx.invoke("q", "deq")

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(consumer())


def test_interrupt_cancels_a_blocked_worker_cleanly():
    """Interrupting a parked worker releases it without corrupting the
    runtime (the canonical way a harness would impose timeouts)."""
    from repro.sim import Interrupt

    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(1, 2), DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)

    def waiter():
        ctx = rts.context(1)
        try:
            yield from ctx.receive(port="silent")
            return "got message"
        except Interrupt:
            return "timed out"

    p = sim.spawn(waiter())

    def killer():
        yield sim.timeout(0.5)
        p.interrupt("timeout")

    sim.spawn(killer())
    sim.run()
    assert p.value == "timed out"
