"""Property-based tests for the totally-ordered broadcast layer.

Hypothesis drives random mixes of senders, clusters, sequencer protocols
and payload sizes; the invariants — single global order, exactly-once
delivery, per-sender program order, replica convergence — must hold for
every schedule the engine produces.
"""

from hypothesis import given, settings, strategies as st

from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import ObjectSpec, Operation, OrcaRuntime
from repro.sim import Simulator


def build(n_clusters, nodes_per_cluster, sequencer):
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(n_clusters, nodes_per_cluster),
                    DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric, sequencer=sequencer)

    def append(state, item):
        state.append(item)

    rts.register(ObjectSpec(
        "log", list,
        {"append": Operation(fn=append, writes=True,
                             arg_bytes=lambda item: 16 + 64 * (item[1] % 3))},
        replicated=True))
    return sim, rts


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(["centralized", "distributed", "migrating"]),
    st.integers(1, 4),
    st.integers(1, 4),
    st.lists(st.tuples(st.integers(0, 15), st.integers(0, 4)),
             min_size=1, max_size=30),
)
def test_total_order_invariants(sequencer, n_clusters, per, sends):
    """sends: (sender pseudo-id, mix) pairs; senders map onto real nodes."""
    sim, rts = build(n_clusters, per, sequencer)
    n_nodes = n_clusters * per
    by_sender = {}
    for pseudo, mix in sends:
        node = pseudo % n_nodes
        by_sender.setdefault(node, []).append(mix)

    def writer(node, items):
        ctx = rts.context(node)
        for i, mix in enumerate(items):
            if mix % 2 == 0:
                yield from ctx.invoke("log", "append", (node, i))
            else:
                ctx.invoke_async("log", "append", (node, i))
        yield sim.timeout(0)

    for node, items in by_sender.items():
        sim.spawn(writer(node, items))
    sim.run()

    total = sum(len(v) for v in by_sender.values())
    reference = rts.state_of("log", 0)
    # Exactly-once, all delivered.
    assert len(reference) == total
    # Identical order on every replica.
    for nid in range(n_nodes):
        assert rts.state_of("log", nid) == reference
        assert rts.tob.applied_sequence(nid) == list(range(total))
    # Per-sender program order.
    for node, items in by_sender.items():
        seq = [i for (snd, i) in reference if snd == node]
        assert seq == list(range(len(items)))


@settings(max_examples=15, deadline=None)
@given(st.sampled_from(["centralized", "distributed", "migrating"]),
       st.integers(2, 4))
def test_holdback_never_leaves_gaps(sequencer, n_clusters):
    """Even with mixed PB/BB dissemination (small and large payloads racing
    over different paths), delivery has no gaps or reorders."""
    sim, rts = build(n_clusters, 2, sequencer)

    def big_writer(node):
        ctx = rts.context(node)
        for i in range(3):
            # > BB threshold: disseminated from the sender.
            yield from ctx.invoke("log", "append", (node, i * 3))

    def small_writer(node):
        ctx = rts.context(node)
        for i in range(5):
            yield from ctx.invoke("log", "append", (node, i))

    rts.specs["log"].operations["append"].arg_bytes = \
        lambda item: 16 * 1024 if item[1] % 3 == 0 else 8
    sim.spawn(big_writer(0))
    sim.spawn(small_writer(rts.topo.n_nodes - 1))
    sim.run()
    for nid in range(rts.topo.n_nodes):
        assert rts.tob.applied_sequence(nid) == list(range(8))
