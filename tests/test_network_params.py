"""Unit tests for network parameter sets and presets."""

import pytest

from repro.network import (
    ATM_DAS,
    DAS_PARAMS,
    FAST_ETHERNET,
    INTERNET_PARAMS,
    INTERNET_SUNDAY,
    LinkParams,
    MYRINET,
    SLOW_WAN,
    SLOW_WAN_PARAMS,
    mbit,
    usec,
)


def test_unit_helpers():
    assert mbit(8) == 1e6  # 8 Mbit/s == 1 MB/s
    assert usec(1) == 1e-6


def test_wire_time_combines_latency_and_serialization():
    link = LinkParams("t", latency=1e-3, bandwidth=1e6, o_send=0, o_recv=0)
    assert link.wire_time(0) == pytest.approx(1e-3)
    assert link.wire_time(10**6) == pytest.approx(1e-3 + 1.0)


def test_with_returns_modified_copy():
    fast = MYRINET.with_(latency=usec(1))
    assert fast.latency == usec(1)
    assert MYRINET.latency == usec(10)  # original untouched
    assert fast.bandwidth == MYRINET.bandwidth


def test_lan_wan_gap_is_two_orders_of_magnitude():
    assert ATM_DAS.latency / MYRINET.latency > 50
    assert MYRINET.bandwidth / ATM_DAS.bandwidth > 40


def test_presets_follow_the_papers_figures():
    # DAS ATM: 4.53 Mbit/s; Internet Sunday: 1.8; slow WAN: 2 (the paper's
    # 10 ms / 2 Mbit/s "slower network" trades latency, not bandwidth).
    assert ATM_DAS.bandwidth > SLOW_WAN.bandwidth > INTERNET_SUNDAY.bandwidth
    assert ATM_DAS.latency < INTERNET_SUNDAY.latency < SLOW_WAN.latency


def test_network_params_with_wan_swaps_only_the_wan():
    assert INTERNET_PARAMS.wan is INTERNET_SUNDAY
    assert INTERNET_PARAMS.lan is DAS_PARAMS.lan
    assert SLOW_WAN_PARAMS.wan is SLOW_WAN
    assert SLOW_WAN_PARAMS.access is FAST_ETHERNET


def test_fast_ethernet_between_lan_and_wan():
    assert MYRINET.bandwidth > FAST_ETHERNET.bandwidth > ATM_DAS.bandwidth
