"""Analyzer math, pinned on hand-computable synthetic record streams."""

import pytest

from repro.obs.analyzers import (
    BREAKDOWN_NARRATIVE,
    gateway_queue_series,
    intercluster_breakdown,
    link_timelines,
    wan_wait_by_node,
)
from repro.obs.schema import validate_records
from repro.sim.trace import TraceRecord


def span(kind, t0, dur, **detail):
    detail.update(t0=t0, dur=dur)
    return TraceRecord(t0 + dur, kind, detail)


def busy(link, cls, t0, dur, size=64, wait=0.0, msg_id=-1):
    return span("link.busy", t0, dur, link=link, cls=cls, size=size,
                wait=wait, msg_id=msg_id)


# ------------------------------------------------------------ timelines

def test_link_timeline_bucket_math():
    # elapsed 1.0 over 10 buckets of 0.1s each:
    #   wan(0, 1): busy [0.0, 0.1)          -> bucket 0 fully busy
    #              busy [0.25, 0.35)        -> buckets 2 and 3 half busy
    #   gwaccess0: busy the whole run       -> every bucket fully busy
    records = [
        busy("wan(0, 1)", "wan", 0.0, 0.1),
        busy("wan(0, 1)", "wan", 0.25, 0.1),
        busy("gwaccess0", "access", 0.0, 1.0),
    ]
    assert validate_records(records) == []
    tl = link_timelines(records, elapsed=1.0, n_buckets=10)
    assert tl.bucket == pytest.approx(0.1)
    wan = tl.links["wan(0, 1)"]
    assert wan[0] == pytest.approx(1.0)
    assert wan[1] == pytest.approx(0.0)
    assert wan[2] == pytest.approx(0.5)
    assert wan[3] == pytest.approx(0.5)
    assert all(v == pytest.approx(0.0) for v in wan[4:])
    assert tl.links["gwaccess0"] == pytest.approx([1.0] * 10)
    assert tl.cls_of == {"wan(0, 1)": "wan", "gwaccess0": "access"}


def test_link_timeline_by_class_and_busiest():
    records = [
        busy("wan(0, 1)", "wan", 0.0, 0.1),
        busy("wan(1, 0)", "wan", 0.0, 0.3),
        busy("gwaccess0", "access", 0.0, 1.0),
    ]
    tl = link_timelines(records, elapsed=1.0, n_buckets=10)
    by_cls = tl.by_class()
    # Mean across the two WAN PVCs: bucket 0 is (1.0 + 1.0) / 2.
    assert by_cls["wan"][0] == pytest.approx(1.0)
    assert by_cls["wan"][1] == pytest.approx(0.5)
    name, util = tl.busiest("wan")
    assert name == "wan(1, 0)"
    assert util == pytest.approx(0.3 / 1.0)
    assert tl.busiest("access") == ("gwaccess0", pytest.approx(1.0))


def test_busiest_tie_breaks_lexicographically_and_absent_is_none():
    # Both PVCs at the same utilization; insertion order puts the
    # lexicographically-later one last, which the old `>=` scan used to
    # return.  The winner must be the sorted-first name.
    records = [
        busy("wan(0, 1)", "wan", 0.0, 0.2),
        busy("wan(1, 0)", "wan", 0.3, 0.2),
    ]
    tl = link_timelines(records, elapsed=1.0, n_buckets=10)
    assert tl.busiest("wan") == ("wan(0, 1)", pytest.approx(0.2))
    # No access link saw traffic: None, not a fake ("", 0.0) idle link.
    assert tl.busiest("access") is None


def test_link_timeline_clamps_and_edge_spans():
    # A span ending exactly at `elapsed` must not fall off the grid, and
    # overlapping spans on one link clamp at fully-busy.
    records = [
        busy("lanout0", "lan_out", 0.9, 0.1),
        busy("lanout0", "lan_out", 0.9, 0.1),
    ]
    tl = link_timelines(records, elapsed=1.0, n_buckets=10)
    assert tl.links["lanout0"][9] == pytest.approx(1.0)


def test_link_timeline_rejects_empty_grid():
    with pytest.raises(ValueError):
        link_timelines([], elapsed=1.0, n_buckets=0)


# -------------------------------------------------------- gateway queues

def test_gateway_queue_series_sorted_per_cluster():
    records = [
        span("gw.forward", 2.0, 0.1, cluster=0, size=64, qdepth=3, msg_id=-1),
        span("gw.forward", 1.0, 0.1, cluster=0, size=64, qdepth=1, msg_id=-1),
        span("gw.forward", 0.5, 0.1, cluster=1, size=64, qdepth=2, msg_id=-1),
    ]
    assert validate_records(records) == []
    series = gateway_queue_series(records)
    assert series == {0: [(1.0, 1), (2.0, 3)], 1: [(0.5, 2)]}


def test_gateway_littles_law_synthetic():
    # A deterministic D/D/1-ish gateway: forwards arrive every 0.1s,
    # each with sojourn 0.2s, over a 1.0s window -> lambda = 10/1.0,
    # W = 0.2, predicted depth = 2.0.  Each arrival sees the previous
    # message still in system, so qdepth (which counts the arriver) is
    # 2 after warmup and mean_depth - 1 ~ 1; the synthetic numbers just
    # need to flow through the formula exactly.
    records = [
        span("gw.forward", 0.1 * i, 0.2, cluster=0, size=64,
             qdepth=2, msg_id=-1)
        for i in range(10)
    ]
    from repro.obs.analyzers import gateway_littles_law
    out = gateway_littles_law(records)
    law = out[0]
    # window = last end (0.9 + 0.2) - first t0 (0.0) = 1.1
    assert law["samples"] == 10
    assert law["window"] == pytest.approx(1.1)
    assert law["mean_depth"] == pytest.approx(2.0)
    assert law["arrival_rate"] == pytest.approx(10 / 1.1)
    assert law["mean_sojourn"] == pytest.approx(0.2)
    assert law["predicted_depth"] == pytest.approx(2.0 / 1.1)
    assert law["ratio"] == pytest.approx((2.0 - 1.0) / (2.0 / 1.1))


def test_gateway_littles_law_holds_on_congested_ra_run():
    # The real property: on an RA-style all-to-all run the gateways
    # congest (sustained queue depths in the tens), and the sampled
    # depth series must agree with Little's law applied to the same
    # spans' sojourn times.  The arrivals are not Poisson, so allow a
    # generous band around 1 (empirically the ratio lands within a few
    # percent).
    from repro.apps import make_app, small_params
    from repro.harness import run_app
    from repro.obs.analyzers import gateway_littles_law
    from repro.sim import Tracer

    tracer = Tracer(kinds=frozenset({"gw.forward"}))
    run_app(make_app("ra"), "original", 2, 4, small_params("ra"),
            trace=True, tracer=tracer)
    out = gateway_littles_law(tracer.records)
    assert set(out) == {0, 1}  # both gateways forwarded traffic
    for law in out.values():
        assert law["samples"] > 100          # a congested run, not a trickle
        assert law["mean_depth"] > 2.0       # sustained queueing
        assert 0.8 <= law["ratio"] <= 1.25


def test_gateway_littles_law_skips_degenerate_windows():
    from repro.obs.analyzers import gateway_littles_law
    assert gateway_littles_law([]) == {}
    one = [span("gw.forward", 1.0, 0.0, cluster=3, size=64, qdepth=1,
                msg_id=-1)]
    assert gateway_littles_law(one) == {}


# ------------------------------------------------------- per-node waits

def _orca_records():
    return [
        span("rpc.complete", 0.0, 2.0, req_id=1, caller=5, owner=0,
             obj="q", op="get", bytes=128, inter=True),
        span("rpc.complete", 0.0, 9.0, req_id=2, caller=5, owner=4,
             obj="q", op="get", bytes=128, inter=False),  # intracluster
        span("bcast.complete", 1.0, 1.5, sender=5, seq=0, obj="m",
             op="put", size=64),
        span("seq.request", 0.0, 0.25, sender=2, stamp_node=0, size=16,
             bb=True, inter=True),
        span("seq.grant", 0.25, 0.25, sender=2, stamp_node=0, inter=True),
    ]


def test_wan_wait_by_node():
    records = _orca_records()
    assert validate_records(records) == []
    waits = wan_wait_by_node(records)
    assert waits[5]["rpc"] == pytest.approx(2.0)   # inter only
    assert waits[5]["bcast"] == pytest.approx(1.5)
    assert waits[5]["seq"] == pytest.approx(0.0)
    assert waits[2]["seq"] == pytest.approx(0.5)


# ------------------------------------------------ mechanism attribution

def test_intercluster_breakdown():
    records = _orca_records() + [
        span("seq.acquire", 0.0, 0.7, cluster=1, seq=3,
             protocol="migrating"),
        span("gw.forward", 0.0, 0.3, cluster=0, size=64, qdepth=1, msg_id=-1),
        span("wan.xfer", 0.0, 0.4, src_cluster=0, dst_cluster=1, size=64,
             tx=0.1, msg_id=-1),
        busy("gwaccess0", "access", 0.0, 0.6),
        busy("lanout0", "lan_out", 0.0, 5.0),  # LAN time is not wide-area
    ]
    assert validate_records(records) == []
    out = intercluster_breakdown(records)
    assert set(out) == set(BREAKDOWN_NARRATIVE)
    assert out["sequencer"] == pytest.approx(0.7 + 0.25 + 0.25)
    assert out["rpc-stall"] == pytest.approx(2.0)   # intercluster RPC only
    assert out["gateway"] == pytest.approx(0.3)
    assert out["wan"] == pytest.approx(0.4)
    assert out["access"] == pytest.approx(0.6)
