"""Tests for the shared partition helpers and deterministic RNG streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.apps.partition import block_slices, owner_of_index
from repro.sim import derive_seed, substream


# --------------------------------------------------------------- partition


@given(st.integers(0, 5000), st.integers(1, 64))
def test_block_slices_cover_exactly(n, p):
    sl = block_slices(n, p)
    assert len(sl) == p
    assert sl[0][0] == 0 and sl[-1][1] == n
    for (a0, a1), (b0, b1) in zip(sl, sl[1:]):
        assert a1 == b0
    sizes = [b - a for a, b in sl]
    assert max(sizes) - min(sizes) <= 1


def test_block_slices_invalid():
    with pytest.raises(ValueError):
        block_slices(10, 0)
    with pytest.raises(ValueError):
        block_slices(-1, 2)


def test_owner_of_index():
    sl = block_slices(10, 3)
    assert owner_of_index(sl, 0) == 0
    assert owner_of_index(sl, 3) == 0
    assert owner_of_index(sl, 4) == 1
    assert owner_of_index(sl, 9) == 2
    with pytest.raises(ValueError):
        owner_of_index(sl, 10)


# --------------------------------------------------------------------- rng


def test_derive_seed_stable_and_distinct():
    assert derive_seed(42, "a") == derive_seed(42, "a")
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(42, "a") != derive_seed(43, "a")
    assert derive_seed(42, "a") >= 0


def test_substreams_are_independent():
    a = substream(7, "x").random(1000)
    b = substream(7, "y").random(1000)
    assert abs(np.corrcoef(a, b)[0, 1]) < 0.1


def test_substream_reproducible():
    np.testing.assert_array_equal(substream(1, "s").random(10),
                                  substream(1, "s").random(10))
