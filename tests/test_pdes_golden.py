"""PDES golden parity: partitioned runs vs the single-process oracle.

The partitioned engine (:mod:`repro.sim.pdes`) must be *invisible* in
the results: same elapsed virtual time, same answers, same app stats,
same traffic totals, and the same trace records (merged across
partitions and order-normalized — partitions interleave concurrently,
so only the sorted record multiset is comparable, exactly like the
``order-normalized`` contract in the broadcast golden suites).

Every paper app runs through ``pdes="on"``: PDES-capable apps (SOR,
RA — pure message-passing) actually partition; the rest exercise the
transparent single-process fallback, which must be bit-identical by
construction.  One known, bounded caveat is pinned by its own test:
under impairments, two messages from *different* partitions can land
on the same float instant at one gateway, and the serial engine breaks
that FIFO tie by global heap insertion order — unreconstructible from
inside any partition.  Aggregates stay bit-identical; only the
per-message queueing attribution inside the tied instant may swap.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.apps import PAPER_ORDER, make_app, small_params
from repro.harness.experiment import run_app
from repro.scenario import Fault, Impairment, Scenario
from repro.sim import SimulationError, Tracer

TOPOLOGIES = [(1, 4), (2, 3), (4, 2)]

#: The partitioned-capable subset (pure message-passing/RPC apps).
PDES_APPS = [name for name in PAPER_ORDER
             if make_app(name).pdes_capable]

#: Process-lifecycle records differ by construction: each partition
#: spawns only its own nodes' processes, and legacy-leg remote halves
#: respawn in the owning partition.
PROCESS_KINDS = ("proc.",)


def _eq(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(a, b)
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_eq(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    return a == b


def _norm(records):
    """Order-normalized trace multiset (partitions interleave freely)."""
    return sorted(
        (r.time, r.kind, tuple(sorted((k, repr(v))
                               for k, v in r.detail.items())))
        for r in records if not r.kind.startswith(PROCESS_KINDS))


def _pair(app_name, variant, n_clusters, per, *, fast_paths=True,
          scenario=None, workers=None):
    """Run serial and partitioned; return both results and norm traces."""
    params = small_params(app_name)
    ts, tp = Tracer(), Tracer()
    serial = run_app(make_app(app_name), variant, n_clusters, per, params,
                     trace=True, tracer=ts, fast_paths=fast_paths,
                     scenario=scenario, pdes="off")
    pdes = run_app(make_app(app_name), variant, n_clusters, per, params,
                   trace=True, tracer=tp, fast_paths=fast_paths,
                   scenario=scenario, pdes="on",
                   pdes_workers=workers or min(n_clusters, 4))
    return serial, pdes, _norm(ts.records), _norm(tp.records)


def _assert_parity(serial, pdes, ns, npd, label, traces=True):
    assert serial.elapsed == pdes.elapsed, label
    assert _eq(serial.answer, pdes.answer), label
    assert serial.stats == pdes.stats, label
    assert serial.traffic == pdes.traffic, label
    if traces:
        assert ns == npd, label


@pytest.mark.parametrize("app_name", PAPER_ORDER)
def test_pdes_parity_all_apps(app_name, capsys):
    """Every app x topology: identical results (partitioned or fallback)."""
    app = make_app(app_name)
    variant = app.variants[0]
    for n_clusters, per in TOPOLOGIES:
        serial, pdes, ns, npd = _pair(app_name, variant, n_clusters, per)
        _assert_parity(serial, pdes, ns, npd,
                       f"{app_name}/{variant} {n_clusters}x{per}")
        partitioned = pdes.sim_stats.get("pdes_partitions", 0) > 0
        if app.pdes_capable and n_clusters >= 2:
            assert partitioned, f"{app_name} {n_clusters}x{per} fell back"
        else:
            assert not partitioned
            # Forced-on fallback is loud, never silent.
            assert "cannot be partitioned" in capsys.readouterr().err


@pytest.mark.parametrize("app_name", PDES_APPS)
def test_pdes_parity_all_variants_legacy_tier(app_name):
    """Capable apps, every variant, on the legacy process-per-leg fabric."""
    for variant in make_app(app_name).variants:
        serial, pdes, ns, npd = _pair(app_name, variant, 2, 3,
                                      fast_paths=False)
        _assert_parity(serial, pdes, ns, npd,
                       f"{app_name}/{variant} 2x3 legacy")
        assert pdes.sim_stats.get("pdes_partitions", 0) == 2


def test_pdes_parity_scenario_impaired():
    """An impaired cell (loss retries + timing shifts) stays bit-exact."""
    scen = Scenario(seed=3, impairments=(Impairment.of("loss", p=0.05),))
    serial, pdes, ns, npd = _pair("sor", "original", 2, 3, scenario=scen)
    _assert_parity(serial, pdes, ns, npd, "sor loss 2x3")
    assert pdes.sim_stats.get("pdes_partitions", 0) == 2


def test_pdes_parity_scenario_jitter_zero_lookahead():
    """Jitter can shrink WAN latency below nominal: lookahead drops to 0
    and the protocol degrades to near-lockstep — still bit-exact."""
    scen = Scenario(seed=5, impairments=(Impairment.of("jitter", sigma=0.2),))
    serial, pdes, ns, npd = _pair("sor", "splitphase", 2, 3, scenario=scen)
    _assert_parity(serial, pdes, ns, npd, "sor jitter 2x3")


def test_pdes_impaired_degenerate_tie_aggregates():
    """The documented caveat, pinned: impairments can collapse two
    cross-partition arrivals onto one float instant at a gateway, where
    the serial FIFO tie order is an artifact of global heap insertion.
    Aggregates must still be bit-identical; the trace multiset may only
    differ by attribution *within* tied instants (same record times)."""
    scen = Scenario(seed=3, impairments=(Impairment.of("loss", p=0.05),))
    serial, pdes, ns, npd = _pair("sor", "original", 4, 2, scenario=scen,
                                  workers=4)
    _assert_parity(serial, pdes, ns, npd, "sor loss 4x2", traces=False)
    assert [r[0] for r in ns] == [r[0] for r in npd]  # same time profile
    assert [r[1] for r in ns] == [r[1] for r in npd]  # same kind profile


def test_pdes_stats_aggregation(monkeypatch):
    """Merged sim_stats cover all partitions plus the pdes counters."""
    # Geometry-sized rings never overflow on this workload; drop any
    # ambient capacity override so the zero-overflow assertion holds.
    monkeypatch.delenv("REPRO_PDES_CHANNEL_CAP", raising=False)
    serial, pdes, _ns, _npd = _pair("sor", "original", 4, 2)
    for key in ("events_processed", "processes_spawned"):
        assert pdes.sim_stats[key] > serial.sim_stats[key] // 2
    ss = pdes.sim_stats
    assert ss["pdes_partitions"] == 4
    assert ss["pdes_epochs"] > 0
    assert ss["pdes_cross_messages"] > 0
    assert ss["pdes_acks"] > 0
    assert ss["pdes_blocked_s"] >= 0.0
    # Fast-lane accounting: every epoch costs at most one round-trip
    # per partition; quiescence coalescing elides the rest; the packed
    # blocks all flow through the counted channels.
    assert 0 < ss["pdes_round_trips"] <= ss["pdes_epochs"] * 4
    assert ss["pdes_coalesced_round_trips"] \
        == ss["pdes_epochs"] * 4 - ss["pdes_round_trips"]
    assert ss["pdes_channel_bytes"] > 0
    assert ss["pdes_channel_overflows"] == 0
    assert ss["pdes_epoch_breaks"] >= 0


def test_pdes_summary_line():
    """The counters condense to the one-line ``repro app`` summary."""
    from repro.obs import format_pdes_summary
    _serial, pdes, _ns, _npd = _pair("sor", "original", 2, 3)
    line = format_pdes_summary(pdes.sim_stats)
    assert line.startswith("pdes: 2 partitions,")
    assert "round-trips" in line and "coalesced" in line
    assert format_pdes_summary({"events_processed": 5}) is None


# ----------------------------------------------------- transport variants


def test_pdes_parity_pipe_transport(monkeypatch):
    """The REPRO_PDES_CHANNEL=pipe escape hatch: same packed blocks over
    the setup pipe, still record-for-record identical to the oracle."""
    monkeypatch.setenv("REPRO_PDES_CHANNEL", "pipe")
    serial, pdes, ns, npd = _pair("sor", "original", 2, 3)
    _assert_parity(serial, pdes, ns, npd, "sor 2x3 pipe")
    assert pdes.sim_stats["pdes_partitions"] == 2
    assert pdes.sim_stats["pdes_channel_bytes"] > 0


def test_pdes_parity_tiny_ring_overflow(monkeypatch):
    """A ring far too small for real blocks forces the loud pipe
    fallback on nearly every transfer — results stay bit-identical and
    the overflows are counted."""
    monkeypatch.setenv("REPRO_PDES_CHANNEL", "shm")  # overflow is shm-only
    monkeypatch.setenv("REPRO_PDES_CHANNEL_CAP", "64")
    serial, pdes, ns, npd = _pair("sor", "original", 2, 3)
    _assert_parity(serial, pdes, ns, npd, "sor 2x3 cap=64")
    assert pdes.sim_stats["pdes_channel_overflows"] > 0


def test_pdes_pool_reuse_same_topology():
    """Consecutive runs of one topology reuse the forked worker pool
    (same PIDs, run counter advances); a different width re-forks."""
    from repro.sim.pdes import coordinator, shutdown_pool
    shutdown_pool()
    try:
        run_app(make_app("sor"), "original", 2, 3, small_params("sor"),
                pdes="on", pdes_workers=2)
        pool = coordinator._POOL
        assert pool is not None and pool.width == 2
        pids = [p.pid for p in pool.procs]
        runs = pool.runs
        run_app(make_app("sor"), "optimized", 2, 3, small_params("sor"),
                pdes="on", pdes_workers=2)
        assert coordinator._POOL is pool
        assert [p.pid for p in pool.procs] == pids
        assert pool.runs == runs + 1
        run_app(make_app("sor"), "original", 4, 2, small_params("sor"),
                pdes="on", pdes_workers=4)
        assert coordinator._POOL is not pool
        assert coordinator._POOL.width == 4
    finally:
        shutdown_pool()


# ------------------------------------------------------------- fallback


def test_pdes_single_cluster_falls_back(capsys):
    res = run_app(make_app("sor"), "original", 1, 4, small_params("sor"),
                  pdes="on")
    assert "pdes_partitions" not in res.sim_stats
    assert "cannot be partitioned" in capsys.readouterr().err


def test_pdes_auto_declines_inside_sweep_pool(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_ACTIVE_JOBS", "8")
    res = run_app(make_app("sor"), "original", 2, 3, small_params("sor"),
                  pdes="auto")
    assert "pdes_partitions" not in res.sim_stats
    # auto is quiet — declining is policy, not an error.
    assert capsys.readouterr().err == ""


def test_pdes_faults_ineligible(capsys):
    scen = Scenario(seed=1, faults=(
        Fault.of("slow_node", at=0.01, duration=0.01, target="n0"),))
    res = run_app(make_app("sor"), "original", 2, 3, small_params("sor"),
                  scenario=scen, pdes="on")
    assert "pdes_partitions" not in res.sim_stats
    assert "cannot be partitioned" in capsys.readouterr().err


def test_pdes_worker_errors_keep_their_type():
    """An app error inside a partition worker surfaces as the same
    exception type the serial engine raises (not a wrapped pdes error)."""
    from repro.apps.sor.app import SORApp, SORParams
    params = SORParams.small(n_rows=4, n_cols=8)  # < one row per proc
    with pytest.raises(ValueError, match="one row per processor"):
        run_app(SORApp(), "original", 2, 3, params, pdes="on",
                pdes_workers=2)


def test_pdes_unknown_mode_raises():
    with pytest.raises(SimulationError, match="REPRO_PDES"):
        run_app(make_app("sor"), "original", 2, 3, small_params("sor"),
                pdes="sideways")


def test_pdes_env_selection(monkeypatch):
    monkeypatch.setenv("REPRO_PDES", "on")
    res = run_app(make_app("sor"), "original", 2, 3, small_params("sor"),
                  pdes_workers=2)
    assert res.sim_stats.get("pdes_partitions", 0) == 2
    monkeypatch.setenv("REPRO_PDES", "off")
    res = run_app(make_app("sor"), "original", 2, 3, small_params("sor"))
    assert "pdes_partitions" not in res.sim_stats


# ------------------------------------------------------ engine tiers

_TIER_SNIPPET = """
import json, sys
from repro.apps import make_app, small_params
from repro.harness.experiment import run_app
from repro.sim import Tracer

tracer = Tracer()
res = run_app(make_app("sor"), "original", 2, 3, small_params("sor"),
              trace=True, tracer=tracer, pdes={pdes!r}, pdes_workers=2)
norm = sorted((r.time, r.kind, tuple(sorted((k, repr(v))
              for k, v in r.detail.items())))
              for r in tracer.records if not r.kind.startswith("proc."))
print(json.dumps({{"elapsed": res.elapsed, "n": len(norm),
                   "digest": hash(tuple(map(str, norm))) & 0xffffffff}}))
"""


def _tier_run(engine, pdes):
    env = dict(os.environ, REPRO_ENGINE=engine,
               PYTHONHASHSEED="0")
    out = subprocess.run(
        [sys.executable, "-c", _TIER_SNIPPET.format(pdes=pdes)],
        capture_output=True, text=True, env=env, check=True)
    return json.loads(out.stdout)


@pytest.mark.parametrize("engine", ["python", "compiled"])
def test_pdes_parity_engine_tiers(engine):
    if engine == "compiled":
        from repro.sim._build import compiler_available
        if not compiler_available():
            pytest.skip("no C compiler: compiled tier unavailable")
    serial = _tier_run(engine, "off")
    pdes = _tier_run(engine, "on")
    assert serial == pdes
