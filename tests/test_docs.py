"""The docs consistency checker (tools/check_docs.py) and its guarantees."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
CHECKER = REPO / "tools" / "check_docs.py"


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    mod = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = mod
    spec.loader.exec_module(mod)
    return mod


def test_repo_docs_are_consistent(check_docs, capsys):
    assert check_docs.main() == 0
    assert "docs ok" in capsys.readouterr().out


def test_tracing_doc_mentions_every_kind(check_docs):
    from repro.obs.schema import KINDS

    text = (REPO / "docs" / "TRACING.md").read_text()
    mentioned = set(check_docs._KIND.findall(text))
    assert mentioned == set(KINDS)


def test_checker_flags_broken_link(check_docs, tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("see [missing](no/such/file.md) and "
                   "[ok](https://example.com)")
    problems = check_docs.check_links(doc, doc.read_text())
    assert problems == [f"{doc}: broken link -> no/such/file.md"]
    assert not check_docs.check_links(
        doc, "[external](https://example.com) [anchor](#sec)")


def test_checker_flags_unregistered_kind(check_docs):
    problems = check_docs.check_kinds(
        {"docs/TRACING.md": " ".join(f"`{k}`" for k in
                                     check_docs.KINDS),
         "README.md": "mentions `msg.bogus_kind` here"})
    assert problems == ["README.md: mentions unregistered trace kind "
                        "'msg.bogus_kind' (not in repro.obs.schema.KINDS)"]


def test_checker_flags_undocumented_kind(check_docs):
    text = " ".join(f"`{k}`" for k in check_docs.KINDS
                    if k != "wan.xfer")
    problems = check_docs.check_kinds({"docs/TRACING.md": text})
    assert problems == ["docs/TRACING.md: registered trace kind "
                        "'wan.xfer' is undocumented"]
