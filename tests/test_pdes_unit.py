"""PDES building blocks: partition planning, cap algebra, scheduling.

The property tests state the conservative-synchronization contract
directly: a partition capped by :func:`compute_caps` can never process
past the earliest instant at which any other partition might still
send it something (``N_j + L``), and the abstract epoch model in
:func:`test_never_delivers_early` drives randomized message traffic
through the real cap algebra and asserts the invariant the whole
design exists for — no cross-partition message is ever delivered
before the destination's clock.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import jobs
from repro.network import DAS_PARAMS
from repro.scenario import Impairment, Scenario
from repro.sim import SimulationError
from repro.sim.pdes import (
    cluster_partition_map,
    compute_caps,
    partition_clusters,
    pdes_ineligible_reason,
    pdes_mode,
    wan_lookahead,
)

INF = math.inf


# ------------------------------------------------------------- planning


@pytest.mark.parametrize("n_clusters,n_partitions", [
    (2, 2), (3, 2), (4, 2), (4, 4), (7, 3), (64, 8), (5, 16), (1, 4),
])
def test_partition_clusters_contiguous_balanced(n_clusters, n_partitions):
    blocks = partition_clusters(n_clusters, n_partitions)
    # Exact cover, in order, contiguous.
    assert [c for b in blocks for c in b] == list(range(n_clusters))
    sizes = [len(b) for b in blocks]
    assert min(sizes) >= 1
    assert max(sizes) - min(sizes) <= 1
    # Width never exceeds either bound.
    assert len(blocks) == max(1, min(n_partitions, n_clusters))


def test_partition_clusters_rejects_empty():
    with pytest.raises(ValueError):
        partition_clusters(0, 2)


def test_cluster_partition_map_roundtrip():
    blocks = partition_clusters(7, 3)
    part = cluster_partition_map(blocks)
    assert len(part) == 7
    for pid, block in enumerate(blocks):
        for c in block:
            assert part[c] == pid


# ------------------------------------------------------------ lookahead


def test_wan_lookahead_clean_is_wan_latency():
    assert wan_lookahead(DAS_PARAMS) == DAS_PARAMS.wan.latency


def test_wan_lookahead_jitter_collapses_to_zero():
    scen = Scenario(seed=1, impairments=(Impairment.of("jitter", sigma=0.1),))
    assert wan_lookahead(DAS_PARAMS, scen) == 0.0


def test_wan_lookahead_loss_keeps_latency():
    scen = Scenario(seed=1, impairments=(Impairment.of("loss", p=0.1),))
    assert wan_lookahead(DAS_PARAMS, scen) == DAS_PARAMS.wan.latency


# ----------------------------------------------------------------- mode


def test_pdes_mode_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_PDES", "on")
    assert pdes_mode("off") == "off"
    assert pdes_mode(None) == "on"
    monkeypatch.delenv("REPRO_PDES")
    assert pdes_mode(None) == "off"


def test_pdes_mode_invalid_raises():
    with pytest.raises(SimulationError, match="REPRO_PDES"):
        pdes_mode("sometimes")


# ---------------------------------------------------------- eligibility


def test_ineligible_reasons():
    from repro.apps import make_app
    sor, water = make_app("sor"), make_app("water")
    assert pdes_ineligible_reason(sor, 2) is None
    assert "single-cluster" in pdes_ineligible_reason(sor, 1)
    assert "broadcast" in pdes_ineligible_reason(water, 2)
    from repro.scenario import Fault
    scen = Scenario(seed=1, faults=(
        Fault.of("slow_node", at=0.01, duration=0.01, target="n0"),))
    assert "faults" in pdes_ineligible_reason(sor, 2, scenario=scen)
    assert "decision" in pdes_ineligible_reason(sor, 2, decision=object())
    assert "utilization" in pdes_ineligible_reason(sor, 2, utilization=True)


# -------------------------------------------------------------- workers


def test_pdes_workers_explicit_honored_and_capped(monkeypatch):
    monkeypatch.delenv("REPRO_PDES_WORKERS", raising=False)
    # Explicit requests are honored even beyond the host's core count
    # (oversubscribed workers still compute the identical result)...
    assert jobs.pdes_workers(8, requested=6) == 6
    # ...but never beyond the partition count.
    assert jobs.pdes_workers(4, requested=64) == 4
    assert jobs.pdes_workers(4, requested=1) == 1


def test_pdes_workers_derived_respects_sweep_pool(monkeypatch):
    monkeypatch.delenv("REPRO_PDES_WORKERS", raising=False)
    monkeypatch.setattr("os.cpu_count", lambda: 8)
    monkeypatch.delenv(jobs.ACTIVE_JOBS_ENV, raising=False)
    assert jobs.pdes_workers(16) == 8          # all cores
    monkeypatch.setenv(jobs.ACTIVE_JOBS_ENV, "4")
    assert jobs.pdes_workers(16) == 2          # cores // active jobs
    monkeypatch.setenv(jobs.ACTIVE_JOBS_ENV, "32")
    assert jobs.pdes_workers(16) == 1          # floor of one


def test_pdes_auto_allowed(monkeypatch):
    monkeypatch.delenv(jobs.ACTIVE_JOBS_ENV, raising=False)
    assert jobs.pdes_auto_allowed()
    monkeypatch.setenv(jobs.ACTIVE_JOBS_ENV, "8")
    assert not jobs.pdes_auto_allowed()


# ----------------------------------------------------------- cap algebra

finite_t = st.floats(min_value=0.0, max_value=100.0,
                     allow_nan=False, allow_infinity=False)
maybe_t = st.one_of(st.just(INF), finite_t)


@st.composite
def cap_states(draw):
    """A coordinator round's view: reals, neff, pendings, lookahead."""
    width = draw(st.integers(min_value=2, max_value=5))
    reals = draw(st.lists(maybe_t, min_size=width, max_size=width))
    # neff = reals lowered by own pending floors; pendings point at peers.
    pendings = []
    neff = list(reals)
    for i in range(width):
        floors = draw(st.lists(
            st.tuples(st.integers(min_value=0, max_value=width - 1),
                      finite_t),
            max_size=3))
        floors = [(owing, f) for owing, f in floors if owing != i]
        pendings.append(floors)
        for _owing, f in floors:
            neff[i] = min(neff[i], f)
    lookahead = draw(st.floats(min_value=0.0, max_value=10.0,
                               allow_nan=False))
    return neff, reals, pendings, lookahead


@given(cap_states())
def test_caps_never_exceed_peer_horizons(state):
    """cap_i <= N_j + L for every peer j: partition i can never run past
    the earliest instant any peer might still emit toward it."""
    neff, reals, pendings, lookahead = state
    caps = compute_caps(neff, reals, pendings, lookahead)
    width = len(neff)
    for i in range(width):
        for j in range(width):
            if j != i:
                assert caps[i] <= neff[j] + lookahead


@given(cap_states())
def test_caps_respect_ack_floors(state):
    """Every un-acked synchronous send pins its sender at
    max(arrival, reals[owing]) — it cannot outrun the remote deposit."""
    neff, reals, pendings, lookahead = state
    caps = compute_caps(neff, reals, pendings, lookahead)
    for i, floors in enumerate(pendings):
        for owing, floor in floors:
            assert caps[i] <= max(floor, reals[owing])


@given(cap_states())
def test_caps_ignore_own_frontier(state):
    """cap_i is independent of partition i's own frontier — lowering
    reals[i]/neff[i] must not change cap_i (no self-capping)."""
    neff, reals, pendings, lookahead = state
    caps = compute_caps(neff, reals, pendings, lookahead)
    for i in range(len(neff)):
        neff2, reals2 = list(neff), list(reals)
        neff2[i] = reals2[i] = 0.0
        # Floors owed *by others to i* reference reals[i]; keep those.
        if any(owing == i for fl in pendings for owing, _f in fl):
            continue
        caps2 = compute_caps(neff2, reals2, pendings, lookahead)
        assert caps2[i] == caps[i]


@given(cap_states(), st.floats(min_value=0.0, max_value=5.0,
                               allow_nan=False))
def test_caps_monotone_in_lookahead(state, bump):
    """More lookahead never shrinks any cap (it only buys freedom)."""
    neff, reals, pendings, lookahead = state
    lo = compute_caps(neff, reals, pendings, lookahead)
    hi = compute_caps(neff, reals, pendings, lookahead + bump)
    assert all(h >= l for l, h in zip(lo, hi))


@given(cap_states())
def test_gmin_owner_is_live(state):
    """Liveness: with run_epoch's raise-to-gmin rule, the partition
    holding the globally-earliest real event can always dispatch it."""
    neff, reals, pendings, lookahead = state
    gmin = min(reals)
    if gmin == INF:
        return
    caps = compute_caps(neff, reals, pendings, lookahead)
    i = reals.index(gmin)
    bound = max(caps[i], gmin)   # run_epoch raises bound < gmin to gmin
    assert bound >= gmin         # inclusive at gmin: the event dispatches


# ------------------------------------------- abstract scheduling model


@st.composite
def traffic_models(draw):
    """Random partitions, local event times, and message-emission plans."""
    width = draw(st.integers(min_value=2, max_value=4))
    lookahead = draw(st.floats(min_value=0.01, max_value=1.0,
                               allow_nan=False))
    events = []
    for _ in range(width):
        times = sorted(draw(st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            max_size=6)))
        events.append(times)
    # For each partition: which of its events emit, to whom, how late.
    emissions = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=width - 1),   # src
                  st.integers(min_value=0, max_value=5),           # event #
                  st.integers(min_value=0, max_value=width - 1),   # dst
                  st.floats(min_value=0.0, max_value=2.0,
                            allow_nan=False)),                     # extra
        max_size=8))
    return width, lookahead, events, emissions


@settings(max_examples=200, deadline=None)
@given(traffic_models())
def test_never_delivers_early(model):
    """The conservative contract, end to end on an abstract model.

    Partitions hold sorted local event queues; processing an event may
    emit a message that arrives at a peer ``lookahead + extra`` later
    (the lookahead is the minimum WAN propagation — nothing arrives
    sooner).  Rounds run the *real* ``compute_caps`` plus run_epoch's
    dispatch rules (exclusive below the cap, inclusive at gmin) plus
    the boundary's echo rule — an emission mid-epoch bounds the rest
    of that partition's epoch at ``arrival + lookahead``, because the
    epoch cap was computed before the message existed and the earliest
    reply lands after that instant.  (Dropping the echo rule makes
    hypothesis find the two-partition counterexample the real
    ``PartitionBoundary._echo`` machinery exists for.)  The assertion
    is the one the whole design exists for: no routed message is ever
    delivered at a time the destination has already passed.
    """
    width, lookahead, events, emissions = model
    queues = [list(ts) for ts in events]   # sorted local event times
    clocks = [0.0] * width
    emit_plan = {}
    for src, idx, dst, extra in emissions:
        if dst != src:
            emit_plan.setdefault((src, idx), (dst, extra))
    counts = [0] * width                   # events processed per partition

    for _round in range(200):
        reals = [q[0] if q else INF for q in queues]
        gmin = min(reals)
        if gmin == INF:
            break
        # No synchronous sends in the model: neff == reals, no floors.
        caps = compute_caps(reals, reals, [[] for _ in range(width)],
                            lookahead)
        for i in range(width):
            bound = max(caps[i], gmin)     # run_epoch's raise-to-gmin
            ebound = INF                   # echo bound of this epoch
            while queues[i]:
                nxt = queues[i][0]
                if nxt >= ebound:
                    break                  # boundary._probe's EpochBreak
                if not (nxt < bound or nxt == gmin):
                    break
                t = queues[i].pop(0)
                # Delivery: the destination must not have passed it.
                assert t >= clocks[i], (
                    f"partition {i} delivered at {t} after advancing "
                    f"to {clocks[i]} (cap {caps[i]}, gmin {gmin})")
                clocks[i] = t
                plan = emit_plan.get((i, counts[i]))
                counts[i] += 1
                if plan is not None:
                    dst, extra = plan
                    arrival = t + lookahead + extra
                    ebound = min(ebound, arrival + lookahead)
                    # Insert keeping the queue sorted.
                    q = queues[dst]
                    lo = 0
                    while lo < len(q) and q[lo] <= arrival:
                        lo += 1
                    q.insert(lo, arrival)
    else:
        pytest.fail("model did not drain in 200 rounds (liveness)")
    assert all(not q for q in queues)


def _run_epoch_model(model, skip):
    """The abstract model again, now with coordinator-style routing:
    emissions land in per-partition *inboxes* and reach the destination
    with its next grant, exactly like the real section routing.  With
    ``skip`` the grant/report round-trip is elided for partitions the
    quiescence rule marks inert; without it every partition is granted
    every round.  Returns the processed-event sequence and final clocks.
    """
    width, lookahead, events, emissions = model
    queues = [list(ts) for ts in events]
    inboxes = [[] for _ in range(width)]    # routed, not yet granted
    clocks = [0.0] * width
    emit_plan = {}
    for src, idx, dst, extra in emissions:
        if dst != src:
            emit_plan.setdefault((src, idx), (dst, extra))
    counts = [0] * width
    processed = []

    for _round in range(300):
        reals = [min(queues[i][0] if queues[i] else INF,
                     min(inboxes[i], default=INF))
                 for i in range(width)]
        gmin = min(reals)
        if gmin == INF:
            return processed, clocks
        caps = compute_caps(reals, reals, [[] for _ in range(width)],
                            lookahead)
        if skip:
            active = [i for i in range(width)
                      if inboxes[i] or caps[i] == INF
                      or (reals[i] != INF
                          and (caps[i] > reals[i] or reals[i] == gmin))]
        else:
            active = list(range(width))
        outbox = []
        for i in active:
            for arrival in inboxes[i]:      # the grant delivers the inbox
                q = queues[i]
                lo = 0
                while lo < len(q) and q[lo] <= arrival:
                    lo += 1
                q.insert(lo, arrival)
            inboxes[i] = []
            bound = max(caps[i], gmin)
            ebound = INF
            while queues[i]:
                nxt = queues[i][0]
                if nxt >= ebound:
                    break
                if not (nxt < bound or nxt == gmin):
                    break
                t = queues[i].pop(0)
                assert t >= clocks[i], "delivered into the past"
                clocks[i] = t
                processed.append((i, t))
                plan = emit_plan.get((i, counts[i]))
                counts[i] += 1
                if plan is not None:
                    dst, extra = plan
                    arrival = t + lookahead + extra
                    ebound = min(ebound, arrival + lookahead)
                    outbox.append((dst, arrival))
        for dst, arrival in outbox:         # reports route after the round
            inboxes[dst].append(arrival)
    pytest.fail("model did not drain in 300 rounds (liveness)")


@settings(max_examples=200, deadline=None)
@given(traffic_models())
def test_quiescence_skip_equals_full_protocol(model):
    """The coalescing rule elides only provable no-ops: running the
    same traffic with every partition granted every round and with the
    real quiescence skip produces the identical processed-event
    sequence and final clocks — a skipped report is never one the
    protocol needed.  (Weakening the rule — e.g. dropping the gmin
    clause — makes hypothesis find a stalled or diverging schedule.)

    Runs each model twice more with the lookahead collapsed to 0 — the
    jitter-impairment degenerate where partitions min-step in lockstep.
    That is the one regime where the gmin clause is load-bearing: with
    any positive lookahead, the gmin owner's cap strictly exceeds its
    frontier anyway, and a skip rule missing the clause would look
    correct."""
    width, lookahead, events, emissions = model
    for la in (lookahead, 0.0):
        m = (width, la, events, emissions)
        full = _run_epoch_model(m, skip=False)
        skipped = _run_epoch_model(m, skip=True)
        assert full == skipped
