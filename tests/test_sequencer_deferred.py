"""The token-ring idle shortcut: remote uncontended sequence acquires
take an analytically-scheduled deferred grant instead of running the
generator token protocol (ROADMAP perf follow-on, landed with the
scenario engine PR).

Record-for-record equality with the legacy tier is already pinned by
the golden suites; here we assert the shortcut actually *fires* on the
protocols it covers, and that results match the legacy path on the
broadcast-heavy apps that exercise it.
"""

import pytest

from repro.apps import make_app, small_params
from repro.harness import run_app
from repro.orca import sequencer as seq_mod


def _run(app, **kw):
    return run_app(make_app(app), "original", 2, 2, small_params(app), **kw)


@pytest.mark.parametrize("app,protocol", [
    ("asp", "distributed"),   # token ring: remote idle-token grants
    ("acp", "migrating"),     # migrating: remote takeover grants
])
def test_deferred_shortcut_fires(app, protocol, monkeypatch):
    fired = []
    original = seq_mod.SequencerProtocol._deferred_grant

    def counting(self, ring, cluster, dist):
        fired.append((type(self).__name__, cluster, dist))
        return original(self, ring, cluster, dist)

    monkeypatch.setattr(seq_mod.SequencerProtocol, "_deferred_grant",
                        counting)
    _run(app)
    assert fired, f"{protocol} never took the deferred shortcut"
    assert all(dist >= 1 for _cls, _cluster, dist in fired)


@pytest.mark.parametrize("app", ["asp", "acp"])
def test_deferred_shortcut_matches_legacy_tier(app):
    fast = _run(app)
    legacy = _run(app, fast_paths=False, runtime_fast_paths=False)
    assert fast.elapsed == legacy.elapsed
    assert fast.traffic == legacy.traffic


def test_base_protocol_declines_deferred():
    # Centralized sequencing stamps synchronously via try_acquire; the
    # deferred hook is a token-protocol refinement and the base must
    # decline it.
    class Probe(seq_mod.SequencerProtocol):
        pass

    probe = Probe.__new__(Probe)
    assert seq_mod.SequencerProtocol.try_acquire_deferred(probe, 0) is None
