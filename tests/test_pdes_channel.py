"""The PDES fast lane in isolation: codec round-trips and the ring.

The golden suite (``test_pdes_golden.py``) pins the *end-to-end*
contract — partitioned runs bit-identical to the oracle on either
transport.  This file pins the transport pieces directly, where
hypothesis can reach states real workloads rarely visit: every record
kind and payload shape through the packing codec, ring wraparound at
awkward capacities, and the full-buffer overflow path that falls back
to the pipe (loudly, counted) instead of corrupting or blocking.
"""

import multiprocessing as mp

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.message import Message
from repro.sim import SimulationError
from repro.sim.pdes.channel import (FINISH, GRANT, ShmChannel, ShmRing,
                                    decode_grant, decode_report,
                                    decode_section_items, encode_finish,
                                    encode_grant, encode_report,
                                    encode_sections)

INF = float("inf")

finite_t = st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False)
names = st.text(st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1, max_size=12)
payloads = st.one_of(
    st.none(),
    st.integers(min_value=-2**40, max_value=2**40),
    st.text(max_size=20),
    st.tuples(st.integers(min_value=0, max_value=999), st.text(max_size=6)),
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=3),
)


@st.composite
def routed_items(draw, min_size=0):
    """A mixed outbox: ("msg", ...) and ("ack", ...) item tuples."""
    width = draw(st.integers(min_value=2, max_value=4))
    items = []
    n = draw(st.integers(min_value=min_size, max_value=10))
    for _ in range(n):
        dst = draw(st.integers(min_value=0, max_value=width - 1))
        if draw(st.booleans()):
            msg = Message(
                src=draw(st.integers(min_value=0, max_value=10_000)),
                dst=draw(st.integers(min_value=0, max_value=10_000)),
                size=draw(st.integers(min_value=0, max_value=2**40)),
                payload=draw(payloads),
                port=draw(names), kind=draw(names),
                msg_id=draw(st.integers(min_value=0, max_value=2**50)),
                send_time=draw(finite_t), recv_time=draw(finite_t))
            items.append(("msg", dst, msg, draw(finite_t), draw(names)))
        else:
            items.append(("ack", dst,
                          draw(st.integers(min_value=0, max_value=2**50)),
                          draw(finite_t)))
    return items


def _by_dst(items):
    """Group items by destination in wire order: messages then acks,
    each kind keeping its original order.  Relative msg/ack interleaving
    is not part of the contract — both carry their own timestamps and
    the boundary schedules them by time, never by block position."""
    groups = {}
    for item in items:
        groups.setdefault(item[1], []).append(item)
    return {dst: [it for it in group if it[0] == "msg"]
            + [it for it in group if it[0] == "ack"]
            for dst, group in groups.items()}


@settings(max_examples=150, deadline=None)
@given(routed_items(min_size=1))
def test_codec_sections_round_trip(items):
    """Every record kind and payload shape survives the packing codec."""
    sections = encode_sections(items)
    decoded = [decode_section_items(raw) for raw in sections]
    expected = _by_dst(items)
    assert len(decoded) == len(expected)
    for group in decoded:
        dst = group[0][1]
        assert group == expected[dst]


@settings(max_examples=100, deadline=None)
@given(routed_items(),
       st.one_of(st.none(), finite_t), finite_t)
def test_codec_grant_round_trip(items, cap, gmin):
    """cap (None rides as inf), gmin, and all routed items come back."""
    sections = encode_sections(items)
    kind, cap2, gmin2, decoded = decode_grant(
        encode_grant(cap, gmin, sections))
    assert kind == GRANT
    assert cap2 == cap
    assert gmin2 == gmin
    expected = _by_dst(items)
    assert len(decoded) == sum(len(g) for g in expected.values())
    # Grants flatten sections; per-destination order is preserved.
    for dst, group in expected.items():
        assert [it for it in decoded if it[1] == dst] == group


@settings(max_examples=100, deadline=None)
@given(routed_items(), finite_t,
       st.one_of(st.none(), finite_t),
       st.lists(st.tuples(st.integers(min_value=0, max_value=7), finite_t),
                max_size=4))
def test_codec_report_round_trip(items, clock, frontier, pendings):
    """clock, the dry-frontier None/NaN dance, floors and section
    headers (the only part the coordinator reads) all round-trip."""
    sections = encode_sections(items)
    clock2, frontier2, pend2, secs2 = decode_report(
        encode_report(clock, frontier, pendings, sections))
    assert clock2 == clock
    assert frontier2 == frontier
    assert list(pend2) == pendings
    expected = _by_dst(items)
    assert len(secs2) == len(expected)
    for sec in secs2:
        group = expected[sec.dst]
        assert sec.n_msgs == sum(1 for it in group if it[0] == "msg")
        assert sec.n_acks == sum(1 for it in group if it[0] == "ack")
        assert sec.min_time == min(it[3] for it in group)
        # The raw bytes the coordinator routes decode at the far end.
        assert decode_section_items(sec.raw) == group


def test_codec_finish_block():
    kind, cap, gmin, items = decode_grant(encode_finish())
    assert kind == FINISH
    assert items == ()


def test_decode_report_rejects_foreign_block():
    sections = encode_sections([("ack", 0, 1, 1.0)])
    with pytest.raises(SimulationError, match="bad report block"):
        decode_report(encode_grant(None, 0.0, sections))


# ------------------------------------------------------------------- ring


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=64, max_value=257),
       st.lists(st.binary(max_size=48), min_size=1, max_size=64))
def test_ring_round_trip_with_wraparound(capacity, blobs):
    """Alternating write/read at arbitrary capacities: every record
    comes back intact across the wrap seam (split copies both ways)."""
    ring = ShmRing(capacity)
    for blob in blobs:
        if len(blob) + 4 > capacity:
            assert not ring.try_write(blob)
            continue
        assert ring.try_write(blob)
        assert ring.read() == blob
    assert ring.head == ring.tail


def test_ring_queues_multiple_records():
    ring = ShmRing(64)
    assert ring.try_write(b"abc")
    assert ring.try_write(b"")
    assert ring.try_write(b"d" * 20)
    assert ring.read() == b"abc"
    assert ring.read() == b""
    assert ring.read() == b"d" * 20


def test_ring_full_refuses_without_corruption():
    """A record that cannot fit leaves the ring (and cursors) untouched;
    space freed by the consumer becomes writable again."""
    ring = ShmRing(64)
    assert ring.try_write(b"x" * 40)
    head, tail = ring.head, ring.tail
    assert not ring.try_write(b"y" * 40)        # 44 > 64-44 free
    assert (ring.head, ring.tail) == (head, tail)
    assert ring.read() == b"x" * 40
    assert ring.try_write(b"y" * 40)            # freed space reusable
    assert ring.read() == b"y" * 40


# ----------------------------------------------------- overflow fallback


def _loopback_channel(capacity=64):
    """An ShmChannel with both ends live in this process (no fork), so
    parent-side and worker-side calls can be driven directly."""
    return ShmChannel(mp.get_context("fork"), capacity)


def test_shm_overflow_falls_back_to_pipe_and_counts():
    """A block bigger than the ring rides the setup pipe behind the
    1-byte marker — delivered intact, counted on the parent side."""
    chan = _loopback_channel(64)
    big = bytes(range(256)) * 4                 # 1 KiB >> 64 B ring
    try:
        chan.send(big)
        assert chan.overflows == 1
        assert chan.w_recv() == big

        chan.w_send(big)                        # worker -> parent leg
        assert chan.recv(None, 0) == big
        assert chan.overflows == 2
        assert chan.bytes_in == len(big)
    finally:
        chan.close()


def test_shm_small_blocks_never_touch_the_pipe():
    chan = _loopback_channel(256)
    try:
        chan.send(b"grant")
        assert chan.w_recv() == b"grant"
        chan.w_send(b"report")
        assert chan.recv(None, 0) == b"report"
        assert chan.overflows == 0
        assert not chan.conn.poll(0)            # pipe stayed idle
    finally:
        chan.close()
