"""Unit tests for the job-queue organizations."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    DONE,
    IdleTracker,
    cluster_first_order,
    fifo_queue_spec,
    partition_static,
    power_of_two_order,
)
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import OrcaRuntime
from repro.sim import Simulator


def make_rts(n_clusters=2, nodes_per_cluster=4):
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(n_clusters, nodes_per_cluster),
                    DAS_PARAMS)
    return sim, OrcaRuntime(sim, fabric)


# ---------------------------------------------------------------- FIFO spec


def test_fifo_queue_put_get_close():
    sim, rts = make_rts()
    rts.register(fifo_queue_spec("q", owner=0, initial=["a", "b"]))

    def consumer(nid, out):
        ctx = rts.context(nid)
        while True:
            job = yield from ctx.invoke("q", "get")
            if job == DONE:
                return
            out.append(job)

    def master():
        ctx = rts.context(0)
        yield from ctx.invoke("q", "put", "c")
        yield from ctx.invoke("q", "close")

    out = []
    sim.spawn(consumer(1, out))
    sim.spawn(master())
    sim.run()
    assert sorted(out) == ["a", "b", "c"]


def test_fifo_queue_consumers_from_all_clusters():
    sim, rts = make_rts(n_clusters=2, nodes_per_cluster=3)
    jobs = list(range(20))
    rts.register(fifo_queue_spec("q", owner=0, initial=jobs))

    def master():
        ctx = rts.context(0)
        yield from ctx.invoke("q", "close")

    results = []

    def worker(nid):
        ctx = rts.context(nid)
        while True:
            job = yield from ctx.invoke("q", "get")
            if job == DONE:
                return
            results.append((nid, job))

    for nid in range(6):
        sim.spawn(worker(nid))
    sim.spawn(master())
    sim.run()
    assert sorted(j for _, j in results) == jobs
    # Remote-cluster fetches crossed the WAN.
    assert rts.meter.row("rpc", intercluster=True).count > 0


def test_fifo_queue_put_after_close_rejected():
    sim, rts = make_rts()
    rts.register(fifo_queue_spec("q", owner=0))

    def proc():
        ctx = rts.context(0)
        yield from ctx.invoke("q", "close")
        yield from ctx.invoke("q", "put", 1)

    with pytest.raises(ValueError, match="after close"):
        sim.run_process(proc())


def test_fifo_queue_done_sentinel_for_every_waiter():
    sim, rts = make_rts()
    rts.register(fifo_queue_spec("q", owner=0))

    def worker(nid):
        ctx = rts.context(nid)
        job = yield from ctx.invoke("q", "get")
        return job

    workers = [sim.spawn(worker(nid)) for nid in range(4)]

    def master():
        ctx = rts.context(0)
        yield from ctx.sleep(0.01)
        yield from ctx.invoke("q", "close")

    sim.spawn(master())
    sim.run()
    assert all(w.value == DONE for w in workers)


# --------------------------------------------------------------- partition


def test_partition_static_covers_all_jobs():
    jobs = list(range(17))
    parts = partition_static(jobs, 4)
    assert sorted(j for p in parts for j in p) == jobs
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1


def test_partition_static_single_part():
    assert partition_static([1, 2], 1) == [[1, 2]]


def test_partition_static_invalid():
    with pytest.raises(ValueError):
        partition_static([1], 0)


@given(st.lists(st.integers(), max_size=200), st.integers(1, 16))
def test_partition_static_property(jobs, n):
    parts = partition_static(jobs, n)
    assert len(parts) == n
    flat = sorted(j for p in parts for j in p)
    assert flat == sorted(jobs)
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1


# ------------------------------------------------------------- steal order


def test_power_of_two_order_covers_all_peers():
    for p in (2, 3, 8, 15, 60):
        for me in (0, p // 2, p - 1):
            order = power_of_two_order(p, me)
            assert sorted(order) == sorted(set(range(p)) - {me})


def test_power_of_two_order_prefix():
    order = power_of_two_order(16, 0)
    assert order[:4] == [1, 2, 4, 8]


def test_power_of_two_order_out_of_range():
    with pytest.raises(ValueError):
        power_of_two_order(4, 4)


@given(st.integers(2, 64))
def test_power_of_two_order_is_permutation(p):
    for me in (0, p - 1):
        order = power_of_two_order(p, me)
        assert len(order) == p - 1
        assert len(set(order)) == p - 1
        assert me not in order


def test_cluster_first_order_puts_local_victims_first():
    topo = uniform_clusters(4, 4)
    me = 14  # cluster 3
    order = cluster_first_order(topo, me)
    local = [v for v in order if topo.cluster_of(v) == 3]
    assert order[:len(local)] == local
    assert sorted(order) == sorted(set(range(16)) - {me})


def test_cluster_first_order_highest_numbered_node_fixed():
    # The paper's pathology: the highest-numbered process in a cluster
    # starts stealing in remote clusters first under the original order.
    topo = uniform_clusters(4, 15)
    me = 14  # last node of cluster 0
    original = power_of_two_order(60, me)
    assert topo.cluster_of(original[0]) != 0  # original starts remote
    fixed = cluster_first_order(topo, me, original)
    assert topo.cluster_of(fixed[0]) == 0


# ------------------------------------------------------------- idle tracker


def test_idle_tracker_filtering():
    tr = IdleTracker(8)
    tr.mark_idle(3)
    tr.mark_idle(5)
    assert tr.filter([1, 3, 5, 7]) == [1, 7]
    tr.mark_active(3)
    assert tr.filter([1, 3, 5, 7]) == [1, 3, 7]
    assert tr.idle_count == 1
    assert tr.is_idle(5)
    assert not tr.is_idle(0)
