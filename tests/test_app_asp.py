"""Tests for the ASP application."""

import numpy as np
import pytest

from repro.apps.asp import ASPApp, ASPParams
from repro.apps.asp import graph
from repro.harness import run_app


# ----------------------------------------------------------------- domain


def test_random_graph_shape_and_diagonal():
    p = ASPParams.small(n_vertices=20)
    d = graph.random_graph(p)
    assert d.shape == (20, 20)
    assert (np.diag(d) == 0).all()


def test_sequential_reference_satisfies_triangle_inequality():
    p = ASPParams.small(n_vertices=24)
    d = graph.sequential_reference(p)
    # d[i,j] <= d[i,k] + d[k,j] for all triples (spot-check a sample).
    for k in range(0, 24, 5):
        assert (d <= d[:, k, None] + d[None, k, :]).all()


def test_relax_block_matches_naive():
    p = ASPParams.small(n_vertices=16)
    d = graph.random_graph(p)
    block = d[:4].copy()
    expected = np.minimum(block, block[:, 7, None] + d[7][None, :])
    graph.relax_block(block, block[:, 7].copy(), d[7])
    np.testing.assert_array_equal(block, expected)


# ------------------------------------------------------------ application


@pytest.mark.parametrize("variant", ["original", "optimized"])
@pytest.mark.parametrize("shape", [(1, 1), (1, 4), (2, 3), (4, 2)])
def test_asp_matches_sequential_reference(variant, shape):
    params = ASPParams.small(n_vertices=30)
    ref = graph.sequential_reference(params)
    res = run_app(ASPApp(), variant, shape[0], shape[1], params)
    np.testing.assert_array_equal(res.answer, ref)


def test_asp_broadcast_count_equals_vertices():
    params = ASPParams.small(n_vertices=24)
    res = run_app(ASPApp(), "original", 2, 3, params)
    bcasts = res.traffic["inter.bcast"]["count"]
    assert bcasts == 24


def test_asp_optimized_uses_migrating_sequencer():
    assert ASPApp().sequencer_for("optimized") == "migrating"
    assert ASPApp().sequencer_for("original") == "distributed"


def test_asp_optimized_faster_on_multicluster():
    params = ASPParams.paper().with_(n_vertices=120)
    orig = run_app(ASPApp(), "original", 4, 4, params)
    opt = run_app(ASPApp(), "optimized", 4, 4, params)
    assert opt.elapsed < 0.8 * orig.elapsed


def test_asp_single_cluster_variants_equivalent():
    # With one cluster there is no WAN: both sequencers behave the same.
    params = ASPParams.paper().with_(n_vertices=60)
    orig = run_app(ASPApp(), "original", 1, 6, params)
    opt = run_app(ASPApp(), "optimized", 1, 6, params)
    assert opt.elapsed == pytest.approx(orig.elapsed, rel=0.05)


def test_asp_multicluster_much_slower_for_original():
    params = ASPParams.paper().with_(n_vertices=120)
    one = run_app(ASPApp(), "original", 1, 16, params)
    four = run_app(ASPApp(), "original", 4, 4, params)
    assert four.elapsed > 2 * one.elapsed
