"""Unit tests for the shared-object model."""

import numpy as np
import pytest

from repro.orca import Blocked, ObjectSpec, Operation, Replica, estimate_bytes


def test_estimate_bytes_scalars():
    assert estimate_bytes(None) == 0
    assert estimate_bytes(True) == 1
    assert estimate_bytes(7) == 8
    assert estimate_bytes(3.14) == 8
    assert estimate_bytes("hello") == 5
    assert estimate_bytes(b"abc") == 3


def test_estimate_bytes_containers():
    assert estimate_bytes([1, 2, 3]) == 8 + 24
    assert estimate_bytes({"a": 1}) == 8 + 1 + 8
    assert estimate_bytes((1, (2, 3))) == 8 + 8 + (8 + 16)


def test_estimate_bytes_numpy():
    arr = np.zeros(100, dtype=np.float64)
    assert estimate_bytes(arr) == 800


def test_operation_static_sizes():
    op = Operation(fn=lambda s: None, arg_bytes=100, result_bytes=50)
    assert op.args_size(()) == 100
    assert op.result_size(None) == 50


def test_operation_callable_sizes():
    op = Operation(fn=lambda s, x: x * 2,
                   arg_bytes=lambda x: x,
                   result_bytes=lambda r: r)
    assert op.args_size((10,)) == 10
    assert op.result_size(14) == 14


def test_operation_default_sizes_fall_back_to_estimate():
    op = Operation(fn=lambda s, x: None)
    assert op.args_size((7,)) == 8 + 8  # tuple overhead + one int


def test_operation_cost_callable():
    op = Operation(fn=lambda s, n: None, cpu_cost=lambda n: n * 1e-6)
    assert op.cost((5,)) == pytest.approx(5e-6)


def test_objectspec_requires_operations():
    with pytest.raises(ValueError):
        ObjectSpec("empty", dict, {})


def test_objectspec_unknown_op():
    spec = ObjectSpec("o", dict, {"get": Operation(fn=lambda s: s)})
    with pytest.raises(KeyError, match="no operation"):
        spec.op("missing")


def test_replica_execute_and_blocked():
    def deq(state):
        if not state:
            raise Blocked
        return state.pop(0)

    spec = ObjectSpec("q", list, {"deq": Operation(fn=deq, writes=True)})
    rep = Replica(spec, [1, 2])
    assert rep.execute("deq", ()) == 1
    assert rep.execute("deq", ()) == 2
    with pytest.raises(Blocked):
        rep.execute("deq", ())
