"""Tests for the Water application: correctness and wide-area behavior."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.water import WaterApp, WaterParams
from repro.apps.water import model
from repro.harness import run_app


# ----------------------------------------------------------------- model


def test_window_covers_every_pair_exactly_once():
    for p in (1, 2, 3, 4, 5, 8, 15, 16):
        seen = set()
        for k in range(p):
            for b in model.window(p, k):
                pair = frozenset((k, b))
                assert pair not in seen, f"pair {pair} counted twice (p={p})"
                seen.add(pair)
        assert len(seen) == p * (p - 1) // 2


@given(st.integers(1, 64))
def test_window_property_all_pairs_once(p):
    count = sum(len(model.window(p, k)) for k in range(p))
    assert count == p * (p - 1) // 2


def test_writers_of_is_inverse_of_window():
    p = 8
    for k in range(p):
        for b in model.window(p, k):
            assert k in model.writers_of(p, b)


def test_block_slices_partition():
    sl = model.block_slices(10, 3)
    assert sl == [(0, 4), (4, 7), (7, 10)]
    sl = model.block_slices(60, 60)
    assert all(b - a == 1 for a, b in sl)


def test_pair_forces_newtons_third_law():
    rng = np.random.default_rng(0)
    a, b = rng.random((5, 3)), rng.random((7, 3))
    fa, fb = model.pair_forces(a, b, softening=0.5)
    np.testing.assert_allclose(fa.sum(axis=0), -fb.sum(axis=0), atol=1e-12)


def test_self_forces_sum_to_zero():
    rng = np.random.default_rng(1)
    pos = rng.random((9, 3))
    f = model.self_forces(pos, softening=0.5)
    np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-12)


def test_self_forces_single_molecule():
    f = model.self_forces(np.zeros((1, 3)), softening=0.5)
    np.testing.assert_array_equal(f, 0.0)


# ---------------------------------------------------------- application


@pytest.mark.parametrize("variant", ["original", "optimized"])
@pytest.mark.parametrize("shape", [(1, 1), (1, 4), (2, 3), (4, 2)])
def test_water_matches_sequential_reference(variant, shape):
    params = WaterParams.small(n_molecules=40, n_steps=2)
    ref = model.sequential_reference(params)
    res = run_app(WaterApp(), variant, shape[0], shape[1], params)
    np.testing.assert_allclose(res.answer, ref, rtol=1e-9, atol=1e-9)


def test_water_pair_counts_match_sequential_total():
    params = WaterParams.small(n_molecules=36, n_steps=1)
    res = run_app(WaterApp(), "original", 2, 3, params)
    assert res.stats["pairs"] == 36 * 35 // 2


def test_water_original_uses_rpc():
    params = WaterParams.small(n_molecules=40, n_steps=1)
    res = run_app(WaterApp(), "original", 2, 2, params)
    rpc_inter = res.traffic.get("inter.rpc", {"count": 0})
    assert rpc_inter["count"] > 0


def test_water_optimized_reduces_intercluster_rpc_bytes():
    params = WaterParams.paper().with_(n_molecules=240, n_steps=2)
    orig = run_app(WaterApp(), "original", 4, 4, params)
    opt = run_app(WaterApp(), "optimized", 4, 4, params)
    ob = orig.traffic["inter.rpc"]["bytes"]
    nb = opt.traffic["inter.rpc"]["bytes"]
    assert nb < 0.5 * ob  # paper: 56,826 KB -> 5,179 KB


def test_water_optimized_faster_on_four_clusters():
    params = WaterParams.paper().with_(n_molecules=480)
    orig = run_app(WaterApp(), "original", 4, 4, params)
    opt = run_app(WaterApp(), "optimized", 4, 4, params)
    assert opt.elapsed < orig.elapsed


def test_water_multicluster_hurts_original():
    params = WaterParams.paper().with_(n_molecules=480)
    one = run_app(WaterApp(), "original", 1, 16, params)
    four = run_app(WaterApp(), "original", 4, 4, params)
    assert four.elapsed > one.elapsed


def test_water_synthetic_and_real_have_same_traffic():
    base = WaterParams.small(n_molecules=48, n_steps=2)
    real = run_app(WaterApp(), "original", 2, 3, base)
    synth = run_app(WaterApp(), "original", 2, 3, base.with_(kernel="synthetic"))
    assert real.traffic["inter.rpc"]["count"] == synth.traffic["inter.rpc"]["count"]
    assert real.elapsed == pytest.approx(synth.elapsed, rel=1e-6)
