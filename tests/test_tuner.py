"""The auto-tuner: cost fits, the frozen DecisionModel, and its runtime
effect.

Covers the pure model layer (least-squares fit, crossover semantics,
JSON round-trip, validation), the golden contract that an installed
model with no deviation from the defaults — and especially *no* model —
is bit-identical to the fixed strategy, the physics the tuner is meant
to discover (striping overlaps loss-retransmit timeouts), and the
harness plumbing: probes traced as ``tune.probe``, ``RunSpec`` cache
keys that distinguish decisions, per-seed reproducibility, and serial
vs ``--jobs N`` equality.
"""

import math

import pytest

from repro.apps import make_app, small_params
from repro.harness.experiment import run_app
from repro.harness.sweeps import ParallelRunner, RunSpec
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.network.message import reset_ids
from repro.orca.broadcast import BB_THRESHOLD
from repro.scenario import Impairment, Scenario, install
from repro.sim import Simulator, Tracer
from repro.tuner import (PRIMITIVES, ContextModel, DecisionModel, FittedLine,
                         Strategy, crossover, fit, fit_line, sweep, tune)

LOSSY = Scenario(seed=5, impairments=(Impairment.of("loss", p=0.3,
                                                    rto=0.05),))


# ------------------------------------------------------------ model layer

def test_fit_line_exact_recovery():
    line = fit_line([(0, 1.0), (100, 3.0), (200, 5.0)])
    assert line.a == pytest.approx(1.0)
    assert line.b == pytest.approx(0.02)
    assert line.cost(50) == pytest.approx(2.0)


def test_fit_line_degenerate_points():
    assert fit_line([(64, 2.0)]) == FittedLine(2.0, 0.0)
    same_x = fit_line([(64, 1.0), (64, 3.0)])
    assert same_x == FittedLine(2.0, 0.0)
    with pytest.raises(ValueError):
        fit_line([])


def test_crossover_semantics():
    pb, bb = FittedLine(0.0, 4e-6), FittedLine(0.1, 2e-6)
    assert crossover(pb, bb) == pytest.approx(50_000)
    # Parallel lines: whoever is lower wins everywhere.
    assert crossover(FittedLine(1.0, 1e-6), FittedLine(2.0, 1e-6)) \
        == float("inf")
    assert crossover(FittedLine(2.0, 1e-6), FittedLine(1.0, 1e-6)) == 0.0
    # Identical lines fall back to the caller's default.
    assert crossover(pb, pb) == float(BB_THRESHOLD)
    assert crossover(pb, pb, default=42.0) == 42.0
    # BB cheaper only *below* the intersection -> never/always semantics.
    assert crossover(FittedLine(0.0, 2e-6), FittedLine(0.1, 4e-6)) \
        == float("inf")


def test_strategy_validation():
    with pytest.raises(ValueError, match="shape"):
        Strategy(bb=True, shape="ring")
    with pytest.raises(ValueError, match="streams"):
        Strategy(bb=True, streams=0)


def _model(thr=1024.0, shapes=(), streams=()):
    ctx = ContextModel(n_clusters=2, pb=FittedLine(0.0, 4e-6),
                       bb=FittedLine(thr * 2e-6, 2e-6), bb_threshold=thr,
                       shapes=tuple(shapes), streams=tuple(streams))
    return DecisionModel(contexts=((2, ctx),), source="test")


def test_decision_model_lookup_and_validation():
    flat, chain = FittedLine(0.1, 1e-6), FittedLine(0.05, 2e-6)
    model = DecisionModel(contexts=(
        (2, ContextModel(2, FittedLine(0, 1e-6), FittedLine(0, 5e-7), 0.0,
                         shapes=(("chain", chain), ("flat", flat)),
                         streams=((1, flat), (4, chain)))),
        (8, ContextModel(8, FittedLine(0, 1e-6), FittedLine(1, 1e-6),
                         float("inf")))))
    # Nearest probed context answers; ties break toward fewer clusters.
    assert model.context_for(2).n_clusters == 2
    assert model.context_for(4).n_clusters == 2
    assert model.context_for(5).n_clusters == 2
    assert model.context_for(100).n_clusters == 8
    # Shape/stream argmin flips with size (lines cross at 50 kB).
    assert model.strategy(1024, 2).shape == "chain"
    assert model.strategy(200_000, 2).shape == "flat"
    assert model.wan_streams(1024, 2) == 4
    assert model.wan_streams(200_000, 2) == 1
    # Single-cluster runs never shape or stripe a WAN that isn't there.
    strat = model.strategy(200_000, 1)
    assert strat.shape == "flat" and strat.streams == 1
    assert model.wan_streams(1024, 1) == 1
    with pytest.raises(ValueError, match="duplicate"):
        DecisionModel(contexts=((2, model.context_for(2)),
                                (2, model.context_for(2))))
    with pytest.raises(ValueError, match="contexts"):
        DecisionModel(contexts=()).context_for(2)


def test_json_round_trip():
    flat, chain = FittedLine(0.1, 1e-6), FittedLine(0.05, 2e-6)
    model = _model(shapes=(("chain", chain), ("flat", flat)),
                   streams=((1, flat), (2, chain)))
    again = DecisionModel.from_json(model.to_json())
    assert again == model
    assert hash(again) == hash(model)
    with pytest.raises(ValueError, match="not a repro.tuner"):
        DecisionModel.from_json('{"model": "something-else"}')
    with pytest.raises(ValueError, match="version"):
        DecisionModel.from_json(
            '{"model": "repro.tuner.DecisionModel", "version": 99}')


# ------------------------------------------- golden: the default tier

def test_no_model_is_bit_identical_to_pre_tuner_fixed_strategy():
    """A model pinned to the fixed defaults (threshold at BB_THRESHOLD,
    no shape/stream lines) must reproduce a no-model app run exactly —
    trace records included."""
    pinned = DecisionModel(contexts=((2, ContextModel(
        2, FittedLine(0.0, 2.0 ** -18),
        FittedLine(BB_THRESHOLD * 2.0 ** -19, 2.0 ** -19),
        float(BB_THRESHOLD))),))

    def traced(decision):
        tracer = Tracer()
        res = run_app(make_app("asp"), "original", 2, 2,
                      small_params("asp"), scenario=LOSSY, trace=True,
                      tracer=tracer, decision=decision)
        return res, [(r.time, r.kind, tuple(sorted(r.detail.items())))
                     for r in tracer.records]

    none_res, none_recs = traced(None)
    pinned_res, pinned_recs = traced(pinned)
    assert none_res.elapsed == pinned_res.elapsed
    assert none_res.traffic == pinned_res.traffic
    assert none_recs == pinned_recs


# ------------------------------------------------- the physics to find

def _timed_send(streams, scenario, size=65536):
    reset_ids()
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(2, 2), DAS_PARAMS)
    install(sim, fabric, scenario)
    if streams > 1:
        fabric.decision = _model(streams=((1, FittedLine(1.0, 0.0)),
                                          (streams, FittedLine(0.0, 0.0))))

    def proc():
        yield from fabric.send_and_wait(0, 2, size)

    sim.run_process(proc())
    return sim.now


def test_striping_overlaps_loss_retransmits():
    """Under loss, 4-stream striping overlaps the rto waits and pays
    4x-cheaper retransmit serializations — the *mean* win the tuner is
    built to discover (MPWide).  Per-seed either side can get lucky, so
    this averages a fixed seed set (fully deterministic)."""
    import dataclasses

    def mean(streams):
        return sum(_timed_send(streams, dataclasses.replace(LOSSY, seed=s))
                   for s in range(20)) / 20

    assert mean(4) < mean(1)


def test_sweep_probes_traced_and_fit_covers_primitives():
    tracer = Tracer()
    tracer.enabled = True
    probes = sweep(sizes=(512, 8192), cluster_counts=(1, 2),
                   nodes_per_cluster=2, scenarios=(None,), reps=1,
                   tracer=tracer)
    labels = {p.primitive for p in probes}
    # WAN-only primitives are skipped on the single-cluster topology...
    assert {"bcast_pb", "bcast_bb"} <= labels
    assert {p.primitive for p in probes if p.n_clusters == 1} \
        == {"bcast_pb", "bcast_bb"}
    # ...and expanded (stripe -> stripe_k) on the multi-cluster one.
    wan = {p.primitive for p in probes if p.n_clusters == 2}
    for name, spec in PRIMITIVES.items():
        if name == "stripe":
            assert {"stripe_1", "stripe_2", "stripe_4"} <= wan
        elif name.startswith("fanout_"):
            assert name in wan
    # Every probe left an attributable trace record.
    probe_recs = [r for r in tracer.records if r.kind == "tune.probe"]
    assert len(probe_recs) == len(probes)
    assert all(set(r.detail) >= {"primitive", "size", "clusters", "rep"}
               for r in probe_recs)
    model = fit(probes, source="test sweep")
    assert [n for n, _ctx in model.contexts] == [1, 2]
    assert model.context_for(2).shapes and model.context_for(2).streams
    assert not model.context_for(1).shapes


def test_fit_requires_ordering_probes():
    with pytest.raises(ValueError, match="probes"):
        fit([])


# ----------------------------------------------------- harness plumbing

def test_runspec_cache_key_distinguishes_decisions():
    params = small_params("asp")
    base = RunSpec("asp", "original", 2, 2, params)
    tuned = RunSpec("asp", "original", 2, 2, params, decision=_model())
    other = RunSpec("asp", "original", 2, 2, params,
                    decision=_model(thr=2048.0))
    same = RunSpec("asp", "original", 2, 2, params, decision=_model())
    assert base.key() != tuned.key()
    assert tuned.key() != other.key()
    assert tuned.key() == same.key()


def test_tuned_run_per_seed_reproducible_and_parallel_equal():
    model = tune(sizes=(256, 8192), cluster_counts=(2,),
                 nodes_per_cluster=2, scenarios=(LOSSY,), seeds=(0,),
                 reps=1)
    params = small_params("ra")
    spec = RunSpec("ra", "original", 2, 2, params, scenario=LOSSY,
                   decision=model)
    serial = ParallelRunner(jobs=1, cache=None)
    once = serial.run([spec, spec])
    assert once[0].elapsed == once[1].elapsed  # same seed -> same run
    assert once[0].traffic == once[1].traffic
    parallel = ParallelRunner(jobs=2, cache=None)
    twice = parallel.run([spec, spec])
    assert [r.elapsed for r in twice] == [r.elapsed for r in once]
    assert [r.traffic for r in twice] == [r.traffic for r in once]
    # A different scenario seed is a different (still deterministic) run.
    import dataclasses
    other_seed = dataclasses.replace(LOSSY, seed=6)
    other = serial.run_one(RunSpec("ra", "original", 2, 2, params,
                                   scenario=other_seed, decision=model))
    assert other.elapsed != once[0].elapsed
