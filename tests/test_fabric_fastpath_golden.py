"""Golden equivalence: the fabric fast paths vs the process-per-leg legacy.

The event-minimizing message path (callback-chained fabric legs,
``Resource.occupy`` analytic holds) is a *host-time* optimization: the
determinism contract in ``ARCHITECTURE.md`` promises that every
application produces bit-identical virtual-time results either way —
same answer, same elapsed time, same traffic counters, and, with
tracing on, the *same trace records in the same order*.

This suite pins that contract two ways:

* a golden sweep of all eight paper applications over single-cluster,
  two-cluster and four-cluster topologies, comparing a fast-path run
  against a legacy run record-for-record;
* hypothesis property tests that drive :meth:`Resource.occupy` and
  :meth:`CPU.execute_ev` against the explicit request/timeout/release
  process pattern under random contention and assert identical
  completion times and busy-time accounting.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import PAPER_ORDER, make_app, small_params
from repro.harness.experiment import run_app
from repro.sim import CPU, Resource, Simulator, Tracer

#: One small, one medium, one wide topology — exercises the self, LAN
#: and WAN delivery paths plus gateway multicast fan-out.
TOPOLOGIES = [(1, 4), (2, 3), (4, 2)]

#: Process-lifecycle records are the one intended difference: the fast
#: paths exist precisely to not spawn a process per message leg.
PROCESS_KINDS = {"proc.spawn", "proc.finish"}


def _eq(a, b):
    """Structural equality that tolerates numpy answers."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(a, b)
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_eq(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_eq(x, y) for x, y in zip(a, b))
    return a == b


def _traced_run(app_name, fast, n_clusters, nodes_per_cluster):
    app = make_app(app_name)
    tracer = Tracer()
    result = run_app(app, app.variants[0], n_clusters, nodes_per_cluster,
                     small_params(app_name), trace=True, tracer=tracer,
                     fast_paths=fast)
    records = [(r.time, r.kind, tuple(sorted(r.detail.items())))
               for r in tracer.records if r.kind not in PROCESS_KINDS]
    return result, records


@pytest.mark.parametrize("app_name", PAPER_ORDER)
def test_fast_paths_bit_identical(app_name):
    for n_clusters, nodes in TOPOLOGIES:
        fast, fast_recs = _traced_run(app_name, True, n_clusters, nodes)
        legacy, legacy_recs = _traced_run(app_name, False, n_clusters, nodes)
        label = f"{app_name} {n_clusters}x{nodes}"
        assert _eq(fast.answer, legacy.answer), label
        assert fast.elapsed == legacy.elapsed, label
        assert fast.traffic == legacy.traffic, label  # incl. WAN bytes
        # Strict: same records, same order, same times, same fields.
        assert fast_recs == legacy_recs, label


def test_fast_paths_identical_untraced():
    """The contract holds with tracing off too (the default fast tier)."""
    for fast in (True, False):
        result = run_app(make_app("tsp"), "original", 2, 2,
                         small_params("tsp"), fast_paths=fast)
        if fast:
            reference = result
    assert _eq(reference.answer, result.answer)
    assert reference.elapsed == result.elapsed
    assert reference.traffic == result.traffic


# --------------------------------------------------------------------------
# Property tests: occupy() == request/timeout/release under contention.

#: (start, hold, priority) triples.  Integer-derived floats keep the
#: arithmetic identical between the two executions; equal starts and
#: zero-length holds are the interesting collision cases.
_JOBS = st.lists(
    st.tuples(st.integers(0, 6).map(lambda t: t * 0.5),     # start
              st.integers(0, 8).map(lambda d: d * 0.25),    # hold
              st.integers(0, 1)),                           # priority
    min_size=1, max_size=12)


def _via_occupy(capacity, jobs):
    sim = Simulator()
    res = Resource(sim, capacity)
    done = [None] * len(jobs)

    def launch(i, hold, priority):
        ev = res.occupy(hold, priority)
        ev.callbacks.append(lambda _e, i=i: done.__setitem__(i, sim.now))

    for i, (start, hold, priority) in enumerate(jobs):
        sim.after(start, lambda _e, i=i, h=hold, p=priority: launch(i, h, p))
    sim.run()
    return done, res.busy_time(), res.in_use


def _via_process(capacity, jobs):
    """The pattern ``occupy`` replaced: spawn a request/hold/release
    process at the start instant.  (Parity is with a freshly *spawned*
    process — spawn posts a bootstrap event, so the request lands one
    dispatch after the call, exactly where ``occupy`` defers its
    request at busy instants.)"""
    sim = Simulator()
    res = Resource(sim, capacity)
    done = [None] * len(jobs)

    def worker(i, hold, priority):
        yield res.request(priority)
        try:
            yield sim.timeout(hold)
        finally:
            res.release()
        done[i] = sim.now

    for i, (start, hold, priority) in enumerate(jobs):
        sim.after(start, lambda _e, i=i, h=hold, p=priority:
                  sim.spawn(worker(i, h, p)))
    sim.run()
    return done, res.busy_time(), res.in_use


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 3), _JOBS)
def test_occupy_matches_process_pattern(capacity, jobs):
    fast_done, fast_busy, fast_in_use = _via_occupy(capacity, jobs)
    slow_done, slow_busy, slow_in_use = _via_process(capacity, jobs)
    assert fast_done == slow_done
    assert fast_busy == slow_busy
    assert fast_in_use == slow_in_use == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5).map(lambda d: d * 0.125),
                          st.integers(0, 1)),
                min_size=1, max_size=8))
def test_execute_ev_matches_execute(charges):
    """``CPU.execute_ev`` holds the CPU exactly like ``CPU.execute``."""
    def waiter(ev):
        yield ev

    def via_ev():
        sim = Simulator()
        cpu = CPU(sim)
        for seconds, priority in charges:
            sim.spawn(waiter(cpu.execute_ev(seconds, priority)))
        sim.run()
        return sim.now, cpu.busy_time()

    def via_gen():
        sim = Simulator()
        cpu = CPU(sim)
        for seconds, priority in charges:
            sim.spawn(cpu.execute(seconds, priority))
        sim.run()
        return sim.now, cpu.busy_time()

    assert via_ev() == via_gen()


def test_occupy_rejects_negative():
    sim = Simulator()
    res = Resource(sim, 1)
    from repro.sim import SimulationError
    with pytest.raises(SimulationError):
        res.occupy(-1.0)
