"""Unit tests for the cluster_scatter collective."""

import pytest

from repro.core import cluster_scatter
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import OrcaRuntime
from repro.sim import Simulator


def run_scatter(n_clusters, per, root=0, value="payload"):
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(n_clusters, per), DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)
    results = {}

    def party(nid):
        ctx = rts.context(nid)
        v = yield from cluster_scatter(ctx, value if nid == root else None,
                                       size=16, root=root, tag="t")
        results[nid] = v

    for nid in range(fabric.topo.n_nodes):
        sim.spawn(party(nid))
    sim.run()
    return rts, results


@pytest.mark.parametrize("shape", [(1, 1), (1, 6), (2, 4), (4, 3)])
def test_scatter_delivers_root_value_everywhere(shape):
    _, results = run_scatter(*shape)
    assert all(v == "payload" for v in results.values())
    assert len(results) == shape[0] * shape[1]


def test_scatter_uses_one_wan_message_per_remote_cluster():
    rts, _ = run_scatter(4, 4)
    assert rts.meter.wan_messages == 3


def test_scatter_from_non_representative_root():
    rts, results = run_scatter(3, 4, root=5, value=42)
    assert all(v == 42 for v in results.values())
    assert rts.meter.wan_messages == 2


def test_scatter_single_node():
    _, results = run_scatter(1, 1, value="solo")
    assert results == {0: "solo"}


def test_scatter_reusable_with_distinct_tags():
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(2, 2), DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)
    seen = {}

    def party(nid):
        ctx = rts.context(nid)
        out = []
        for rnd in range(3):
            v = yield from cluster_scatter(ctx, rnd if nid == 0 else None,
                                           size=8, root=0, tag=f"r{rnd}")
            out.append(v)
        seen[nid] = out

    for nid in range(4):
        sim.spawn(party(nid))
    sim.run()
    assert all(v == [0, 1, 2] for v in seen.values())
