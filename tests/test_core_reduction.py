"""Unit tests for flat vs cluster-level reductions."""

import pytest

from repro.core import cluster_reduce, flat_reduce
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import OrcaRuntime
from repro.sim import Simulator


def run_reduce(kind, n_clusters, nodes_per_cluster, root=0):
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(n_clusters, nodes_per_cluster),
                    DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)
    fn = flat_reduce if kind == "flat" else cluster_reduce
    results = {}

    def party(nid):
        ctx = rts.context(nid)
        r = yield from fn(ctx, nid + 1, lambda a, b: a + b, size=8, root=root,
                          tag=f"t{kind}")
        results[nid] = r

    for nid in range(fabric.topo.n_nodes):
        sim.spawn(party(nid))
    sim.run()
    return rts, results


@pytest.mark.parametrize("kind", ["flat", "tree"])
@pytest.mark.parametrize("shape", [(1, 8), (2, 4), (4, 3)])
def test_reduce_computes_sum_at_root(kind, shape):
    rts, results = run_reduce(kind, *shape)
    n = shape[0] * shape[1]
    expected = n * (n + 1) // 2
    assert results[0] == expected
    assert all(v is None for nid, v in results.items() if nid != 0)


def test_cluster_reduce_uses_fewer_intercluster_messages():
    rts_flat, _ = run_reduce("flat", 4, 4)
    rts_tree, _ = run_reduce("tree", 4, 4)
    flat_inter = rts_flat.meter.row("rpc", intercluster=True).count
    tree_inter = rts_tree.meter.row("rpc", intercluster=True).count
    # Flat: 12 of the 15 contributors are remote.  Tree: 3 representatives.
    assert flat_inter == 12
    assert tree_inter == 3


def test_cluster_reduce_nonzero_root_not_representative():
    # Root in the middle of cluster 1 (not a cluster representative).
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(3, 4), DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)
    root = 6
    results = {}

    def party(nid):
        ctx = rts.context(nid)
        r = yield from cluster_reduce(ctx, 1, lambda a, b: a + b, size=8,
                                      root=root, tag="nr")
        results[nid] = r

    for nid in range(12):
        sim.spawn(party(nid))
    sim.run()
    assert results[root] == 12
    assert all(v is None for nid, v in results.items() if nid != root)


def test_tree_reduce_two_clusters_of_five():
    rts, results = run_reduce("tree", 2, 5)
    assert results[0] == 55  # sum of 1..10 regardless of arrival order
