"""Unit tests for cluster-level message combining."""

import pytest

from repro.core import ClusterCombiner, CombinerConfig
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import OrcaRuntime
from repro.sim import Simulator


def make(n_clusters=2, nodes_per_cluster=4, **cfg):
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(n_clusters, nodes_per_cluster),
                    DAS_PARAMS)
    rts = OrcaRuntime(sim, fabric)
    comb = ClusterCombiner(rts, CombinerConfig(**cfg) if cfg else None)
    return sim, rts, comb


def test_intracluster_messages_pass_through():
    sim, rts, comb = make()
    got = []

    def sender():
        ctx = rts.context(1)
        yield from comb.send(ctx, 2, 100, payload="local", port="p")

    def receiver():
        ctx = rts.context(2)
        msg = yield from ctx.receive(port="p")
        got.append(msg.payload)

    sim.spawn(sender())
    sim.spawn(receiver())
    sim.run()
    assert got == ["local"]
    assert comb.flushes == 0


def test_intercluster_messages_are_combined_and_delivered():
    sim, rts, comb = make(max_messages=8, max_delay=0.5)
    received = {}

    def sender(nid, dst, tag):
        ctx = rts.context(nid)
        yield from comb.send(ctx, dst, 50, payload=tag, port="p")

    def receiver(nid, expect):
        ctx = rts.context(nid)
        out = []
        for _ in range(expect):
            msg = yield from ctx.receive(port="p")
            out.append(msg.payload)
        received[nid] = out

    # 8 messages from cluster 0 to two different nodes of cluster 1.
    for i in range(8):
        sim.spawn(sender(i % 4, 4 + (i % 2), f"m{i}"))
    sim.spawn(receiver(4, 4))
    sim.spawn(receiver(5, 4))
    sim.run()
    assert sorted(received[4] + received[5]) == [f"m{i}" for i in range(8)]
    # All 8 messages crossed the WAN in a single combined flush.
    assert comb.flushes == 1
    assert comb.combined_messages == 1


def test_byte_threshold_triggers_flush():
    sim, rts, comb = make(max_messages=1000, max_bytes=200, max_delay=10.0)

    def sender():
        ctx = rts.context(0)
        for i in range(3):
            yield from comb.send(ctx, 4, 80, payload=i, port="p")

    def receiver():
        ctx = rts.context(4)
        out = []
        for _ in range(3):
            msg = yield from ctx.receive(port="p")
            out.append(msg.payload)
        return out

    sim.spawn(sender())
    p = sim.spawn(receiver())
    sim.run(until=1.0)
    assert p.triggered  # flushed by bytes, well before the 10 s timer
    assert p.value == [0, 1, 2]


def test_timer_flushes_stragglers():
    sim, rts, comb = make(max_messages=100, max_bytes=10**6, max_delay=0.002)

    def sender():
        ctx = rts.context(1)
        yield from comb.send(ctx, 5, 10, payload="only", port="p")

    def receiver():
        ctx = rts.context(5)
        msg = yield from ctx.receive(port="p")
        return (msg.payload, sim.now)

    sim.spawn(sender())
    p = sim.spawn(receiver())
    sim.run(until=1.0)
    payload, t = p.value
    assert payload == "only"
    assert 0.002 <= t < 0.02


def test_combining_reduces_wan_messages():
    # 64 small messages, combined vs direct: far fewer WAN crossings.
    def run(combined):
        sim, rts, comb = make(max_messages=16, max_delay=0.01)

        def sender(nid):
            ctx = rts.context(nid)
            for i in range(16):
                if combined:
                    yield from comb.send(ctx, 4, 20, payload=i, port="p")
                else:
                    yield from ctx.send(4, 20, payload=i, port="p")

        def receiver():
            ctx = rts.context(4)
            for _ in range(64):
                yield from ctx.receive(port="p")

        for nid in range(4):
            sim.spawn(sender(nid))
        done = sim.spawn(receiver())
        sim.run()
        assert done.triggered
        return rts.meter.wan_messages

    assert run(combined=False) == 64
    assert run(combined=True) <= 8


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        CombinerConfig(max_messages=0)
    with pytest.raises(ValueError):
        CombinerConfig(max_delay=0)


def test_combiner_node_sending_for_itself():
    sim, rts, comb = make(max_messages=1)

    def sender():
        ctx = rts.context(0)  # node 0 IS the cluster-0 combiner
        yield from comb.send(ctx, 6, 40, payload="direct", port="p")

    def receiver():
        ctx = rts.context(6)
        msg = yield from ctx.receive(port="p")
        return msg.payload

    sim.spawn(sender())
    p = sim.spawn(receiver())
    sim.run()
    assert p.value == "direct"
