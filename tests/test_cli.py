"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "water" in out and "fig15" in out


def test_cli_table1(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "RPC" in out


def test_cli_table_unknown(capsys):
    assert main(["table", "3"]) == 2


def test_cli_figure_small(capsys):
    assert main(["figure", "fig7", "--cpus", "4"]) == 0
    out = capsys.readouterr().out
    assert "fig7" in out and "speedup" in out


def test_cli_figure_unknown():
    assert main(["figure", "fig99"]) == 2


def test_cli_app_run(capsys):
    assert main(["app", "atpg", "--variant", "optimized",
                 "--clusters", "2", "--nodes", "2"]) == 0
    out = capsys.readouterr().out
    assert "atpg/optimized on 2x2" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])
