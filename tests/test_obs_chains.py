"""Causal message chains: synthetic hop math and real multi-hop paths."""

import pytest

from repro.apps import PAPER_ORDER, make_app, small_params
from repro.harness import run_app
from repro.obs.chains import (
    CHAIN_KINDS,
    build_chains,
    chain_stats,
    format_chain,
    format_chains,
    hop_attribution,
)
from repro.obs.schema import KINDS, validate_records
from repro.sim import Tracer
from repro.sim.trace import TraceRecord


def span(kind, t0, dur, **detail):
    detail.update(t0=t0, dur=dur)
    return TraceRecord(t0 + dur, kind, detail)


def _wan_story(msg_id=7):
    """A full hand-built intercluster journey node0 (c0) -> node3 (c1)."""
    send = TraceRecord(0.0, "msg.send", dict(
        msg_id=msg_id, src=0, dst=3, size=64, msg_kind="rpc", port="p",
        scope="wan"))
    path = [
        span("link.busy", 0.0, 0.10, link="gwaccess0", cls="access",
             size=64, wait=0.0, msg_id=msg_id),
        span("gw.forward", 0.10, 0.15, cluster=0, size=64, qdepth=1,
             msg_id=msg_id),
        span("link.busy", 0.25, 0.05, link="wan(0, 1)", cls="wan",
             size=64, wait=0.0, msg_id=msg_id),
        span("wan.xfer", 0.25, 0.15, src_cluster=0, dst_cluster=1,
             size=64, tx=0.05, msg_id=msg_id),
        span("gw.forward", 0.40, 0.05, cluster=1, size=64, qdepth=1,
             msg_id=msg_id),
        span("link.busy", 0.45, 0.01, link="gwaccess1", cls="access",
             size=64, wait=0.0, msg_id=msg_id),
    ]
    deliver = TraceRecord(0.5, "msg.deliver", dict(
        msg_id=msg_id, src=0, dst=3, size=64, msg_kind="rpc", port="p",
        latency=0.5))
    return [send] + path + [deliver]


# ------------------------------------------------------- synthetic math

def test_chain_hops_telescope_to_the_exact_latency():
    records = _wan_story()
    assert validate_records(records) == []
    chains, counts = build_chains(records)
    assert counts == {"chains": 1, "unmatched_send": 0,
                      "unmatched_deliver": 0, "shared_spans": 0,
                      "orphan_spans": 0}
    (chain,) = chains
    assert chain.intercluster and chain.scope == "wan"
    assert chain.latency == pytest.approx(0.5, abs=1e-12)
    assert chain.attributed == pytest.approx(chain.latency, abs=1e-9)
    assert [h.cls for h in chain.hops] == [
        "access", "gateway", "wan", "wan_latency", "gateway", "access",
        "delivery"]
    assert [h.elapsed for h in chain.hops] == pytest.approx(
        [0.10, 0.15, 0.05, 0.10, 0.05, 0.01, 0.04])
    # Each hop starts where the previous one ended.
    for prev, nxt in zip(chain.hops, chain.hops[1:]):
        assert nxt.start == prev.end
    assert chain.hops[0].start == chain.send_time
    assert chain.hops[-1].end == chain.deliver_time
    assert "wan_latency:c0->c1" in format_chain(chain)


def test_spanless_chain_gets_a_single_local_hop():
    records = [
        TraceRecord(1.0, "msg.send", dict(
            msg_id=1, src=2, dst=2, size=8, msg_kind="msg", port="p",
            scope="self")),
        TraceRecord(1.25, "msg.deliver", dict(
            msg_id=1, src=2, dst=2, size=8, msg_kind="msg", port="p",
            latency=0.25)),
    ]
    chains, _counts = build_chains(records)
    (chain,) = chains
    assert [h.cls for h in chain.hops] == ["local"]
    assert chain.attributed == pytest.approx(0.25)


def test_unmatched_shared_and_orphan_spans_are_counted():
    story = _wan_story()
    send_only = TraceRecord(2.0, "msg.send", dict(
        msg_id=50, src=0, dst=1, size=8, msg_kind="msg", port="p",
        scope="lan"))
    deliver_only = TraceRecord(3.0, "msg.deliver", dict(
        msg_id=60, src=0, dst=1, size=8, msg_kind="bcast", port="p",
        latency=0.5))
    shared = span("link.busy", 2.0, 0.1, link="lanout0", cls="lan_out",
                  size=8, wait=0.0, msg_id=-1)
    orphan = span("link.busy", 2.0, 0.1, link="lanout0", cls="lan_out",
                  size=8, wait=0.0, msg_id=50)  # send 50 never delivers
    records = story + [send_only, deliver_only, shared, orphan]
    chains, counts = build_chains(records)
    assert len(chains) == 1
    assert counts["unmatched_send"] == 1
    assert counts["unmatched_deliver"] == 1
    assert counts["shared_spans"] == 1
    assert counts["orphan_spans"] == 1


def test_hop_attribution_partitions_wan_latency():
    records = _wan_story(7) + _wan_story(8)
    chains, _counts = build_chains(records)
    attrib = hop_attribution(chains, scope="wan")
    total_latency = sum(c.latency for c in chains)
    assert sum(attrib.values()) == pytest.approx(total_latency, abs=1e-9)
    stats = chain_stats(chains)
    assert stats["wan"]["count"] == 2
    assert stats["wan"]["mean_latency"] == pytest.approx(0.5)


def test_chain_kinds_is_a_valid_emit_filter():
    assert CHAIN_KINDS <= set(KINDS)


# ------------------------------------------------------------ real runs

@pytest.mark.parametrize("app_name", PAPER_ORDER)
def test_every_app_yields_attributed_intercluster_chains(app_name):
    # The per-app acceptance bar: at least one reconstructed intercluster
    # message path whose per-hop attribution sums to the send->deliver
    # latency.  Broadcast-only apps (asp, acp) ship their sequencer
    # requests point-to-point only when stamping is remote, so the run
    # uses the centralized sequencer protocol.
    tracer = Tracer(kinds=CHAIN_KINDS)
    run_app(make_app(app_name), "original", 2, 2, small_params(app_name),
            sequencer="centralized", trace=True, tracer=tracer)
    chains, counts = build_chains(tracer.records)
    assert counts["chains"] == len(chains) > 0
    wan = [c for c in chains if c.intercluster]
    assert wan, f"{app_name}: no intercluster chain reconstructed"
    for chain in chains:
        assert chain.attributed == pytest.approx(chain.latency, abs=1e-9)
    # Intercluster chains cross the full path: access links on both
    # sides, both gateways, the PVC, and its propagation remainder.
    for chain in wan:
        classes = [h.cls for h in chain.hops]
        for expected in ("access", "gateway", "wan", "wan_latency"):
            assert expected in classes, (app_name, classes)
    assert format_chains(chains, counts)  # renders


def test_chains_join_on_run_local_ids_across_repeat_runs():
    def chains_of():
        tracer = Tracer(kinds=CHAIN_KINDS)
        run_app(make_app("tsp"), "original", 2, 2, small_params("tsp"),
                trace=True, tracer=tracer)
        return build_chains(tracer.records)

    first, counts1 = chains_of()
    second, counts2 = chains_of()
    assert counts1 == counts2
    assert [(c.msg_id, c.send_time, c.deliver_time) for c in first] == \
        [(c.msg_id, c.send_time, c.deliver_time) for c in second]
    # Ids restart each run: per-site sequences begin at 0 again, so
    # every id decodes to (src, small sequence number).
    from repro.network.message import MSG_ID_STRIDE
    budget = len(first) + counts1["unmatched_send"] + \
        counts1["unmatched_deliver"] + 10
    for c in first:
        assert c.msg_id // MSG_ID_STRIDE == c.src
        assert c.msg_id % MSG_ID_STRIDE < budget


# -------------------------------------------------------------- the CLI

def test_cli_chains(capsys, monkeypatch):
    from repro.__main__ import main

    monkeypatch.setattr("repro.harness.bench_params", small_params)
    assert main(["chains", "water", "--clusters", "2", "--nodes", "2",
                 "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "message chains reconstructed" in out
    assert "intercluster latency by hop" in out
    assert "wan_latency:" in out


def test_cli_chains_centralized_sequencer_for_broadcast_app(capsys,
                                                            monkeypatch):
    from repro.__main__ import main

    monkeypatch.setattr("repro.harness.bench_params", small_params)
    assert main(["chains", "asp", "--clusters", "2", "--nodes", "2",
                 "--sequencer", "centralized"]) == 0
    out = capsys.readouterr().out
    assert "wan" in out and "slowest" in out
