"""The trace schema: registry sanity, validation, and real traced runs."""

import pytest

from repro.apps import make_app, small_params
from repro.harness import run_app
from repro.obs.schema import (
    KINDS,
    SPAN_KINDS,
    classify_link,
    validate_record,
    validate_records,
)
from repro.sim import Tracer
from repro.sim.trace import TraceRecord


# ------------------------------------------------------------- registry

def test_every_kind_has_emitter_doc_and_fields():
    for name, spec in KINDS.items():
        assert spec.name == name
        assert spec.emitter.startswith("repro.")
        assert spec.doc
        assert spec.fields
        for field, (type_tag, unit) in spec.fields.items():
            assert type_tag in ("int", "float", "str", "bool"), (name, field)
            assert unit


def test_span_kinds_carry_t0_dur():
    assert SPAN_KINDS  # the schema has spans
    for name in SPAN_KINDS:
        fields = KINDS[name].fields
        assert "t0" in fields and "dur" in fields
    for name in set(KINDS) - SPAN_KINDS:
        fields = KINDS[name].fields
        assert "t0" not in fields and "dur" not in fields


# ----------------------------------------------------------- validation

def test_validate_rejects_unknown_kind():
    rec = TraceRecord(0.0, "no.such_kind", {})
    assert validate_record(rec) == ["unknown kind 'no.such_kind'"]


def test_validate_rejects_missing_and_undeclared_fields():
    rec = TraceRecord(1.0, "proc.spawn", {"pid": 3, "bogus": 1})
    problems = validate_record(rec)
    assert any("missing field 'name'" in p for p in problems)
    assert any("undeclared field 'bogus'" in p for p in problems)


def test_validate_rejects_wrong_types():
    # bool is not an int, str is not an int
    rec = TraceRecord(1.0, "proc.spawn", {"pid": True, "name": "w"})
    assert any("expected int" in p for p in validate_record(rec))
    rec = TraceRecord(1.0, "proc.spawn", {"pid": "3", "name": "w"})
    assert any("expected int" in p for p in validate_record(rec))


def test_validate_rejects_inconsistent_span():
    good = {"cluster": 0, "size": 64, "qdepth": 1, "msg_id": -1,
            "t0": 1.0, "dur": 0.5}
    assert validate_record(TraceRecord(1.5, "gw.forward", dict(good))) == []
    bad = dict(good, dur=-0.5)
    assert any("negative dur" in p
               for p in validate_record(TraceRecord(0.5, "gw.forward", bad)))
    assert any("!= t0+dur" in p
               for p in validate_record(TraceRecord(2.0, "gw.forward",
                                                    dict(good))))


def test_classify_link():
    assert classify_link("lanout3") == "lan_out"
    assert classify_link("lanin12") == "lan_in"
    assert classify_link("gwaccess0") == "access"
    assert classify_link("wan(0, 1)") == "wan"
    assert classify_link("cpu7") == "other"


# ------------------------------------------------- real traced runs

@pytest.mark.parametrize("app_name", ["tsp", "asp"])
def test_real_traces_validate(app_name):
    tracer = Tracer()
    run_app(make_app(app_name), "original", 2, 2, small_params(app_name),
            trace=True, tracer=tracer)
    assert len(tracer.records) > 0
    assert validate_records(tracer.records) == []


def test_traced_run_emits_the_expected_kinds():
    tracer = Tracer()
    run_app(make_app("asp"), "original", 2, 2, small_params("asp"),
            trace=True, tracer=tracer)
    kinds = {r.kind for r in tracer.records}
    # ASP is broadcast-bound: the whole ordered-broadcast story plus the
    # message/link substrate must appear.
    for expected in ("proc.spawn", "proc.finish", "msg.send", "msg.deliver",
                     "link.busy", "gw.forward", "wan.xfer", "bcast.issue",
                     "bcast.complete", "bcast.apply", "seq.acquire"):
        assert expected in kinds, expected
    assert kinds <= set(KINDS)


def test_emit_time_filter_drops_other_kinds():
    tracer = Tracer(kinds=frozenset({"msg.send"}))
    run_app(make_app("tsp"), "original", 2, 2, small_params("tsp"),
            trace=True, tracer=tracer)
    assert tracer.records
    assert {r.kind for r in tracer.records} == {"msg.send"}


def test_untraced_run_collects_nothing():
    tracer = Tracer()
    run_app(make_app("tsp"), "original", 2, 2, small_params("tsp"),
            tracer=tracer)  # trace not requested
    assert tracer.records == []
