"""Tests for the IDA* application."""

import pytest

from repro.apps.ida import IDAApp, IDAParams
from repro.apps.ida import puzzle
from repro.harness import run_app


# ----------------------------------------------------------------- domain


def test_scrambled_is_solvable_permutation():
    p = IDAParams.small()
    state = puzzle.scrambled(p)
    assert sorted(state) == list(range(16))
    assert state != puzzle.GOAL


def test_manhattan_goal_is_zero():
    assert puzzle.manhattan(puzzle.GOAL) == 0


def test_manhattan_single_swap():
    state = list(puzzle.GOAL)
    state[14], state[15] = state[15], state[14]  # move tile 15 right
    assert puzzle.manhattan(tuple(state)) == 1


def test_expand_no_backtrack():
    children = puzzle.expand(puzzle.GOAL, last_blank=-1)
    blank = puzzle.GOAL.index(0)  # 15
    assert len(children) == len(puzzle.NEIGHBORS[blank])
    # Forbid going straight back.
    child, old_blank = children[0]
    grand = puzzle.expand(child, old_blank)
    assert all(g.index(0) != blank or True for g, _ in grand)
    assert len(grand) == len(puzzle.NEIGHBORS[child.index(0)]) - 1


def test_dfs_finds_goal_at_heuristic_bound():
    p = IDAParams.small(scramble_moves=8)
    root = puzzle.scrambled(p)
    bound, solutions, nodes = puzzle.sequential_reference(p)
    assert solutions >= 1
    assert bound >= puzzle.manhattan(root)
    assert bound <= 8  # random walk of 8 is an upper bound on distance
    assert nodes > 0


def test_generate_jobs_frontier_size():
    p = IDAParams.small()
    root, jobs = puzzle.generate_jobs(p)
    assert len(jobs) >= 4  # no-backtrack expansion: >= 2 children per level
    assert all(g == p.frontier_depth for _, g, _ in jobs
               if _ != puzzle.GOAL or True)


def test_synthetic_job_nodes_grow_with_iteration():
    p = IDAParams.paper()
    for j in range(5):
        sizes = [puzzle.synthetic_job_nodes(p, j, i) for i in range(3)]
        assert sizes[0] < sizes[1] < sizes[2]


# ------------------------------------------------------------ application


@pytest.mark.parametrize("variant", ["original", "optimized"])
@pytest.mark.parametrize("shape", [(1, 1), (2, 2), (4, 2)])
def test_ida_matches_sequential_reference(variant, shape):
    params = IDAParams.small(scramble_moves=10)
    ref = puzzle.sequential_reference(params)
    res = run_app(IDAApp(), variant, shape[0], shape[1], params)
    assert res.answer == ref


def test_ida_synthetic_processes_all_jobs_every_iteration():
    params = IDAParams.paper().with_(synth_iterations=2)
    res = run_app(IDAApp(), "original", 2, 4, params)
    bound, solutions, nodes = res.answer
    expected = sum(puzzle.synthetic_job_nodes(params, j, i)
                   for j in range(params.synth_jobs) for i in range(2))
    assert nodes == expected
    assert solutions == 1


def test_ida_optimized_reduces_remote_steals():
    params = IDAParams.paper().with_(synth_iterations=3)
    orig = run_app(IDAApp(), "original", 4, 4, params)
    opt = run_app(IDAApp(), "optimized", 4, 4, params)
    assert opt.stats["remote"] <= orig.stats["remote"]
    assert orig.stats["requests"] > 0


def test_ida_speedup_barely_changes_with_optimization():
    """Paper: the steal optimizations halve intercluster requests but the
    speedup hardly moves (load balance is already good)."""
    params = IDAParams.paper().with_(synth_iterations=3)
    orig = run_app(IDAApp(), "original", 4, 4, params)
    opt = run_app(IDAApp(), "optimized", 4, 4, params)
    assert opt.elapsed == pytest.approx(orig.elapsed, rel=0.15)


def test_ida_multicluster_performs_well():
    """Paper Figure 11: IDA* runs close to the single-cluster bound."""
    params = IDAParams.paper().with_(synth_iterations=3)
    one = run_app(IDAApp(), "original", 1, 16, params)
    four = run_app(IDAApp(), "original", 4, 4, params)
    assert four.elapsed < 1.4 * one.elapsed
