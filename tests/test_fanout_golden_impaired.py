"""Golden equivalence: WAN fan-out fallback routes, fast tier vs legacy.

The fast tier keeps its callback chains only for the unimpaired,
flat-shape, single-stream fan-out; anything else — an installed
scenario (``self.impair is not None``), a chain/binomial shape, or
k-stream striping — routes through a *spawned* legacy generator leg.
That spawned-fallback route was previously untested against the pure
legacy tier (``fast_paths=False``): this suite pins it bit-identical —
same completion virtual times, same per-call delivery counts, same
traffic counters, and the same trace records in the same order.

Also here: tuned whole-app parity (a DecisionModel installed under an
impaired scenario must give the same virtual-time results on both
fabric tiers).
"""

import pytest

from repro.apps import make_app, small_params
from repro.harness.experiment import run_app
from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.network.message import reset_ids
from repro.scenario import Impairment, Scenario, install
from repro.sim import Simulator, Tracer
from repro.tuner import DecisionModel, tune

PROCESS_KINDS = {"proc.spawn", "proc.finish"}

#: Every impairment model that perturbs the WAN transfer path.
IMPAIRED = Scenario(
    seed=11,
    impairments=(Impairment.of("jitter", sigma=0.3),
                 Impairment.of("loss", p=0.2, rto=0.01),
                 Impairment.of("bw_dip", depth=0.5, period=0.02),
                 Impairment.of("cross_traffic", load=0.5)))


def _fanout_run(fast, scenario, shape="flat", streams=1, n_clusters=4,
                repeats=4, size=4096):
    """Trace ``repeats`` back-to-back fan-outs on one fabric tier."""
    reset_ids()
    sim = Simulator()
    topo = uniform_clusters(n_clusters, 3)
    tracer = Tracer()
    fabric = Fabric(sim, topo, DAS_PARAMS, tracer=tracer,
                    fast_paths=fast)
    fabric.tracer.enabled = True
    if scenario is not None:
        install(sim, fabric, scenario)
    times, counts = [], []

    def driver():
        for _ in range(repeats):
            done = yield from fabric.wan_fanout_multicast(
                0, size, shape=shape, streams=streams)
            count = yield done
            times.append(sim.now)
            counts.append(count)

    sim.run_process(driver())
    records = [(r.time, r.kind, tuple(sorted(r.detail.items())))
               for r in tracer.records if r.kind not in PROCESS_KINDS]
    return times, counts, fabric.meter.snapshot(), records


@pytest.mark.parametrize("shape", ["flat", "chain", "binomial"])
@pytest.mark.parametrize("streams", [1, 4])
def test_impaired_fanout_fast_vs_legacy(shape, streams):
    """The spawned-fallback route under impairments is bit-identical to
    the legacy tier for every shape x stream combination."""
    fast = _fanout_run(True, IMPAIRED, shape=shape, streams=streams)
    legacy = _fanout_run(False, IMPAIRED, shape=shape, streams=streams)
    label = f"shape={shape} streams={streams}"
    assert fast[0] == legacy[0], label  # completion virtual times
    assert fast[1] == legacy[1], label  # delivery counts
    assert fast[2] == legacy[2], label  # traffic meter
    assert fast[3] == legacy[3], label  # trace records, order included


@pytest.mark.parametrize("shape", ["chain", "binomial"])
def test_clean_shaped_fanout_fast_vs_legacy(shape):
    """Non-default shapes route legacy even unimpaired; still golden."""
    fast = _fanout_run(True, None, shape=shape)
    legacy = _fanout_run(False, None, shape=shape)
    assert fast == legacy


def test_clean_striped_fanout_fast_vs_legacy():
    fast = _fanout_run(True, None, streams=4)
    legacy = _fanout_run(False, None, streams=4)
    assert fast == legacy


def test_two_cluster_impaired_fanout_fast_vs_legacy():
    """A single PVC (no fan-out concurrency) hits the same golden bar."""
    fast = _fanout_run(True, IMPAIRED, n_clusters=2)
    legacy = _fanout_run(False, IMPAIRED, n_clusters=2)
    assert fast == legacy


def _tiny_model():
    return tune(sizes=(256, 16384), cluster_counts=(2,),
                nodes_per_cluster=2, scenarios=(IMPAIRED,), seeds=(0,),
                reps=1)


def test_tuned_app_fast_vs_legacy():
    """A tuned app run under impairments is tier-independent too."""
    model = _tiny_model()
    assert isinstance(model, DecisionModel)
    app, params = make_app("asp"), small_params("asp")
    results = [run_app(app, "original", 2, 2, params, scenario=IMPAIRED,
                       decision=model, fast_paths=fast)
               for fast in (True, False)]
    fast_res, legacy_res = results
    assert fast_res.elapsed == legacy_res.elapsed
    assert fast_res.traffic == legacy_res.traffic
