"""Bounded tracing: ring buffers, deterministic sampling, TraceSpec."""

import pickle

import pytest

from repro.apps import make_app, small_params
from repro.harness import run_app
from repro.sim import Tracer, TraceSpec
from repro.sim.trace import TraceRecord


def emit_n(tracer, kind, n):
    for i in range(n):
        tracer.emit(float(i), kind, pid=i, name="w")


# ----------------------------------------------------------------- ring

def test_ring_keeps_the_last_n_records():
    tracer = Tracer(enabled=True, ring=3)
    emit_n(tracer, "proc.spawn", 10)
    assert len(tracer.records) == 3
    assert [r.time for r in tracer.records] == [7.0, 8.0, 9.0]
    assert tracer.dropped == 7


def test_ring_rejects_nonpositive_capacity():
    with pytest.raises(ValueError, match="ring"):
        Tracer(ring=0)
    with pytest.raises(ValueError, match="ring"):
        Tracer(ring=-5)


def test_ring_clear_resets_buffer_and_counter():
    tracer = Tracer(enabled=True, ring=2)
    emit_n(tracer, "proc.spawn", 5)
    tracer.clear()
    assert list(tracer.records) == []
    assert tracer.dropped == 0
    emit_n(tracer, "proc.spawn", 1)
    assert len(tracer.records) == 1


# ------------------------------------------------------------- sampling

def test_sampling_keeps_first_of_every_k():
    tracer = Tracer(enabled=True, sample={"proc.spawn": 4})
    emit_n(tracer, "proc.spawn", 10)
    assert [r.time for r in tracer.records] == [0.0, 4.0, 8.0]
    assert tracer.dropped == 7


def test_sampling_is_per_kind():
    tracer = Tracer(enabled=True, sample={"proc.spawn": 2})
    tracer.emit(0.0, "proc.spawn", pid=0, name="w")
    tracer.emit(1.0, "proc.finish", pid=0, name="w")  # unsampled kind
    tracer.emit(2.0, "proc.spawn", pid=1, name="w")   # 2nd of 2: dropped
    tracer.emit(3.0, "proc.finish", pid=1, name="w")
    tracer.emit(4.0, "proc.spawn", pid=2, name="w")   # kept again
    assert [r.time for r in tracer.records] == [0.0, 1.0, 3.0, 4.0]
    assert tracer.dropped == 1


def test_sampling_is_deterministic_across_runs():
    def traced():
        tracer = Tracer(kinds=frozenset({"msg.send", "msg.deliver"}),
                        sample={"msg.send": 8, "msg.deliver": 8})
        run_app(make_app("tsp"), "original", 2, 2, small_params("tsp"),
                trace=True, tracer=tracer)
        return list(tracer.records), tracer.dropped

    first, dropped1 = traced()
    second, dropped2 = traced()
    assert first == second              # same spec -> same kept records
    assert dropped1 == dropped2 > 0


def test_sampling_clear_resets_counters():
    # After clear(), the 1-in-k cadence restarts: a second identical run
    # through the same tracer keeps identical records.
    tracer = Tracer(enabled=True, sample={"proc.spawn": 3})
    emit_n(tracer, "proc.spawn", 7)
    kept_first = [r.time for r in tracer.records]
    tracer.clear()
    assert tracer.dropped == 0
    emit_n(tracer, "proc.spawn", 7)
    assert [r.time for r in tracer.records] == kept_first


def test_ring_and_sampling_compose():
    tracer = Tracer(enabled=True, ring=2, sample={"proc.spawn": 2})
    emit_n(tracer, "proc.spawn", 10)  # samples 0,2,4,6,8; ring keeps 6,8
    assert [r.time for r in tracer.records] == [6.0, 8.0]
    # 5 lost to sampling + 3 evicted from the ring
    assert tracer.dropped == 8


# ------------------------------------------------------------ TraceSpec

def test_trace_spec_builds_equivalent_tracer():
    spec = TraceSpec(kinds=("msg.send",), ring=100,
                     sample=(("msg.send", 4),))
    tracer = spec.build()
    assert tracer.kinds == frozenset({"msg.send"})
    assert tracer.ring == 100
    assert tracer.sample == {"msg.send": 4}
    assert not tracer.enabled  # run_app flips it on


def test_trace_spec_is_frozen_hashable_and_picklable():
    spec = TraceSpec(ring=10, sample=(("msg.send", 2),))
    assert spec == pickle.loads(pickle.dumps(spec))
    assert hash(spec) == hash(TraceSpec(ring=10, sample=(("msg.send", 2),)))
    with pytest.raises(Exception):
        spec.ring = 20


def test_bounded_records_are_a_suffix_or_subset_of_unbounded():
    def run_with(tracer):
        run_app(make_app("asp"), "original", 2, 2, small_params("asp"),
                trace=True, tracer=tracer)
        return list(tracer.records)

    full = run_with(Tracer())
    ring = run_with(Tracer(ring=50))
    assert ring == full[-50:]           # the tail, exactly
    sampled = run_with(Tracer(sample={"msg.send": 4}))
    assert set(map(repr, sampled)) <= set(map(repr, full))


def test_bounded_tracing_does_not_change_results():
    app = make_app("ra")
    params = small_params("ra")
    plain = run_app(app, "original", 2, 2, params)
    bounded = run_app(app, "original", 2, 2, params, trace=True,
                      tracer=Tracer(ring=100, sample={"msg.send": 8}))
    assert bounded.elapsed == plain.elapsed   # bit-identical, not approx
    assert bounded.answer == plain.answer
    assert bounded.traffic == plain.traffic


def test_record_equality_round_trips_through_detail_dict():
    rec = TraceRecord(1.0, "proc.spawn", {"pid": 1, "name": "w"})
    assert rec == TraceRecord(1.0, "proc.spawn", {"pid": 1, "name": "w"})
    assert rec != TraceRecord(2.0, "proc.spawn", {"pid": 1, "name": "w"})
