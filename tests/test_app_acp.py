"""Tests for the ACP application."""

import pytest

from repro.apps.acp import ACPApp, ACPParams
from repro.apps.acp import csp
from repro.harness import run_app


# ----------------------------------------------------------------- domain


def test_network_arcs_are_paired():
    net = csp.build_network(ACPParams.small())
    for x, arcs in net.arcs.items():
        for y, _sup in arcs:
            assert any(back == x for back, _ in net.arcs_of(y))


def test_revise_keeps_supported_values_only():
    # supports: value 0 supported by {0}, value 1 by {2,3}, value 2 by none.
    supports = [0b0001, 0b1100, 0b0000]
    new, checks = csp.revise(0b111, 0b1101, supports)
    assert new == 0b011
    assert checks == 3


def test_revise_empty_domain_is_noop():
    new, checks = csp.revise(0, 0b1111, [0b1111] * 4)
    assert new == 0 and checks == 0


def test_popcount():
    assert csp.popcount(0) == 0
    assert csp.popcount(0b1011) == 3


def test_sequential_reference_is_a_fixpoint():
    params = ACPParams.small()
    net = csp.build_network(params)
    domains = csp.sequential_reference(params)
    for x in range(net.n_vars):
        for y, supports in net.arcs_of(x):
            new, _ = csp.revise(domains[x], domains[y], supports)
            assert new == domains[x], f"variable {x} not arc consistent"


def test_reference_actually_prunes_something():
    params = ACPParams.small()
    domains = csp.sequential_reference(params)
    assert any(d != params.full_domain for d in domains)


# ------------------------------------------------------------ application


@pytest.mark.parametrize("variant", ["original", "optimized"])
@pytest.mark.parametrize("shape", [(1, 1), (2, 2), (4, 2)])
def test_acp_reaches_the_unique_closure(variant, shape):
    params = ACPParams.small()
    ref = csp.sequential_reference(params)
    res = run_app(ACPApp(), variant, shape[0], shape[1], params)
    assert res.answer == ref


def test_acp_broadcast_heavy():
    params = ACPParams.small()
    res = run_app(ACPApp(), "original", 2, 2, params)
    assert res.traffic["inter.bcast"]["count"] > res.stats["prunings"]


def test_acp_async_variant_faster_on_multicluster():
    params = ACPParams.small(n_vars=120, n_constraints=360)
    orig = run_app(ACPApp(), "original", 4, 2, params)
    opt = run_app(ACPApp(), "optimized", 4, 2, params)
    assert opt.elapsed < orig.elapsed


def test_acp_rounds_bounded():
    params = ACPParams.small()
    res = run_app(ACPApp(), "original", 2, 2, params)
    assert 1 <= res.stats["rounds"] < 50
