"""Tests for asynchronous replicated writes (invoke_async) and total-order
interaction between synchronous and asynchronous broadcasts."""

import pytest

from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.orca import ObjectSpec, Operation, OrcaRuntime
from repro.sim import Simulator


def make_rts(n_clusters=2, nodes_per_cluster=3):
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(n_clusters, nodes_per_cluster),
                    DAS_PARAMS)
    return sim, OrcaRuntime(sim, fabric)


def log_spec():
    def append(state, item):
        state.append(item)

    def snapshot(state):
        return list(state)

    return ObjectSpec(
        "log", list,
        {"append": Operation(fn=append, writes=True, arg_bytes=16),
         "snapshot": Operation(fn=snapshot, arg_bytes=1)},
        replicated=True)


def test_invoke_async_does_not_block_sender():
    sim, rts = make_rts()
    rts.register(log_spec())

    def writer():
        ctx = rts.context(4)  # remote cluster: sync would pay WAN waits
        t0 = sim.now
        events = [ctx.invoke_async("log", "append", i) for i in range(10)]
        issue_time = sim.now - t0
        for ev in events:
            if not ev.triggered:
                yield ev
        return issue_time

    issue_time = sim.run_process(writer())
    sim.run()
    assert issue_time < 1e-3  # issuing didn't wait for ordering
    assert rts.state_of("log", 0) == list(range(10))


def test_async_writes_keep_program_order_per_sender():
    sim, rts = make_rts(n_clusters=3, nodes_per_cluster=2)
    rts.register(log_spec())

    def writer(nid, tag):
        ctx = rts.context(nid)
        for i in range(5):
            ctx.invoke_async("log", "append", (tag, i))
        yield sim.timeout(0)

    for nid, tag in ((0, "a"), (3, "b"), (5, "c")):
        sim.spawn(writer(nid, tag))
    sim.run()
    logs = [rts.state_of("log", n) for n in range(6)]
    # All replicas identical (total order)...
    assert all(lg == logs[0] for lg in logs)
    # ...and each sender's items appear in its program order.
    for tag in ("a", "b", "c"):
        seq = [i for t, i in logs[0] if t == tag]
        assert seq == sorted(seq) == list(range(5))


def test_invoke_async_rejects_non_replicated():
    sim, rts = make_rts()
    rts.register(ObjectSpec(
        "plain", dict, {"w": Operation(fn=lambda s: None, writes=True)},
        owner=0))

    with pytest.raises(ValueError, match="invoke_async"):
        rts.context(1).invoke_async("plain", "w")


def test_invoke_async_rejects_read_ops():
    sim, rts = make_rts()
    rts.register(log_spec())
    with pytest.raises(ValueError, match="invoke_async"):
        rts.context(0).invoke_async("log", "snapshot")


def test_sync_after_async_is_ordered_behind_it():
    sim, rts = make_rts()
    rts.register(log_spec())

    def writer():
        ctx = rts.context(1)
        ctx.invoke_async("log", "append", "first")
        yield from ctx.invoke("log", "append", "second")  # blocking

    sim.spawn(writer())
    sim.run()
    for n in range(rts.topo.n_nodes):
        assert rts.state_of("log", n) == ["first", "second"]
