"""Tests for the RA application."""

import numpy as np
import pytest

from repro.apps.ra import RAApp, RAParams
from repro.apps.ra import game
from repro.harness import run_app


# ----------------------------------------------------------------- domain


def test_game_graph_is_forward_dag():
    g = game.build_game(RAParams.small())
    for v, succ in enumerate(g.succs):
        assert (succ > v).all()


def test_game_graph_pred_succ_consistency():
    g = game.build_game(RAParams.small())
    for v, succ in enumerate(g.succs):
        for w in succ:
            assert v in g.preds[int(w)]


def test_game_has_terminals():
    g = game.build_game(RAParams.small())
    terminals = [v for v in range(g.n) if len(g.succs[v]) == 0]
    assert terminals, "a game with no terminals never resolves"
    assert g.n - 1 in terminals  # the last position has no room for moves


def test_sequential_reference_rules():
    params = RAParams.small(n_positions=200)
    g = game.build_game(params)
    vals = game.sequential_reference(params)
    assert (vals != game.UNDETERMINED).all()
    for v in range(g.n):
        s = g.succs[v]
        if len(s) == 0:
            assert vals[v] == game.LOSS
        elif (vals[s] == game.LOSS).any():
            assert vals[v] == game.WIN
        else:
            assert vals[v] == game.LOSS


# ------------------------------------------------------------ application


@pytest.mark.parametrize("variant", ["original", "optimized"])
@pytest.mark.parametrize("shape", [(1, 1), (2, 2), (4, 2)])
def test_ra_matches_sequential_reference(variant, shape):
    params = RAParams.small(n_positions=400)
    ref = game.sequential_reference(params)
    res = run_app(RAApp(), variant, shape[0], shape[1], params)
    assert res.answer["determined"] == params.n_positions
    assert res.answer["wins"] == int((ref == game.WIN).sum())
    assert res.answer["losses"] == int((ref == game.LOSS).sum())


def test_ra_optimized_reduces_wan_messages():
    params = RAParams.paper().with_(n_positions=6000)
    orig = run_app(RAApp(), "original", 2, 3, params)
    opt = run_app(RAApp(), "optimized", 2, 3, params)
    ow = orig.traffic["wan"]["count"]
    nw = opt.traffic["wan"]["count"]
    assert nw < ow


def test_ra_multicluster_much_slower_than_single():
    """Paper Figure 9: RA collapses on the WAN (speedup < 1 on 4x15)."""
    params = RAParams.paper().with_(n_positions=6000)
    one = run_app(RAApp(), "original", 1, 8, params)
    four = run_app(RAApp(), "original", 4, 2, params)
    assert four.elapsed > 2 * one.elapsed


def test_ra_optimized_improves_but_stays_slow():
    """Paper: combining buys ~2x but multicluster stays worse than one
    cluster of the same per-cluster size."""
    params = RAParams.paper().with_(n_positions=6000)
    orig = run_app(RAApp(), "original", 4, 2, params)
    opt = run_app(RAApp(), "optimized", 4, 2, params)
    lower = run_app(RAApp(), "optimized", 1, 2, params)
    assert opt.elapsed < orig.elapsed
    assert opt.elapsed > lower.elapsed  # still unsuitable for the WAN
