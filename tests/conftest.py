"""Test-wide fixtures: keep sweeps hermetic.

Every test gets a private, empty result cache and a serial default
runner, so the suite neither reads nor pollutes the user's real
``~/.cache/repro`` and cannot be skewed by stale cached results.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_sweep_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sweep-cache"))
    monkeypatch.delenv("REPRO_JOBS", raising=False)
