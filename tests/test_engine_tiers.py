"""Cross-tier event-core tests: properties and record-for-record parity.

The simulator core ships in three implementations that must agree
observable-for-observable:

* ``repro.sim._legacy`` — the frozen pre-rewrite engine, kept as a
  test-only oracle;
* ``repro.sim._pyengine`` — the portable rewritten core (the reference
  tier);
* ``repro.sim._cengine`` — the optional compiled core (skipped here
  when no C compiler is available).

Three kinds of coverage:

* hypothesis properties every tier must satisfy on its own
  (same-instant FIFO tie-break; recycled kick events never resurrect
  an already-processed resume);
* a hypothesis-generated workload interpreter run on all tiers, whose
  value log, final clock and ``stats()`` counters must be identical —
  the counter-parity contract that keeps ``events_processed``
  comparable across tiers;
* subprocess runs of a full application under ``REPRO_ENGINE=python``
  vs ``REPRO_ENGINE=compiled`` whose trace streams must match record
  for record (tiers cannot be mixed in one process, so tier selection
  itself is always exercised via subprocesses).
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import _legacy, _pyengine
from repro.sim._build import compiler_available

TIERS = [("legacy", _legacy), ("python", _pyengine)]
if compiler_available():
    from repro.sim import _cengine

    TIERS.append(("compiled", _cengine))

_tier = pytest.mark.parametrize(
    "engine", [m for _, m in TIERS], ids=[n for n, _ in TIERS])

needs_cc = pytest.mark.skipif(
    not compiler_available(),
    reason="no C compiler: compiled tier unavailable")


# ------------------------------------------------- per-tier properties


@_tier
@settings(deadline=None, max_examples=60)
@given(delays=st.lists(st.sampled_from([0.0, 1.0, 1.0, 2.0, 3.5]),
                       min_size=1, max_size=30))
def test_same_instant_callbacks_fire_in_schedule_order(engine, delays):
    """Equal-time events dispatch FIFO in scheduling order (the heap
    tiebreak counter), for any mix of colliding instants."""
    sim = engine.Simulator()
    fired = []
    for i, d in enumerate(delays):
        ev = sim.timeout(d)
        ev.callbacks.append(lambda _ev, i=i: fired.append(i))
    sim.run()
    # A stable sort by delay *is* FIFO-within-instant.
    assert fired == sorted(range(len(delays)), key=lambda i: delays[i])


@_tier
@settings(deadline=None, max_examples=60)
@given(plan=st.lists(st.booleans(), min_size=1, max_size=30))
def test_recycled_kicks_never_resurrect(engine, plan):
    """Yielding already-processed events reuses the kick event; the
    recycled slot must deliver each resume exactly once, in order,
    never replaying a processed entry (True = pre-triggered yield
    target, False = fresh timeout; consecutive Trues re-reuse)."""
    sim = engine.Simulator()
    got = []

    def proc():
        for i, pre in enumerate(plan):
            if pre:
                ev = engine.Event(sim)
                ev.succeed(("pre", i))
                got.append((yield ev))
            else:
                got.append((yield sim.timeout(1.0, value=("to", i))))

    sim.run_process(proc())
    assert got == [("pre", i) if pre else ("to", i)
                   for i, pre in enumerate(plan)]


# ------------------------------------- cross-tier workload equivalence

# One op = (kind, delay).  The interpreter below uses only API surface
# all three tiers share, and logs (tag, value, now) triples.
_OPS = st.lists(
    st.tuples(st.sampled_from(["timeout", "pre", "child", "fail",
                               "all", "any"]),
              st.sampled_from([0.0, 0.5, 1.0, 2.5])),
    min_size=1, max_size=12)


def _run_program(engine, ops):
    sim = engine.Simulator()
    log = []

    def child(d, i):
        v = yield sim.timeout(d, value=i)
        return ("child", i, v)

    def failing(i):
        yield sim.timeout(0.0)
        raise ValueError(f"boom {i}")

    def main():
        for i, (op, d) in enumerate(ops):
            if op == "timeout":
                log.append(("t", (yield sim.timeout(d, value=i)), sim.now))
            elif op == "pre":
                ev = sim.event()
                ev.succeed(i)
                log.append(("p", (yield ev), sim.now))
            elif op == "child":
                log.append(("c", (yield sim.spawn(child(d, i))), sim.now))
            elif op == "fail":
                try:
                    yield sim.spawn(failing(i))
                except ValueError as exc:
                    log.append(("f", str(exc), sim.now))
            elif op == "all":
                evs = [sim.timeout(d + j, value=(i, j)) for j in range(3)]
                log.append(("A", (yield sim.all_of(evs)), sim.now))
            elif op == "any":
                evs = [sim.timeout(d + j, value=(i, j)) for j in range(3)]
                _ev, val = yield sim.any_of(evs)
                log.append(("y", val, sim.now))

    sim.run_process(main())
    sim.run()  # drain stragglers (unfired any_of components)
    return log, sim.stats(), sim.now


@settings(deadline=None, max_examples=40)
@given(ops=_OPS)
def test_tiers_agree_on_log_clock_and_stats(ops):
    """Every tier produces the identical value log, final clock, and
    stats() dict — including ``events_processed``, whose definition
    (one tiebreak per heap entry) is part of the cross-tier contract."""
    ref_log, ref_stats, ref_now = _run_program(_legacy, ops)
    for name, engine in TIERS[1:]:
        log, stats, now = _run_program(engine, ops)
        assert log == ref_log, name
        assert now == ref_now, name
        assert stats == ref_stats, name


@_tier
def test_stats_dict_shape(engine):
    def noop():
        return
        yield  # pragma: no cover - makes this a generator function

    sim = engine.Simulator()
    sim.run_process(noop(), name="noop")
    assert set(sim.stats()) == {"events_processed", "processes_spawned",
                                "spawns", "fast_completions", "fallbacks"}


def test_tiers_share_sentinels_and_exceptions():
    """PENDING / exception types are identical objects across tiers, so
    isinstance and identity checks agree no matter which tier made an
    object (the facade re-exports them from the pure module)."""
    from repro.sim import engine

    names = ["Event", "Timeout", "AllOf", "AnyOf", "Process", "Simulator",
             "Interrupt", "SimulationError", "chain", "fire", "PENDING"]
    for _, mod in TIERS:
        for n in names:
            assert hasattr(mod, n), n
    assert engine.PENDING is _pyengine.PENDING
    assert engine.SimulationError is _pyengine.SimulationError
    assert engine.Interrupt is _pyengine.Interrupt
    if compiler_available():
        assert _cengine.PENDING is _pyengine.PENDING
        assert _cengine.SimulationError is _pyengine.SimulationError
        assert _cengine.Interrupt is _pyengine.Interrupt


# ---------------------------------------------- tier selection (subproc)


def _subprocess(code, tier):
    """Run a snippet under a forced REPRO_ENGINE tier; return the result."""
    env = dict(os.environ)
    env["REPRO_ENGINE"] = tier
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True)


def test_engine_env_selects_tier():
    code = "from repro.sim.engine import ENGINE_TIER; print(ENGINE_TIER)"
    out = _subprocess(code, "python")
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "python"
    out = _subprocess(code, "auto")
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() in ("python", "compiled")
    if compiler_available():
        out = _subprocess(code, "compiled")
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "compiled"


def test_engine_env_rejects_unknown_value():
    out = _subprocess("import repro.sim.engine", "bogus")
    assert out.returncode != 0
    assert "REPRO_ENGINE" in out.stderr


# --------------------------------- full-stack trace parity (subproc)

# Runs one traced grid point and prints every record plus the result's
# metrics, normalized to JSON.  Identical stdout across tiers means the
# tiers are indistinguishable record-for-record at the application level.
_TRACE_SCRIPT = """
import json
from repro.apps import small_params
from repro.harness.sweeps import RunSpec
from repro.sim.trace import TraceSpec

spec = RunSpec("water", "optimized", 2, 3, small_params("water"),
               trace=TraceSpec())
res = spec.execute()
records = [[r.time, r.kind, sorted(r.detail.items())]
           for r in res.trace_records]
print(json.dumps({"records": records, "elapsed": res.elapsed,
                  "traffic": res.traffic, "sim_stats": res.sim_stats},
                 sort_keys=True, default=repr))
"""


@needs_cc
def test_trace_streams_identical_across_tiers():
    py = _subprocess(_TRACE_SCRIPT, "python")
    cc = _subprocess(_TRACE_SCRIPT, "compiled")
    assert py.returncode == 0, py.stderr
    assert cc.returncode == 0, cc.stderr
    a, b = json.loads(py.stdout), json.loads(cc.stdout)
    assert a["elapsed"] == b["elapsed"]
    assert a["sim_stats"] == b["sim_stats"]
    assert a["traffic"] == b["traffic"]
    assert len(a["records"]) == len(b["records"])
    assert a["records"] == b["records"]
