"""Tests for the SOR application."""

import numpy as np
import pytest

from repro.apps.sor import SORApp, SORParams
from repro.apps.sor import grid as gridmod
from repro.harness import run_app


# ----------------------------------------------------------------- domain


def test_sweep_preserves_fixed_columns():
    params = SORParams.small()
    g = gridmod.initial_grid(params)
    top, bottom = gridmod.boundary_rows(params)
    gridmod.sweep_phase(g, top, bottom, 0, params.omega, 0)
    assert (g[:, 0] == 0).all() and (g[:, -1] == 0).all()


def test_sequential_reference_converges_toward_gradient():
    params = SORParams.small(n_rows=16, n_cols=12).with_(n_iterations=400)
    g, _ = gridmod.sequential_reference(params)
    interior = g[:, 1:-1]
    # Top rows (next to the hot boundary) are warmer than bottom rows.
    assert interior[0].mean() > interior[-1].mean()
    assert interior.max() <= 1.0 + 1e-5


def test_precision_mode_stops_early():
    params = SORParams.small(n_rows=12, n_cols=10,
                             precision=1e-3).with_(n_iterations=500)
    _, iters = gridmod.sequential_reference(params)
    assert iters < 500


def test_maxdiff_decreases():
    params = SORParams.small(n_rows=16, n_cols=12)
    g = gridmod.initial_grid(params)
    top, bottom = gridmod.boundary_rows(params)
    diffs = []
    for it in range(30):
        d = max(gridmod.sweep_phase(g, top, bottom, par, params.omega, 0)
                for par in (0, 1))
        diffs.append(d)
    assert diffs[-1] < diffs[0]


# ------------------------------------------------------------ application


@pytest.mark.parametrize("variant", ["original", "splitphase"])
@pytest.mark.parametrize("shape", [(1, 1), (1, 4), (2, 3), (4, 2)])
def test_sor_bitexact_vs_sequential(variant, shape):
    params = SORParams.small(n_rows=24, n_cols=16).with_(n_iterations=20)
    ref, _ = gridmod.sequential_reference(params)
    res = run_app(SORApp(), variant, shape[0], shape[1], params)
    np.testing.assert_array_equal(res.answer["grid"], ref)


def test_sor_chaotic_single_cluster_is_exact():
    # Within one cluster nothing is dropped, so chaotic == original.
    params = SORParams.small(n_rows=24, n_cols=16).with_(n_iterations=20)
    ref, _ = gridmod.sequential_reference(params)
    res = run_app(SORApp(), "optimized", 1, 4, params)
    np.testing.assert_array_equal(res.answer["grid"], ref)


def test_sor_chaotic_converges_with_modest_iteration_penalty():
    """Paper: dropping 2/3 intercluster exchanges costs 5-10% iterations."""
    params = SORParams.small(n_rows=64, n_cols=24,
                             precision=5e-4).with_(n_iterations=800)
    full = run_app(SORApp(), "original", 4, 4, params)
    chaotic = run_app(SORApp(), "optimized", 4, 4, params)
    it_full = full.answer["iterations"]
    it_chaotic = chaotic.answer["iterations"]
    assert it_chaotic >= it_full
    assert it_chaotic <= 1.35 * it_full
    # And the solutions agree closely.
    np.testing.assert_allclose(chaotic.answer["grid"], full.answer["grid"],
                               atol=5e-3)


def test_sor_chaotic_reduces_intercluster_traffic():
    params = SORParams.small(n_rows=64, n_cols=24).with_(n_iterations=30)
    full = run_app(SORApp(), "original", 4, 4, params)
    chaotic = run_app(SORApp(), "optimized", 4, 4, params)
    fb = full.traffic["inter.rpc"]["bytes"]
    cb = chaotic.traffic["inter.rpc"]["bytes"]
    assert cb < 0.5 * fb


def test_sor_chaotic_faster_on_four_clusters():
    params = SORParams.paper().with_(n_rows=240, n_cols=120, n_iterations=30)
    full = run_app(SORApp(), "original", 4, 4, params)
    chaotic = run_app(SORApp(), "optimized", 4, 4, params)
    assert chaotic.elapsed < full.elapsed


def test_sor_splitphase_faster_than_blocking_on_wan():
    params = SORParams.paper().with_(n_rows=240, n_cols=120, n_iterations=30)
    orig = run_app(SORApp(), "original", 4, 4, params)
    split = run_app(SORApp(), "splitphase", 4, 4, params)
    assert split.elapsed < orig.elapsed


def test_sor_too_many_processors_rejected():
    params = SORParams.small(n_rows=4, n_cols=8)
    with pytest.raises(ValueError, match="one row per processor"):
        run_app(SORApp(), "original", 2, 3, params)
