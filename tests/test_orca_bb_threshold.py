"""The PB -> BB protocol switch, fixed and tuned, exactly at its boundary.

Orca/FM ships small write payloads to the sequencer, which broadcasts
them (PB); at the threshold it instead requests just a sequence number
with a small control message and the *sender* broadcasts the payload
(BB).  With no :class:`~repro.tuner.DecisionModel` installed the
boundary is the hard-wired ``BB_THRESHOLD``; with a model installed it
is that model's *fitted crossover* of the PB and BB cost lines.  This
suite pins the boundary — one byte below vs exactly at the threshold —
and the distinct traffic shapes of the two modes, on both control-plane
tiers, parametrized over both decision sources.
"""

import pytest

from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.network.message import reset_ids
from repro.orca import ObjectSpec, Operation, OrcaRuntime
from repro.orca.broadcast import BB_THRESHOLD, SEQ_REQUEST_BYTES
from repro.orca.runtime import reset_req_ids
from repro.sim import Simulator, Tracer
from repro.tuner import ContextModel, DecisionModel, FittedLine, crossover

#: 2 clusters x 2 nodes; centralized sequencer stamps on node 0 (cluster
#: 0), the writer runs on node 2 (cluster 1) — so PB mode genuinely
#: ships the payload across the WAN to the stamping site.
SENDER = 2
STAMP_NODE = 0


def _tuned(pb: FittedLine, bb: FittedLine) -> DecisionModel:
    """A handmade model whose threshold is the fitted crossover of the
    given lines (no shape/stripe lines: dissemination stays flat/1)."""
    thr = crossover(pb, bb)
    ctx = ContextModel(n_clusters=2, pb=pb, bb=bb, bb_threshold=thr)
    return DecisionModel(contexts=((2, ctx),), source="handmade")


#: (decision model or None, the PB->BB boundary it implies).  The fixed
#: default is pinned exactly at ``BB_THRESHOLD``; tuned models exactly
#: at their fitted crossover — one below, one above the fixed value.
DECISION_CASES = [
    pytest.param(None, BB_THRESHOLD, id="fixed-default"),
    pytest.param(_tuned(FittedLine(0.0, 2.0 ** -18),
                        FittedLine(1024 * 2.0 ** -19, 2.0 ** -19)),
                 1024, id="tuned-crossover-1024"),
    pytest.param(_tuned(FittedLine(0.0, 4e-6), FittedLine(0.065536, 2e-6)),
                 32768, id="tuned-crossover-32768"),
]


def _run_write(size, fast, decision=None):
    reset_ids()
    reset_req_ids()
    sim = Simulator()
    tracer = Tracer()
    tracer.enabled = True
    fabric = Fabric(sim, uniform_clusters(2, 2), DAS_PARAMS, tracer=tracer,
                    fast_paths=fast)
    rts = OrcaRuntime(sim, fabric, sequencer="centralized",
                      decision=decision)
    rts.register(ObjectSpec(
        name="blob", state_factory=list,
        operations={"put": Operation(fn=lambda st, n: st.append(n) or len(st),
                                     writes=True,
                                     arg_bytes=lambda n: n,
                                     result_bytes=8)},
        replicated=True))

    def writer():
        result = yield from rts.invoke(SENDER, "blob", "put", (size,))
        return result

    proc = sim.spawn(writer())
    sim.run()
    assert proc.value == 1
    records = [(r.time, r.kind, tuple(sorted(r.detail.items())))
               for r in tracer.records
               if r.kind not in ("proc.spawn", "proc.finish")]
    by_kind = {}
    for r in tracer.records:
        by_kind.setdefault(r.kind, []).append(r.detail)
    return records, by_kind


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "legacy"])
@pytest.mark.parametrize("decision,threshold", DECISION_CASES)
def test_pb_one_byte_below_threshold(fast, decision, threshold):
    size = threshold - 1
    _records, by = _run_write(size, fast, decision)
    # The seq request carries the whole operation to the stamping site.
    (req,) = by["seq.request"]
    assert req["bb"] is False
    assert req["size"] == size
    assert req["stamp_node"] == STAMP_NODE and req["inter"] is True
    # No grant trip back: the sequencer itself disseminates.
    assert "seq.grant" not in by
    # Every node got the stamped payload, from the stamping node.
    delivers = [d for d in by["msg.deliver"] if d["msg_kind"] == "bcast"]
    assert sorted(d["dst"] for d in delivers) == [0, 1, 2, 3]
    assert all(d["src"] == STAMP_NODE for d in delivers)


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "legacy"])
@pytest.mark.parametrize("decision,threshold", DECISION_CASES)
def test_bb_exactly_at_threshold(fast, decision, threshold):
    size = threshold
    _records, by = _run_write(size, fast, decision)
    # Only a small control message travels to the sequencer...
    (req,) = by["seq.request"]
    assert req["bb"] is True
    assert req["size"] == SEQ_REQUEST_BYTES
    # ...and the sequence number travels back.
    (grant,) = by["seq.grant"]
    assert grant["stamp_node"] == STAMP_NODE and grant["inter"] is True
    # The *sender* disseminates the payload.
    delivers = [d for d in by["msg.deliver"] if d["msg_kind"] == "bcast"]
    assert sorted(d["dst"] for d in delivers) == [0, 1, 2, 3]
    assert all(d["src"] == SENDER for d in delivers)


@pytest.mark.parametrize("decision,threshold", DECISION_CASES)
@pytest.mark.parametrize("side", [-1, 0], ids=["pb", "bb"])
def test_boundary_identical_across_tiers(decision, threshold, side):
    """Fast and legacy tiers agree record-for-record on both sides of
    the switch, whatever decides it."""
    size = threshold + side
    fast_records, _ = _run_write(size, True, decision)
    legacy_records, _ = _run_write(size, False, decision)
    assert fast_records == legacy_records


def test_fixed_default_matches_no_model():
    """``decision=None`` and the boundary it implies are the same
    contract: a tuned model whose crossover equals ``BB_THRESHOLD``
    reproduces the fixed runs record-for-record."""
    pinned = _tuned(FittedLine(0.0, 4e-6),
                    FittedLine(BB_THRESHOLD * 2e-6, 2e-6))
    assert pinned.context_for(2).bb_threshold == float(BB_THRESHOLD)
    for size in (BB_THRESHOLD - 1, BB_THRESHOLD):
        none_records, _ = _run_write(size, True, None)
        pinned_records, _ = _run_write(size, True, pinned)
        assert none_records == pinned_records, size


def test_bb_moves_fewer_payload_bytes_to_the_sequencer():
    """At the boundary the two modes differ by design: PB pays the
    payload on the sender->sequencer leg, BB only the 16-byte control
    pair.  Measured on the non-bcast control traffic crossing the WAN."""
    def control_wan_bytes(by):
        return sum(d["size"] for d in by["msg.send"]
                   if d["msg_kind"] != "bcast" and d["scope"] == "wan")

    _, pb = _run_write(BB_THRESHOLD - 1, True)
    _, bb = _run_write(BB_THRESHOLD, True)
    assert control_wan_bytes(pb) == BB_THRESHOLD - 1
    assert control_wan_bytes(bb) == 2 * SEQ_REQUEST_BYTES
