"""Tests for the parallel sweep subsystem (runner, cache, determinism)."""

import pickle

import pytest

from repro.apps import small_params
from repro.harness import (
    ParallelRunner,
    ResultCache,
    RunSpec,
    default_jobs,
    figure15_bars,
    figure15_bars_many,
    figure_curves,
    speedup_curve,
)
from repro.harness.sweeps import default_cache_dir
from repro.network import INTERNET_PARAMS


def _grid_specs():
    """A small mixed grid: water + tsp on {1, 2} clusters."""
    return [
        RunSpec(app, variant, c, 2, small_params(app))
        for app in ("water", "tsp")
        for variant in ("original", "optimized")
        for c in (1, 2)
    ]


def _same_results(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.elapsed == rb.elapsed          # bit-identical, not approx
        assert ra.traffic == rb.traffic
        assert pickle.dumps(ra.answer) == pickle.dumps(rb.answer)


# ------------------------------------------------------------ spec/key


def test_spec_key_is_stable_and_content_sensitive():
    spec = RunSpec("water", "original", 1, 2, small_params("water"))
    same = RunSpec("water", "original", 1, 2, small_params("water"))
    assert spec.key() == same.key()
    assert spec.key() != RunSpec("water", "optimized", 1, 2,
                                 small_params("water")).key()
    assert spec.key() != RunSpec("water", "original", 2, 2,
                                 small_params("water")).key()
    # Problem parameters and network parameters are part of the key.
    bigger = small_params("water").with_(n_molecules=128)
    assert spec.key() != RunSpec("water", "original", 1, 2, bigger).key()
    assert spec.key() != RunSpec("water", "original", 1, 2,
                                 small_params("water"),
                                 network=INTERNET_PARAMS).key()


def test_spec_rejects_unknown_app():
    with pytest.raises(ValueError, match="unknown application"):
        RunSpec("nope", "original", 1, 1, None)


def test_spec_execute_matches_run_app():
    from repro.apps import make_app
    from repro.harness import run_app

    spec = RunSpec("tsp", "original", 2, 2, small_params("tsp"))
    direct = run_app(make_app("tsp"), "original", 2, 2, small_params("tsp"))
    via_spec = spec.execute()
    _same_results([direct], [via_spec])


# ------------------------------------------- determinism under parallelism


def test_parallel_matches_serial_bit_identical():
    specs = _grid_specs()
    serial = ParallelRunner(jobs=1).run(specs)
    parallel = ParallelRunner(jobs=4).run(specs)
    _same_results(serial, parallel)


def test_warm_cache_returns_identical_results(tmp_path):
    specs = _grid_specs()
    cache = ResultCache(str(tmp_path / "c"))
    cold_runner = ParallelRunner(jobs=1, cache=cache)
    cold = cold_runner.run(specs)
    assert cold_runner.hits == 0
    assert cold_runner.computed == len(specs)

    warm_runner = ParallelRunner(jobs=4, cache=cache)
    warm = warm_runner.run(specs)
    assert warm_runner.hits == len(specs)
    assert warm_runner.computed == 0
    _same_results(cold, warm)


def test_duplicate_specs_computed_once():
    spec = RunSpec("tsp", "original", 1, 2, small_params("tsp"))
    runner = ParallelRunner(jobs=1)
    results = runner.run([spec, spec, spec])
    assert runner.computed == 1
    _same_results(results[:1], results[1:2])
    _same_results(results[:1], results[2:])


def test_batched_pool_matches_serial_bit_identical():
    """Batching many points per dispatch changes IPC, never results."""
    specs = _grid_specs()
    serial = ParallelRunner(jobs=1).run(specs)
    batched = ParallelRunner(jobs=2, batch=3).run(specs)  # uneven last batch
    _same_results(serial, batched)
    for spec, res in zip(specs, batched):
        assert (res.app, res.variant, res.n_clusters) == \
            (spec.app, spec.variant, spec.n_clusters)


def test_batch_size_heuristic_and_override():
    r = ParallelRunner(jobs=4)
    assert r._batch_size(8, 4) == 1       # small grids stay unbatched
    assert r._batch_size(16, 4) == 1      # = 4 dispatches/worker exactly
    assert r._batch_size(320, 4) == 20    # big grids amortize IPC
    assert ParallelRunner(jobs=4, batch=7)._batch_size(9999, 4) == 7
    assert ParallelRunner(jobs=4, batch=0)._batch_size(8, 4) == 1  # clamps


def test_batched_sweep_points_still_per_point():
    specs = _grid_specs()
    runner = ParallelRunner(jobs=2, batch=4)
    runner.run(specs)
    assert len(runner.point_records) == len(specs)
    assert all(r.kind == "sweep.point" and r.detail["host_s"] > 0
               for r in runner.point_records)


def test_results_come_back_in_spec_order():
    specs = _grid_specs()
    results = ParallelRunner(jobs=2).run(specs)
    for spec, res in zip(specs, results):
        assert (res.app, res.variant, res.n_clusters) == \
            (spec.app, spec.variant, spec.n_clusters)


# -------------------------------------------------------------- cache


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = RunSpec("tsp", "original", 1, 2, small_params("tsp"))
    key = spec.key()
    assert cache.get(key) is None
    path = cache._path(key)
    import os
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(b"not a pickle")
    assert cache.get(key) is None
    # A put repairs the entry.
    result = spec.execute()
    cache.put(key, result)
    _same_results([cache.get(key)], [result])


def test_cache_clear(tmp_path):
    cache = ResultCache(str(tmp_path))
    spec = RunSpec("tsp", "original", 1, 2, small_params("tsp"))
    cache.put(spec.key(), spec.execute())
    assert cache.clear() == 1
    assert cache.get(spec.key()) is None
    assert cache.clear() == 0


def test_default_jobs_env(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    assert capsys.readouterr().err == ""
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert default_jobs() == 6
    assert ParallelRunner().jobs == 6
    assert capsys.readouterr().err == ""
    monkeypatch.setenv("REPRO_JOBS", "junk")
    assert default_jobs() == 1
    err = capsys.readouterr().err
    assert "unparsable" in err and "junk" in err and "REPRO_JOBS" in err


def test_default_jobs_clamps_nonpositive(monkeypatch, capsys):
    # Parsable but nonsensical values clamp silently to serial.
    for raw in ("0", "-3"):
        monkeypatch.setenv("REPRO_JOBS", raw)
        assert default_jobs() == 1
    assert capsys.readouterr().err == ""


def test_default_cache_dir_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "x"))
    assert default_cache_dir() == str(tmp_path / "x")
    assert ResultCache().root == str(tmp_path / "x")


# ------------------------------------------------------- traced sweeps


def test_runner_pdes_default_mirrors_trace():
    """A runner-level pdes mode applies to specs that don't pin one,
    results stay bit-identical to the plain run, and consecutive grid
    points of one topology reuse the forked partition pool."""
    from repro.sim.pdes import coordinator, shutdown_pool

    specs = [RunSpec("sor", variant, 2, 3, small_params("sor"))
             for variant in ("original", "optimized")]
    plain = ParallelRunner(jobs=1, cache=None).run(specs)
    shutdown_pool()
    try:
        runner = ParallelRunner(jobs=1, cache=None, pdes="on",
                                pdes_workers=2)
        part = runner.run(specs)
        _same_results(plain, part)
        assert all(r.sim_stats["pdes_partitions"] == 2 for r in part)
        pool = coordinator._POOL
        assert pool is not None and pool.runs == len(specs)
        # A spec that pins its own mode wins over the runner default.
        pinned = runner.run([RunSpec("sor", "original", 2, 3,
                                     small_params("sor"), pdes="off")])[0]
        assert "pdes_partitions" not in pinned.sim_stats
    finally:
        shutdown_pool()


def test_trace_spec_is_excluded_from_the_cache_key():
    from repro.sim import TraceSpec

    plain = RunSpec("tsp", "original", 1, 2, small_params("tsp"))
    traced = RunSpec("tsp", "original", 1, 2, small_params("tsp"),
                     trace=TraceSpec(ring=100))
    assert plain.key() == traced.key()


def test_traced_sweep_is_bit_identical_and_carries_records():
    from repro.sim import TraceSpec

    specs = [RunSpec("tsp", "original", c, 2, small_params("tsp"))
             for c in (1, 2)]
    plain = ParallelRunner(jobs=1).run(specs)
    traced = ParallelRunner(jobs=2, trace=TraceSpec(ring=5000)).run(specs)
    _same_results(plain, traced)
    for res in plain:
        assert res.trace_records is None
    for res in traced:
        assert res.trace_records and len(res.trace_records) <= 5000


def test_traced_specs_bypass_the_cache_both_ways(tmp_path):
    from repro.sim import TraceSpec

    cache = ResultCache(str(tmp_path / "c"))
    specs = [RunSpec("tsp", "original", 1, 2, small_params("tsp"))]
    ParallelRunner(jobs=1, cache=cache).run(specs)  # warm the cache

    traced = ParallelRunner(jobs=1, cache=cache,
                            trace=TraceSpec(sample=(("msg.send", 4),)))
    results = traced.run(specs)
    assert traced.hits == 0          # a cached result has no records
    assert traced.computed == 1
    assert results[0].trace_records

    # ... and the traced result was not written back: the cached entry
    # stays slim.
    cached = cache.get(specs[0].key())
    assert getattr(cached, "trace_records", None) is None


def test_trace_dir_exports_perfetto_and_strips_records(tmp_path):
    import json

    from repro.sim import TraceSpec

    out = tmp_path / "traces"
    runner = ParallelRunner(jobs=2, trace=TraceSpec(ring=2000),
                            trace_dir=str(out))
    specs = [RunSpec("tsp", "original", c, 2, small_params("tsp"))
             for c in (1, 2)]
    results = runner.run(specs)
    assert len(runner.trace_files) == 2
    for path, spec in zip(runner.trace_files, specs):
        assert f"{spec.app}-{spec.variant}-{spec.n_clusters}x" in path
        with open(path, encoding="utf-8") as fh:
            trace = json.load(fh)
        assert trace["traceEvents"]
    # Records were dropped after export: big sweeps never hold them all.
    assert all(res.trace_records is None for res in results)


# ------------------------------------------------- harness integration


def test_speedup_curve_through_runner_matches_direct(tmp_path):
    from repro.apps import make_app

    app = make_app("tsp")
    params = small_params("tsp")
    cache = ResultCache(str(tmp_path / "c"))
    direct = speedup_curve(app, "original", params,
                           cluster_counts=(1, 2), cpu_counts=(2, 4))
    runner = ParallelRunner(jobs=3, cache=cache)
    cached = speedup_curve(app, "original", params,
                           cluster_counts=(1, 2), cpu_counts=(2, 4),
                           runner=runner)
    for c in (1, 2):
        assert [p.n_cpus for p in direct[c]] == [p.n_cpus for p in cached[c]]
        for pd, pc in zip(direct[c], cached[c]):
            assert pd.elapsed == pc.elapsed
            assert pd.speedup == pc.speedup


def test_speedup_curve_baseline_cached_across_calls(tmp_path):
    """The 1x1 baseline is computed once and then served from the cache
    when callers loop variants/figures over the same app."""
    from repro.apps import make_app

    app = make_app("tsp")
    params = small_params("tsp")
    cache = ResultCache(str(tmp_path / "c"))
    r1 = ParallelRunner(jobs=1, cache=cache)
    speedup_curve(app, "original", params, cluster_counts=(1,),
                  cpu_counts=(2,), runner=r1)
    n_first = r1.computed  # grid point + baseline
    assert n_first == 2
    r2 = ParallelRunner(jobs=1, cache=cache)
    speedup_curve(app, "original", params, cluster_counts=(2,),
                  cpu_counts=(2,), runner=r2)
    # The baseline came from the cache; only the new grid point ran.
    assert r2.computed == 1
    assert r2.hits == 1


def test_speedup_curve_accepts_precomputed_baseline():
    from repro.apps import make_app

    app = make_app("tsp")
    params = small_params("tsp")
    runner = ParallelRunner(jobs=1)
    curves = speedup_curve(app, "original", params, cluster_counts=(1,),
                           cpu_counts=(2,), baseline_elapsed=1.0,
                           runner=runner)
    assert runner.computed == 1  # no baseline run
    pt = curves[1][0]
    assert pt.speedup == 1.0 / pt.elapsed


def test_speedup_curve_unregistered_app_falls_back_serial():
    """Custom Application subclasses outside the registry still work."""
    from repro.apps import make_app

    app = make_app("tsp")
    app.name = "my-custom-tsp"  # not in the registry
    curves = speedup_curve(app, "original", small_params("tsp"),
                           cluster_counts=(1,), cpu_counts=(2,))
    assert curves[1][0].elapsed > 0


def test_figure15_bars_single_matches_batched(tmp_path, monkeypatch):
    """Batched (CLI) and per-app figure-15 paths agree bar for bar."""
    import repro.harness.figures as figures

    # Shrink the bar grid's problem size: the real bench_params sizes
    # take minutes at 60 nodes, and the equality under test is about
    # batching, not the problem size.
    monkeypatch.setattr(figures, "bench_params",
                        lambda name: small_params(name))
    cache = ResultCache(str(tmp_path / "c"))
    many = figure15_bars_many(["tsp"],
                              runner=ParallelRunner(jobs=2, cache=cache))
    single = figure15_bars("tsp", runner=ParallelRunner(jobs=1, cache=cache))
    assert many["tsp"] == single


def test_figure_curves_accepts_runner_and_cache(tmp_path):
    cache = ResultCache(str(tmp_path / "c"))
    runner = ParallelRunner(jobs=2, cache=cache)
    curves = figure_curves("fig7", cpu_counts=(4,), cluster_counts=(1,),
                           runner=runner)
    again = figure_curves("fig7", cpu_counts=(4,), cluster_counts=(1,),
                          runner=ParallelRunner(jobs=1, cache=cache))
    assert curves[1][0].elapsed == again[1][0].elapsed
    assert curves[1][0].speedup == again[1][0].speedup


# ------------------------------------------------------------------ CLI


def test_cli_jobs_and_cache_flags(tmp_path, monkeypatch, capsys):
    from repro.__main__ import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clicache"))
    assert main(["figure", "fig7", "--cpus", "4", "--jobs", "2"]) == 0
    cold = capsys.readouterr().out
    assert "fig7" in cold
    assert main(["figure", "fig7", "--cpus", "4", "--jobs", "2"]) == 0
    warm = capsys.readouterr().out
    assert warm == cold  # warm-cache output identical

    assert main(["cache"]) == 0
    info = capsys.readouterr().out
    assert "clicache" in info
    assert main(["cache", "clear"]) == 0
    cleared = capsys.readouterr().out
    assert "removed" in cleared


def test_cli_batch_flag(tmp_path, monkeypatch, capsys):
    from repro.__main__ import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clicache"))
    assert main(["figure", "fig7", "--cpus", "4", "--jobs", "2",
                 "--batch", "2", "--no-cache"]) == 0
    assert "fig7" in capsys.readouterr().out


def test_cli_no_cache_flag(tmp_path, monkeypatch, capsys):
    from repro.__main__ import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clicache"))
    assert main(["figure", "fig7", "--cpus", "4", "--no-cache"]) == 0
    capsys.readouterr()
    assert main(["cache"]) == 0
    assert "(0 results)" in capsys.readouterr().out


def test_cli_trace_flags_require_trace_dir(capsys):
    from repro.__main__ import main

    assert main(["figure", "fig7", "--cpus", "4", "--no-cache",
                 "--trace-ring", "100"]) == 2
    assert "--trace-dir" in capsys.readouterr().err
    assert main(["figure", "fig7", "--cpus", "4", "--no-cache",
                 "--trace-sample", "msg.send=4"]) == 2
    assert "--trace-dir" in capsys.readouterr().err
    # Unknown kinds and bad counts are rejected before any run starts.
    assert main(["figure", "fig7", "--cpus", "4", "--no-cache",
                 "--trace-dir", "x", "--trace-sample", "bogus.kind=4"]) == 2
    assert "bogus.kind" in capsys.readouterr().err
    assert main(["figure", "fig7", "--cpus", "4", "--no-cache",
                 "--trace-dir", "x", "--trace-sample", "msg.send=0"]) == 2
    assert "must be >= 1" in capsys.readouterr().err


def test_cli_figure_with_trace_dir(tmp_path, capsys):
    import json

    from repro.__main__ import main

    out = tmp_path / "traces"
    assert main(["figure", "fig7", "--cpus", "4", "--no-cache",
                 "--trace-dir", str(out), "--trace-ring", "5000",
                 "--trace-sample", "msg.send=8"]) == 0
    err = capsys.readouterr().err
    assert "Perfetto" in err
    files = sorted(out.glob("*.trace.json"))
    assert files
    with open(files[0], encoding="utf-8") as fh:
        assert json.load(fh)["traceEvents"]


# ------------------------------------------------------- sweep.point

def test_sweep_point_records_and_stragglers(tmp_path):
    from repro.harness import format_stragglers
    from repro.obs.schema import validate_records

    cache = ResultCache(str(tmp_path / "points-cache"))
    specs = _grid_specs()
    runner = ParallelRunner(jobs=1, cache=cache)
    runner.run(specs)
    points = runner.point_records
    assert len(points) == len(specs)
    assert not validate_records(points)  # the host-side kind is in-schema
    assert all(r.kind == "sweep.point" and not r.detail["cached"]
               for r in points)
    text = format_stragglers(points)
    assert f"{len(specs)} points" in text and "0 cached" in text
    assert "x2" in text  # at least one "{app}/{variant} CxN" line

    warm = ParallelRunner(jobs=1, cache=cache)
    warm.run(specs)
    assert all(r.detail["cached"] for r in warm.point_records)
    assert f"{len(specs)} cached" in format_stragglers(warm.point_records)


def test_sweep_points_recorded_under_pool():
    specs = [RunSpec("tsp", "original", c, 2, small_params("tsp"))
             for c in (1, 2)]
    runner = ParallelRunner(jobs=2)
    runner.run(specs)
    assert len(runner.point_records) == len(specs)
    assert all(r.detail["host_s"] > 0 for r in runner.point_records)
