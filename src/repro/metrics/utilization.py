"""Resource-utilization reporting.

Every CPU, gateway and WAN PVC in the fabric tracks its busy time; this
module turns that into per-run utilization fractions — which resource was
the bottleneck is usually the entire explanation of a wide-area speedup
curve (RA: gateways; ASP original: the sequencer token; SOR: the
boundary processors' WAN stalls).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # avoid a circular import (fabric uses metrics.counters)
    from ..network.fabric import Fabric

__all__ = ["UtilizationReport", "collect_utilization", "format_utilization"]


@dataclass
class UtilizationReport:
    """Busy fractions over the measured interval (0..elapsed)."""

    elapsed: float
    cpu: List[float]                      # per compute node
    gateway: List[float]                  # per cluster
    wan: Dict[Tuple[int, int], float]     # per directed PVC

    @property
    def cpu_mean(self) -> float:
        return sum(self.cpu) / len(self.cpu) if self.cpu else 0.0

    @property
    def cpu_max(self) -> float:
        return max(self.cpu) if self.cpu else 0.0

    @property
    def gateway_max(self) -> float:
        return max(self.gateway) if self.gateway else 0.0

    @property
    def wan_max(self) -> float:
        return max(self.wan.values()) if self.wan else 0.0

    def bottleneck(self) -> str:
        """A one-word verdict on what bounds the run."""
        candidates = [("cpu", self.cpu_max), ("gateway", self.gateway_max),
                      ("wan", self.wan_max)]
        name, value = max(candidates, key=lambda kv: kv[1])
        if value < 0.5:
            return "latency"  # nothing saturated: stalls dominate
        return name


def collect_utilization(fabric: "Fabric", elapsed: float) -> UtilizationReport:
    """Snapshot busy fractions from a fabric after a run."""
    if elapsed <= 0:
        elapsed = 1e-12
    cpu = [min(1.0, node.cpu.busy_time() / elapsed) for node in fabric.nodes]
    gateway = [min(1.0, gw.cpu.busy_time() / elapsed)
               for gw in fabric.gateways]
    wan = {pair: min(1.0, link.busy_time() / elapsed)
           for pair, link in fabric._wan.items()}
    return UtilizationReport(elapsed=elapsed, cpu=cpu, gateway=gateway,
                             wan=wan)


def format_utilization(report: UtilizationReport) -> str:
    """Human-readable utilization summary with the bottleneck verdict."""
    lines = [
        f"utilization over {report.elapsed:.3f}s "
        f"(bottleneck: {report.bottleneck()})",
        f"  CPUs    : mean {report.cpu_mean:6.1%}  max {report.cpu_max:6.1%}",
    ]
    if report.gateway:
        lines.append(f"  gateways: max {report.gateway_max:6.1%}")
    if report.wan:
        busiest = max(report.wan, key=report.wan.get)
        lines.append(
            f"  WAN PVCs: max {report.wan_max:6.1%} "
            f"(cluster {busiest[0]} -> {busiest[1]})")
    return "\n".join(lines)
