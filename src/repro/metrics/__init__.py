"""Measurement: traffic accounting, utilization, report formatting."""

from .counters import TrafficMeter, TrafficRow
from .utilization import (
    UtilizationReport,
    collect_utilization,
    format_utilization,
)

__all__ = [
    "TrafficMeter",
    "TrafficRow",
    "UtilizationReport",
    "collect_utilization",
    "format_utilization",
]
