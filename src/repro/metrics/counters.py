"""Traffic and operation accounting.

The fabric and the Orca runtime report every message here.  The meter splits
traffic into intracluster vs intercluster, RPC vs broadcast — exactly the
categories of the paper's Tables 2, 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["TrafficMeter", "TrafficRow"]


@dataclass
class TrafficRow:
    """One accounting bucket: message count and payload bytes."""

    count: int = 0
    bytes: int = 0

    def add(self, size: int) -> None:
        self.count += 1
        self.bytes += size

    @property
    def kbytes(self) -> float:
        return self.bytes / 1024.0

    def merged(self, other: "TrafficRow") -> "TrafficRow":
        return TrafficRow(self.count + other.count, self.bytes + other.bytes)


@dataclass
class TrafficMeter:
    """Counts application-level operations, split by locality and kind.

    ``kind`` is "rpc" (request/reply pairs count once, on the request),
    "bcast" (one logical broadcast counts once, regardless of fan-out), or
    "msg" (raw asynchronous messages).  Locality is decided by the caller:
    an operation is *intercluster* if it crosses a cluster boundary at any
    point (for a broadcast: if any receiver is in another cluster).
    """

    intra: Dict[str, TrafficRow] = field(default_factory=dict)
    inter: Dict[str, TrafficRow] = field(default_factory=dict)
    # Wire-level byte counters on the WAN links (includes forwarding copies).
    wan_bytes: int = 0
    wan_messages: int = 0

    def _bucket(self, inter: bool, kind: str) -> TrafficRow:
        table = self.inter if inter else self.intra
        row = table.get(kind)
        if row is None:
            row = table[kind] = TrafficRow()
        return row

    def record(self, kind: str, size: int, intercluster: bool) -> None:
        self._bucket(intercluster, kind).add(size)

    def record_wan(self, size: int) -> None:
        self.wan_messages += 1
        self.wan_bytes += size

    # -- report helpers ----------------------------------------------------
    def row(self, kind: str, intercluster: bool) -> TrafficRow:
        table = self.inter if intercluster else self.intra
        return table.get(kind, TrafficRow())

    def total(self, kind: str) -> TrafficRow:
        return self.row(kind, False).merged(self.row(kind, True))

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for loc, table in (("intra", self.intra), ("inter", self.inter)):
            for kind, row in table.items():
                out[f"{loc}.{kind}"] = {"count": row.count, "bytes": row.bytes}
        out["wan"] = {"count": self.wan_messages, "bytes": self.wan_bytes}
        return out

    def reset(self) -> None:
        self.intra.clear()
        self.inter.clear()
        self.wan_bytes = 0
        self.wan_messages = 0
