"""Declarative scenario descriptions.

A :class:`Scenario` is a frozen, picklable, hashable value describing
everything that makes a run differ from the clean DAS model: WAN
impairments, per-cluster heterogeneity tweaks, and timed faults.  It
rides inside :class:`repro.harness.sweeps.RunSpec` — its ``repr`` spells
out every field, so the sweep layer's content-hash cache and parallel
runner work unchanged — and :func:`repro.harness.experiment.run_app`
applies it when building the stack.

Determinism contract (see docs/SCENARIOS.md): the same scenario (seed
included) produces bit-identical results — elapsed, answer, traffic and
trace records — across repeat runs, across processes, and across serial
vs. ``--jobs N`` sweeps.  A default :class:`Scenario` is a guaranteed
no-op: record-for-record identical to a plain run.

All collections are tuples (frozen dataclasses must hash); the parsing
helpers turn the CLI's compact specs (``lognormal:0.3``,
``gw_outage@2.0s+0.5s``, ``1:cpu=0.5,link=fast-ethernet``) into these
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .models import FAULTS, IMPAIRMENTS, model_spec

__all__ = [
    "Impairment",
    "Fault",
    "ClusterTweak",
    "Scenario",
    "parse_fault",
    "parse_cluster_tweak",
]


def _freeze_params(name: str, params: Dict[str, float],
                   registry_kind: str) -> Tuple[Tuple[str, float], ...]:
    spec = model_spec(name)
    if spec.kind != registry_kind:
        raise ValueError(f"{name!r} is a {spec.kind} model, not a "
                         f"{registry_kind}")
    known = spec.defaults()
    integers = set(spec.integer_params())
    for key in params:
        if key not in known:
            raise ValueError(
                f"{name!r} has no parameter {key!r}; "
                f"it takes {sorted(known) or 'no parameters'}")
    merged = dict(known)
    merged.update(params)
    frozen = []
    for key, raw in merged.items():
        value = float(raw)
        if value != value:  # NaN never compares equal to itself
            raise ValueError(f"{name}.{key} must be a number, got NaN")
        if value < 0:
            raise ValueError(f"{name}.{key} must be >= 0, got {raw!r}")
        if key in integers:
            # Integer-typed parameter (int default in the registry):
            # store a genuine int so reprs, hashes and cache keys never
            # carry `8.0` where `8` is meant.
            if not value.is_integer():
                raise ValueError(
                    f"{name}.{key} must be an integer, got {raw!r}")
            frozen.append((key, int(value)))
        else:
            frozen.append((key, value))
    return tuple(sorted(frozen))


@dataclass(frozen=True)
class Impairment:
    """One WAN impairment: a registered model plus its parameters.

    ``params`` is a sorted tuple of ``(name, value)`` pairs covering
    *every* parameter of the model (defaults filled in), so two
    impairments meaning the same thing always compare and hash equal.
    Build with :meth:`of` to get validation and default-filling.
    """

    model: str
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self):
        if self.model not in IMPAIRMENTS:
            raise ValueError(f"unknown impairment model {self.model!r}; "
                             f"choose from {sorted(IMPAIRMENTS)}")

    @classmethod
    def of(cls, model: str, **params: float) -> "Impairment":
        return cls(model, _freeze_params(model, params, "impairment"))

    def param(self, name: str) -> float:
        for key, value in self.params:
            if key == name:
                return value
        defaults = IMPAIRMENTS[self.model].defaults()
        if name not in defaults:
            raise ValueError(
                f"{self.model!r} has no parameter {name!r}; "
                f"it takes {sorted(defaults) or 'no parameters'}")
        return defaults[name]


@dataclass(frozen=True)
class Fault:
    """One timed fault: model, onset, duration, target, parameters.

    ``at`` and ``duration`` are virtual seconds.  ``target`` names what
    the fault hits, in the label syntax of the model's registry entry
    (``c1``, ``c0-c1``, ``n3``); empty means the model's default.
    """

    model: str
    at: float
    duration: float
    target: str = ""
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self):
        if self.model not in FAULTS:
            raise ValueError(f"unknown fault model {self.model!r}; "
                             f"choose from {sorted(FAULTS)}")
        if self.at < 0:
            raise ValueError(f"fault onset must be >= 0: {self.at}")
        if self.duration <= 0:
            raise ValueError(f"fault duration must be > 0: {self.duration}")

    @classmethod
    def of(cls, model: str, at: float, duration: float, target: str = "",
           **params: float) -> "Fault":
        return cls(model, at, duration, target,
                   _freeze_params(model, params, "fault"))

    def param(self, name: str) -> float:
        for key, value in self.params:
            if key == name:
                return value
        defaults = FAULTS[self.model].defaults()
        if name not in defaults:
            raise ValueError(
                f"{self.model!r} has no parameter {name!r}; "
                f"it takes {sorted(defaults) or 'no parameters'}")
        return defaults[name]


@dataclass(frozen=True)
class ClusterTweak:
    """Heterogeneity override for one cluster of the base topology.

    Defaults mean "leave as is"; a tweak with all defaults is a no-op.
    ``link`` names a LAN link class from
    :data:`repro.network.params.LINK_CLASSES`.
    """

    cluster: int
    cpu_speed: float = 1.0
    n_nodes: Optional[int] = None
    link: Optional[str] = None

    def __post_init__(self):
        if self.cluster < 0:
            raise ValueError(f"cluster index must be >= 0: {self.cluster}")
        if self.cpu_speed <= 0:
            raise ValueError(f"cpu_speed must be > 0: {self.cpu_speed}")
        if self.n_nodes is not None and self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1: {self.n_nodes}")
        if self.link is not None:
            from ..network.params import LINK_CLASSES
            if self.link not in LINK_CLASSES:
                raise ValueError(f"unknown link class {self.link!r}; "
                                 f"choose from {sorted(LINK_CLASSES)}")


@dataclass(frozen=True)
class Scenario:
    """Everything that makes a run differ from the clean DAS model.

    Composable with any app x topology x variant: the harness applies
    ``clusters`` to the topology, installs ``impairments`` on the
    fabric's WAN legs, and spawns one delivery process per fault.  The
    default ``Scenario()`` is a guaranteed no-op.
    """

    seed: int = 0
    impairments: Tuple[Impairment, ...] = ()
    faults: Tuple[Fault, ...] = ()
    clusters: Tuple[ClusterTweak, ...] = ()

    def __post_init__(self):
        models = [imp.model for imp in self.impairments]
        if len(models) != len(set(models)):
            raise ValueError(
                f"duplicate impairment models in scenario: {models}")

    def is_noop(self) -> bool:
        """True when applying this scenario cannot change any result."""
        return (not self.impairments and not self.faults
                and all(tw.cpu_speed == 1.0 and tw.n_nodes is None
                        and tw.link is None for tw in self.clusters))

    def describe(self) -> str:
        """One-line human summary (CLI headers, sweep logs)."""
        parts = []
        for imp in self.impairments:
            args = ", ".join(f"{k}={v:g}" for k, v in imp.params)
            parts.append(f"{imp.model}({args})")
        for flt in self.faults:
            label = f"@{flt.at:g}s+{flt.duration:g}s"
            if flt.target:
                label += f":{flt.target}"
            parts.append(f"{flt.model}{label}")
        for tw in self.clusters:
            bits = []
            if tw.cpu_speed != 1.0:
                bits.append(f"cpu={tw.cpu_speed:g}")
            if tw.n_nodes is not None:
                bits.append(f"nodes={tw.n_nodes}")
            if tw.link is not None:
                bits.append(f"link={tw.link}")
            if bits:
                parts.append(f"c{tw.cluster}[{','.join(bits)}]")
        body = "; ".join(parts) if parts else "no-op"
        return f"seed={self.seed}: {body}"


# ------------------------------------------------------- CLI spec parsing

def parse_fault(text: str) -> Fault:
    """Parse ``model@AT s+DUR s[:target][,key=value...]``.

    Examples: ``gw_outage@2.0s+0.5s``, ``link_flap@1s+0.2s:c0-c1``,
    ``slow_node@0.5s+1s:n3,factor=0.1``.
    """
    head, _, extras = text.partition(",")
    name, sep, when = head.partition("@")
    if not sep or name not in FAULTS:
        raise ValueError(
            f"bad fault spec {text!r}: want model@ATs+DURs[:target] with "
            f"model in {sorted(FAULTS)}")
    when, _, target = when.partition(":")
    at_text, sep, dur_text = when.partition("+")
    if not sep:
        raise ValueError(f"bad fault spec {text!r}: want AT s+DUR s, "
                         f"e.g. 2.0s+0.5s")
    try:
        at = float(at_text.rstrip("s"))
        duration = float(dur_text.rstrip("s"))
    except ValueError:
        raise ValueError(f"bad fault times in {text!r}: want numbers "
                         "like 2.0s+0.5s") from None
    params: Dict[str, float] = {}
    if extras:
        for part in extras.split(","):
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"bad fault parameter {part!r} in {text!r} "
                                 "(want key=value)")
            try:
                params[key.strip()] = float(value)
            except ValueError:
                raise ValueError(f"bad fault parameter value {value!r} "
                                 f"in {text!r}") from None
    return Fault.of(name, at, duration, target.strip(), **params)


def parse_cluster_tweak(text: str) -> ClusterTweak:
    """Parse ``INDEX:key=value[,key=value...]``.

    Keys: ``cpu`` (speed multiplier), ``nodes`` (node count), ``link``
    (LAN link class).  Example: ``1:cpu=0.5,link=fast-ethernet``.
    """
    index_text, sep, body = text.partition(":")
    try:
        index = int(index_text)
    except ValueError:
        raise ValueError(f"bad cluster tweak {text!r}: want "
                         "INDEX:key=value,...") from None
    if not sep or not body:
        raise ValueError(f"bad cluster tweak {text!r}: want "
                         "INDEX:key=value,...")
    cpu_speed, n_nodes, link = 1.0, None, None
    for part in body.split(","):
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(f"bad cluster tweak entry {part!r} in {text!r}")
        if key == "cpu":
            cpu_speed = float(value)
        elif key == "nodes":
            n_nodes = int(value)
        elif key == "link":
            link = value.strip()
        else:
            raise ValueError(f"unknown cluster tweak key {key!r} in "
                             f"{text!r} (want cpu/nodes/link)")
    return ClusterTweak(index, cpu_speed=cpu_speed, n_nodes=n_nodes,
                        link=link)
