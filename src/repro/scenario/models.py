"""The scenario model registries: WAN impairments and timed faults.

This module is the machine-readable source of truth for what the
scenario layer can do — the same role :data:`repro.obs.schema.KINDS`
plays for trace records.  ``docs/SCENARIOS.md`` documents every model
for humans, and ``tools/check_docs.py`` (the CI docs job) keeps the two
in lockstep both ways: a model registered here without a reference
section, or a documented model that is not registered, fails the build.

Two registries:

* :data:`IMPAIRMENTS` — stochastic perturbations applied to every WAN
  PVC transfer for the whole run (deterministically seeded per
  directed cluster pair; see :class:`repro.scenario.apply.WanImpairments`).
* :data:`FAULTS` — timed events with an onset and a duration, delivered
  by processes the harness spawns at simulation start (see
  :mod:`repro.scenario.apply`).

Every model lists its parameters with defaults and units, so the CLI,
the docs checker and the reference manual all draw from one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["ModelSpec", "IMPAIRMENTS", "FAULTS", "model_spec"]


@dataclass(frozen=True)
class ModelSpec:
    """One registered scenario model.

    ``params`` maps parameter name -> (default value, unit/meaning).
    A parameter whose *default* is an ``int`` is integer-typed: values
    are validated and stored as ``int`` (``8``, never ``8.0``) at
    :class:`~repro.scenario.spec.Scenario` parse time.  ``target``
    describes what the model's target label (faults only) names;
    impairments apply to every WAN PVC and take no target.
    """

    name: str
    kind: str                                # "impairment" | "fault"
    doc: str                                 # one-line human description
    params: Tuple[Tuple[str, float, str], ...]
    target: str = ""                         # fault target label syntax

    def defaults(self) -> Dict[str, float]:
        return {name: default for name, default, _unit in self.params}

    def integer_params(self) -> Tuple[str, ...]:
        """Names of the integer-typed parameters (int defaults)."""
        return tuple(name for name, default, _unit in self.params
                     if isinstance(default, int) and not
                     isinstance(default, bool))


def _imp(name: str, doc: str, *params: Tuple[str, float, str]) -> ModelSpec:
    return ModelSpec(name=name, kind="impairment", doc=doc, params=params)


def _fault(name: str, doc: str, target: str,
           *params: Tuple[str, float, str]) -> ModelSpec:
    return ModelSpec(name=name, kind="fault", doc=doc, params=params,
                     target=target)


#: WAN impairment models: applied to every WAN PVC transfer, seeded per
#: directed cluster pair (see docs/SCENARIOS.md for the full reference).
IMPAIRMENTS: Dict[str, ModelSpec] = {spec.name: spec for spec in [
    _imp("jitter",
         "median-preserving lognormal multiplier on WAN one-way latency",
         ("sigma", 0.3, "lognormal sigma (dimensionless; 0 disables)")),
    _imp("loss",
         "per-transfer packet loss with retransmission: each lost "
         "attempt pays one extra PVC serialization plus a retransmit "
         "timeout",
         ("p", 0.01, "loss probability per attempt (0..1)"),
         ("rto", 0.05, "retransmit timeout per lost attempt, seconds"),
         ("max_retries", 8, "cap on retransmissions per transfer")),
    _imp("bw_dip",
         "periodic bandwidth dips: during a deterministic, seeded-phase "
         "window the PVC serializes at a fraction of its bandwidth",
         ("depth", 0.5, "fractional bandwidth loss inside a dip (0..1)"),
         ("period", 1.0, "dip cycle length, virtual seconds"),
         ("duty", 0.25, "fraction of each period spent dipped (0..1)")),
    _imp("cross_traffic",
         "background cross traffic: each transfer serializes extra "
         "competing bytes drawn from an exponential distribution",
         ("load", 0.2, "mean competing bytes per payload byte")),
]}

#: Timed fault models: one onset + duration window each, targeted at a
#: gateway, a WAN link, or a node.
FAULTS: Dict[str, ModelSpec] = {spec.name: spec for spec in [
    _fault("gw_outage",
           "a cluster's gateway stops forwarding (its CPU is seized) "
           "and recovers after the window; in-service forwards drain "
           "first",
           "c<K> (cluster index, default c0)"),
    _fault("link_flap",
           "one WAN PVC pair goes down: both directed links between "
           "two clusters are seized for the window",
           "c<A>-c<B> (cluster pair, default c0-c1)"),
    _fault("slow_node",
           "one node computes at a fraction of its speed for the "
           "window (application compute only; protocol overheads are "
           "NIC/firmware costs and stay fixed)",
           "n<K> (global node id, default n0)",
           ("factor", 0.25, "speed multiplier inside the window (0..1)")),
]}


def model_spec(name: str) -> ModelSpec:
    """Look up a registered model in either registry."""
    spec = IMPAIRMENTS.get(name) or FAULTS.get(name)
    if spec is None:
        known = sorted(IMPAIRMENTS) + sorted(FAULTS)
        raise ValueError(f"unknown scenario model {name!r}; "
                         f"choose from {known}")
    return spec
