"""Pluggable scenario layer: WAN impairments, heterogeneity, faults.

The clean paper model (uniform clusters, fixed LAN/WAN constants,
nothing ever fails) is one point in a much larger space.  This package
makes the rest of that space declarative: a frozen
:class:`~repro.scenario.spec.Scenario` composes registered WAN
impairment models, per-cluster heterogeneity tweaks, and timed fault
events with any app x topology x variant, rides inside
:class:`~repro.harness.sweeps.RunSpec` (so the sweep cache and parallel
runner work unchanged), and is applied by
:func:`~repro.harness.experiment.run_app` when building the stack.

``docs/SCENARIOS.md`` is the complete reference manual; the model
registries in :mod:`repro.scenario.models` are its machine-readable
source of truth, kept in lockstep by ``tools/check_docs.py``.
"""

from .apply import WanImpairments, install, scenario_topology
from .models import FAULTS, IMPAIRMENTS, ModelSpec, model_spec
from .spec import (
    ClusterTweak,
    Fault,
    Impairment,
    Scenario,
    parse_cluster_tweak,
    parse_fault,
)

__all__ = [
    "WanImpairments",
    "install",
    "scenario_topology",
    "FAULTS",
    "IMPAIRMENTS",
    "ModelSpec",
    "model_spec",
    "ClusterTweak",
    "Fault",
    "Impairment",
    "Scenario",
    "parse_cluster_tweak",
    "parse_fault",
]
