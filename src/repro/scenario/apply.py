"""Applying a :class:`~repro.scenario.spec.Scenario` to a run.

Three mechanisms, one per scenario axis (see docs/SCENARIOS.md):

* **Heterogeneity** — :func:`scenario_topology` rewrites the base
  topology's :class:`~repro.network.topology.ClusterSpec` list with the
  scenario's per-cluster tweaks (CPU speed, node count, LAN link class);
  the fabric reads the specs directly, so nothing else changes.
* **WAN impairments** — :class:`WanImpairments` is installed on the
  fabric (``fabric.impair``); every WAN PVC transfer then routes through
  the legacy generator leg (even on the fast tier) and calls
  :meth:`WanImpairments.plan` to perturb its serialization time,
  latency, and retransmission count.  Randomness comes from one
  :func:`~repro.sim.rng.substream` per (model, directed cluster pair),
  so a run is bit-identical per seed regardless of host parallelism.
* **Faults** — :func:`install` spawns one generator process per
  :class:`~repro.scenario.spec.Fault`, which sleeps until the onset,
  seizes the target (gateway CPU, WAN PVC pair) or rescales a node's
  speed, holds for the duration, recovers, and emits one ``scn.fault``
  span covering the *actual* window (onset may drain in-service work
  first).

Everything here is additive: with an empty scenario nothing is
installed and the run is record-for-record identical to a plain one.
"""

from __future__ import annotations

import re
from typing import Generator, List, Optional, Tuple

from ..network.fabric import Fabric
from ..network.topology import ClusterSpec, Topology
from ..sim import Simulator
from ..sim.rng import substream
from .spec import Fault, Scenario

__all__ = ["scenario_topology", "install", "WanImpairments", "ImpairPlan"]


# ------------------------------------------------------- heterogeneity

def scenario_topology(scenario: Scenario, base: Topology) -> Topology:
    """The base topology with the scenario's cluster tweaks applied."""
    if not scenario.clusters:
        return base
    specs = list(base.clusters)
    for tweak in scenario.clusters:
        if tweak.cluster >= len(specs):
            raise ValueError(
                f"cluster tweak targets cluster {tweak.cluster} but the "
                f"topology has {len(specs)} clusters")
        old = specs[tweak.cluster]
        specs[tweak.cluster] = ClusterSpec(
            name=old.name,
            n_nodes=old.n_nodes if tweak.n_nodes is None else tweak.n_nodes,
            cpu_speed=tweak.cpu_speed,
            link=tweak.link,
        )
    return Topology(specs)


# ----------------------------------------------------- WAN impairments

class ImpairPlan:
    """The perturbation one WAN transfer suffers (see :meth:`plan`)."""

    __slots__ = ("tx", "latency", "retries", "rto")

    def __init__(self, tx: float, latency: float, retries: int, rto: float):
        self.tx = tx            # serialization seconds for each attempt
        self.latency = latency  # one-way pipeline latency, seconds
        self.retries = retries  # extra (lost) attempts before success
        self.rto = rto          # wait after each lost attempt, seconds


class WanImpairments:
    """Seeded perturbation of every WAN PVC transfer.

    One instance per run, installed as ``fabric.impair``.  The fabric's
    WAN leg calls :meth:`plan` once per transfer *before* occupying the
    PVC; the plan's extra serialization, latency delta and retransmit
    count are then executed by the leg itself, so queueing effects
    (a dipped PVC backing up, retransmits delaying the queue behind
    them) emerge from the normal resource model.

    Determinism: each (model, directed pair) owns an independent
    :func:`~repro.sim.rng.substream`; draws happen in transfer order on
    that pair, which the simulator makes deterministic.  Tracing never
    draws — ``scn.impair`` records are emitted from values already
    computed.
    """

    def __init__(self, sim: Simulator, scenario: Scenario, tracer=None):
        self.sim = sim
        self.seed = scenario.seed
        self.tracer = tracer
        self._jitter: Optional[float] = None          # sigma
        self._loss: Optional[Tuple[float, float, int]] = None  # p, rto, cap
        self._dip: Optional[Tuple[float, float, float]] = None  # depth/period/duty
        self._cross: Optional[float] = None           # load
        for imp in scenario.impairments:
            if imp.model == "jitter":
                self._jitter = imp.param("sigma")
            elif imp.model == "loss":
                self._loss = (imp.param("p"), imp.param("rto"),
                              int(imp.param("max_retries")))
            elif imp.model == "bw_dip":
                self._dip = (imp.param("depth"), imp.param("period"),
                             imp.param("duty"))
            elif imp.model == "cross_traffic":
                self._cross = imp.param("load")
        self._streams = {}
        self._phases = {}

    def _stream(self, model: str, pair: Tuple[int, int]):
        key = (model, pair)
        rng = self._streams.get(key)
        if rng is None:
            rng = self._streams[key] = substream(
                self.seed, f"{model}:{pair[0]}->{pair[1]}")
        return rng

    def _phase(self, pair: Tuple[int, int]) -> float:
        phase = self._phases.get(pair)
        if phase is None:
            period = self._dip[1]
            phase = self._phases[pair] = float(
                self._stream("bw_dip", pair).uniform(0.0, period))
        return phase

    def _emit(self, model: str, pair: Tuple[int, int], msg_id: int,
              extra: float, retries: int = 0) -> None:
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(self.sim.now, "scn.impair", model=model,
                    link=f"c{pair[0]}->c{pair[1]}", msg_id=msg_id,
                    extra=extra, retries=retries)

    def plan(self, src_cluster: int, dst_cluster: int, size: int,
             tx: float, latency: float, msg_id: int) -> ImpairPlan:
        """Perturb one transfer of ``size`` bytes on the directed PVC.

        ``tx``/``latency`` are the clean serialization and pipeline
        times; the returned plan carries the impaired values plus the
        retransmission schedule.  One ``scn.impair`` record is emitted
        per *contributing* model (a model whose draw changed nothing —
        e.g. outside a dip window — stays silent).
        """
        pair = (src_cluster, dst_cluster)
        bandwidth = size / tx if tx > 0 else 0.0
        if self._cross is not None and bandwidth > 0:
            load = self._cross
            extra_bytes = float(
                self._stream("cross_traffic", pair).exponential(load * size))
            if extra_bytes > 0:
                delta = extra_bytes / bandwidth
                tx += delta
                self._emit("cross_traffic", pair, msg_id, delta)
        if self._dip is not None and tx > 0:
            depth, period, duty = self._dip
            offset = (self.sim.now + self._phase(pair)) % period
            if offset < duty * period and depth > 0:
                delta = tx * depth / (1.0 - depth)
                tx += delta
                self._emit("bw_dip", pair, msg_id, delta)
        if self._jitter is not None and self._jitter > 0:
            factor = float(
                self._stream("jitter", pair).lognormal(0.0, self._jitter))
            delta = latency * (factor - 1.0)
            latency += delta
            self._emit("jitter", pair, msg_id, delta)
        retries, rto = 0, 0.0
        if self._loss is not None:
            p, rto, cap = self._loss
            rng = self._stream("loss", pair)
            while retries < cap and float(rng.random()) < p:
                retries += 1
            if retries:
                self._emit("loss", pair, msg_id, retries * (tx + rto),
                           retries)
        return ImpairPlan(tx, latency, retries, rto)


# --------------------------------------------------------------- faults

_CLUSTER = re.compile(r"^c(\d+)$")
_PAIR = re.compile(r"^c(\d+)-c(\d+)$")
_NODE = re.compile(r"^n(\d+)$")


def _parse_target(fault: Fault, fabric: Fabric):
    """Resolve a fault's target label against the built fabric."""
    topo = fabric.topo
    label = fault.target
    if fault.model == "gw_outage":
        match = _CLUSTER.match(label or "c0")
        if not match or int(match.group(1)) >= topo.n_clusters:
            raise ValueError(f"gw_outage target {label!r}: want c<K> with "
                             f"K < {topo.n_clusters}")
        return int(match.group(1))
    if fault.model == "link_flap":
        match = _PAIR.match(label or "c0-c1")
        if match:
            a, b = int(match.group(1)), int(match.group(2))
        if not match or a == b or a >= topo.n_clusters \
                or b >= topo.n_clusters:
            raise ValueError(f"link_flap target {label!r}: want c<A>-c<B> "
                             f"with distinct clusters < {topo.n_clusters}")
        return a, b
    if fault.model == "slow_node":
        match = _NODE.match(label or "n0")
        if not match or int(match.group(1)) >= topo.n_nodes:
            raise ValueError(f"slow_node target {label!r}: want n<K> with "
                             f"K < {topo.n_nodes}")
        return int(match.group(1))
    raise AssertionError(f"unhandled fault model {fault.model}")


def _emit_fault(fabric: Fabric, fault: Fault, target_label: str,
                t0: float) -> None:
    tr = fabric.tracer
    if tr.enabled:
        now = fabric.sim.now
        tr.emit(now, "scn.fault", model=fault.model, target=target_label,
                t0=t0, dur=now - t0)


def _gw_outage(fabric: Fabric, fault: Fault, cluster: int) -> Generator:
    sim = fabric.sim
    yield sim.timeout(fault.at)
    cpu = fabric.gateways[cluster].cpu
    # Seize the gateway CPU with a plain request: forwards already in
    # service drain first (the outage begins when the gateway goes
    # quiet), then everything queues behind the outage until recovery.
    yield cpu.request()
    t0 = sim.now
    yield sim.timeout(fault.duration)
    cpu.release()
    _emit_fault(fabric, fault, f"c{cluster}", t0)


def _link_flap(fabric: Fabric, fault: Fault, pair: Tuple[int, int]) -> Generator:
    sim = fabric.sim
    a, b = pair
    yield sim.timeout(fault.at)
    fwd = fabric._wan[(a, b)]
    rev = fabric._wan[(b, a)]
    yield fwd.request()
    yield rev.request()
    t0 = sim.now
    yield sim.timeout(fault.duration)
    fwd.release()
    rev.release()
    _emit_fault(fabric, fault, f"c{a}-c{b}", t0)


def _slow_node(fabric: Fabric, fault: Fault, node: int) -> Generator:
    sim = fabric.sim
    yield sim.timeout(fault.at)
    speeds = fabric.node_speed
    assert speeds is not None  # install() materializes the list
    t0 = sim.now
    old = speeds[node]
    speeds[node] = old * fault.param("factor")
    yield sim.timeout(fault.duration)
    speeds[node] = old
    _emit_fault(fabric, fault, f"n{node}", t0)


_FAULT_PROCS = {
    "gw_outage": _gw_outage,
    "link_flap": _link_flap,
    "slow_node": _slow_node,
}


def install(sim: Simulator, fabric: Fabric, scenario: Scenario) -> None:
    """Install a scenario on a freshly built stack (before the app runs).

    Idempotent-by-construction with the no-op guarantee: an empty
    scenario installs nothing at all.
    """
    if scenario.impairments:
        fabric.impair = WanImpairments(sim, scenario, tracer=fabric.tracer)
    for fault in scenario.faults:
        target = _parse_target(fault, fabric)
        if fault.model == "slow_node" and fabric.node_speed is None:
            # Materialize the per-node speed table the fault toggles.
            fabric.node_speed = [1.0] * fabric.topo.n_nodes
        proc = _FAULT_PROCS[fault.model]
        sim.spawn(proc(fabric, fault, target),
                  name=f"fault:{fault.model}")
