"""Network parameter sets (latency, bandwidth, per-message CPU overheads).

All figures are *application-to-application*, as in the paper's Table 1 and
Section 2: Myrinet LAN null-RPC latency 40 us round trip and 208 Mbit/s;
DAS wide-area ATM 2.7 ms round trip and 4.53 Mbit/s; ordinary Internet on a
quiet Sunday morning 8 ms and 1.8 Mbit/s.

Units: seconds and bytes/second throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "LinkParams",
    "GatewayParams",
    "NetworkParams",
    "MYRINET",
    "FAST_ETHERNET",
    "ATM_DAS",
    "INTERNET_SUNDAY",
    "SLOW_WAN",
    "DAS_PARAMS",
    "INTERNET_PARAMS",
    "SLOW_WAN_PARAMS",
    "LINK_CLASSES",
    "mbit",
    "usec",
]


def mbit(x: float) -> float:
    """Megabits/second -> bytes/second."""
    return x * 1e6 / 8.0


def usec(x: float) -> float:
    """Microseconds -> seconds."""
    return x * 1e-6


@dataclass(frozen=True)
class LinkParams:
    """One network hop.

    ``latency`` is wire/propagation + switching delay per message (pipeline
    delay: it does not occupy the link).  ``bandwidth`` serializes messages
    on the link: a message holds the link for ``size / bandwidth``.
    ``o_send`` / ``o_recv`` are CPU occupancy per message on the endpoints
    (LogP o); ``per_byte_cpu`` models copy cost on the hosts.
    """

    name: str
    latency: float
    bandwidth: float
    o_send: float
    o_recv: float
    per_byte_cpu: float = 0.0

    def wire_time(self, size: int) -> float:
        return self.latency + size / self.bandwidth

    def with_(self, **kw) -> "LinkParams":
        return replace(self, **kw)


@dataclass(frozen=True)
class GatewayParams:
    """Store-and-forward gateway service cost (per message, on gateway CPU)."""

    forward_cost: float = usec(150.0)
    per_byte_cost: float = 1.0 / mbit(400.0)


@dataclass(frozen=True)
class NetworkParams:
    """Complete parameter set for a multilevel cluster."""

    lan: LinkParams
    wan: LinkParams
    access: LinkParams  # node <-> gateway hop (Fast Ethernet in DAS)
    gateway: GatewayParams
    # Extra fixed software cost per broadcast *message* at the sender
    # (sequencer interaction is modeled explicitly by the Orca layer).
    bcast_extra: float = usec(18.0)

    def with_wan(self, wan: LinkParams) -> "NetworkParams":
        return replace(self, wan=wan)


# --------------------------------------------------------------------------
# Presets.  Calibrated so the Orca-level benchmarks reproduce Table 1:
#   RPC      LAN 40 us / 208 Mbit/s      WAN 2.7 ms / 4.53 Mbit/s
#   Bcast    LAN 65 us / 248 Mbit/s      WAN 3.0 ms / 4.53 Mbit/s
# A null RPC is request + reply; each one-way LAN message costs
# o_send + latency + o_recv = 5 + 10 + 5 = 20 us, so 40 us round trip.
# --------------------------------------------------------------------------

MYRINET = LinkParams(
    name="myrinet",
    latency=usec(10.0),
    bandwidth=mbit(208.0) * 1.02,  # slight headroom: o_send overlaps the wire
    o_send=usec(5.0),
    o_recv=usec(5.0),
    per_byte_cpu=0.0,
)

FAST_ETHERNET = LinkParams(
    name="fast-ethernet",
    latency=usec(35.0),
    bandwidth=mbit(100.0),
    o_send=usec(10.0),
    o_recv=usec(10.0),
)

# One-way WAN wire latency chosen so that the full intercluster RPC path
# (node ->FE-> gateway ->ATM-> gateway ->FE-> node, plus gateway forwarding)
# measures ~2.7 ms round trip at the Orca level.
ATM_DAS = LinkParams(
    name="atm-das",
    latency=0.949e-3,
    bandwidth=mbit(4.53),
    o_send=usec(15.0),
    o_recv=usec(15.0),
)

INTERNET_SUNDAY = LinkParams(
    name="internet-sunday",
    latency=3.599e-3,
    bandwidth=mbit(1.8),
    o_send=usec(15.0),
    o_recv=usec(15.0),
)

# The "slower network" of Section 4.4: 10 ms latency, 2 Mbit/s.
SLOW_WAN = LinkParams(
    name="slow-wan",
    latency=4.699e-3,  # one-way wire; total RT ~10 ms with endpoint costs
    bandwidth=mbit(2.0),
    o_send=usec(15.0),
    o_recv=usec(15.0),
)

DAS_PARAMS = NetworkParams(
    lan=MYRINET,
    wan=ATM_DAS,
    access=FAST_ETHERNET,
    gateway=GatewayParams(),
)

INTERNET_PARAMS = DAS_PARAMS.with_wan(INTERNET_SUNDAY)
SLOW_WAN_PARAMS = DAS_PARAMS.with_wan(SLOW_WAN)

#: Named link classes a heterogeneous cluster can select as its LAN
#: (see :class:`repro.network.topology.ClusterSpec` and
#: docs/SCENARIOS.md).  Keyed by each preset's ``name`` field.
LINK_CLASSES = {link.name: link for link in (
    MYRINET, FAST_ETHERNET, ATM_DAS, INTERNET_SUNDAY, SLOW_WAN)}
