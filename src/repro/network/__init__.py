"""Multilevel (LAN + WAN) cluster network substrate."""

from .fabric import Fabric, Gateway, Node
from .message import Message
from .params import (
    ATM_DAS,
    DAS_PARAMS,
    FAST_ETHERNET,
    LINK_CLASSES,
    GatewayParams,
    INTERNET_PARAMS,
    INTERNET_SUNDAY,
    LinkParams,
    MYRINET,
    NetworkParams,
    SLOW_WAN,
    SLOW_WAN_PARAMS,
    mbit,
    usec,
)
from .topology import (
    ClusterSpec,
    Topology,
    das_experimentation,
    das_real,
    uniform_clusters,
)

__all__ = [
    "Fabric",
    "Gateway",
    "Node",
    "Message",
    "ATM_DAS",
    "DAS_PARAMS",
    "FAST_ETHERNET",
    "LINK_CLASSES",
    "GatewayParams",
    "INTERNET_PARAMS",
    "INTERNET_SUNDAY",
    "LinkParams",
    "MYRINET",
    "NetworkParams",
    "SLOW_WAN",
    "SLOW_WAN_PARAMS",
    "mbit",
    "usec",
    "ClusterSpec",
    "Topology",
    "das_experimentation",
    "das_real",
    "uniform_clusters",
]
