"""The multilevel network fabric: nodes, gateways, LAN and WAN paths.

The fabric is the paper's DAS machine model:

* Every compute node has one CPU (a FIFO resource shared between
  application compute and per-message protocol overheads) and per-node
  LAN injection/delivery ports (so endpoint contention is modeled, while
  disjoint pairs communicate in parallel — a crossbar-like Myrinet).
* Every cluster has one *dedicated* gateway (it runs no application code,
  matching the paper).  Intercluster messages travel
  node -> access link -> gateway -> WAN PVC -> remote gateway -> access
  link -> node, with store-and-forward CPU cost at each gateway.
* WAN PVCs are per directed cluster pair (the DAS has a Permanent Virtual
  Circuit between every pair of sites), each a bandwidth-serialized link.
* The LAN supports hardware-assisted multicast (Myrinet FM broadcast):
  one injection, parallel delivery to all cluster nodes.

Send semantics: :meth:`Fabric.send` is a generator to be driven by the
*calling* process — the caller pays the sender-side CPU overhead
synchronously, then the rest of the path proceeds in the background.  It
returns the delivery event, so callers can also wait for arrival.

Two implementations of every message path coexist (see
``docs/ARCHITECTURE.md``, *The two-tier resource model*):

* the default **fast path** drives each leg as a flat callback chain on
  :meth:`Resource.occupy <repro.sim.Resource.occupy>` /
  :meth:`CPU.execute_ev <repro.sim.CPU.execute_ev>` completion events —
  an uncontended leg costs a single heap entry, no generator and no
  :class:`~repro.sim.Process`;
* the **legacy path** (``fast_paths=False``) is the original per-leg
  process tree, kept as the executable reference for the determinism
  contract: both tiers must produce bit-identical answers, virtual
  times, traffic counters and (non-process) trace records.  The golden
  equivalence suite in ``tests/test_fabric_fastpath_golden.py`` enforces
  this for all eight applications.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..metrics.counters import TrafficMeter
from ..sim import (CPU, Channel, Event, Resource, SimulationError, Simulator,
                   Tracer, fire)
from .message import Message
from .params import LINK_CLASSES, NetworkParams
from .topology import Topology

__all__ = ["Node", "Gateway", "Fabric"]


def _NO_THEN() -> None:
    """Placeholder continuation for legs cut at a PDES boundary."""


class Node:
    """A compute node: CPU + named mailboxes (ports)."""

    def __init__(self, sim: Simulator, nid: int, cluster: int):
        self.sim = sim
        self.nid = nid
        self.cluster = cluster
        self.cpu = CPU(sim, name=f"cpu{nid}")
        self._ports: Dict[str, Channel] = {}

    def port(self, name: str = "default") -> Channel:
        """The named mailbox on this node (created on first use)."""
        ch = self._ports.get(name)
        if ch is None:
            ch = self._ports[name] = Channel(self.sim, name=f"n{self.nid}:{name}")
        return ch

    def __repr__(self) -> str:
        return f"Node({self.nid}@c{self.cluster})"


class Gateway:
    """A dedicated store-and-forward gateway for one cluster."""

    def __init__(self, sim: Simulator, cluster: int):
        self.sim = sim
        self.cluster = cluster
        self.cpu = CPU(sim, name=f"gw{cluster}")

    def __repr__(self) -> str:
        return f"Gateway(c{self.cluster})"


class Fabric:
    """Routes messages over the multilevel cluster."""

    def __init__(self, sim: Simulator, topo: Topology, params: NetworkParams,
                 meter: Optional[TrafficMeter] = None,
                 tracer: Optional[Tracer] = None,
                 fast_paths: bool = True):
        self.sim = sim
        self.topo = topo
        self.params = params
        self.meter = meter if meter is not None else TrafficMeter()
        self.tracer = tracer if tracer is not None else Tracer()
        #: True: callback-chained legs (the default).  False: the
        #: original per-leg process trees — the executable reference
        #: implementation the golden equivalence suite compares against.
        self.fast_paths = fast_paths
        #: Optional :class:`repro.scenario.apply.WanImpairments`.  When
        #: installed, every WAN path routes through the legacy generator
        #: leg (even on the fast tier) so the impairment RNG draws in
        #: deterministic event order — determinism is then *per seed*,
        #: not cross-tier (see docs/SCENARIOS.md).
        self.impair = None
        #: Optional :class:`repro.tuner.DecisionModel`.  When installed,
        #: point-to-point WAN transfers consult it for a striping factor
        #: (MPWide-style parallel streams); striped transfers route
        #: through the legacy generator leg like impaired ones.  ``None``
        #: (the default tier) means one stream — bit-identical to the
        #: pre-tuner fabric.  See docs/TUNING.md.
        self.decision = None
        #: Optional :class:`repro.sim.pdes.PartitionBoundary`.  When a
        #: PDES worker installs one, point-to-point WAN deliveries whose
        #: destination cluster lives in *another* partition stop at the
        #: PVC stage: the source half runs here (access up, gateway
        #: forward, PVC occupancy, ``wan.xfer`` emit) and the boundary
        #: exports a timestamped arrival for the owning partition, which
        #: replays the destination half via :meth:`pdes_arrive`.  ``None``
        #: (always, outside PDES workers) keeps every path single-process.
        self.pdes = None

        self.nodes: List[Node] = [
            Node(sim, nid, topo.cluster_of(nid)) for nid in range(topo.n_nodes)
        ]
        #: Per-node compute speed multipliers, or ``None`` when every
        #: node runs at 1.0 (the clean model — keeping ``None`` makes
        #: the scaling arithmetic a guaranteed no-op).  Seeded from the
        #: topology's per-cluster ``cpu_speed``; the ``slow_node`` fault
        #: rescales entries inside its window.  Consumed by
        #: :meth:`repro.orca.runtime.Context.compute`.
        speeds = [topo.clusters[node.cluster].cpu_speed for node in self.nodes]
        self.node_speed: Optional[List[float]] = (
            speeds if any(s != 1.0 for s in speeds) else None)
        #: Per-cluster LAN parameters: a cluster spec naming a ``link``
        #: class uses it, everyone else shares ``params.lan`` (the very
        #: same object, so homogeneous runs are bit-identical to the
        #: pre-heterogeneity fabric).  Both tiers read this table.
        for spec in topo.clusters:
            if spec.link is not None and spec.link not in LINK_CLASSES:
                raise ValueError(
                    f"cluster {spec.name!r} names unknown link class "
                    f"{spec.link!r}; choose from {sorted(LINK_CLASSES)}")
        self._cluster_lan = [
            params.lan if spec.link is None else LINK_CLASSES[spec.link]
            for spec in topo.clusters
        ]
        self.gateways: List[Gateway] = [
            Gateway(sim, ci) for ci in range(topo.n_clusters)
        ]
        # Per-node LAN ports: injection (out) and delivery (in).
        self._lan_out = [Resource(sim, name=f"lanout{n}") for n in range(topo.n_nodes)]
        self._lan_in = [Resource(sim, name=f"lanin{n}") for n in range(topo.n_nodes)]
        # Per-cluster gateway access links (shared by the whole cluster —
        # the DAS gateways hang off Fast Ethernet, a genuine bottleneck).
        self._gw_access = [Resource(sim, name=f"gwaccess{c}")
                           for c in range(topo.n_clusters)]
        # Directed WAN PVCs between cluster pairs.
        self._wan: Dict[Tuple[int, int], Resource] = {
            pair: Resource(sim, name=f"wan{pair}")
            for pair in topo.cluster_pairs()
        }

    # ------------------------------------------------------------------ API

    def node(self, nid: int) -> Node:
        """The compute node with global id ``nid``."""
        return self.nodes[nid]

    def _p2p_streams(self, size: int) -> int:
        """Striping factor for one point-to-point WAN transfer (1 =
        no decision model installed = the fixed default)."""
        if self.decision is None:
            return 1
        return max(1, self.decision.wan_streams(size, self.topo.n_clusters))

    def send(self, src: int, dst: int, size: int, payload: Any = None,
             port: str = "default", kind: str = "msg", *,
             _wait: bool = False) -> Generator:
        """Generator: caller pays sender overhead, delivery runs in background.

        Yields from the calling process; *returns* the delivery
        :class:`Event` (fires with the :class:`Message` once deposited in
        the destination port).  ``_wait`` marks the send as one the
        caller will block on (:meth:`send_and_wait` sets it) — only the
        PDES boundary consumes it, to arm the delivery acknowledgment.
        """
        msg = Message(src=src, dst=dst, size=size, payload=payload,
                      port=port, kind=kind, send_time=self.sim.now)
        local = self.topo.same_cluster(src, dst)
        tr = self.tracer
        if tr.enabled:
            scope = "self" if src == dst else ("lan" if local else "wan")
            tr.emit(self.sim.now, "msg.send", msg_id=msg.msg_id, src=src,
                    dst=dst, size=size, msg_kind=kind, port=port, scope=scope)
        link = self._cluster_lan[self.nodes[src].cluster] if local \
            else self.params.access
        cost = link.o_send + size * link.per_byte_cpu
        # Sender-side CPU overhead, paid synchronously by the caller.
        if self.fast_paths:
            yield self.nodes[src].cpu.execute_ev(cost)
            if src == dst:
                return self._fast_self(msg)
            if local:
                return self._fast_lan(msg)
            streams = self._p2p_streams(size)
            if self.impair is not None or streams > 1:
                # Impaired or striped WAN: the legacy leg draws and pays
                # the perturbations (and chunk legs) in deterministic
                # event order.
                return self.sim.spawn(
                    self._deliver_wan(msg, streams, wait=_wait),
                    name="wanmsg")
            return self._fast_wan(msg, wait=_wait)
        yield self.sim.spawn(self.nodes[src].cpu.execute(cost))
        if src == dst:
            done = self.sim.spawn(self._deliver_self(msg), name="selfmsg")
        elif local:
            done = self.sim.spawn(self._deliver_lan(msg), name="lanmsg")
        else:
            done = self.sim.spawn(
                self._deliver_wan(msg, self._p2p_streams(size), wait=_wait),
                name="wanmsg")
        return done

    def send_and_wait(self, src: int, dst: int, size: int, payload: Any = None,
                      port: str = "default", kind: str = "msg") -> Generator:
        """Generator: like :meth:`send` but blocks until delivery."""
        done = yield from self.send(src, dst, size, payload, port, kind,
                                    _wait=True)
        msg = yield done
        return msg

    def multicast_local(self, src: int, size: int, payload: Any = None,
                        port: str = "default", kind: str = "msg",
                        include_self: bool = True) -> Generator:
        """Myrinet-style LAN multicast from ``src`` to its whole cluster.

        Caller pays sender overhead; returns an event firing when *all*
        receivers have the message.
        """
        lan = self._cluster_lan[self.nodes[src].cluster]
        cost = lan.o_send + self.params.bcast_extra + size * lan.per_byte_cpu
        if self.fast_paths:
            yield self.nodes[src].cpu.execute_ev(cost)
            return self._fast_multicast(src, self.topo.cluster_of(src), size,
                                        payload, port, kind, include_self)
        yield self.sim.spawn(self.nodes[src].cpu.execute(cost))
        done = self.sim.spawn(
            self._deliver_multicast(src, self.topo.cluster_of(src), size,
                                    payload, port, kind, include_self),
            name="mcast")
        return done

    def gateway_multicast(self, src: int, dst_cluster: int, size: int,
                          payload: Any = None, port: str = "default",
                          kind: str = "msg") -> Generator:
        """Send over the WAN to ``dst_cluster``'s gateway, which re-multicasts
        to every node of that cluster (how Orca broadcasts cross the WAN)."""
        if self.topo.cluster_of(src) == dst_cluster:
            raise ValueError("gateway_multicast targets a *remote* cluster")
        access = self.params.access
        cost = access.o_send + size * access.per_byte_cpu
        streams = self._p2p_streams(size)
        if self.fast_paths:
            yield self.nodes[src].cpu.execute_ev(cost)
            if self.impair is not None or streams > 1:
                return self.sim.spawn(
                    self._deliver_wan_multicast(src, dst_cluster, size,
                                                payload, port, kind, streams),
                    name="wanmcast")
            return self._fast_wan_multicast(src, dst_cluster, size, payload,
                                            port, kind)
        yield self.sim.spawn(self.nodes[src].cpu.execute(cost))
        done = self.sim.spawn(
            self._deliver_wan_multicast(src, dst_cluster, size, payload,
                                        port, kind, streams),
            name="wanmcast")
        return done

    def wan_fanout_multicast(self, src: int, size: int, payload: Any = None,
                             port: str = "default", kind: str = "msg",
                             shape: str = "flat",
                             streams: int = 1) -> Generator:
        """Broadcast to *all remote clusters*: one access-link trip to the
        local gateway, then WAN transfers on the PVCs, each remote gateway
        re-multicasting locally.  This is how the DAS gateways fan out an
        Orca broadcast; the payload climbs the sender's access link only
        once.

        ``shape`` picks the dissemination tree over the remote clusters
        (``flat``: parallel PVC transfers from the source gateway —
        the paper's shape and the default; ``chain``: a gateway relay,
        each cluster forwarding to the next while its local multicast
        proceeds; ``binomial``: recursive halving over the gateways).
        ``streams`` stripes each WAN transfer over that many parallel
        chunks.  Non-default shapes/streams run on the legacy generator
        legs even on the fast tier — the defaults are bit-identical to
        the pre-tuner fabric."""
        src_cluster = self.topo.cluster_of(src)
        remote = [c for c in range(self.topo.n_clusters) if c != src_cluster]
        if not remote:
            done = Event(self.sim)
            done.succeed(0)
            return done
        access = self.params.access
        cost = access.o_send + size * access.per_byte_cpu
        if self.fast_paths:
            yield self.nodes[src].cpu.execute_ev(cost)
            if self.impair is not None or shape != "flat" or streams > 1:
                return self.sim.spawn(
                    self._deliver_wan_fanout(src, src_cluster, remote, size,
                                             payload, port, kind, shape,
                                             streams),
                    name="wanfanout")
            return self._fast_wan_fanout(src, src_cluster, remote, size,
                                         payload, port, kind)
        yield self.sim.spawn(self.nodes[src].cpu.execute(cost))
        done = self.sim.spawn(
            self._deliver_wan_fanout(src, src_cluster, remote, size, payload,
                                     port, kind, shape, streams),
            name="wanfanout")
        return done

    # ----------------------------------------------- chain-style entry points
    #
    # Non-generator counterparts of send / multicast_local /
    # wan_fanout_multicast for callers that are themselves callback
    # chains (the Orca runtime's fast tier).  They charge the
    # sender-side CPU exactly like the generator APIs, then launch the
    # same fast delivery legs; ``then`` runs where a process driving
    # the generator would resume.  Only meaningful on the fast tier —
    # the Orca runtime refuses to combine its fast paths with a
    # legacy-tier fabric.

    def send_chain(self, src: int, dst: int, size: int, payload: Any = None,
                   port: str = "default", kind: str = "msg",
                   then: Optional[Callable[[Event], None]] = None) -> None:
        """:meth:`send` as a callback chain: charge the sender CPU, then
        launch the delivery legs.  ``then(done)`` — if given — receives
        the delivery event once the sender-side overhead is paid, the
        point a driving process resumes at."""
        msg = Message(src=src, dst=dst, size=size, payload=payload,
                      port=port, kind=kind, send_time=self.sim.now)
        local = self.topo.same_cluster(src, dst)
        tr = self.tracer
        if tr.enabled:
            scope = "self" if src == dst else ("lan" if local else "wan")
            tr.emit(self.sim.now, "msg.send", msg_id=msg.msg_id, src=src,
                    dst=dst, size=size, msg_kind=kind, port=port, scope=scope)
        link = self._cluster_lan[self.nodes[src].cluster] if local \
            else self.params.access
        cost = link.o_send + size * link.per_byte_cpu

        def _launch(_ev: Event) -> None:
            if src == dst:
                done = self._fast_self(msg)
            elif local:
                done = self._fast_lan(msg)
            else:
                streams = self._p2p_streams(size)
                if self.impair is not None or streams > 1:
                    done = self.sim.spawn(self._deliver_wan(msg, streams),
                                          name="wanmsg")
                else:
                    done = self._fast_wan(msg)
            if then is not None:
                then(done)

        self.nodes[src].cpu.execute_ev(cost).callbacks.append(_launch)

    def multicast_local_chain(self, src: int, size: int, payload: Any = None,
                              port: str = "default", kind: str = "msg",
                              include_self: bool = True,
                              then: Optional[Callable[[Event], None]] = None
                              ) -> None:
        """:meth:`multicast_local` as a callback chain (see
        :meth:`send_chain`); ``then(done)`` receives the all-delivered
        event."""
        cluster = self.topo.cluster_of(src)
        lan = self._cluster_lan[cluster]
        cost = lan.o_send + self.params.bcast_extra + size * lan.per_byte_cpu

        def _launch(_ev: Event) -> None:
            done = self._fast_multicast(src, cluster, size, payload, port,
                                        kind, include_self)
            if then is not None:
                then(done)

        self.nodes[src].cpu.execute_ev(cost).callbacks.append(_launch)

    def wan_fanout_multicast_chain(self, src: int, size: int,
                                   payload: Any = None,
                                   port: str = "default", kind: str = "msg",
                                   shape: str = "flat", streams: int = 1,
                                   then: Optional[Callable[[Event], None]]
                                   = None) -> None:
        """:meth:`wan_fanout_multicast` as a callback chain (see
        :meth:`send_chain`).  With no remote clusters ``then(None)``
        runs synchronously — no event is created, so a quiet instant
        stays quiet."""
        src_cluster = self.topo.cluster_of(src)
        remote = [c for c in range(self.topo.n_clusters) if c != src_cluster]
        if not remote:
            if then is not None:
                then(None)
            return
        access = self.params.access
        cost = access.o_send + size * access.per_byte_cpu

        def _launch(_ev: Event) -> None:
            if self.impair is not None or shape != "flat" or streams > 1:
                done = self.sim.spawn(
                    self._deliver_wan_fanout(src, src_cluster, remote, size,
                                             payload, port, kind, shape,
                                             streams),
                    name="wanfanout")
            else:
                done = self._fast_wan_fanout(src, src_cluster, remote, size,
                                             payload, port, kind)
            if then is not None:
                then(done)

        self.nodes[src].cpu.execute_ev(cost).callbacks.append(_launch)

    # ------------------------------------------------- fast callback chains
    #
    # Each _fast_* builds the whole leg chain synchronously and returns
    # (or drives) completion events; the only heap entries are the
    # timeouts that genuinely advance virtual time.  Every trace emit
    # and TrafficMeter call happens at the same virtual time, with the
    # same fields, as on the legacy process path below.

    def _occupy_ev(self, res: Resource, seconds: float, cls: str = "",
                   size: int = 0, msg_id: int = -1) -> Event:
        """Hold ``res`` for ``seconds``; completion event, one ``link.busy``.

        The callback-chained counterpart of :meth:`_occupy`: uncontended
        occupancies at a quiet instant grant synchronously and schedule
        one analytic timeout; when other events are pending at the
        current instant the request/grant go through the heap at legacy
        dispatch depths (see :meth:`Resource.occupy
        <repro.sim.Resource.occupy>`), so same-instant races linearize
        identically in both tiers.  The completion event is posted
        after the release and trace emit, so chained continuations run
        at the same dispatch position the legacy occupy *process*
        resumed its parent leg at.
        """
        sim = self.sim
        done = Event(sim)
        t_req = sim.now

        def _granted(_ev: Event) -> None:
            t0 = sim.now
            hold = sim.timeout(seconds)
            hold.callbacks.append(
                lambda _ev2: self._finish_occupy(res, cls, size, msg_id,
                                                 t_req, t0, done))

        if sim.idle_at_now():
            if res._in_use < res.capacity:
                # Quiet + uncontended: grant inline, one analytic timeout.
                res._account()
                res._in_use += 1
                hold = sim.timeout(seconds)
                hold.callbacks.append(
                    lambda _ev: self._finish_occupy(res, cls, size, msg_id,
                                                    t_req, t_req, done))
            else:
                # Quiet + contended: join the FIFO inline.
                res.request().callbacks.append(_granted)
            return done

        # Busy instant: request one dispatch later; request() posts the
        # grant, putting the hold two dispatches out — legacy parity.
        sim._n_fallback += 1
        sim.after(0.0, lambda _ev: res.request().callbacks.append(_granted))
        return done

    def _finish_occupy(self, res: Resource, cls: str, size: int, msg_id: int,
                       t_req: float, t0: float, done: Event) -> None:
        res.release()
        sim = self.sim
        tr = self.tracer
        if tr.enabled:
            now = sim.now
            tr.emit(now, "link.busy", link=res.name, cls=cls, size=size,
                    wait=t0 - t_req, msg_id=msg_id, t0=t0, dur=now - t0)
        if sim.idle_at_now():
            fire(done, None)  # quiet: complete inline, skip one dispatch
        else:
            done.succeed(None)

    def _deposit_complete(self, msg: Message, done: Event) -> None:
        """Deposit ``msg`` and fire the delivery event (inline when quiet)."""
        self._deposit(msg)
        sim = self.sim
        if sim.idle_at_now():
            fire(done, msg)
        else:
            done.succeed(msg)

    def _fast_self(self, msg: Message) -> Event:
        # Loopback: negligible wire, small fixed cost — one timeout.
        done = Event(self.sim)
        self.sim.after(1e-6,
                       lambda _ev: self._deposit_complete(msg, done))
        return done

    def _fast_lan(self, msg: Message) -> Event:
        # Cut-through: injection and delivery ports overlap (see
        # _deliver_lan); the two legs join on a countdown.
        lan = self._cluster_lan[self.nodes[msg.src].cluster]
        tx = msg.size / lan.bandwidth
        sim = self.sim
        done = Event(sim)
        pending = [2]

        def arrive(_ev: Event) -> None:
            self._deposit_complete(msg, done)

        def leg_done(_ev: Event) -> None:
            pending[0] -= 1
            if not pending[0]:
                # Two deferred dispatches before the deposit, mirroring
                # the legacy join (leg completion -> AllOf -> deliver
                # process): deposits keep their relative dispatch depth
                # — multicast, then WAN, then LAN — when arrivals on
                # different path shapes land at the same instant.
                # Elided at a quiet instant (nothing to race).
                if sim.idle_at_now():
                    arrive(_ev)
                else:
                    sim.after(0.0, lambda _e: sim.after(0.0, arrive))

        self._occupy_ev(self._lan_out[msg.src], tx, "lan_out", msg.size,
                        msg.msg_id).callbacks.append(leg_done)

        def start_in(_ev: Event) -> None:
            occ = self._occupy_ev(self._lan_in[msg.dst], tx, "lan_in",
                                  msg.size, msg.msg_id)
            occ.callbacks.append(
                lambda _ev2: self.nodes[msg.dst].cpu.execute_ev(
                    lan.o_recv + msg.size * lan.per_byte_cpu
                ).callbacks.append(leg_done))

        sim.after(lan.latency, start_in)
        return done

    def _fast_access_up(self, size: int, src_cluster: int, msg_id: int,
                        then: Callable[[], None]) -> None:
        """Node -> local gateway over the shared access link."""
        access = self.params.access
        occ = self._occupy_ev(self._gw_access[src_cluster],
                              size / access.bandwidth, "access", size, msg_id)
        occ.callbacks.append(
            lambda _ev: self.sim.after(access.latency, lambda _ev2: then()))

    def _fast_access_down(self, msg: Message,
                          then: Callable[[], None]) -> None:
        """Remote gateway -> destination node."""
        access = self.params.access
        dst = msg.dst
        occ = self._occupy_ev(self._gw_access[self.topo.cluster_of(dst)],
                              msg.size / access.bandwidth, "access",
                              msg.size, msg.msg_id)

        def after_occ(_ev: Event) -> None:
            def after_lat(_ev2: Event) -> None:
                self.nodes[dst].cpu.execute_ev(
                    access.o_recv + msg.size * access.per_byte_cpu
                ).callbacks.append(lambda _ev3: then())

            self.sim.after(access.latency, after_lat)

        occ.callbacks.append(after_occ)

    def _fast_gw_forward(self, cluster: int, msg_size: int, msg_id: int,
                         then: Callable[[], None]) -> None:
        """Store-and-forward charge on one gateway CPU; one ``gw.forward``.

        The queue-depth sample is atomic with the request — the queue
        this forward actually joins, counting itself — and at a busy
        instant the request is deferred one dispatch (the grant one
        more), matching the spawn-deferred legacy :meth:`_gw_execute`
        so same-instant forwards sample and schedule identically.
        ``then()`` runs one dispatch after the charge completes, the
        position the legacy ``_wan_leg`` process resumed at.
        """
        sim = self.sim
        gw = self.gateways[cluster].cpu
        gwp = self.params.gateway
        cost = gwp.forward_cost + msg_size * gwp.per_byte_cost
        t0 = sim.now
        tr = self.tracer

        def granted(qd: int) -> None:
            hold = sim.timeout(cost)

            def emit_then(_e: Event) -> None:
                if tr.enabled:
                    now = sim.now
                    tr.emit(now, "gw.forward", cluster=cluster,
                            size=msg_size, qdepth=qd, msg_id=msg_id,
                            t0=t0, dur=now - t0)
                then()

            def fin(_ev: Event) -> None:
                gw.release()
                if sim.idle_at_now():
                    emit_then(_ev)  # quiet: skip the completion dispatch
                else:
                    fdone = Event(sim)
                    fdone.callbacks.append(emit_then)
                    fdone.succeed(None)

            hold.callbacks.append(fin)

        if sim.idle_at_now():
            # Quiet instant: sample and grant (or enqueue) inline.
            qd = gw.queue_length + gw.in_use + 1
            if gw._in_use < gw.capacity:
                gw._account()
                gw._in_use += 1
                granted(qd)
            else:
                gate = Event(sim)
                gw._waiters.append(gate)
                gate.callbacks.append(lambda _e, q=qd: granted(q))
            return

        def request_step(_ev: Event) -> None:
            qd = gw.queue_length + gw.in_use + 1
            gw.request().callbacks.append(lambda _e, q=qd: granted(q))

        sim.after(0.0, request_step)

    def _fast_wan_leg(self, msg_size: int, src_cluster: int, dst_cluster: int,
                      msg_id: int, then: Callable[[], None],
                      export: Optional[Callable[[float], None]] = None
                      ) -> None:
        """Gateway -> WAN PVC -> remote gateway (shared by all WAN paths).

        ``export`` — set only on a PDES partition boundary — cuts the
        leg at the PVC: it is called at PVC *release* with the known
        arrival time (release + latency), the ``wan.xfer`` record is
        still emitted here (the PVC is source-owned), and the remote
        gateway forward is left to the destination partition
        (:meth:`pdes_arrive`) instead of running ``then``.  Exporting at
        release rather than arrival is what gives the coordinator a full
        WAN-latency lookahead window.
        """
        wan = self.params.wan
        sim = self.sim
        tr = self.tracer

        def after_fwd() -> None:
            # PVC serializes transmissions; latency is pipeline delay.
            tx = msg_size / wan.bandwidth
            t1 = sim.now
            occ = self._occupy_ev(self._wan[(src_cluster, dst_cluster)],
                                  tx, "wan", msg_size, msg_id)

            def after_occ(_ev2: Event) -> None:
                self.meter.record_wan(msg_size)
                if export is not None:
                    export(sim.now + wan.latency)

                def after_lat(_ev3: Event) -> None:
                    if tr.enabled:
                        now = sim.now
                        tr.emit(now, "wan.xfer", src_cluster=src_cluster,
                                dst_cluster=dst_cluster, size=msg_size,
                                tx=tx, msg_id=msg_id, t0=t1, dur=now - t1)
                    if export is None:
                        self._fast_gw_forward(dst_cluster, msg_size, msg_id,
                                              then)

                sim.after(wan.latency, after_lat)

            occ.callbacks.append(after_occ)

        self._fast_gw_forward(src_cluster, msg_size, msg_id, after_fwd)

    def _fast_wan(self, msg: Message, wait: bool = False) -> Event:
        sim = self.sim
        done = Event(sim)
        src_cluster = self.topo.cluster_of(msg.src)
        dst_cluster = self.topo.cluster_of(msg.dst)
        bnd = self.pdes
        if bnd is not None and not bnd.owns(dst_cluster):
            # Partition boundary: run the source half, export the
            # arrival; the owning partition replays the remote half and
            # acks the deposit, which fires ``done`` at the delivery
            # time (only consumed when ``wait`` armed it).
            bnd.register(msg, done, wait)
            self._fast_access_up(
                msg.size, src_cluster, msg.msg_id,
                lambda: self._fast_wan_leg(
                    msg.size, src_cluster, dst_cluster, msg.msg_id,
                    _NO_THEN,
                    export=lambda arrival: bnd.export(msg, arrival, "fast")))
            return done

        def arrive(_ev: Event) -> None:
            self._deposit_complete(msg, done)

        def finish() -> None:
            # One deferred dispatch (access-leg completion on the
            # legacy path) so WAN deposits stay one dispatch shallower
            # than LAN deposits — see _fast_lan.  Elided when quiet.
            if sim.idle_at_now():
                arrive(None)
            else:
                sim.after(0.0, arrive)

        self._fast_access_up(
            msg.size, src_cluster, msg.msg_id,
            lambda: self._fast_wan_leg(
                msg.size, src_cluster, dst_cluster, msg.msg_id,
                lambda: self._fast_access_down(msg, finish)))
        return done

    def _fast_multicast_recv(self, msg: Message, tx: float,
                             then: Callable[[Event], None]) -> None:
        lan = self._cluster_lan[self.nodes[msg.dst].cluster]

        def after_lat(_ev: Event) -> None:
            occ = self._occupy_ev(self._lan_in[msg.dst], tx, "lan_in",
                                  msg.size, msg.msg_id)

            def after_occ(_ev2: Event) -> None:
                cpu = self.nodes[msg.dst].cpu.execute_ev(
                    lan.o_recv + msg.size * lan.per_byte_cpu)

                def after_cpu(ev3: Event) -> None:
                    self._deposit(msg)
                    then(ev3)

                cpu.callbacks.append(after_cpu)

            occ.callbacks.append(after_occ)

        self.sim.after(lan.latency, after_lat)

    def _fast_multicast(self, src: int, cluster: int, size: int, payload: Any,
                        port: str, kind: str, include_self: bool) -> Event:
        lan = self._cluster_lan[cluster]
        tx = size / lan.bandwidth
        sim = self.sim
        done = Event(sim)
        dsts = [d for d in self.topo.nodes_in(cluster)
                if include_self or d != src]
        pending = [1 + len(dsts)]
        n = len(dsts)

        def leg_done(_ev: Event) -> None:
            pending[0] -= 1
            if not pending[0]:
                done.succeed(n)

        # Injection overlaps delivery (spanning-tree forwarding in the NIC).
        self._occupy_ev(self._lan_out[src], tx, "lan_out",
                        size).callbacks.append(leg_done)
        for dst in dsts:
            msg = Message(src=src, dst=dst, size=size, payload=payload,
                          port=port, kind=kind, send_time=sim.now)
            self._fast_multicast_recv(msg, tx, leg_done)
        return done

    def _fast_remote_gw_multicast(self, src: int, dst_cluster: int, size: int,
                                  payload: Any, port: str, kind: str,
                                  then: Callable[[int], None]) -> None:
        """Re-inject a WAN arrival as a local multicast in ``dst_cluster``."""
        lan = self._cluster_lan[dst_cluster]
        gw = self.gateways[dst_cluster]
        cpu = gw.cpu.execute_ev(lan.o_send + self.params.bcast_extra)

        def after_cpu(_ev: Event) -> None:
            tx = size / lan.bandwidth
            dsts = self.topo.nodes_in(dst_cluster)
            if not dsts:
                then(0)
                return
            pending = [len(dsts)]

            def recv_done(_ev2: Event) -> None:
                pending[0] -= 1
                if not pending[0]:
                    then(len(dsts))

            for dst in dsts:
                msg = Message(src=src, dst=dst, size=size, payload=payload,
                              port=port, kind=kind, send_time=self.sim.now)
                self._fast_multicast_recv(msg, tx, recv_done)

        cpu.callbacks.append(after_cpu)

    def _fast_wan_fanout(self, src: int, src_cluster: int, remote: List[int],
                         size: int, payload: Any, port: str,
                         kind: str) -> Event:
        done = Event(self.sim)
        total = [0, len(remote)]

        def leg_done(n: int) -> None:
            total[0] += n
            total[1] -= 1
            if not total[1]:
                done.succeed(total[0])

        def after_up() -> None:
            for c in remote:
                self._fast_wan_leg(
                    size, src_cluster, c, -1,
                    lambda c=c: self._fast_remote_gw_multicast(
                        src, c, size, payload, port, kind, leg_done))

        self._fast_access_up(size, src_cluster, -1, after_up)
        return done

    def _fast_wan_multicast(self, src: int, dst_cluster: int, size: int,
                            payload: Any, port: str, kind: str) -> Event:
        done = Event(self.sim)
        src_cluster = self.topo.cluster_of(src)

        def after_up() -> None:
            self._fast_wan_leg(
                size, src_cluster, dst_cluster, -1,
                lambda: self._fast_remote_gw_multicast(
                    src, dst_cluster, size, payload, port, kind,
                    done.succeed))

        self._fast_access_up(size, src_cluster, -1, after_up)
        return done

    # ------------------------------------------- legacy path processes
    #
    # The original per-leg process trees, selected by ``fast_paths=
    # False``.  They are the reference implementation of the fabric's
    # timing semantics: the golden equivalence suite runs every app in
    # both modes and requires identical results and traces.

    def _occupy(self, res: Resource, seconds: float, cls: str = "",
                size: int = 0, msg_id: int = -1) -> Generator:
        """Hold ``res`` for ``seconds``; traced as one ``link.busy`` span.

        ``cls``/``size``/``msg_id`` only label the trace record (see
        :func:`repro.obs.schema.classify_link` for the class names;
        ``msg_id`` joins the span into the causal chains of
        :mod:`repro.obs.chains`, -1 when the occupancy is shared between
        several deliveries); with tracing disabled they cost nothing.
        """
        t_req = self.sim.now
        yield res.request()
        t0 = self.sim.now
        try:
            if seconds > 0:
                yield self.sim.timeout(seconds)
        finally:
            res.release()
            tr = self.tracer
            if tr.enabled:
                now = self.sim.now
                tr.emit(now, "link.busy", link=res.name, cls=cls, size=size,
                        wait=t0 - t_req, msg_id=msg_id, t0=t0, dur=now - t0)

    def _deliver_self(self, msg: Message) -> Generator:
        # Loopback: negligible wire, small fixed cost.
        yield self.sim.timeout(1e-6)
        self._deposit(msg)
        return msg

    def _deliver_lan(self, msg: Message) -> Generator:
        # Cut-through: the injection port and the delivery port are each
        # occupied for one serialization time, but they overlap (the switch
        # forwards as bytes arrive), so an uncontended transfer takes
        # latency + size/bw, while endpoint contention still serializes.
        lan = self._cluster_lan[self.nodes[msg.src].cluster]
        tx = msg.size / lan.bandwidth
        out_leg = self.sim.spawn(self._occupy(self._lan_out[msg.src], tx,
                                              "lan_out", msg.size,
                                              msg.msg_id))
        in_leg = self.sim.spawn(self._lan_in_leg(msg, tx))
        yield self.sim.all_of([out_leg, in_leg])
        self._deposit(msg)
        return msg

    def _lan_in_leg(self, msg: Message, tx: float) -> Generator:
        lan = self._cluster_lan[self.nodes[msg.dst].cluster]
        yield self.sim.timeout(lan.latency)
        yield self.sim.spawn(self._occupy(self._lan_in[msg.dst], tx,
                                          "lan_in", msg.size, msg.msg_id))
        yield self.sim.spawn(self.nodes[msg.dst].cpu.execute(
            lan.o_recv + msg.size * lan.per_byte_cpu))

    def _wan_leg(self, msg_size: int, src_cluster: int, dst_cluster: int,
                 msg_id: int = -1, streams: int = 1,
                 export: Optional[Callable[[float], None]] = None
                 ) -> Generator:
        """Gateway -> WAN PVC -> remote gateway (shared by all WAN paths).

        ``msg_id`` labels the trace records with the point-to-point
        message this leg serves; fan-out paths that share one leg among
        many deliveries pass -1.  ``streams`` > 1 stripes the PVC stage
        over that many parallel chunk transfers (MPWide-style): chunks
        still serialize on the capacity-1 PVC, but their latencies and —
        under loss impairment — retransmit timeouts overlap.  The
        gateway forwards bracket the whole transfer either way.

        ``export`` cuts the leg at the PVC for a PDES partition
        boundary, exactly like :meth:`_fast_wan_leg`: called at PVC
        release with the (possibly impairment-perturbed) arrival time;
        the remote gateway forward then belongs to the destination
        partition.  Striped transfers cannot be cut (their chunks
        arrive independently), and PDES eligibility excludes them.
        """
        if export is not None and streams > 1:
            raise SimulationError(
                "striped WAN transfers cannot cross a PDES partition "
                "boundary (eligibility should have fallen back)")
        gwp = self.params.gateway
        wan = self.params.wan
        tr = self.tracer
        traced = tr.enabled
        fwd_cost = gwp.forward_cost + msg_size * gwp.per_byte_cost
        # Local gateway store-and-forward.
        t0 = self.sim.now
        qd = yield self.sim.spawn(self._gw_execute(src_cluster, fwd_cost))
        if traced:
            now = self.sim.now
            tr.emit(now, "gw.forward", cluster=src_cluster, size=msg_size,
                    qdepth=qd, msg_id=msg_id, t0=t0, dur=now - t0)
        k = max(1, min(streams, msg_size))
        if k > 1:
            # Striped PVC stage: near-equal chunks, each drawing its own
            # impairment plan, all in flight at once.
            base, rem = divmod(msg_size, k)
            chunks = [base + 1] * rem + [base] * (k - rem)
            legs = [self.sim.spawn(
                self._wan_stripe(chunk, src_cluster, dst_cluster, msg_id),
                name="wanstripe") for chunk in chunks]
            yield self.sim.all_of(legs)
        else:
            # The PVC serializes transmissions; latency is pipeline delay.
            tx = msg_size / wan.bandwidth
            latency = wan.latency
            imp = self.impair
            if imp is not None:
                plan = imp.plan(src_cluster, dst_cluster, msg_size, tx,
                                latency, msg_id)
                tx, latency = plan.tx, plan.latency
                # Each lost transmission pays a full (impaired)
                # serialization on the PVC plus the retransmit timeout
                # before the copy that gets through.
                for _ in range(plan.retries):
                    yield self.sim.spawn(self._occupy(
                        self._wan[(src_cluster, dst_cluster)], tx, "wan",
                        msg_size, msg_id))
                    yield self.sim.timeout(plan.rto)
            t0 = self.sim.now
            yield self.sim.spawn(self._occupy(
                self._wan[(src_cluster, dst_cluster)], tx, "wan", msg_size,
                msg_id))
            self.meter.record_wan(msg_size)
            if export is not None:
                export(self.sim.now + latency)
            yield self.sim.timeout(latency)
            if traced:
                now = self.sim.now
                tr.emit(now, "wan.xfer", src_cluster=src_cluster,
                        dst_cluster=dst_cluster, size=msg_size, tx=tx,
                        msg_id=msg_id, t0=t0, dur=now - t0)
        if export is not None:
            return  # remote gateway forward runs in the owning partition
        # Remote gateway store-and-forward.
        t0 = self.sim.now
        qd = yield self.sim.spawn(self._gw_execute(dst_cluster, fwd_cost))
        if traced:
            now = self.sim.now
            tr.emit(now, "gw.forward", cluster=dst_cluster, size=msg_size,
                    qdepth=qd, msg_id=msg_id, t0=t0, dur=now - t0)

    def _wan_stripe(self, chunk_size: int, src_cluster: int,
                    dst_cluster: int, msg_id: int) -> Generator:
        """One striped chunk of a WAN transfer: the PVC stage of
        :meth:`_wan_leg` for ``chunk_size`` bytes."""
        wan = self.params.wan
        tr = self.tracer
        tx = chunk_size / wan.bandwidth
        latency = wan.latency
        imp = self.impair
        if imp is not None:
            plan = imp.plan(src_cluster, dst_cluster, chunk_size, tx,
                            latency, msg_id)
            tx, latency = plan.tx, plan.latency
            for _ in range(plan.retries):
                yield self.sim.spawn(self._occupy(
                    self._wan[(src_cluster, dst_cluster)], tx, "wan",
                    chunk_size, msg_id))
                yield self.sim.timeout(plan.rto)
        t0 = self.sim.now
        yield self.sim.spawn(self._occupy(
            self._wan[(src_cluster, dst_cluster)], tx, "wan", chunk_size,
            msg_id))
        self.meter.record_wan(chunk_size)
        yield self.sim.timeout(latency)
        if tr.enabled:
            now = self.sim.now
            tr.emit(now, "wan.xfer", src_cluster=src_cluster,
                    dst_cluster=dst_cluster, size=chunk_size, tx=tx,
                    msg_id=msg_id, t0=t0, dur=now - t0)

    def _gw_execute(self, cluster: int, cost: float) -> Generator:
        """Charge ``cost`` to a gateway CPU; returns the queue depth.

        Depth is sampled atomically with the request — the queue this
        forward actually joins, counting itself — so fast and legacy
        paths report identical ``qdepth`` even when several forwards
        arrive at the same instant.
        """
        gw = self.gateways[cluster].cpu
        qd = gw.queue_length + gw.in_use + 1
        yield gw.request()
        try:
            yield self.sim.timeout(cost)
        finally:
            gw.release()
        return qd

    def _access_leg_up(self, size: int, src_cluster: int,
                       msg_id: int = -1) -> Generator:
        """Node -> local gateway over the shared access link.

        Takes ``(size, src_cluster)`` directly — fan-out paths share one
        access-link trip among many deliveries and must not fabricate a
        :class:`Message` (which would burn a ``msg_id`` and skew the
        run-local id-reset determinism guarantees) just to ride the leg.
        """
        access = self.params.access
        tx = size / access.bandwidth
        yield self.sim.spawn(self._occupy(self._gw_access[src_cluster], tx,
                                          "access", size, msg_id))
        yield self.sim.timeout(access.latency)

    def _access_leg_down(self, msg: Message, dst: int) -> Generator:
        """Remote gateway -> destination node."""
        access = self.params.access
        tx = msg.size / access.bandwidth
        dst_cluster = self.topo.cluster_of(dst)
        yield self.sim.spawn(self._occupy(self._gw_access[dst_cluster], tx,
                                          "access", msg.size, msg.msg_id))
        yield self.sim.timeout(access.latency)
        yield self.sim.spawn(self.nodes[dst].cpu.execute(
            access.o_recv + msg.size * access.per_byte_cpu))

    def _deliver_wan(self, msg: Message, streams: int = 1,
                     wait: bool = False) -> Generator:
        src_cluster = self.topo.cluster_of(msg.src)
        dst_cluster = self.topo.cluster_of(msg.dst)
        bnd = self.pdes
        if bnd is not None and not bnd.owns(dst_cluster):
            # Partition boundary (legacy/impaired path): source half
            # here, arrival exported at PVC release; the delivery ack
            # fires ``gate`` at the deposit time so this process — the
            # event send_and_wait callers block on — completes at the
            # same virtual time the single-process run delivers at.
            gate = Event(self.sim)
            bnd.register(msg, gate, wait)
            yield self.sim.spawn(self._access_leg_up(msg.size, src_cluster,
                                                     msg.msg_id))
            yield self.sim.spawn(self._wan_leg(
                msg.size, src_cluster, dst_cluster, msg.msg_id, streams,
                export=lambda arrival: bnd.export(msg, arrival, "legacy")))
            yield gate
            return msg
        yield self.sim.spawn(self._access_leg_up(msg.size, src_cluster,
                                                 msg.msg_id))
        yield self.sim.spawn(self._wan_leg(msg.size, src_cluster, dst_cluster,
                                           msg.msg_id, streams))
        yield self.sim.spawn(self._access_leg_down(msg, msg.dst))
        self._deposit(msg)
        return msg

    # --------------------------------------------- PDES partition boundary

    def pdes_arrive(self, msg: Message, path: str) -> None:
        """Replay the destination half of a WAN delivery (PDES injection).

        Called by the partition worker at the exported arrival instant —
        the moment the payload clears the WAN PVC toward this
        partition's gateway.  ``path`` selects the tier the source half
        ran on (``"fast"`` callback chains or ``"legacy"`` process
        legs) so the remaining legs replay at identical dispatch depths
        and virtual times.  Deposits always ack back through the
        boundary; the source partition fires the sender's delivery
        event at that time (or drops the ack when nobody waits).
        """
        if path == "fast":
            self._pdes_fast_tail(msg)
        else:
            self.sim.spawn(self._pdes_legacy_tail(msg), name="wanmsg")

    def _pdes_fast_tail(self, msg: Message) -> None:
        """Remote half of :meth:`_fast_wan`: gateway forward -> access
        down -> deposit, then the delivery ack."""
        sim = self.sim
        done = Event(sim)
        done.callbacks.append(
            lambda _ev: self.pdes.export_ack(msg.msg_id, sim.now))

        def arrive(_ev: Optional[Event]) -> None:
            self._deposit_complete(msg, done)

        def finish() -> None:
            # Same deferred dispatch as _fast_wan's finish (see there).
            if sim.idle_at_now():
                arrive(None)
            else:
                sim.after(0.0, arrive)

        self._fast_gw_forward(
            self.topo.cluster_of(msg.dst), msg.size, msg.msg_id,
            lambda: self._fast_access_down(msg, finish))

    def _pdes_legacy_tail(self, msg: Message) -> Generator:
        """Remote half of :meth:`_deliver_wan` (via :meth:`_wan_leg`'s
        remote gateway forward), then the delivery ack."""
        gwp = self.params.gateway
        fwd_cost = gwp.forward_cost + msg.size * gwp.per_byte_cost
        dst_cluster = self.topo.cluster_of(msg.dst)
        tr = self.tracer
        t0 = self.sim.now
        qd = yield self.sim.spawn(self._gw_execute(dst_cluster, fwd_cost))
        if tr.enabled:
            now = self.sim.now
            tr.emit(now, "gw.forward", cluster=dst_cluster, size=msg.size,
                    qdepth=qd, msg_id=msg.msg_id, t0=t0, dur=now - t0)
        yield self.sim.spawn(self._access_leg_down(msg, msg.dst))
        self._deposit(msg)
        self.pdes.export_ack(msg.msg_id, self.sim.now)
        return msg

    def _deliver_multicast(self, src: int, cluster: int, size: int,
                           payload: Any, port: str, kind: str,
                           include_self: bool) -> Generator:
        lan = self._cluster_lan[cluster]
        tx = size / lan.bandwidth
        # Injection overlaps delivery (spanning-tree forwarding in the NIC).
        legs = [self.sim.spawn(self._occupy(self._lan_out[src], tx,
                                            "lan_out", size))]
        for dst in self.topo.nodes_in(cluster):
            if dst == src and not include_self:
                continue
            msg = Message(src=src, dst=dst, size=size, payload=payload,
                          port=port, kind=kind, send_time=self.sim.now)
            legs.append(self.sim.spawn(self._multicast_recv(msg, tx)))
        yield self.sim.all_of(legs)
        return len(legs) - 1

    def _multicast_recv(self, msg: Message, tx: float) -> Generator:
        lan = self._cluster_lan[self.nodes[msg.dst].cluster]
        yield self.sim.timeout(lan.latency)
        yield self.sim.spawn(self._occupy(self._lan_in[msg.dst], tx,
                                          "lan_in", msg.size, msg.msg_id))
        yield self.sim.spawn(self.nodes[msg.dst].cpu.execute(
            lan.o_recv + msg.size * lan.per_byte_cpu))
        self._deposit(msg)

    def _deliver_wan_fanout(self, src: int, src_cluster: int,
                            remote: List[int], size: int, payload: Any,
                            port: str, kind: str, shape: str = "flat",
                            streams: int = 1) -> Generator:
        yield self.sim.spawn(self._access_leg_up(size, src_cluster))
        if shape == "chain":
            total = yield self.sim.spawn(
                self._fanout_chain(src, src_cluster, remote, size, payload,
                                   port, kind, streams),
                name="fanchain")
            return total
        if shape == "binomial":
            total = yield self.sim.spawn(
                self._fanout_binomial(src, src_cluster, remote, size,
                                      payload, port, kind, streams),
                name="fanbinom")
            return total
        legs = [self.sim.spawn(
            self._wan_leg_and_remote_multicast(src, src_cluster, c, size,
                                               payload, port, kind, streams))
            for c in remote]
        counts = yield self.sim.all_of(legs)
        return sum(counts)

    def _fanout_chain(self, src: int, src_cluster: int, remote: List[int],
                      size: int, payload: Any, port: str, kind: str,
                      streams: int) -> Generator:
        """Gateway relay: each cluster's gateway forwards the payload to
        the next remote cluster while its own local multicast proceeds in
        the background.  One PVC hop per link of the chain; the store-
        and-forward costs inside :meth:`_wan_leg` are the relay cost."""
        mcasts = []
        prev = src_cluster
        for c in remote:
            yield self.sim.spawn(self._wan_leg(size, prev, c, -1, streams))
            mcasts.append(self.sim.spawn(
                self._remote_gateway_multicast(src, c, size, payload, port,
                                               kind)))
            prev = c
        counts = yield self.sim.all_of(mcasts)
        return sum(counts)

    def _fanout_binomial(self, src: int, src_cluster: int, remote: List[int],
                         size: int, payload: Any, port: str, kind: str,
                         streams: int) -> Generator:
        """Recursive halving over the cluster gateways: the source covers
        the farthest half first, then each new holder re-broadcasts into
        its own half — ceil(log2(n_clusters)) rounds of parallel hops."""
        order = [src_cluster] + remote
        sim = self.sim
        done = Event(sim)
        state = [0, len(remote)]  # delivered count, outstanding multicasts

        def mcast_then_count(dst_c: int) -> Generator:
            n = yield sim.spawn(
                self._remote_gateway_multicast(src, dst_c, size, payload,
                                               port, kind))
            state[0] += n
            state[1] -= 1
            if not state[1]:
                done.succeed(state[0])

        def branch(lo: int, hi: int) -> Generator:
            # order[lo] holds the payload and covers order[lo+1:hi].
            while hi - lo > 1:
                mid = (lo + hi + 1) // 2
                yield sim.spawn(self._wan_leg(size, order[lo], order[mid],
                                              -1, streams))
                sim.spawn(mcast_then_count(order[mid]), name="fanmcast")
                if hi - mid > 1:
                    sim.spawn(branch(mid, hi), name="fanbranch")
                hi = mid

        sim.spawn(branch(0, len(order)), name="fanbranch")
        total = yield done
        return total

    def _wan_leg_and_remote_multicast(self, src: int, src_cluster: int,
                                      dst_cluster: int, size: int,
                                      payload: Any, port: str, kind: str,
                                      streams: int = 1) -> Generator:
        yield self.sim.spawn(self._wan_leg(size, src_cluster, dst_cluster,
                                           -1, streams))
        n = yield self.sim.spawn(
            self._remote_gateway_multicast(src, dst_cluster, size, payload,
                                           port, kind))
        return n

    def _remote_gateway_multicast(self, src: int, dst_cluster: int, size: int,
                                  payload: Any, port: str,
                                  kind: str) -> Generator:
        """Re-inject a WAN arrival as a local multicast in ``dst_cluster``."""
        lan = self._cluster_lan[dst_cluster]
        gw = self.gateways[dst_cluster]
        yield self.sim.spawn(gw.cpu.execute(lan.o_send + self.params.bcast_extra))
        tx = size / lan.bandwidth
        waits = []
        for dst in self.topo.nodes_in(dst_cluster):
            msg = Message(src=src, dst=dst, size=size, payload=payload,
                          port=port, kind=kind, send_time=self.sim.now)
            waits.append(self.sim.spawn(self._multicast_recv(msg, tx)))
        if waits:
            yield self.sim.all_of(waits)
        return len(waits)

    def _deliver_wan_multicast(self, src: int, dst_cluster: int, size: int,
                               payload: Any, port: str, kind: str,
                               streams: int = 1) -> Generator:
        src_cluster = self.topo.cluster_of(src)
        yield self.sim.spawn(self._access_leg_up(size, src_cluster))
        n = yield self.sim.spawn(
            self._wan_leg_and_remote_multicast(src, src_cluster, dst_cluster,
                                               size, payload, port, kind,
                                               streams))
        return n

    # ---------------------------------------------------------------- util

    def _deposit(self, msg: Message) -> None:
        msg.recv_time = self.sim.now
        tr = self.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "msg.deliver", msg_id=msg.msg_id,
                    src=msg.src, dst=msg.dst, size=msg.size,
                    msg_kind=msg.kind, port=msg.port,
                    latency=self.sim.now - msg.send_time)
        self.nodes[msg.dst].port(msg.port).put(msg)
