"""The multilevel network fabric: nodes, gateways, LAN and WAN paths.

The fabric is the paper's DAS machine model:

* Every compute node has one CPU (a FIFO resource shared between
  application compute and per-message protocol overheads) and per-node
  LAN injection/delivery ports (so endpoint contention is modeled, while
  disjoint pairs communicate in parallel — a crossbar-like Myrinet).
* Every cluster has one *dedicated* gateway (it runs no application code,
  matching the paper).  Intercluster messages travel
  node -> access link -> gateway -> WAN PVC -> remote gateway -> access
  link -> node, with store-and-forward CPU cost at each gateway.
* WAN PVCs are per directed cluster pair (the DAS has a Permanent Virtual
  Circuit between every pair of sites), each a bandwidth-serialized link.
* The LAN supports hardware-assisted multicast (Myrinet FM broadcast):
  one injection, parallel delivery to all cluster nodes.

Send semantics: :meth:`Fabric.send` is a generator to be driven by the
*calling* process — the caller pays the sender-side CPU overhead
synchronously, then the rest of the path proceeds in the background.  It
returns the delivery event, so callers can also wait for arrival.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..metrics.counters import TrafficMeter
from ..sim import CPU, Channel, Event, Resource, Simulator, Tracer
from .message import Message
from .params import NetworkParams
from .topology import Topology

__all__ = ["Node", "Gateway", "Fabric"]


class Node:
    """A compute node: CPU + named mailboxes (ports)."""

    def __init__(self, sim: Simulator, nid: int, cluster: int):
        self.sim = sim
        self.nid = nid
        self.cluster = cluster
        self.cpu = CPU(sim, name=f"cpu{nid}")
        self._ports: Dict[str, Channel] = {}

    def port(self, name: str = "default") -> Channel:
        """The named mailbox on this node (created on first use)."""
        ch = self._ports.get(name)
        if ch is None:
            ch = self._ports[name] = Channel(self.sim, name=f"n{self.nid}:{name}")
        return ch

    def __repr__(self) -> str:
        return f"Node({self.nid}@c{self.cluster})"


class Gateway:
    """A dedicated store-and-forward gateway for one cluster."""

    def __init__(self, sim: Simulator, cluster: int):
        self.sim = sim
        self.cluster = cluster
        self.cpu = CPU(sim, name=f"gw{cluster}")

    def __repr__(self) -> str:
        return f"Gateway(c{self.cluster})"


class Fabric:
    """Routes messages over the multilevel cluster."""

    def __init__(self, sim: Simulator, topo: Topology, params: NetworkParams,
                 meter: Optional[TrafficMeter] = None,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.topo = topo
        self.params = params
        self.meter = meter if meter is not None else TrafficMeter()
        self.tracer = tracer if tracer is not None else Tracer()

        self.nodes: List[Node] = [
            Node(sim, nid, topo.cluster_of(nid)) for nid in range(topo.n_nodes)
        ]
        self.gateways: List[Gateway] = [
            Gateway(sim, ci) for ci in range(topo.n_clusters)
        ]
        # Per-node LAN ports: injection (out) and delivery (in).
        self._lan_out = [Resource(sim, name=f"lanout{n}") for n in range(topo.n_nodes)]
        self._lan_in = [Resource(sim, name=f"lanin{n}") for n in range(topo.n_nodes)]
        # Per-cluster gateway access links (shared by the whole cluster —
        # the DAS gateways hang off Fast Ethernet, a genuine bottleneck).
        self._gw_access = [Resource(sim, name=f"gwaccess{c}")
                           for c in range(topo.n_clusters)]
        # Directed WAN PVCs between cluster pairs.
        self._wan: Dict[Tuple[int, int], Resource] = {
            pair: Resource(sim, name=f"wan{pair}")
            for pair in topo.cluster_pairs()
        }

    # ------------------------------------------------------------------ API

    def node(self, nid: int) -> Node:
        """The compute node with global id ``nid``."""
        return self.nodes[nid]

    def send(self, src: int, dst: int, size: int, payload: Any = None,
             port: str = "default", kind: str = "msg") -> Generator:
        """Generator: caller pays sender overhead, delivery runs in background.

        Yields from the calling process; *returns* the delivery
        :class:`Event` (fires with the :class:`Message` once deposited in
        the destination port).
        """
        msg = Message(src=src, dst=dst, size=size, payload=payload,
                      port=port, kind=kind, send_time=self.sim.now)
        local = self.topo.same_cluster(src, dst)
        tr = self.tracer
        if tr.enabled:
            scope = "self" if src == dst else ("lan" if local else "wan")
            tr.emit(self.sim.now, "msg.send", msg_id=msg.msg_id, src=src,
                    dst=dst, size=size, msg_kind=kind, port=port, scope=scope)
        link = self.params.lan if local else self.params.access
        # Sender-side CPU overhead, paid synchronously by the caller.
        yield self.sim.spawn(self.nodes[src].cpu.execute(
            link.o_send + size * link.per_byte_cpu))
        if src == dst:
            done = self.sim.spawn(self._deliver_self(msg), name="selfmsg")
        elif local:
            done = self.sim.spawn(self._deliver_lan(msg), name="lanmsg")
        else:
            done = self.sim.spawn(self._deliver_wan(msg), name="wanmsg")
        return done

    def send_and_wait(self, src: int, dst: int, size: int, payload: Any = None,
                      port: str = "default", kind: str = "msg") -> Generator:
        """Generator: like :meth:`send` but blocks until delivery."""
        done = yield from self.send(src, dst, size, payload, port, kind)
        msg = yield done
        return msg

    def multicast_local(self, src: int, size: int, payload: Any = None,
                        port: str = "default", kind: str = "msg",
                        include_self: bool = True) -> Generator:
        """Myrinet-style LAN multicast from ``src`` to its whole cluster.

        Caller pays sender overhead; returns an event firing when *all*
        receivers have the message.
        """
        lan = self.params.lan
        yield self.sim.spawn(self.nodes[src].cpu.execute(
            lan.o_send + self.params.bcast_extra + size * lan.per_byte_cpu))
        done = self.sim.spawn(
            self._deliver_multicast(src, self.topo.cluster_of(src), size,
                                    payload, port, kind, include_self),
            name="mcast")
        return done

    def gateway_multicast(self, src: int, dst_cluster: int, size: int,
                          payload: Any = None, port: str = "default",
                          kind: str = "msg") -> Generator:
        """Send over the WAN to ``dst_cluster``'s gateway, which re-multicasts
        to every node of that cluster (how Orca broadcasts cross the WAN)."""
        if self.topo.cluster_of(src) == dst_cluster:
            raise ValueError("gateway_multicast targets a *remote* cluster")
        access = self.params.access
        yield self.sim.spawn(self.nodes[src].cpu.execute(
            access.o_send + size * access.per_byte_cpu))
        done = self.sim.spawn(
            self._deliver_wan_multicast(src, dst_cluster, size, payload,
                                        port, kind),
            name="wanmcast")
        return done

    def wan_fanout_multicast(self, src: int, size: int, payload: Any = None,
                             port: str = "default",
                             kind: str = "msg") -> Generator:
        """Broadcast to *all remote clusters*: one access-link trip to the
        local gateway, then parallel WAN transfers on each PVC, each remote
        gateway re-multicasting locally.  This is how the DAS gateways fan
        out an Orca broadcast; the payload climbs the sender's access link
        only once."""
        src_cluster = self.topo.cluster_of(src)
        remote = [c for c in range(self.topo.n_clusters) if c != src_cluster]
        if not remote:
            done = Event(self.sim)
            done.succeed(0)
            return done
        access = self.params.access
        yield self.sim.spawn(self.nodes[src].cpu.execute(
            access.o_send + size * access.per_byte_cpu))
        done = self.sim.spawn(
            self._deliver_wan_fanout(src, src_cluster, remote, size, payload,
                                     port, kind),
            name="wanfanout")
        return done

    # ------------------------------------------------------- path processes

    def _occupy(self, res: Resource, seconds: float, cls: str = "",
                size: int = 0, msg_id: int = -1) -> Generator:
        """Hold ``res`` for ``seconds``; traced as one ``link.busy`` span.

        ``cls``/``size``/``msg_id`` only label the trace record (see
        :func:`repro.obs.schema.classify_link` for the class names;
        ``msg_id`` joins the span into the causal chains of
        :mod:`repro.obs.chains`, -1 when the occupancy is shared between
        several deliveries); with tracing disabled they cost nothing.
        """
        t_req = self.sim.now
        yield res.request()
        t0 = self.sim.now
        try:
            if seconds > 0:
                yield self.sim.timeout(seconds)
        finally:
            res.release()
            tr = self.tracer
            if tr.enabled:
                now = self.sim.now
                tr.emit(now, "link.busy", link=res.name, cls=cls, size=size,
                        wait=t0 - t_req, msg_id=msg_id, t0=t0, dur=now - t0)

    def _deliver_self(self, msg: Message) -> Generator:
        # Loopback: negligible wire, small fixed cost.
        yield self.sim.timeout(1e-6)
        self._deposit(msg)
        return msg

    def _deliver_lan(self, msg: Message) -> Generator:
        # Cut-through: the injection port and the delivery port are each
        # occupied for one serialization time, but they overlap (the switch
        # forwards as bytes arrive), so an uncontended transfer takes
        # latency + size/bw, while endpoint contention still serializes.
        lan = self.params.lan
        tx = msg.size / lan.bandwidth
        out_leg = self.sim.spawn(self._occupy(self._lan_out[msg.src], tx,
                                              "lan_out", msg.size,
                                              msg.msg_id))
        in_leg = self.sim.spawn(self._lan_in_leg(msg, tx))
        yield self.sim.all_of([out_leg, in_leg])
        self._deposit(msg)
        return msg

    def _lan_in_leg(self, msg: Message, tx: float) -> Generator:
        lan = self.params.lan
        yield self.sim.timeout(lan.latency)
        yield self.sim.spawn(self._occupy(self._lan_in[msg.dst], tx,
                                          "lan_in", msg.size, msg.msg_id))
        yield self.sim.spawn(self.nodes[msg.dst].cpu.execute(
            lan.o_recv + msg.size * lan.per_byte_cpu))

    def _wan_leg(self, msg_size: int, src_cluster: int, dst_cluster: int,
                 msg_id: int = -1) -> Generator:
        """Gateway -> WAN PVC -> remote gateway (shared by all WAN paths).

        ``msg_id`` labels the trace records with the point-to-point
        message this leg serves; fan-out paths that share one leg among
        many deliveries pass -1.
        """
        gwp = self.params.gateway
        wan = self.params.wan
        tr = self.tracer
        traced = tr.enabled
        # Local gateway store-and-forward.
        gw = self.gateways[src_cluster].cpu
        t0 = self.sim.now
        if traced:
            qd = gw.queue_length + gw.in_use + 1
        yield self.sim.spawn(gw.execute(
            gwp.forward_cost + msg_size * gwp.per_byte_cost))
        if traced:
            now = self.sim.now
            tr.emit(now, "gw.forward", cluster=src_cluster, size=msg_size,
                    qdepth=qd, msg_id=msg_id, t0=t0, dur=now - t0)
        # The PVC serializes transmissions; latency is pipeline delay.
        tx = msg_size / wan.bandwidth
        t0 = self.sim.now
        yield self.sim.spawn(self._occupy(
            self._wan[(src_cluster, dst_cluster)], tx, "wan", msg_size,
            msg_id))
        self.meter.record_wan(msg_size)
        yield self.sim.timeout(wan.latency)
        if traced:
            now = self.sim.now
            tr.emit(now, "wan.xfer", src_cluster=src_cluster,
                    dst_cluster=dst_cluster, size=msg_size, tx=tx,
                    msg_id=msg_id, t0=t0, dur=now - t0)
        # Remote gateway store-and-forward.
        gw = self.gateways[dst_cluster].cpu
        t0 = self.sim.now
        if traced:
            qd = gw.queue_length + gw.in_use + 1
        yield self.sim.spawn(gw.execute(
            gwp.forward_cost + msg_size * gwp.per_byte_cost))
        if traced:
            now = self.sim.now
            tr.emit(now, "gw.forward", cluster=dst_cluster, size=msg_size,
                    qdepth=qd, msg_id=msg_id, t0=t0, dur=now - t0)

    def _access_leg_up(self, msg: Message, msg_id: int = -1) -> Generator:
        """Node -> local gateway over the shared access link."""
        access = self.params.access
        tx = msg.size / access.bandwidth
        src_cluster = self.topo.cluster_of(msg.src)
        yield self.sim.spawn(self._occupy(self._gw_access[src_cluster], tx,
                                          "access", msg.size, msg_id))
        yield self.sim.timeout(access.latency)

    def _access_leg_down(self, msg: Message, dst: int) -> Generator:
        """Remote gateway -> destination node."""
        access = self.params.access
        tx = msg.size / access.bandwidth
        dst_cluster = self.topo.cluster_of(dst)
        yield self.sim.spawn(self._occupy(self._gw_access[dst_cluster], tx,
                                          "access", msg.size, msg.msg_id))
        yield self.sim.timeout(access.latency)
        yield self.sim.spawn(self.nodes[dst].cpu.execute(
            access.o_recv + msg.size * access.per_byte_cpu))

    def _deliver_wan(self, msg: Message) -> Generator:
        src_cluster = self.topo.cluster_of(msg.src)
        dst_cluster = self.topo.cluster_of(msg.dst)
        yield self.sim.spawn(self._access_leg_up(msg, msg.msg_id))
        yield self.sim.spawn(self._wan_leg(msg.size, src_cluster, dst_cluster,
                                           msg.msg_id))
        yield self.sim.spawn(self._access_leg_down(msg, msg.dst))
        self._deposit(msg)
        return msg

    def _deliver_multicast(self, src: int, cluster: int, size: int,
                           payload: Any, port: str, kind: str,
                           include_self: bool) -> Generator:
        lan = self.params.lan
        tx = size / lan.bandwidth
        # Injection overlaps delivery (spanning-tree forwarding in the NIC).
        legs = [self.sim.spawn(self._occupy(self._lan_out[src], tx,
                                            "lan_out", size))]
        for dst in self.topo.nodes_in(cluster):
            if dst == src and not include_self:
                continue
            msg = Message(src=src, dst=dst, size=size, payload=payload,
                          port=port, kind=kind, send_time=self.sim.now)
            legs.append(self.sim.spawn(self._multicast_recv(msg, tx)))
        yield self.sim.all_of(legs)
        return len(legs) - 1

    def _multicast_recv(self, msg: Message, tx: float) -> Generator:
        lan = self.params.lan
        yield self.sim.timeout(lan.latency)
        yield self.sim.spawn(self._occupy(self._lan_in[msg.dst], tx,
                                          "lan_in", msg.size, msg.msg_id))
        yield self.sim.spawn(self.nodes[msg.dst].cpu.execute(
            lan.o_recv + msg.size * lan.per_byte_cpu))
        self._deposit(msg)

    def _deliver_wan_fanout(self, src: int, src_cluster: int,
                            remote: List[int], size: int, payload: Any,
                            port: str, kind: str) -> Generator:
        fake = Message(src=src, dst=src, size=size, payload=payload,
                       port=port, kind=kind)
        yield self.sim.spawn(self._access_leg_up(fake))
        legs = [self.sim.spawn(
            self._wan_leg_and_remote_multicast(src, src_cluster, c, size,
                                               payload, port, kind))
            for c in remote]
        counts = yield self.sim.all_of(legs)
        return sum(counts)

    def _wan_leg_and_remote_multicast(self, src: int, src_cluster: int,
                                      dst_cluster: int, size: int,
                                      payload: Any, port: str,
                                      kind: str) -> Generator:
        yield self.sim.spawn(self._wan_leg(size, src_cluster, dst_cluster))
        n = yield self.sim.spawn(
            self._remote_gateway_multicast(src, dst_cluster, size, payload,
                                           port, kind))
        return n

    def _remote_gateway_multicast(self, src: int, dst_cluster: int, size: int,
                                  payload: Any, port: str,
                                  kind: str) -> Generator:
        """Re-inject a WAN arrival as a local multicast in ``dst_cluster``."""
        lan = self.params.lan
        gw = self.gateways[dst_cluster]
        yield self.sim.spawn(gw.cpu.execute(lan.o_send + self.params.bcast_extra))
        tx = size / lan.bandwidth
        waits = []
        for dst in self.topo.nodes_in(dst_cluster):
            msg = Message(src=src, dst=dst, size=size, payload=payload,
                          port=port, kind=kind, send_time=self.sim.now)
            waits.append(self.sim.spawn(self._multicast_recv(msg, tx)))
        if waits:
            yield self.sim.all_of(waits)
        return len(waits)

    def _deliver_wan_multicast(self, src: int, dst_cluster: int, size: int,
                               payload: Any, port: str, kind: str) -> Generator:
        src_cluster = self.topo.cluster_of(src)
        fake = Message(src=src, dst=src, size=size, payload=payload,
                       port=port, kind=kind)
        yield self.sim.spawn(self._access_leg_up(fake))
        n = yield self.sim.spawn(
            self._wan_leg_and_remote_multicast(src, src_cluster, dst_cluster,
                                               size, payload, port, kind))
        return n

    # ---------------------------------------------------------------- util

    def _deposit(self, msg: Message) -> None:
        msg.recv_time = self.sim.now
        tr = self.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "msg.deliver", msg_id=msg.msg_id,
                    src=msg.src, dst=msg.dst, size=msg.size,
                    msg_kind=msg.kind, port=msg.port,
                    latency=self.sim.now - msg.send_time)
        self.nodes[msg.dst].port(msg.port).put(msg)
