"""Message record passed through the fabric."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Message", "reset_ids", "alloc_msg_id", "MSG_ID_STRIDE"]

#: Message ids are allocated *per source node*: ``src * STRIDE + seq``.
#: Ids stay unique and deterministic like the old global counter, but
#: they no longer depend on how sends from *different* nodes interleave
#: — which is exactly what a partitioned (PDES) run cannot reproduce.
#: Each partition allocates the same per-site sequences the
#: single-process oracle does, so merged traces join on identical ids.
MSG_ID_STRIDE = 1_000_000

_site_seq: Dict[int, int] = {}


def alloc_msg_id(src: int) -> int:
    """Next message id for source node ``src`` (deterministic per site)."""
    seq = _site_seq.get(src, 0)
    _site_seq[src] = seq + 1
    return src * MSG_ID_STRIDE + seq


def reset_ids() -> None:
    """Restart message-id allocation (every site back to sequence 0).

    Called by the experiment runner at the start of every run so trace
    records carry run-local ids: a traced run produces the same records
    no matter how many runs preceded it in the process (or which pool
    worker it landed on).  Ids only label trace records and join causal
    chains within one run — nothing matches them across runs.
    """
    _site_seq.clear()


@dataclass
class Message:
    """An application-level message.

    ``size`` is the payload size in bytes used for all timing and traffic
    accounting; ``payload`` is the actual Python object carried (never
    serialized — this is a simulator).  ``port`` names the logical mailbox
    on the destination node.
    """

    src: int
    dst: int
    size: int
    payload: Any = None
    port: str = "default"
    kind: str = "msg"
    msg_id: int = -1
    send_time: float = 0.0
    recv_time: float = 0.0

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"negative message size: {self.size}")
        if self.msg_id < 0:
            self.msg_id = alloc_msg_id(self.src)
