"""Message record passed through the fabric."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Message", "reset_ids"]

_ids = itertools.count()


def reset_ids() -> None:
    """Restart message-id allocation from 0.

    Called by the experiment runner at the start of every run so trace
    records carry run-local ids: a traced run produces the same records
    no matter how many runs preceded it in the process (or which pool
    worker it landed on).  Ids only label trace records and join causal
    chains within one run — nothing matches them across runs.
    """
    global _ids
    _ids = itertools.count()


@dataclass
class Message:
    """An application-level message.

    ``size`` is the payload size in bytes used for all timing and traffic
    accounting; ``payload`` is the actual Python object carried (never
    serialized — this is a simulator).  ``port`` names the logical mailbox
    on the destination node.
    """

    src: int
    dst: int
    size: int
    payload: Any = None
    port: str = "default"
    kind: str = "msg"
    msg_id: int = field(default_factory=lambda: next(_ids))
    send_time: float = 0.0
    recv_time: float = 0.0

    def __post_init__(self):
        if self.size < 0:
            raise ValueError(f"negative message size: {self.size}")
