"""Cluster topology: clusters of compute nodes plus dedicated gateways.

Mirrors the DAS (Fig. 17): four sites — VU Amsterdam (64), UvA Amsterdam (24),
Leiden (24), Delft (24) — each with one dedicated gateway, joined pairwise by
ATM PVCs.  The *experimentation system* splits the 64-node VU cluster into
four sub-clusters of up to 15 compute nodes + 1 gateway each, which is the
configuration all the paper's multi-cluster numbers use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ClusterSpec",
    "Topology",
    "das_real",
    "das_experimentation",
    "uniform_clusters",
]


@dataclass(frozen=True)
class ClusterSpec:
    """One site: ``n_nodes`` compute nodes and a dedicated gateway.

    The heterogeneity fields default to the paper's uniform model:
    ``cpu_speed`` scales this cluster's application compute (2.0 =
    twice as fast; protocol overheads are NIC/firmware costs and stay
    fixed), and ``link`` names a LAN link class from
    :data:`repro.network.params.LINK_CLASSES` (``None`` = the network
    parameter set's default LAN).  See docs/SCENARIOS.md.
    """

    name: str
    n_nodes: int
    cpu_speed: float = 1.0
    link: Optional[str] = None

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError(f"cluster {self.name!r} needs >= 1 node")
        if self.cpu_speed <= 0:
            raise ValueError(f"cluster {self.name!r} needs cpu_speed > 0")


@dataclass
class Topology:
    """Global node numbering over a list of clusters.

    Compute nodes are numbered 0..P-1 in cluster order.  Gateways are not
    compute nodes (the paper dedicates them); they are addressed separately
    by cluster index.
    """

    clusters: List[ClusterSpec]
    _starts: List[int] = field(init=False)

    def __post_init__(self):
        if not self.clusters:
            raise ValueError("topology needs at least one cluster")
        self._starts = []
        acc = 0
        for c in self.clusters:
            self._starts.append(acc)
            acc += c.n_nodes
        self._total = acc

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def n_nodes(self) -> int:
        return self._total

    def cluster_of(self, node: int) -> int:
        """Cluster index owning global node id ``node``."""
        if not 0 <= node < self._total:
            raise ValueError(f"node id {node} out of range 0..{self._total - 1}")
        # Clusters are few; linear scan is clearest and fast enough.
        for ci in range(len(self.clusters) - 1, -1, -1):
            if node >= self._starts[ci]:
                return ci
        raise AssertionError("unreachable")

    def nodes_in(self, cluster: int) -> range:
        start = self._starts[cluster]
        return range(start, start + self.clusters[cluster].n_nodes)

    def local_rank(self, node: int) -> int:
        """Rank of ``node`` within its own cluster."""
        return node - self._starts[self.cluster_of(node)]

    def same_cluster(self, a: int, b: int) -> bool:
        return self.cluster_of(a) == self.cluster_of(b)

    def peers(self, node: int) -> List[int]:
        """All compute nodes except ``node``."""
        return [n for n in range(self._total) if n != node]

    def cluster_pairs(self) -> List[Tuple[int, int]]:
        """All ordered pairs of distinct clusters (directed WAN PVCs)."""
        n = self.n_clusters
        return [(a, b) for a in range(n) for b in range(n) if a != b]

    def describe(self) -> str:
        rows = [f"{c.name}: nodes {list(self.nodes_in(i))[0]}.."
                f"{list(self.nodes_in(i))[-1]} ({c.n_nodes}) + gateway"
                for i, c in enumerate(self.clusters)]
        return "\n".join(rows)


def das_real() -> Topology:
    """The real DAS: 64 + 24 + 24 + 24 compute nodes (Fig. 17)."""
    return Topology([
        ClusterSpec("VU-Amsterdam", 64),
        ClusterSpec("UvA-Amsterdam", 24),
        ClusterSpec("Leiden", 24),
        ClusterSpec("Delft", 24),
    ])


def das_experimentation(n_clusters: int, nodes_per_cluster: int) -> Topology:
    """The split-64 experimentation system used for all paper measurements.

    With four sub-clusters each holds at most 15 compute nodes + 1 gateway.
    """
    if not 1 <= n_clusters <= 4:
        raise ValueError("DAS experimentation system has 1..4 sub-clusters")
    if n_clusters == 4 and nodes_per_cluster > 15:
        raise ValueError("4-cluster runs have at most 15 compute nodes each "
                         "(64 = 4*15 + 4 gateways)")
    return uniform_clusters(n_clusters, nodes_per_cluster, prefix="sub")


def uniform_clusters(n_clusters: int, nodes_per_cluster: int,
                     prefix: str = "cluster") -> Topology:
    """``n_clusters`` identical clusters of ``nodes_per_cluster`` nodes."""
    if n_clusters < 1 or nodes_per_cluster < 1:
        raise ValueError("need >= 1 cluster and >= 1 node per cluster")
    return Topology([ClusterSpec(f"{prefix}{i}", nodes_per_cluster)
                     for i in range(n_clusters)])
