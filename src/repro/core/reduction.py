"""Cluster-level reductions for associative all-to-one operations.

The ATPG optimization (Section 4.4): instead of every processor RPC-ing
its statistics to processor 0 (many WAN crossings), processors first
reduce *within* their cluster at a cluster representative, and each
representative sends a single combined value over the WAN — one
intercluster RPC per cluster.

Both the flat (original) and hierarchical (optimized) collectives are
provided so applications and benches can compare them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional

from ..orca import Context

__all__ = ["flat_reduce", "cluster_reduce", "cluster_scatter",
           "representative"]

REDUCE_PORT = "core.reduce"


def representative(ctx: Context, cluster: int) -> int:
    """The node acting as reduction representative for ``cluster``."""
    return ctx.topo.nodes_in(cluster)[0]


def flat_reduce(ctx: Context, value: Any, combine: Callable[[Any, Any], Any],
                size: int, root: int = 0, tag: str = "flat") -> Generator:
    """All nodes send straight to ``root``; root combines (original scheme).

    Collective: every node must call it with the same ``tag``.  Returns
    the combined value at the root, ``None`` elsewhere.
    """
    port = f"{REDUCE_PORT}.{tag}"
    if ctx.node != root:
        yield from ctx.send(root, size, payload=value, port=port, kind="rpc")
        return None
    acc = value
    for _ in range(ctx.topo.n_nodes - 1):
        msg = yield from ctx.receive(port=port)
        acc = combine(acc, msg.payload)
    return acc


def cluster_reduce(ctx: Context, value: Any,
                   combine: Callable[[Any, Any], Any],
                   size: int, root: int = 0, tag: str = "tree") -> Generator:
    """Two-level reduction: within clusters first, then across (optimized).

    Each node sends to its cluster representative; representatives combine
    their cluster's values and send one message to the root, so exactly
    ``n_clusters - 1`` messages cross the WAN (or fewer, when the root's
    cluster needs none).  Returns the result at the root, ``None`` elsewhere.
    """
    topo = ctx.topo
    my_cluster = ctx.cluster
    rep = representative(ctx, my_cluster)
    local_port = f"{REDUCE_PORT}.{tag}.local"
    global_port = f"{REDUCE_PORT}.{tag}.global"

    if ctx.node != rep and ctx.node != root:
        yield from ctx.send(rep, size, payload=value, port=local_port, kind="rpc")
        return None

    if ctx.node == rep:
        acc = value
        expected = len(topo.nodes_in(my_cluster)) - 1
        # The root never forwards to a representative (it is the final
        # destination); when it shares our cluster and is not us, it sends
        # locally like everyone else.
        if root in topo.nodes_in(my_cluster) and root != rep:
            pass  # root's value arrives on local_port like the others'
        for _ in range(expected):
            msg = yield from ctx.receive(port=local_port)
            acc = combine(acc, msg.payload)
        if rep == root:
            # Collect the other representatives' combined values.
            for _ in range(topo.n_clusters - 1):
                msg = yield from ctx.receive(port=global_port)
                acc = combine(acc, msg.payload)
            return acc
        yield from ctx.send(root, size, payload=acc, port=global_port, kind="rpc")
        return None

    # ctx.node == root but not a representative: contribute locally, then
    # collect all representatives' values.
    yield from ctx.send(rep, size, payload=value, port=local_port, kind="rpc")
    acc: Optional[Any] = None
    for _ in range(topo.n_clusters):
        msg = yield from ctx.receive(port=global_port)
        acc = msg.payload if acc is None else combine(acc, msg.payload)
    return acc


def cluster_scatter(ctx: Context, value: Any, size: int, root: int = 0,
                    tag: str = "scatter") -> Generator:
    """Two-level broadcast-down of a single value (the inverse of
    :func:`cluster_reduce`): the root sends one message per remote cluster
    representative, each representative forwards over its LAN.  Collective:
    every node calls it; all return the root's value.

    This is cheaper than a totally-ordered Orca broadcast when only a
    small control value (e.g. a convergence decision) must reach everyone:
    no sequencer interaction, ``n_clusters - 1`` WAN messages.
    """
    topo = ctx.topo
    my_cluster = ctx.cluster
    rep = representative(ctx, my_cluster)
    down_port = f"{REDUCE_PORT}.{tag}.down"
    fan_port = f"{REDUCE_PORT}.{tag}.fan"

    if ctx.node == root:
        root_cluster = topo.cluster_of(root)
        for c in range(topo.n_clusters):
            target = representative(ctx, c)
            if c == root_cluster:
                continue
            yield from ctx.send(target, size, payload=value, port=down_port,
                                kind="rpc")
        # Fan out inside the root's own cluster.
        for n in topo.nodes_in(root_cluster):
            if n != root:
                yield from ctx.send(n, size, payload=value, port=fan_port,
                                    kind="rpc")
        return value

    if ctx.node == rep and not topo.same_cluster(ctx.node, root):
        msg = yield from ctx.receive(port=down_port)
        for n in topo.nodes_in(my_cluster):
            if n != rep:
                yield from ctx.send(n, size, payload=msg.payload,
                                    port=fan_port, kind="rpc")
        return msg.payload

    msg = yield from ctx.receive(port=fan_port)
    return msg.payload
