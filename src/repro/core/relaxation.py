"""Relaxed-consistency exchange policies (the SOR optimization, Section 4.8).

Chazan & Miranker's *chaotic relaxation* result lets an iterative solver
skip some data exchanges and still converge (more slowly).  The paper
applies it at cluster boundaries: within a cluster every boundary-row
exchange happens as usual, but across clusters 2 out of 3 exchanges are
dropped, cutting intercluster traffic to a third at the cost of 5-10%
more iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExchangePolicy", "FullExchange", "ChaoticExchange"]


class ExchangePolicy:
    """Decides whether a boundary exchange happens at a given iteration."""

    def should_exchange(self, iteration: int, intercluster: bool) -> bool:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class FullExchange(ExchangePolicy):
    """The original red/black scheme: every exchange, every iteration."""

    def should_exchange(self, iteration: int, intercluster: bool) -> bool:
        return True


@dataclass(frozen=True)
class ChaoticExchange(ExchangePolicy):
    """Keep one intercluster exchange in every ``keep_one_in`` iterations.

    The paper's experiment drops 2 out of 3 intercluster row exchanges,
    i.e. ``keep_one_in = 3``.  Intracluster exchanges always proceed.
    """

    keep_one_in: int = 3

    def __post_init__(self):
        if self.keep_one_in < 1:
            raise ValueError("keep_one_in must be >= 1")

    def should_exchange(self, iteration: int, intercluster: bool) -> bool:
        if not intercluster:
            return True
        return iteration % self.keep_one_in == 0

    @property
    def drop_fraction(self) -> float:
        return 1.0 - 1.0 / self.keep_one_in
