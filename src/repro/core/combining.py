"""Cluster-level message combining (the RA optimization, Section 4.5).

Irregular fine-grain traffic (RA sends hundreds of thousands of tiny
asynchronous updates) drowns the WAN in per-message latency and gateway
overhead.  The optimization designates one machine per cluster as the
*combiner*: senders hand their intercluster messages to it over the LAN;
the combiner accumulates them per destination cluster and occasionally
ships one large combined message over the WAN.  The receiving cluster's
combiner unpacks and forwards each inner message over its LAN, so final
receivers are oblivious to the scheme.

Flush policy: a buffer is flushed when it reaches ``max_messages`` or
``max_bytes``, or when it has been non-empty for ``max_delay`` seconds —
whichever comes first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..orca import Context, OrcaRuntime

__all__ = ["CombinerConfig", "ClusterCombiner"]

COMBINER_PORT = "core.combiner"
#: Framing overhead per inner message inside a combined WAN message.
HEADER_BYTES = 16


@dataclass(frozen=True)
class CombinerConfig:
    max_messages: int = 64
    max_bytes: int = 32 * 1024
    max_delay: float = 1e-3

    def __post_init__(self):
        if self.max_messages < 1 or self.max_bytes < 1 or self.max_delay <= 0:
            raise ValueError(f"invalid combiner config: {self}")


@dataclass
class _Buffer:
    entries: List[Tuple[int, int, Any, str]] = field(default_factory=list)
    bytes: int = 0
    opened_at: float = 0.0


class ClusterCombiner:
    """One combiner endpoint per cluster, running on that cluster's first node.

    Use :meth:`send` from application code instead of ``ctx.send`` for
    intercluster traffic that may be combined.  Intracluster messages are
    passed straight through.
    """

    def __init__(self, rts: OrcaRuntime, config: Optional[CombinerConfig] = None):
        self.rts = rts
        self.topo = rts.topo
        self.config = config or CombinerConfig()
        # Per (combiner cluster, destination cluster) buffers.
        self._buffers: Dict[Tuple[int, int], _Buffer] = {}
        self.flushes = 0
        self.combined_messages = 0
        for cluster in range(self.topo.n_clusters):
            node = self.combiner_node(cluster)
            rts.sim.spawn(self._combiner_proc(node, cluster),
                          name=f"combiner{cluster}")

    def combiner_node(self, cluster: int) -> int:
        return self.topo.nodes_in(cluster)[0]

    # ------------------------------------------------------------------ API

    def send(self, ctx: Context, dst: int, size: int, payload: Any = None,
             port: str = "app") -> Generator:
        """Send ``payload`` to ``dst``; intercluster messages are combined."""
        dst_cluster = self.topo.cluster_of(dst)
        if dst_cluster == ctx.cluster:
            yield from ctx.send(dst, size, payload, port=port)
            return
        combiner = self.combiner_node(ctx.cluster)
        entry = ("relay", dst, size, payload, port)
        if ctx.node == combiner:
            # Local shortcut: we *are* the combiner; buffer directly.
            self._buffer_entry(ctx, ctx.cluster, dst, size, payload, port)
            return
        yield from ctx.send(combiner, size, payload=entry, port=COMBINER_PORT)

    # ------------------------------------------------------------ processes

    def _combiner_proc(self, node: int, cluster: int) -> Generator:
        ctx = self.rts.context(node)
        while True:
            msg = yield from ctx.receive(port=COMBINER_PORT)
            kind = msg.payload[0]
            if kind == "relay":
                _, dst, size, payload, port = msg.payload
                self._buffer_entry(ctx, cluster, dst, size, payload, port)
            elif kind == "combined":
                # Unpack and forward each inner message over the LAN.
                _, entries = msg.payload
                self.combined_messages += 1
                for dst, size, payload, port in entries:
                    yield from ctx.send(dst, size, payload, port=port)
            elif kind == "flush":
                _, dst_cluster, opened_at = msg.payload
                buf = self._buffers.get((cluster, dst_cluster))
                if buf is not None and buf.entries and buf.opened_at == opened_at:
                    yield from self._flush(ctx, cluster, dst_cluster)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown combiner message {kind!r}")

    def _buffer_entry(self, ctx: Context, cluster: int, dst: int, size: int,
                      payload: Any, port: str) -> None:
        key = (cluster, self.topo.cluster_of(dst))
        buf = self._buffers.setdefault(key, _Buffer())
        if not buf.entries:
            # A fresh buffer generation gets its own flush timer; a timer
            # whose generation was already flushed (by size) finds a
            # different ``opened_at`` and does nothing.
            buf.opened_at = ctx.now
            self.rts.sim.spawn(self._delayed_flush(ctx, key, buf.opened_at),
                               name="combtimer")
        buf.entries.append((dst, size, payload, port))
        buf.bytes += size + HEADER_BYTES
        cfg = self.config
        if (len(buf.entries) >= cfg.max_messages or buf.bytes >= cfg.max_bytes):
            self.rts.sim.spawn(self._flush(ctx, key[0], key[1]),
                               name="combflush")

    def _delayed_flush(self, ctx: Context, key: Tuple[int, int],
                       opened_at: float) -> Generator:
        yield self.rts.sim.timeout(self.config.max_delay)
        buf = self._buffers.get(key)
        if buf is not None and buf.entries and buf.opened_at == opened_at:
            yield from self._flush(ctx, key[0], key[1])

    def _flush(self, ctx: Context, cluster: int, dst_cluster: int) -> Generator:
        buf = self._buffers.get((cluster, dst_cluster))
        if buf is None or not buf.entries:
            return
        entries, buf.entries = buf.entries, []
        total_bytes, buf.bytes = buf.bytes, 0
        self.flushes += 1
        remote = self.combiner_node(dst_cluster)
        yield from ctx.send(remote, total_bytes,
                            payload=("combined", entries),
                            port=COMBINER_PORT)

    # -------------------------------------------------------------- stats

    @property
    def pending(self) -> int:
        return sum(len(b.entries) for b in self._buffers.values())
