"""The paper's taxonomy of communication patterns and improvements (Table 3).

Two families of wide-area optimization emerge from the eight case studies:

* **Traffic reduction** — restructure the algorithm so less data crosses
  cluster boundaries (caching, hierarchical reduction, static
  distribution, local-first stealing, relaxed consistency).
* **Latency hiding** — keep the same volume but mask WAN latency
  (message combining, sequencer migration, asynchronous/pipelined sends).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

__all__ = ["OptimizationFamily", "AppPattern", "TABLE3", "table3_rows"]


class OptimizationFamily(Enum):
    TRAFFIC_REDUCTION = "reduce intercluster traffic"
    LATENCY_HIDING = "hide intercluster latency"
    NONE = "none implemented"


@dataclass(frozen=True)
class AppPattern:
    app: str
    communication: str
    improvement: str
    family: OptimizationFamily


TABLE3: Dict[str, AppPattern] = {
    "water": AppPattern(
        "Water", "All-to-all exchange", "Cluster cache",
        OptimizationFamily.TRAFFIC_REDUCTION),
    "atpg": AppPattern(
        "ATPG", "All-to-one", "Cluster-level reduction",
        OptimizationFamily.TRAFFIC_REDUCTION),
    "tsp": AppPattern(
        "TSP", "Central job queue", "Static distribution",
        OptimizationFamily.TRAFFIC_REDUCTION),
    "ida": AppPattern(
        "IDA*", "Distributed job queue with work stealing",
        'Steal from local cluster first; "remember empty" heuristic',
        OptimizationFamily.TRAFFIC_REDUCTION),
    "acp": AppPattern(
        "ACP", "Irregular broadcast", "None implemented",
        OptimizationFamily.NONE),
    "asp": AppPattern(
        "ASP", "Regular broadcast", "Sequencer migration",
        OptimizationFamily.LATENCY_HIDING),
    "ra": AppPattern(
        "RA", "Irregular message passing", "Message combining per cluster",
        OptimizationFamily.LATENCY_HIDING),
    "sor": AppPattern(
        "SOR", "Nearest neighbor", 'Reduced ("chaotic") relaxation',
        OptimizationFamily.TRAFFIC_REDUCTION),
}


def table3_rows() -> List[AppPattern]:
    """Rows in the paper's presentation order."""
    order = ["water", "atpg", "tsp", "ida", "acp", "asp", "ra", "sor"]
    return [TABLE3[k] for k in order]
