"""Cluster-level caching of remote data (the Water optimization, Section 4.1).

In an all-to-all exchange, many processors of one cluster read the *same*
block of data from the same remote processor; the original program ships
that block over the WAN once per reader.  The optimization designates, in
every cluster, a *local coordinator* for each remote processor P.  Readers
ask the coordinator; the coordinator fetches P's block over the WAN once
per epoch, caches it, and serves all later local readers over the LAN.

The write path mirrors it: local updates destined for P are sent to the
coordinator, which combines them with an associative reduction and ships
only the combined result over the WAN (once the expected number of local
contributions has arrived).

Epochs (iteration numbers) provide coherency for free: the paper notes
"the local coordinator knows in advance which processors are going to
read and write the data", so a block cached at epoch *e* is never served
for epoch *e+1*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..orca import Context, OrcaRuntime

__all__ = ["ClusterCache"]

COORD_PORT = "core.ccache.coord"
DATA_PORT = "core.ccache.data"
UPDATE_PORT = "core.ccache.update"


@dataclass
class _FetchState:
    cached: Optional[Tuple[Any, int]] = None
    in_flight: bool = False
    waiters: List[Tuple[int, str]] = field(default_factory=list)


@dataclass
class _WriteState:
    acc: Any = None
    count: int = 0


class ClusterCache:
    """Coordinator service; one instance covers the whole machine.

    Applications must:

    * register a *provider* per node: ``fn(epoch) -> (payload, size)``
      returning the node's data block for that epoch;
    * register an *update consumer* per node: ``fn(epoch, value)`` applying
      a combined remote update;
    * call :meth:`fetch` / :meth:`write_combined` from their processes.
    """

    def __init__(self, rts: OrcaRuntime,
                 reduce_fn: Callable[[Any, Any], Any]):
        self.rts = rts
        self.topo = rts.topo
        self.reduce_fn = reduce_fn
        self._providers: Dict[int, Callable[[int], Tuple[Any, int]]] = {}
        self._consumers: Dict[int, Callable[[int, Any], None]] = {}
        # (coordinator node, owner, epoch) -> fetch state
        self._fetch: Dict[Tuple[int, int, int], _FetchState] = {}
        # (coordinator node, dest, epoch) -> write accumulation
        self._writes: Dict[Tuple[int, int, int], _WriteState] = {}
        self.wan_fetches = 0
        self.cache_hits = 0
        for node in range(self.topo.n_nodes):
            rts.sim.spawn(self._coordinator_proc(node), name=f"ccachec{node}")
            rts.sim.spawn(self._data_server_proc(node), name=f"ccached{node}")
            rts.sim.spawn(self._update_sink_proc(node), name=f"ccacheu{node}")

    # ----------------------------------------------------------- wiring

    def register_provider(self, node: int,
                          fn: Callable[[int], Tuple[Any, int]]) -> None:
        self._providers[node] = fn

    def register_consumer(self, node: int,
                          fn: Callable[[int, Any], None]) -> None:
        self._consumers[node] = fn

    def coordinator_for(self, cluster: int, remote_proc: int) -> int:
        """The node in ``cluster`` coordinating data of ``remote_proc``."""
        nodes = self.topo.nodes_in(cluster)
        return nodes[remote_proc % len(nodes)]

    # -------------------------------------------------------------- reads

    def fetch(self, ctx: Context, owner: int, epoch: int,
              reply_port: Optional[str] = None) -> Generator:
        """Read ``owner``'s block for ``epoch`` via the cluster cache."""
        if self.topo.same_cluster(ctx.node, owner):
            # Same cluster: fetch directly from the owner over the LAN.
            port = reply_port or f"core.ccache.direct.{ctx.node}.{owner}.{epoch}"
            yield from ctx.send(owner, 16, payload=("fetch", ctx.node, epoch,
                                                    port),
                                port=DATA_PORT, kind="proto")
            msg = yield from ctx.receive(port=port)
            self.rts.meter.record("rpc", 16 + msg.size, intercluster=False)
            return msg.payload
        coord = self.coordinator_for(ctx.cluster, owner)
        port = reply_port or f"core.ccache.reply.{ctx.node}.{owner}.{epoch}"
        if ctx.node == coord:
            # We are the coordinator ourselves: run the protocol inline.
            result = yield from self._coordinator_fetch(ctx, owner, epoch,
                                                        ctx.node, port,
                                                        inline=True)
            return result
        yield from ctx.send(coord, 16,
                            payload=("fetch", ctx.node, owner, epoch, port),
                            port=COORD_PORT, kind="proto")
        msg = yield from ctx.receive(port=port)
        self.rts.meter.record("rpc", 16 + msg.size, intercluster=False)
        return msg.payload

    # ------------------------------------------------------------- writes

    def write_combined(self, ctx: Context, dest: int, epoch: int, value: Any,
                       size: int, expected: int) -> Generator:
        """Contribute ``value`` toward ``dest``; the coordinator combines
        ``expected`` local contributions into one WAN message."""
        if self.topo.same_cluster(ctx.node, dest):
            self.rts.meter.record("rpc", size, intercluster=False)
            yield from ctx.send(dest, size, payload=("update", epoch, value),
                                port=UPDATE_PORT, kind="proto")
            return
        coord = self.coordinator_for(ctx.cluster, dest)
        if ctx.node == coord:
            yield from self._accumulate(ctx, dest, epoch, value, size, expected)
            return
        self.rts.meter.record("rpc", size, intercluster=False)
        yield from ctx.send(coord, size,
                            payload=("write", dest, epoch, value, size,
                                     expected),
                            port=COORD_PORT, kind="proto")

    # ---------------------------------------------------------- processes

    def _coordinator_proc(self, node: int) -> Generator:
        ctx = self.rts.context(node)
        while True:
            msg = yield from ctx.receive(port=COORD_PORT)
            kind = msg.payload[0]
            if kind == "fetch":
                _, requester, owner, epoch, port = msg.payload
                self.rts.sim.spawn(
                    self._coordinator_fetch(ctx, owner, epoch, requester, port),
                    name="ccachefetch")
            elif kind == "write":
                _, dest, epoch, value, size, expected = msg.payload
                yield from self._accumulate(ctx, dest, epoch, value, size,
                                            expected)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown coordinator message {kind!r}")

    def _coordinator_fetch(self, ctx: Context, owner: int, epoch: int,
                           requester: int, port: str,
                           inline: bool = False) -> Generator:
        """Run on the coordinator node.  ``inline`` marks the case where the
        coordinator's own application process is the requester driving this
        generator directly (it takes the return value; no reply message)."""
        key = (ctx.node, owner, epoch)
        st = self._fetch.setdefault(key, _FetchState())
        if st.cached is not None:
            self.cache_hits += 1
            payload, size = st.cached
            if inline:
                return payload
            yield from self._serve(ctx, requester, port, payload, size)
            return payload
        if st.in_flight:
            # Someone is already fetching this block over the WAN; park.
            st.waiters.append((requester, port))
            if inline:
                msg = yield from ctx.receive(port=port)
                return msg.payload
            return None
        st.in_flight = True
        self.wan_fetches += 1
        reply_port = f"core.ccache.wan.{ctx.node}.{owner}.{epoch}"
        yield from ctx.send(owner, 16,
                            payload=("fetch", ctx.node, epoch, reply_port),
                            port=DATA_PORT, kind="proto")
        msg = yield from ctx.receive(port=reply_port)
        self.rts.meter.record(
            "rpc", 16 + msg.size,
            intercluster=not self.topo.same_cluster(ctx.node, owner))
        payload = msg.payload
        size = msg.size
        st.cached = (payload, size)
        st.in_flight = False
        waiters, st.waiters = st.waiters, []
        if not inline:
            yield from self._serve(ctx, requester, port, payload, size)
        for w_node, w_port in waiters:
            yield from self._serve(ctx, w_node, w_port, payload, size)
        return payload

    def _serve(self, ctx: Context, requester: int, port: str, payload: Any,
               size: int) -> Generator:
        if requester == ctx.node:
            # A parked inline caller on this node: wake it via loopback.
            yield from ctx.send(ctx.node, 0, payload=payload, port=port)
            return
        yield from ctx.send(requester, size, payload=payload, port=port)

    def _data_server_proc(self, node: int) -> Generator:
        ctx = self.rts.context(node)
        while True:
            msg = yield from ctx.receive(port=DATA_PORT)
            _, requester, epoch, reply_port = msg.payload
            provider = self._providers.get(node)
            if provider is None:
                raise RuntimeError(f"no data provider registered on {node}")
            payload, size = provider(epoch)
            yield from ctx.send(requester, size, payload=payload,
                                port=reply_port, kind="proto")

    def _accumulate(self, ctx: Context, dest: int, epoch: int, value: Any,
                    size: int, expected: int) -> Generator:
        key = (ctx.node, dest, epoch)
        st = self._writes.setdefault(key, _WriteState())
        st.acc = value if st.count == 0 else self.reduce_fn(st.acc, value)
        st.count += 1
        if st.count >= expected:
            del self._writes[key]
            self.rts.meter.record(
                "rpc", size,
                intercluster=not self.topo.same_cluster(ctx.node, dest))
            yield from ctx.send(dest, size, payload=("update", epoch, st.acc),
                                port=UPDATE_PORT, kind="proto")

    def _update_sink_proc(self, node: int) -> Generator:
        ctx = self.rts.context(node)
        while True:
            msg = yield from ctx.receive(port=UPDATE_PORT)
            _, epoch, value = msg.payload
            consumer = self._consumers.get(node)
            if consumer is None:
                raise RuntimeError(f"no update consumer registered on {node}")
            consumer(epoch, value)
