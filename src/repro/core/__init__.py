"""The wide-area optimization library — the paper's primary contribution.

Each module implements one of the optimization techniques of Section 5 /
Table 3, built on the Orca runtime and usable by any application:

* :mod:`~repro.core.job_queue` — centralized, static per-cluster, and
  work-stealing job queues (TSP, IDA*).
* :mod:`~repro.core.cluster_cache` — cluster-level caching of remote data
  with combined write-back (Water).
* :mod:`~repro.core.reduction` — flat vs hierarchical cluster-level
  reductions (ATPG).
* :mod:`~repro.core.combining` — cluster-level message combining (RA).
* :mod:`~repro.core.relaxation` — relaxed-consistency exchange policies
  (SOR's chaotic relaxation).
* :mod:`~repro.core.latency_hiding` — split-phase sends (SOR in C).
* :mod:`~repro.core.patterns` — the Table 3 taxonomy.
"""

from .cluster_cache import ClusterCache
from .combining import ClusterCombiner, CombinerConfig
from .job_queue import (
    DONE,
    IdleTracker,
    cluster_first_order,
    fifo_queue_spec,
    partition_static,
    power_of_two_order,
)
from .latency_hiding import SplitPhaseExchange
from .patterns import TABLE3, AppPattern, OptimizationFamily, table3_rows
from .reduction import cluster_reduce, cluster_scatter, flat_reduce, representative
from .relaxation import ChaoticExchange, ExchangePolicy, FullExchange

__all__ = [
    "ClusterCache",
    "ClusterCombiner",
    "CombinerConfig",
    "DONE",
    "IdleTracker",
    "cluster_first_order",
    "fifo_queue_spec",
    "partition_static",
    "power_of_two_order",
    "SplitPhaseExchange",
    "TABLE3",
    "AppPattern",
    "OptimizationFamily",
    "table3_rows",
    "cluster_reduce",
    "cluster_scatter",
    "flat_reduce",
    "representative",
    "ChaoticExchange",
    "ExchangePolicy",
    "FullExchange",
]
