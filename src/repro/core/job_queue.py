"""Job-queue organizations for wide-area load balancing.

Three schemes from the paper:

* **Centralized queue** (original TSP): one shared FIFO object on the
  master's node; every fetch by a remote cluster is an intercluster RPC.
* **Static per-cluster queues** (optimized TSP): work is divided statically
  over one queue per cluster; fetches stay inside the cluster, trading
  dynamic balance for locality.
* **Work stealing** (IDA*): per-node queues; an idle node steals from
  victims.  The original victim order is the paper's fixed
  power-of-two-offset sequence; the optimization steals *cluster-local
  first* and remembers which victims were idle.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, List, Optional, Sequence, Set

from ..network.topology import Topology
from ..orca import Blocked, ObjectSpec, Operation

__all__ = [
    "DONE",
    "fifo_queue_spec",
    "partition_static",
    "power_of_two_order",
    "cluster_first_order",
    "IdleTracker",
]

#: Sentinel returned by a queue ``get`` once closed and drained.
DONE = "__queue_done__"


def fifo_queue_spec(name: str, owner: int,
                    job_bytes: int = 64,
                    initial: Optional[Iterable[Any]] = None) -> ObjectSpec:
    """A shared FIFO job-queue object with Orca guard semantics.

    ``get`` blocks while the queue is empty and open; after ``close`` a
    drained queue returns :data:`DONE` instead.  ``job_bytes`` sizes the
    messages carrying one job.
    """
    init = list(initial) if initial is not None else []

    def make_state():
        return {"jobs": deque(init), "closed": False}

    def put(state, job):
        if state["closed"]:
            raise ValueError(f"queue {name!r}: put after close")
        state["jobs"].append(job)

    def put_many(state, jobs):
        if state["closed"]:
            raise ValueError(f"queue {name!r}: put after close")
        state["jobs"].extend(jobs)

    def get(state):
        if state["jobs"]:
            return state["jobs"].popleft()
        if state["closed"]:
            return DONE
        raise Blocked

    def close(state):
        state["closed"] = True

    def size(state):
        return len(state["jobs"])

    return ObjectSpec(
        name, make_state,
        {
            "put": Operation(fn=put, writes=True, arg_bytes=job_bytes),
            "put_many": Operation(
                fn=put_many, writes=True,
                arg_bytes=lambda jobs: job_bytes * max(1, len(jobs))),
            # close() also "writes" so it wakes parked getters.
            "close": Operation(fn=close, writes=True, arg_bytes=1),
            "get": Operation(fn=get, writes=True, arg_bytes=4,
                             result_bytes=job_bytes),
            "size": Operation(fn=size, arg_bytes=1, result_bytes=4),
        },
        owner=owner)


def partition_static(jobs: Sequence[Any], n_parts: int) -> List[List[Any]]:
    """Deterministic round-robin split of ``jobs`` into ``n_parts`` lists.

    Round-robin (rather than contiguous blocks) spreads the typically
    uneven early/late branch-and-bound jobs over the clusters, the same
    effect the paper gets from its static division.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    parts: List[List[Any]] = [[] for _ in range(n_parts)]
    for i, job in enumerate(jobs):
        parts[i % n_parts].append(job)
    return parts


def power_of_two_order(p: int, me: int) -> List[int]:
    """The paper's fixed victim order: offsets 1, 2, 4, ..., 2^n (mod p).

    Offsets that alias to 0 or repeat are skipped; remaining nodes follow
    in linear order so the sequence always covers all peers.
    """
    if not 0 <= me < p:
        raise ValueError(f"me={me} out of range for p={p}")
    seen: Set[int] = {me}
    order: List[int] = []
    offset = 1
    while offset < p:
        victim = (me + offset) % p
        if victim not in seen:
            order.append(victim)
            seen.add(victim)
        offset *= 2
    for delta in range(1, p):
        victim = (me + delta) % p
        if victim not in seen:
            order.append(victim)
            seen.add(victim)
    return order


def cluster_first_order(topo: Topology, me: int,
                        base: Optional[List[int]] = None) -> List[int]:
    """Reorder a victim list so same-cluster victims come first.

    The first wide-area IDA* optimization: always try to steal inside the
    local cluster before paying an intercluster request.
    """
    if base is None:
        base = power_of_two_order(topo.n_nodes, me)
    my_cluster = topo.cluster_of(me)
    local = [v for v in base if topo.cluster_of(v) == my_cluster]
    remote = [v for v in base if topo.cluster_of(v) != my_cluster]
    return local + remote


class IdleTracker:
    """The "remember empty" heuristic.

    IDA*'s termination detection already broadcasts idle/active
    transitions, so each process can track which peers are idle for free
    and skip them when choosing steal victims.
    """

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        self._idle: Set[int] = set()

    def mark_idle(self, node: int) -> None:
        self._idle.add(node)

    def mark_active(self, node: int) -> None:
        self._idle.discard(node)

    def is_idle(self, node: int) -> bool:
        return node in self._idle

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    def filter(self, victims: Iterable[int]) -> List[int]:
        """Victims worth asking: the ones not known to be idle."""
        return [v for v in victims if v not in self._idle]
