"""Split-phase (latency hiding) communication helpers.

The second family of wide-area optimizations: instead of blocking on an
intercluster transfer, issue it asynchronously, compute something
independent, and only then wait for arrival.  Orca's RPC model cannot
express this — the paper rewrote SOR in C against the low-level RTS
primitives — so these helpers sit on the runtime's raw message layer.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..orca import Context

__all__ = ["SplitPhaseExchange"]


class SplitPhaseExchange:
    """Post sends now, harvest receives later.

    Typical SOR-C iteration::

        xch = SplitPhaseExchange(ctx, tag="sor")
        yield from xch.post_send(left, row_bytes, top_row)
        yield from xch.post_send(right, row_bytes, bottom_row)
        yield from ctx.compute(inner_rows_cost)         # overlapped
        msgs = yield from xch.collect(expected=2)       # boundary rows
    """

    def __init__(self, ctx: Context, tag: str = "xch"):
        self.ctx = ctx
        self.port = f"core.splitphase.{tag}"
        self.posted = 0

    def post_send(self, dst: int, size: int, payload: Any = None) -> Generator:
        """Asynchronous send; only the sender-side overhead is paid now."""
        self.posted += 1
        yield from self.ctx.send(dst, size, payload, port=self.port)

    def collect(self, expected: int) -> Generator:
        """Receive ``expected`` messages posted to us by our peers."""
        msgs = []
        for _ in range(expected):
            msg = yield from self.ctx.receive(port=self.port)
            msgs.append(msg)
        return msgs

    def collect_by_key(self, expected: int) -> Generator:
        """Like :meth:`collect` but returns ``{payload_key: payload_value}``
        for payloads shaped ``(key, value)``."""
        out: Dict[Any, Any] = {}
        for _ in range(expected):
            msg = yield from self.ctx.receive(port=self.port)
            key, value = msg.payload
            out[key] = value
        return out
