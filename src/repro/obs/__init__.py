"""Observability: structured tracing, analyzers, exporters, profiler.

The ``repro.obs`` package consumes the typed trace records emitted by
the instrumented layers (sim engine, network fabric, Orca runtime) and
turns them into the paper's diagnostic artifacts: per-link utilization
timelines, gateway queue-depth series, per-process WAN-wait accounting,
the per-application bottleneck breakdown printed by ``repro profile``,
and causal message chains with per-hop latency attribution
(:mod:`repro.obs.chains`, printed by ``repro chains`` and drawn as
Perfetto flow arrows by the Chrome exporter).  The record schema is
versioned and documented in
``docs/TRACING.md``; :mod:`repro.obs.schema` is its machine-readable
source of truth.
"""

from .analyzers import (
    BREAKDOWN_NARRATIVE,
    FaultWindow,
    LinkTimeline,
    fault_windows,
    gateway_littles_law,
    gateway_queue_series,
    impairment_summary,
    intercluster_breakdown,
    link_timelines,
    wan_wait_by_node,
)
from .chains import (
    CHAIN_KINDS,
    MessageChain,
    MessageHop,
    build_chains,
    chain_stats,
    format_chain,
    format_chains,
    hop_attribution,
)
from .export import (
    chrome_trace,
    folded_stacks,
    read_jsonl,
    write_chrome,
    write_folded,
    write_jsonl,
)
from .profile import (
    PROFILE_KINDS,
    BottleneckReport,
    format_bottleneck,
    format_pdes_summary,
    format_profile_diff,
    format_profile_table,
    profile_app,
)
from .schema import (
    KINDS,
    SCHEMA_VERSION,
    SPAN_KINDS,
    KindSpec,
    classify_link,
    validate_record,
    validate_records,
)

__all__ = [
    "BREAKDOWN_NARRATIVE",
    "FaultWindow",
    "fault_windows",
    "impairment_summary",
    "LinkTimeline",
    "gateway_littles_law",
    "gateway_queue_series",
    "intercluster_breakdown",
    "link_timelines",
    "wan_wait_by_node",
    "CHAIN_KINDS",
    "MessageChain",
    "MessageHop",
    "build_chains",
    "chain_stats",
    "format_chain",
    "format_chains",
    "hop_attribution",
    "chrome_trace",
    "folded_stacks",
    "read_jsonl",
    "write_chrome",
    "write_folded",
    "write_jsonl",
    "PROFILE_KINDS",
    "BottleneckReport",
    "format_bottleneck",
    "format_pdes_summary",
    "format_profile_diff",
    "format_profile_table",
    "profile_app",
    "KINDS",
    "SCHEMA_VERSION",
    "SPAN_KINDS",
    "KindSpec",
    "classify_link",
    "validate_record",
    "validate_records",
]
