"""The wide-area bottleneck profiler behind ``repro profile``.

:func:`profile_app` runs one application with structured tracing and
utilization collection enabled, then condenses the trace into a
:class:`BottleneckReport`: the paper's per-application diagnosis — which
wide-area mechanism dominates (sequencer round trips, gateway
congestion, WAN serialization, blocking RPC stalls), per-node WAN-wait
accounting, link timelines and gateway queue depths — as one printable
report.

A shared :class:`~repro.sim.Tracer` can be passed in and reused across
grid points; the profiler calls ``tracer.clear()`` after condensing each
run, so sweeping many configurations with tracing enabled does not grow
memory with the sum of all traces (see ``docs/TRACING.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..network import DAS_PARAMS, NetworkParams
from ..sim import Tracer
from .analyzers import (
    BREAKDOWN_NARRATIVE,
    LinkTimeline,
    gateway_queue_series,
    intercluster_breakdown,
    link_timelines,
    wan_wait_by_node,
)
from .schema import KINDS

__all__ = ["PROFILE_KINDS", "BottleneckReport", "profile_app",
           "format_bottleneck", "format_profile_table",
           "format_profile_diff", "format_pdes_summary"]

#: The kinds the profiler records.  High-volume per-event kinds that the
#: analyzers do not consume (process lifecycle, per-copy message
#: records, per-node broadcast applies) are filtered *at emit time* to
#: bound trace memory — see the filtering caveat in ``docs/TRACING.md``.
PROFILE_KINDS = frozenset(KINDS) - {
    "proc.spawn", "proc.finish", "msg.send", "msg.deliver", "bcast.apply",
}


@dataclass
class BottleneckReport:
    """One application run, condensed to its wide-area diagnosis."""

    app: str
    variant: str
    n_clusters: int
    nodes_per_cluster: int
    elapsed: float                       # virtual seconds
    categories: Dict[str, float]         # mechanism -> attributed seconds
    dominant: str                        # category key, or "none"
    dominant_share: float                # of the attributed total
    cpu_mean: float                      # mean node-CPU busy fraction
    timeline: LinkTimeline
    gateway_peak: Tuple[int, int]        # (cluster, peak queue depth)
    wan_waits: Dict[int, Dict[str, float]]
    n_records: int

    @property
    def narrative(self) -> str:
        """The paper-style name of the dominant wide-area cost."""
        if self.dominant == "none":
            return "no wide-area time attributed (single cluster?)"
        return BREAKDOWN_NARRATIVE[self.dominant]


def profile_app(app_name: str, variant: str = "original",
                n_clusters: int = 4, nodes_per_cluster: int = 8,
                params: Any = None, network: NetworkParams = DAS_PARAMS,
                sequencer: Optional[str] = None,
                tracer: Optional[Tracer] = None,
                n_buckets: int = 60,
                ring: Optional[int] = None,
                sample: Optional[Dict[str, int]] = None) -> BottleneckReport:
    """Run ``app_name``/``variant`` traced and condense the diagnosis.

    ``params`` defaults to the benchmark problem sizes
    (:func:`repro.harness.figures.bench_params`).  ``tracer`` lets a
    sweep share one trace buffer across grid points (it is cleared
    before the run and after condensing); by default a fresh one is
    used.  ``ring`` / ``sample`` bound the default tracer's memory (ring
    buffer of the last N records, deterministic 1-in-k per-kind
    sampling — see ``docs/TRACING.md``); a bounded trace profiles the
    *tail* (ring) or a *thinned* view (sampling) of the run, so the
    attributed seconds shrink accordingly while the diagnosis shape
    survives.  They are ignored when an explicit ``tracer`` is passed —
    the caller's bounding wins.  The run itself is bit-identical to an
    untraced run — tracing only observes.
    """
    from ..apps import make_app
    from ..harness.experiment import run_app
    from ..harness.figures import bench_params

    if params is None:
        params = bench_params(app_name)
    if tracer is None:
        tracer = Tracer(ring=ring, sample=sample)
    tracer.clear()
    tracer.enabled = True
    if tracer.kinds is None:
        tracer.kinds = PROFILE_KINDS
    result = run_app(make_app(app_name), variant, n_clusters,
                     nodes_per_cluster, params, network=network,
                     sequencer=sequencer, trace=True, utilization=True,
                     tracer=tracer)

    records = tracer.records
    categories = intercluster_breakdown(records)
    total = sum(categories.values())
    if total > 0:
        dominant = max(categories, key=categories.get)
        share = categories[dominant] / total
    else:
        dominant, share = "none", 0.0
    queues = gateway_queue_series(records)
    gateway_peak = (-1, 0)
    for cluster, samples in queues.items():
        peak = max(depth for _t, depth in samples)
        if peak > gateway_peak[1]:
            gateway_peak = (cluster, peak)
    report = BottleneckReport(
        app=app_name, variant=variant, n_clusters=n_clusters,
        nodes_per_cluster=nodes_per_cluster, elapsed=result.elapsed,
        categories=categories, dominant=dominant, dominant_share=share,
        cpu_mean=result.utilization.cpu_mean,
        timeline=link_timelines(records, result.elapsed, n_buckets),
        gateway_peak=gateway_peak,
        wan_waits=wan_wait_by_node(records),
        n_records=len(records))
    # Grid-point hygiene: drop this run's records so a sweep reusing the
    # tracer holds at most one run's trace at a time.
    tracer.clear()
    return report


def _pct(x: float) -> str:
    return f"{100.0 * x:.0f}%"


def format_bottleneck(report: BottleneckReport) -> str:
    """Render one report as the ``repro profile`` block."""
    head = (f"{report.app}/{report.variant} on "
            f"{report.n_clusters}x{report.nodes_per_cluster}: "
            f"{report.elapsed:.4f} virtual seconds "
            f"({report.n_records} trace records)")
    lines = [head,
             f"  dominant wide-area cost: {report.narrative}"
             + (f" ({_pct(report.dominant_share)} of attributed "
                f"intercluster time)" if report.dominant != "none" else "")]
    total = sum(report.categories.values())
    if total > 0:
        lines.append("  intercluster time by mechanism "
                     "(attributions overlap; see docs/TRACING.md):")
        for name, secs in sorted(report.categories.items(),
                                 key=lambda kv: -kv[1]):
            lines.append(f"    {name:>9}: {secs:10.4f} s  "
                         f"{_pct(secs / total):>4}")
    lines.append(f"  CPUs: mean {_pct(report.cpu_mean)} busy "
                 "(compute + protocol overhead)")
    busiest_wan = report.timeline.busiest("wan")
    if busiest_wan is not None:
        wan_link, wan_util = busiest_wan
        lines.append(f"  WAN : busiest PVC {wan_link} at {_pct(wan_util)} "
                     "busy over the run")
    if report.gateway_peak[0] >= 0:
        lines.append(f"  gateways: peak queue depth {report.gateway_peak[1]}"
                     f" (cluster {report.gateway_peak[0]})")
    waiters = sorted(report.wan_waits.items(),
                     key=lambda kv: -sum(kv[1].values()))[:3]
    if waiters:
        lines.append("  top WAN waiters:")
        for node, w in waiters:
            lines.append(f"    node {node:>3}: rpc {w['rpc']:.4f}s, "
                         f"bcast {w['bcast']:.4f}s, seq {w['seq']:.4f}s")
    return "\n".join(lines)


def _delta(before: float, after: float) -> str:
    """Relative change, rendered for humans (guarding a zero baseline)."""
    if before == 0:
        return "new" if after > 0 else "-"
    change = (after - before) / before
    return f"{change:+.0%}"


def format_profile_diff(before: BottleneckReport,
                        after: BottleneckReport) -> str:
    """Side-by-side diff of two runs of one app (``repro profile --diff``).

    The paper's whole argument is a before/after: each application is
    profiled as ``original``, restructured, and profiled again.  This
    renders that comparison directly — elapsed, the per-mechanism
    intercluster seconds, CPU utilization and gateway pressure — so the
    effect of an optimization shows up as a column of deltas instead of
    two blocks to eyeball.
    """
    head = (f"{before.app} on {before.n_clusters}x"
            f"{before.nodes_per_cluster}: {before.variant} vs "
            f"{after.variant}")
    col_a, col_b = before.variant[:13], after.variant[:13]
    lines = [head,
             f"  {'':<22} {col_a:>13} {col_b:>13} {'delta':>7}",
             f"  {'elapsed (s)':<22} {before.elapsed:>13.4f} "
             f"{after.elapsed:>13.4f} "
             f"{_delta(before.elapsed, after.elapsed):>7}"]
    keys = sorted(set(before.categories) | set(after.categories),
                  key=lambda k: -before.categories.get(k, 0.0))
    if keys:
        lines.append("  intercluster seconds by mechanism "
                     "(attributions overlap):")
        for key in keys:
            a = before.categories.get(key, 0.0)
            b = after.categories.get(key, 0.0)
            lines.append(f"    {key:<20} {a:>13.4f} {b:>13.4f} "
                         f"{_delta(a, b):>7}")
    lines.append(f"  {'CPU busy (mean)':<22} {_pct(before.cpu_mean):>13} "
                 f"{_pct(after.cpu_mean):>13}")
    lines.append(f"  {'gateway peak depth':<22} "
                 f"{before.gateway_peak[1]:>13} "
                 f"{after.gateway_peak[1]:>13}")
    wa, wb = before.timeline.busiest("wan"), after.timeline.busiest("wan")
    if wa is not None or wb is not None:
        fa = f"{wa[0]} {_pct(wa[1])}" if wa is not None else "-"
        fb = f"{wb[0]} {_pct(wb[1])}" if wb is not None else "-"
        lines.append(f"  {'busiest PVC':<22} {fa:>13} {fb:>13}")
    lines.append(f"  dominant: {before.narrative}  ->  {after.narrative}")
    return "\n".join(lines)


def format_pdes_summary(sim_stats: Dict[str, Any]) -> Optional[str]:
    """One-line synchronization summary for a partitioned (PDES) run.

    Condenses the ``pdes_*`` counters a partitioned run adds to
    ``sim_stats`` into the profile-style line ``repro app --pdes``
    prints: how many epochs the conservative protocol took, how many
    worker round-trips the quiescence coalescing elided, and what the
    fast-lane channels actually carried.  Returns ``None`` when the
    stats do not come from a partitioned run (e.g. ``--pdes auto``
    fell back to the single-process oracle).
    """
    if "pdes_partitions" not in sim_stats:
        return None
    epochs = sim_stats.get("pdes_epochs", 0)
    trips = sim_stats.get("pdes_round_trips", 0)
    coalesced = sim_stats.get("pdes_coalesced_round_trips", 0)
    possible = trips + coalesced
    share = f", {_pct(coalesced / possible)} of possible" if possible else ""
    kib = sim_stats.get("pdes_channel_bytes", 0) / 1024.0
    line = (f"pdes: {sim_stats['pdes_partitions']} partitions, "
            f"{epochs} epochs, {trips} round-trips "
            f"({coalesced} coalesced{share}), "
            f"{sim_stats.get('pdes_cross_messages', 0)} cross msgs + "
            f"{sim_stats.get('pdes_acks', 0)} acks in {kib:.0f} KiB, "
            f"{sim_stats.get('pdes_epoch_breaks', 0)} epoch breaks, "
            f"blocked {sim_stats.get('pdes_blocked_s', 0.0):.3f}s")
    overflows = sim_stats.get("pdes_channel_overflows", 0)
    if overflows:
        line += f", {overflows} ring overflows (pipe fallback)"
    return line


def format_profile_table(reports: List[BottleneckReport]) -> str:
    """One row per report: the Figure-15-style diagnosis summary."""
    lines = [f"{'app':>6} {'variant':>10} {'elapsed(s)':>11} "
             f"{'share':>6}  dominant wide-area cost"]
    for r in reports:
        share = _pct(r.dominant_share) if r.dominant != "none" else "-"
        lines.append(f"{r.app:>6} {r.variant:>10} {r.elapsed:>11.4f} "
                     f"{share:>6}  {r.narrative}")
    return "\n".join(lines)
