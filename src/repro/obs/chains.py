"""Causal message chains: end-to-end multi-hop message journeys.

The paper's wide-area diagnoses are causal stories — a broadcast stalls
because its sequencer round-trip crossed the WAN, which queued behind a
gateway forward.  The raw trace reports each mechanism in isolation;
this module joins them back into *chains*: every point-to-point message
with both a ``msg.send`` and a ``msg.deliver`` record (joined on
``msg_id``) is stitched together with the ``link.busy`` / ``gw.forward``
/ ``wan.xfer`` spans that served it, yielding the full path

    LAN leg -> access link -> gateway -> WAN PVC -> gateway -> access
    link -> LAN leg

with per-hop latency attribution.  MPWide-style per-link monitoring
becomes actionable exactly here: a slow link matters when it sits on a
message's critical path, and the chain names which hop ate the latency.

Attribution invariant — the hops *telescope*: hop ``i`` covers the
interval from the previous hop's end (or the send instant) to its own
span's end, and a final delivery hop covers the remainder up to the
deliver instant.  The hop durations therefore partition the send->
deliver interval exactly::

    sum(h.elapsed for h in chain.hops) == chain.latency

(to float addition, i.e. within 1e-9).  Each hop's ``elapsed`` thus
includes the queueing and propagation that *preceded* its span — the
wait is charged to the hop that resolved it, which is the paper's
"where did the time go" question.

Records whose spans are shared between several deliveries (multicast
fan-out legs, ``msg_id == -1``) and deliveries without a matching send
(per-receiver multicast copies) do not form chains; :func:`build_chains`
counts them so nothing is silently dropped.

The Perfetto exporter (:func:`repro.obs.export.chrome_trace`) emits one
flow event per chain hop, rendering the chains as connected arrows
across lanes; ``repro chains`` prints them as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.trace import TraceRecord

__all__ = [
    "CHAIN_KINDS",
    "MessageHop",
    "MessageChain",
    "build_chains",
    "chain_stats",
    "hop_attribution",
    "format_chain",
    "format_chains",
]

#: The kinds chain reconstruction consumes (a valid emit-time filter for
#: runs that only need chains).
CHAIN_KINDS = frozenset({
    "msg.send", "msg.deliver", "link.busy", "gw.forward", "wan.xfer",
})

#: Span kinds that may carry a joining ``msg_id``.
_HOP_KINDS = ("link.busy", "gw.forward", "wan.xfer")


@dataclass(frozen=True)
class MessageHop:
    """One telescoped hop of a message chain.

    ``elapsed`` is the telescoped duration (previous hop's end to this
    hop's end) — these sum to the chain latency.  ``span_dur`` is the
    underlying span's own occupancy length and ``wait`` its recorded
    queueing delay where the schema provides one (``link.busy``);
    both can be shorter than ``elapsed`` because the telescoped
    interval also absorbs propagation and CPU time between spans.
    """

    cls: str          # lan_out / lan_in / access / gateway / wan /
                      # wan_latency / delivery / local
    label: str        # human label, e.g. "access:gwaccess0", "gateway:gw1"
    start: float      # previous hop's end (or the send instant)
    end: float        # this hop's span end (or the deliver instant)
    elapsed: float    # end - start  (telescoped attribution)
    span_dur: float   # the underlying span's own length (0 for delivery)
    wait: float       # recorded queueing delay, where the span has one


@dataclass
class MessageChain:
    """One point-to-point message reconstructed into its hop path."""

    msg_id: int
    src: int
    dst: int
    size: int
    msg_kind: str
    port: str
    scope: str                 # self / lan / wan (from msg.send)
    send_time: float
    deliver_time: float
    hops: List[MessageHop] = field(default_factory=list)

    @property
    def latency(self) -> float:
        return self.deliver_time - self.send_time

    @property
    def attributed(self) -> float:
        """Sum of hop durations; equals :attr:`latency` by construction."""
        return sum(h.elapsed for h in self.hops)

    @property
    def intercluster(self) -> bool:
        return self.scope == "wan"


def _hop_identity(rec: TraceRecord) -> Tuple[str, str]:
    """(hop class, human label) for one joinable span record."""
    d = rec.detail
    if rec.kind == "link.busy":
        return d["cls"], f"{d['cls']}:{d['link']}"
    if rec.kind == "gw.forward":
        return "gateway", f"gateway:gw{d['cluster']}"
    # wan.xfer ends after the PVC's own link.busy span (it also covers
    # the propagation latency), so in a chain it shows up as the
    # propagation remainder of the WAN hop.
    return "wan_latency", f"wan_latency:c{d['src_cluster']}->c{d['dst_cluster']}"


def build_chains(records: Iterable[TraceRecord],
                 ) -> Tuple[List[MessageChain], Dict[str, int]]:
    """Join sends, delivers and path spans into chains.

    Returns ``(chains, counts)`` where ``chains`` is sorted by send
    time and ``counts`` reports what could not be joined so partial
    traces are never silently misread:

    * ``chains``            — complete send->deliver joins;
    * ``unmatched_send``    — sends whose delivery never happened or was
      filtered/sampled/evicted out of the trace;
    * ``unmatched_deliver`` — deliveries without a send record
      (multicast copies, or the send was dropped by bounding);
    * ``shared_spans``      — path spans with ``msg_id == -1`` (legs
      shared between deliveries, e.g. broadcast fan-out);
    * ``orphan_spans``      — attributed spans whose message never
      completed a send/deliver pair.
    """
    sends: Dict[int, TraceRecord] = {}
    delivers: Dict[int, TraceRecord] = {}
    spans: Dict[int, List[TraceRecord]] = {}
    shared_spans = 0
    for rec in records:
        if rec.kind == "msg.send":
            sends[rec.detail["msg_id"]] = rec
        elif rec.kind == "msg.deliver":
            delivers[rec.detail["msg_id"]] = rec
        elif rec.kind in _HOP_KINDS:
            mid = rec.detail.get("msg_id", -1)
            if mid < 0:
                shared_spans += 1
            else:
                spans.setdefault(mid, []).append(rec)

    chains: List[MessageChain] = []
    orphan_spans = 0
    for mid, send in sends.items():
        deliver = delivers.get(mid)
        if deliver is None:
            continue
        d = send.detail
        chain = MessageChain(
            msg_id=mid, src=d["src"], dst=d["dst"], size=d["size"],
            msg_kind=d["msg_kind"], port=d["port"], scope=d["scope"],
            send_time=send.time, deliver_time=deliver.time)
        path = sorted(spans.get(mid, ()), key=lambda r: (r.time, r.detail["t0"]))
        prev = send.time
        for rec in path:
            cls, label = _hop_identity(rec)
            chain.hops.append(MessageHop(
                cls=cls, label=label, start=prev, end=rec.time,
                elapsed=rec.time - prev, span_dur=rec.detail["dur"],
                wait=rec.detail.get("wait", 0.0)))
            prev = rec.time
        # The remainder — propagation and receive-side CPU after the
        # last span (the whole path, for span-less self messages).
        tail_cls = "delivery" if path else "local"
        chain.hops.append(MessageHop(
            cls=tail_cls, label=tail_cls, start=prev, end=deliver.time,
            elapsed=deliver.time - prev, span_dur=0.0, wait=0.0))
        chains.append(chain)
    for mid, recs in spans.items():
        if mid not in sends or mid not in delivers:
            orphan_spans += len(recs)
    chains.sort(key=lambda c: (c.send_time, c.msg_id))
    counts = {
        "chains": len(chains),
        "unmatched_send": len(sends) - len(chains),
        "unmatched_deliver": len(delivers) - len(chains),
        "shared_spans": shared_spans,
        "orphan_spans": orphan_spans,
    }
    return chains, counts


def chain_stats(chains: Iterable[MessageChain]
                ) -> Dict[str, Dict[str, float]]:
    """Per-scope (self / lan / wan) chain count and latency stats."""
    out: Dict[str, Dict[str, float]] = {}
    for chain in chains:
        s = out.setdefault(chain.scope, {"count": 0, "total_latency": 0.0,
                                         "max_latency": 0.0})
        s["count"] += 1
        s["total_latency"] += chain.latency
        s["max_latency"] = max(s["max_latency"], chain.latency)
    for s in out.values():
        s["mean_latency"] = s["total_latency"] / s["count"]
    return out


def hop_attribution(chains: Iterable[MessageChain],
                    scope: Optional[str] = "wan") -> Dict[str, float]:
    """Seconds of chain latency attributed to each hop class.

    Restricted to chains of ``scope`` (None = all).  Because hops
    telescope, the values sum to the total latency of the selected
    chains — this *is* a partition, unlike the mechanism breakdown in
    :func:`repro.obs.analyzers.intercluster_breakdown`.
    """
    out: Dict[str, float] = {}
    for chain in chains:
        if scope is not None and chain.scope != scope:
            continue
        for hop in chain.hops:
            out[hop.cls] = out.get(hop.cls, 0.0) + hop.elapsed
    return out


def format_chain(chain: MessageChain) -> str:
    """Render one chain as an indented per-hop table."""
    head = (f"msg {chain.msg_id} [{chain.msg_kind}] "
            f"node{chain.src} -> node{chain.dst} ({chain.scope}, "
            f"{chain.size}B, port {chain.port}): "
            f"{chain.latency * 1e3:.3f} ms")
    lines = [head]
    for hop in chain.hops:
        share = hop.elapsed / chain.latency if chain.latency > 0 else 0.0
        extra = f", waited {hop.wait * 1e3:.3f} ms" if hop.wait > 0 else ""
        lines.append(f"    {hop.label:<28} {hop.elapsed * 1e3:9.3f} ms "
                     f"{100 * share:5.1f}%{extra}")
    return "\n".join(lines)


def format_chains(chains: List[MessageChain], counts: Dict[str, int],
                  limit: int = 5) -> str:
    """The ``repro chains`` report: stats plus the slowest WAN chains."""
    lines = []
    stats = chain_stats(chains)
    lines.append(f"{counts['chains']} message chains reconstructed "
                 f"({counts['unmatched_deliver']} deliveries without a "
                 f"send — multicast copies; {counts['shared_spans']} "
                 f"shared fan-out spans)")
    for scope in ("self", "lan", "wan"):
        if scope in stats:
            s = stats[scope]
            lines.append(f"  {scope:>4}: {int(s['count']):>7} chains, "
                         f"mean {s['mean_latency'] * 1e3:8.3f} ms, "
                         f"max {s['max_latency'] * 1e3:8.3f} ms")
    wan = [c for c in chains if c.intercluster]
    if wan:
        attrib = hop_attribution(wan, scope="wan")
        total = sum(attrib.values())
        lines.append("  intercluster latency by hop "
                     "(a partition — hops telescope):")
        for cls, secs in sorted(attrib.items(), key=lambda kv: -kv[1]):
            lines.append(f"    {cls:>12}: {secs:10.4f} s  "
                         f"{100 * secs / total:5.1f}%")
        slowest = sorted(wan, key=lambda c: -c.latency)[:limit]
        lines.append(f"  slowest {len(slowest)} intercluster chains:")
        for chain in slowest:
            lines.append("  " + format_chain(chain).replace("\n", "\n  "))
    return "\n".join(lines)
