"""The versioned trace-record schema.

This module is the *single source of truth* for what the instrumented
layers emit: every trace kind, its fields, their types and units, and
which subsystem emits it.  ``docs/TRACING.md`` documents the same
registry for humans, and ``tools/check_docs.py`` (run by CI) keeps the
two in lockstep — a kind added here without a doc row, or a doc row
without a kind here, fails the build.

A trace record is a :class:`repro.sim.trace.TraceRecord`:

* ``time`` — the virtual time the record was *emitted* (for span kinds
  this is the span's **end**; the start is the ``t0`` field);
* ``kind`` — one of the names registered in :data:`KINDS`;
* ``detail`` — a flat dict of the fields listed in the kind's spec.

Schema evolution: bump :data:`SCHEMA_VERSION` whenever a kind or field
changes meaning, is removed, or changes units.  Adding a brand-new kind
is backward compatible and does not need a bump.  Exporters stamp the
version into their output so downstream consumers can refuse traces
they do not understand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..sim.trace import TraceRecord

__all__ = [
    "SCHEMA_VERSION",
    "KindSpec",
    "KINDS",
    "SPAN_KINDS",
    "validate_record",
    "validate_records",
    "classify_link",
]

#: Bump on any backward-incompatible change to a kind or field.
#: v2: ``link.busy``, ``gw.forward`` and ``wan.xfer`` gained a
#: ``msg_id`` field attributing the occupancy to the point-to-point
#: message it served (-1 for shared legs, e.g. multicast fan-out),
#: enabling the causal message chains of :mod:`repro.obs.chains`.
#: v3: scenario runs (see docs/SCENARIOS.md) change the *meaning* of
#: ``wan.xfer.tx`` — it reports the impaired serialization time, which
#: may exceed size/bandwidth — and add the ``scn.fault`` / ``scn.impair``
#: kinds.  Clean runs are unchanged.
SCHEMA_VERSION = 3

#: Field type tags used by the specs below.
_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "bool": lambda v: isinstance(v, bool),
}


@dataclass(frozen=True)
class KindSpec:
    """One trace kind: its emitter, span-ness, and field table.

    ``fields`` maps field name -> (type tag, unit/meaning).  Span kinds
    always carry ``t0`` (start, virtual seconds) and ``dur`` (length,
    virtual seconds); their record ``time`` equals ``t0 + dur``.
    """

    name: str
    emitter: str                       # module that emits it
    span: bool                         # True: interval; False: instant
    fields: Mapping[str, Tuple[str, str]]
    doc: str                           # one-line human description


def _spec(*head: str, **fields: Tuple[str, str]) -> KindSpec:
    # head = (kind name, emitter, span flag, doc); fields go as keywords
    # so a field may be called anything, including "name".
    kind, emitter, span, doc = head
    if span:
        fields.setdefault("t0", ("float", "span start, virtual seconds"))
        fields.setdefault("dur", ("float", "span length, virtual seconds"))
    return KindSpec(name=kind, emitter=emitter, span=span, doc=doc,
                    fields=fields)


#: The registry: every kind any instrumented layer may emit.
KINDS: Dict[str, KindSpec] = {spec.name: spec for spec in [
    # ------------------------------------------------ engine (repro.sim)
    _spec("proc.spawn", "repro.sim.engine", False,
          "a simulation process was spawned",
          pid=("int", "process serial number (1-based spawn order)"),
          name=("str", "process name")),
    _spec("proc.finish", "repro.sim.engine", False,
          "a simulation process finished",
          pid=("int", "process serial number"),
          name=("str", "process name"),
          ok=("bool", "True unless the process failed with an exception")),
    # ------------------------------------- message lifecycle (network)
    _spec("msg.send", "repro.network.fabric", False,
          "a point-to-point message entered the fabric",
          msg_id=("int", "unique message id"),
          src=("int", "sender node id"),
          dst=("int", "destination node id"),
          size=("int", "payload bytes"),
          msg_kind=("str", "traffic bucket: msg / rpc / bcast / proto"),
          port=("str", "destination mailbox name"),
          scope=("str", "path class: self / lan / wan")),
    _spec("msg.deliver", "repro.network.fabric", False,
          "a message was deposited in its destination mailbox",
          msg_id=("int", "unique message id"),
          src=("int", "sender node id"),
          dst=("int", "destination node id"),
          size=("int", "payload bytes"),
          msg_kind=("str", "traffic bucket: msg / rpc / bcast / proto"),
          port=("str", "destination mailbox name"),
          latency=("float", "send-to-deliver, virtual seconds")),
    _spec("link.busy", "repro.network.fabric", True,
          "one serialization occupancy of a link endpoint",
          link=("str", "resource name, e.g. lanout3 / gwaccess0 / wan(0, 1)"),
          cls=("str", "link class: lan_out / lan_in / access / wan"),
          size=("int", "payload bytes serialized"),
          wait=("float", "queueing delay before occupancy, virtual seconds"),
          msg_id=("int", "message this occupancy served; -1 when shared "
                         "(multicast fan-out legs)")),
    _spec("gw.forward", "repro.network.fabric", True,
          "a gateway store-and-forward CPU charge",
          cluster=("int", "gateway's cluster id"),
          size=("int", "payload bytes forwarded"),
          qdepth=("int", "gateway CPU queue depth sampled at entry "
                         "(waiters + in service, this request included)"),
          msg_id=("int", "message this forward served; -1 when shared "
                         "(multicast fan-out legs)")),
    _spec("wan.xfer", "repro.network.fabric", True,
          "one WAN PVC transfer: queue + serialization + latency",
          src_cluster=("int", "sending cluster id"),
          dst_cluster=("int", "receiving cluster id"),
          size=("int", "payload bytes"),
          tx=("float", "pure serialization time size/bandwidth, "
                       "virtual seconds"),
          msg_id=("int", "message this transfer served; -1 when shared "
                         "(multicast fan-out legs)")),
    # ---------------------------------------- Orca op lifecycle (orca)
    _spec("rpc.issue", "repro.orca.runtime", False,
          "a shared-object RPC left the caller",
          req_id=("int", "unique request id"),
          caller=("int", "calling node id"),
          owner=("int", "object owner node id"),
          obj=("str", "shared object name"),
          op=("str", "operation name"),
          size=("int", "request payload bytes"),
          inter=("bool", "True when caller and owner are in "
                         "different clusters")),
    _spec("rpc.complete", "repro.orca.runtime", True,
          "a shared-object RPC returned to the caller (caller-blocked span)",
          req_id=("int", "unique request id"),
          caller=("int", "calling node id"),
          owner=("int", "object owner node id"),
          obj=("str", "shared object name"),
          op=("str", "operation name"),
          bytes=("int", "request + reply payload bytes"),
          inter=("bool", "True when caller and owner are in "
                         "different clusters")),
    _spec("seq.request", "repro.orca.broadcast", True,
          "shipping a broadcast (or its BB sequence-number request) to "
          "the stamping node",
          sender=("int", "issuing node id"),
          stamp_node=("int", "stamping node id"),
          size=("int", "bytes shipped on this leg"),
          bb=("bool", "True in BB mode (control message only)"),
          inter=("bool", "True when the leg crosses a cluster boundary")),
    _spec("seq.grant", "repro.orca.broadcast", True,
          "the BB-mode sequence number travelling back to the sender",
          sender=("int", "issuing node id"),
          stamp_node=("int", "stamping node id"),
          inter=("bool", "True when the leg crosses a cluster boundary")),
    _spec("seq.acquire", "repro.orca.sequencer", True,
          "acquiring the next global sequence number (token/migration wait)",
          cluster=("int", "stamping cluster id"),
          seq=("int", "the global sequence number granted"),
          protocol=("str", "centralized / distributed / migrating")),
    _spec("seq.migrate", "repro.orca.sequencer", False,
          "the migrating sequencer moved to a new cluster",
          frm=("int", "cluster the sequencer left"),
          to=("int", "cluster the sequencer moved to")),
    _spec("bcast.issue", "repro.orca.broadcast", False,
          "a totally-ordered broadcast was issued by the application",
          sender=("int", "issuing node id"),
          obj=("str", "shared object name"),
          op=("str", "operation name"),
          size=("int", "operation payload bytes"),
          issue=("int", "sender-local issue ticket")),
    _spec("bcast.complete", "repro.orca.broadcast", True,
          "a broadcast completed at its sender (issue -> own-node apply)",
          sender=("int", "issuing node id"),
          seq=("int", "global sequence number"),
          obj=("str", "shared object name"),
          op=("str", "operation name"),
          size=("int", "operation payload bytes")),
    _spec("bcast.apply", "repro.orca.broadcast", False,
          "a node applied one ordered broadcast to its replica",
          node=("int", "applying node id"),
          seq=("int", "global sequence number"),
          sender=("int", "issuing node id")),
    # ------------------------------------- scenario engine (scenario)
    _spec("scn.fault", "repro.scenario.apply", True,
          "one injected fault window, onset to recovery",
          model=("str", "fault model: gw_outage / link_flap / slow_node"),
          target=("str", "what the fault hit, e.g. c1 / c0-c1 / n3")),
    _spec("scn.impair", "repro.network.fabric", False,
          "one WAN transfer perturbed by an impairment model",
          model=("str", "impairment model: jitter / loss / bw_dip / "
                        "cross_traffic"),
          link=("str", "directed PVC, e.g. c0->c1"),
          msg_id=("int", "message the transfer served; -1 on shared legs"),
          extra=("float", "virtual seconds this model added"),
          retries=("int", "lost transmissions (loss model); 0 otherwise")),
    # ------------------------------------------ tuner (repro.tuner)
    _spec("tune.probe", "repro.tuner.driver", True,
          "one tuner microbenchmark probe: a collective primitive "
          "measured inside the simulator",
          primitive=("str", "probed primitive, e.g. bcast_pb / "
                            "fanout_chain / stripe_4"),
          size=("int", "probe payload bytes"),
          clusters=("int", "cluster count of the probe topology"),
          rep=("int", "repetition index within the probe")),
    # ------------------------------------- sweep harness (host-side)
    # The one host-side kind: ``time`` is host seconds since the batch
    # started, not virtual time (a sweep spans many simulations).
    _spec("sweep.point", "repro.harness.sweeps", False,
          "one sweep grid point finished (host-side timing)",
          app=("str", "application registry name"),
          variant=("str", "application variant"),
          clusters=("int", "cluster count of the grid point"),
          nodes=("int", "nodes per cluster of the grid point"),
          host_s=("float", "host wall-clock seconds the point took"),
          cached=("bool", "True when served from the result cache")),
]}

#: Names of the span kinds (records carrying ``t0``/``dur``).
SPAN_KINDS = frozenset(name for name, spec in KINDS.items() if spec.span)


def validate_record(record: TraceRecord) -> List[str]:
    """Check one record against the schema; returns a list of problems.

    An empty list means the record is valid: its kind is registered,
    every declared field is present with the declared type, and no
    undeclared field is attached.
    """
    spec = KINDS.get(record.kind)
    if spec is None:
        return [f"unknown kind {record.kind!r}"]
    problems: List[str] = []
    if not isinstance(record.time, (int, float)) or isinstance(record.time, bool):
        problems.append(f"{record.kind}: non-numeric time {record.time!r}")
    for name, (type_tag, _unit) in spec.fields.items():
        if name not in record.detail:
            problems.append(f"{record.kind}: missing field {name!r}")
            continue
        if not _CHECKS[type_tag](record.detail[name]):
            problems.append(
                f"{record.kind}: field {name!r} expected {type_tag}, "
                f"got {record.detail[name]!r}")
    for name in record.detail:
        if name not in spec.fields:
            problems.append(f"{record.kind}: undeclared field {name!r}")
    if spec.span and not problems:
        t0 = record.detail["t0"]
        dur = record.detail["dur"]
        if dur < 0:
            problems.append(f"{record.kind}: negative dur {dur!r}")
        elif abs((t0 + dur) - record.time) > 1e-9:
            problems.append(
                f"{record.kind}: time {record.time!r} != t0+dur {t0 + dur!r}")
    return problems


def validate_records(records) -> List[str]:
    """Validate an iterable of records; returns all problems found."""
    problems: List[str] = []
    for record in records:
        problems.extend(validate_record(record))
    return problems


def classify_link(name: str) -> str:
    """Map a fabric resource name to its ``link.busy`` class.

    The fabric names its serialization resources ``lanout<n>``,
    ``lanin<n>``, ``gwaccess<c>`` and ``wan(<a>, <b>)``; analyzers and
    exporters share this mapping so nobody re-parses names ad hoc.
    """
    if name.startswith("lanout"):
        return "lan_out"
    if name.startswith("lanin"):
        return "lan_in"
    if name.startswith("gwaccess"):
        return "access"
    if name.startswith("wan"):
        return "wan"
    return "other"
