"""Trace analyzers: turn a record stream into wide-area diagnoses.

These are the paper's diagnostic instruments, reconstructed over the
structured trace (see :mod:`repro.obs.schema`):

* :func:`link_timelines` — per-link busy fraction per time bucket, the
  "is the WAN PVC actually saturated, and *when*" question (MPWide's
  per-link measurement, applied to the simulated fabric).
* :func:`gateway_queue_series` — gateway CPU queue depth over time,
  which exposes RA-style gateway congestion directly.
* :func:`wan_wait_by_node` — per-process accounting of time spent
  blocked on wide-area mechanisms (intercluster RPC, broadcast
  completion, sequencer shipping).
* :func:`intercluster_breakdown` — the "where did the intercluster time
  go" attribution used by ``repro profile`` to name each application's
  dominant wide-area cost, reproducing the paper's per-app diagnosis.

All functions take a plain iterable of :class:`~repro.sim.trace.TraceRecord`
so they work equally on a live :class:`~repro.sim.Tracer` or on records
re-read from a JSONL export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..sim.trace import TraceRecord

__all__ = [
    "LinkTimeline",
    "link_timelines",
    "gateway_queue_series",
    "gateway_littles_law",
    "wan_wait_by_node",
    "intercluster_breakdown",
    "BREAKDOWN_NARRATIVE",
    "FaultWindow",
    "fault_windows",
    "impairment_summary",
]


# ------------------------------------------------------------ timelines

@dataclass
class LinkTimeline:
    """Busy fraction per time bucket for every link that saw traffic.

    ``links[name][i]`` is the fraction of bucket ``i`` (length
    ``bucket`` seconds, covering ``[i*bucket, (i+1)*bucket)``) during
    which link ``name`` was serializing a payload.  ``cls_of`` maps each
    link to its class (``lan_out`` / ``lan_in`` / ``access`` / ``wan``).
    """

    elapsed: float
    bucket: float
    n_buckets: int
    links: Dict[str, List[float]] = field(default_factory=dict)
    cls_of: Dict[str, str] = field(default_factory=dict)

    def by_class(self) -> Dict[str, List[float]]:
        """Mean busy fraction per bucket across the links of each class."""
        sums: Dict[str, List[float]] = {}
        counts: Dict[str, int] = {}
        for name, series in self.links.items():
            cls = self.cls_of[name]
            if cls not in sums:
                sums[cls] = [0.0] * self.n_buckets
                counts[cls] = 0
            counts[cls] += 1
            acc = sums[cls]
            for i, v in enumerate(series):
                acc[i] += v
        return {cls: [v / counts[cls] for v in series]
                for cls, series in sums.items()}

    def busiest(self, cls: str = "wan") -> Optional[Tuple[str, float]]:
        """(link name, overall busy fraction) of the busiest link in class.

        Ties break lexicographically (the first name in sorted order
        wins), so the answer is deterministic and independent of dict
        insertion order.  Returns ``None`` when no link of ``cls`` saw
        traffic — callers must not mistake "no such link" for a real
        link at zero utilization.
        """
        best: Optional[Tuple[str, float]] = None
        for name in sorted(self.links):
            if self.cls_of[name] != cls:
                continue
            series = self.links[name]
            util = sum(series) / len(series) if series else 0.0
            if best is None or util > best[1]:
                best = (name, util)
        return best


def link_timelines(records: Iterable[TraceRecord], elapsed: float,
                   n_buckets: int = 60) -> LinkTimeline:
    """Bucketize ``link.busy`` spans into per-link busy fractions.

    A span overlapping a bucket contributes its overlap length; the
    fraction is overlap / bucket length, clamped to 1 (a link endpoint
    is a single-server resource, so >1 only arises from float fuzz).
    """
    if elapsed <= 0:
        elapsed = 1e-12
    if n_buckets < 1:
        raise ValueError(f"n_buckets must be >= 1: {n_buckets}")
    bucket = elapsed / n_buckets
    tl = LinkTimeline(elapsed=elapsed, bucket=bucket, n_buckets=n_buckets)
    for rec in records:
        if rec.kind != "link.busy":
            continue
        name = rec.detail["link"]
        series = tl.links.get(name)
        if series is None:
            series = tl.links[name] = [0.0] * n_buckets
            tl.cls_of[name] = rec.detail["cls"]
        t0 = rec.detail["t0"]
        t1 = t0 + rec.detail["dur"]
        first = max(0, min(n_buckets - 1, int(t0 / bucket)))
        last = max(0, min(n_buckets - 1, int(t1 / bucket)))
        for i in range(first, last + 1):
            lo = i * bucket
            overlap = min(t1, lo + bucket) - max(t0, lo)
            if overlap > 0:
                series[i] = min(1.0, series[i] + overlap / bucket)
    return tl


# ------------------------------------------------------- gateway queues

def gateway_queue_series(records: Iterable[TraceRecord]
                         ) -> Dict[int, List[Tuple[float, int]]]:
    """Per-cluster series of (time, queue depth) gateway samples.

    Each ``gw.forward`` span samples the gateway CPU's queue depth at
    the instant the forward was *requested* (its ``t0``); sustained
    depths above 1 are the congestion signature the paper's RA analysis
    hinges on.  Samples come back sorted by time.
    """
    series: Dict[int, List[Tuple[float, int]]] = {}
    for rec in records:
        if rec.kind != "gw.forward":
            continue
        series.setdefault(rec.detail["cluster"], []).append(
            (rec.detail["t0"], rec.detail["qdepth"]))
    for samples in series.values():
        samples.sort()
    return series


def gateway_littles_law(records: Iterable[TraceRecord]
                        ) -> Dict[int, Dict[str, float]]:
    """Check each gateway's queue series against Little's law.

    For an observation window, Little's law says the time-average
    number in system equals arrival rate x mean sojourn time,
    ``L = lambda * W``.  The trace gives both sides independently:

    * the sampled side — ``qdepth`` at each forward's request instant,
      which *includes* the arriving message itself, so the comparable
      average is ``mean(qdepth) - 1`` (arrivals-see-time-averages is
      exact for Poisson arrivals, an approximation here);
    * the predicted side — ``lambda * W = (n / window) * (sum(dur) / n)
      = sum(dur) / window`` over the same forwards, where each span's
      ``dur`` is the message's full sojourn (queueing + service).

    Returns per-cluster ``{samples, window, mean_depth, arrival_rate,
    mean_sojourn, predicted_depth, ratio}`` where ``ratio`` is
    ``(mean_depth - 1) / predicted_depth`` — near 1 when the emitted
    queue-depth samples are consistent with the span durations.
    Clusters whose window is degenerate (a single instant) are omitted;
    so are clusters that forwarded nothing.
    """
    by_cluster: Dict[int, List[TraceRecord]] = {}
    for rec in records:
        if rec.kind == "gw.forward":
            by_cluster.setdefault(rec.detail["cluster"], []).append(rec)
    out: Dict[int, Dict[str, float]] = {}
    for cluster, recs in sorted(by_cluster.items()):
        window = max(r.time for r in recs) - min(r.detail["t0"] for r in recs)
        if window <= 0:
            continue
        n = len(recs)
        mean_depth = sum(r.detail["qdepth"] for r in recs) / n
        total_sojourn = sum(r.detail["dur"] for r in recs)
        predicted = total_sojourn / window
        out[cluster] = {
            "samples": float(n),
            "window": window,
            "mean_depth": mean_depth,
            "arrival_rate": n / window,
            "mean_sojourn": total_sojourn / n,
            "predicted_depth": predicted,
            "ratio": ((mean_depth - 1.0) / predicted if predicted > 0
                      else float("inf")),
        }
    return out


# ----------------------------------------------------- per-node waiting

def wan_wait_by_node(records: Iterable[TraceRecord]
                     ) -> Dict[int, Dict[str, float]]:
    """Seconds each node spent blocked on wide-area mechanisms.

    Buckets per node:

    * ``rpc``   — caller-blocked time in *intercluster* RPCs
      (``rpc.complete`` with ``inter``);
    * ``bcast`` — sender-blocked time from broadcast issue to own-node
      apply (``bcast.complete``; only attributed when the run spans
      multiple clusters — single-cluster traces report it too, callers
      decide what it means);
    * ``seq``   — time shipping broadcasts to a *remote* stamping node
      and waiting for BB grants (``seq.request``/``seq.grant`` with
      ``inter``).

    The buckets are caller-observed stalls and may overlap resource
    occupancy reported elsewhere; they answer "which processes were
    stuck waiting on the wide area, and for how long".
    """
    waits: Dict[int, Dict[str, float]] = {}

    def bucket(node: int) -> Dict[str, float]:
        w = waits.get(node)
        if w is None:
            w = waits[node] = {"rpc": 0.0, "bcast": 0.0, "seq": 0.0}
        return w

    for rec in records:
        d = rec.detail
        if rec.kind == "rpc.complete" and d["inter"]:
            bucket(d["caller"])["rpc"] += d["dur"]
        elif rec.kind == "bcast.complete":
            bucket(d["sender"])["bcast"] += d["dur"]
        elif rec.kind in ("seq.request", "seq.grant") and d["inter"]:
            bucket(d["sender"])["seq"] += d["dur"]
    return waits


# ------------------------------------------------------ scenario records

@dataclass(frozen=True)
class FaultWindow:
    """One injected fault's actual window (see ``scn.fault``).

    ``t0`` is the onset *as executed* — a gateway outage begins when the
    gateway CPU goes quiet, which may be later than the scenario's
    requested onset — and ``t1`` the recovery instant.
    """

    model: str
    target: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def covers(self, t: float) -> bool:
        """True when virtual instant ``t`` falls inside the window."""
        return self.t0 <= t < self.t1


def fault_windows(records: Iterable[TraceRecord]) -> List[FaultWindow]:
    """Every fault window in the trace, sorted by onset.

    The windows are the anchor for "interpreting impaired traces" (see
    docs/SCENARIOS.md): stalls whose spans overlap a window are
    fault-induced, the rest are the model's ordinary congestion.
    """
    out = [FaultWindow(model=rec.detail["model"],
                       target=rec.detail["target"],
                       t0=rec.detail["t0"],
                       t1=rec.detail["t0"] + rec.detail["dur"])
           for rec in records if rec.kind == "scn.fault"]
    out.sort(key=lambda w: (w.t0, w.model, w.target))
    return out


def impairment_summary(records: Iterable[TraceRecord]
                       ) -> Dict[str, Dict[str, float]]:
    """Per-model totals of what the impairments cost (``scn.impair``).

    Returns ``{model: {events, extra_s, retries}}``: how many transfers
    the model touched, the virtual seconds it added in total, and (loss
    only) how many retransmissions it forced.
    """
    out: Dict[str, Dict[str, float]] = {}
    for rec in records:
        if rec.kind != "scn.impair":
            continue
        d = rec.detail
        acc = out.get(d["model"])
        if acc is None:
            acc = out[d["model"]] = {"events": 0.0, "extra_s": 0.0,
                                     "retries": 0.0}
        acc["events"] += 1.0
        acc["extra_s"] += d["extra"]
        acc["retries"] += d["retries"]
    return out


# ------------------------------------------------ intercluster breakdown

#: How ``repro profile`` narrates each breakdown category (the paper's
#: mechanism names).
BREAKDOWN_NARRATIVE = {
    "sequencer": "sequencer round-trips / token waits",
    "rpc-stall": "blocking intercluster RPC stalls",
    "gateway": "gateway store-and-forward congestion",
    "wan": "WAN serialization + latency",
    "access": "gateway access-link occupancy",
}


def intercluster_breakdown(records: Iterable[TraceRecord]
                           ) -> Dict[str, float]:
    """Attribute wide-area time to the paper's mechanism categories.

    Returns seconds per category (keys of :data:`BREAKDOWN_NARRATIVE`):

    * ``sequencer`` — token/migration waits (``seq.acquire``) plus
      intercluster stamping-site round trips (``seq.request`` /
      ``seq.grant`` with ``inter``);
    * ``rpc-stall`` — caller-blocked intercluster RPC time
      (``rpc.complete`` with ``inter``);
    * ``gateway``   — gateway store-and-forward busy time
      (``gw.forward``);
    * ``wan``       — WAN PVC transfer time: queueing + serialization +
      propagation (``wan.xfer``);
    * ``access``    — access-link occupancy (``link.busy`` with class
      ``access``).

    These are *mechanism attributions*, not a partition: an
    intercluster RPC stall contains the WAN transfer that served it, so
    the categories overlap by design.  The profiler reports each
    category's share of the category total, which is how the paper
    names a dominant cost ("ASP: most intercluster time in sequencer
    round-trips") without pretending the mechanisms are disjoint.
    """
    out = {name: 0.0 for name in BREAKDOWN_NARRATIVE}
    for rec in records:
        d = rec.detail
        kind = rec.kind
        if kind == "seq.acquire":
            out["sequencer"] += d["dur"]
        elif kind in ("seq.request", "seq.grant"):
            if d["inter"]:
                out["sequencer"] += d["dur"]
        elif kind == "rpc.complete":
            if d["inter"]:
                out["rpc-stall"] += d["dur"]
        elif kind == "gw.forward":
            out["gateway"] += d["dur"]
        elif kind == "wan.xfer":
            out["wan"] += d["dur"]
        elif kind == "link.busy":
            if d["cls"] == "access":
                out["access"] += d["dur"]
    return out
