"""Trace exporters: JSONL and Chrome ``trace_event`` (Perfetto) formats.

Two stable on-disk formats, both stamped with the schema version:

* **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`) — a header line
  ``{"schema": "repro.trace", "version": N}`` followed by one JSON
  object per record, ``{"t": <time>, "kind": <kind>, ...fields}``.
  Lossless; round-trips back into :class:`~repro.sim.trace.TraceRecord`.
* **Chrome trace** (:func:`chrome_trace` / :func:`write_chrome`) — the
  ``trace_event`` JSON object format that chrome://tracing and
  https://ui.perfetto.dev open directly.  Span kinds become complete
  ("X") events, instants become instant ("i") events; lanes (pid/tid)
  group records by subsystem: network links, gateways, Orca per-node
  operation lifecycles, the sequencer, and simulation processes.
  Virtual seconds are exported as microseconds (the format's unit).
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Tuple

from ..sim.trace import TraceRecord
from .schema import KINDS, SCHEMA_VERSION

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome",
]

JSONL_HEADER = {"schema": "repro.trace", "version": SCHEMA_VERSION}


# ---------------------------------------------------------------- JSONL

def write_jsonl(records: Iterable[TraceRecord], fh: IO[str]) -> int:
    """Write the header line plus one JSON object per record.

    Returns the number of records written.
    """
    fh.write(json.dumps(JSONL_HEADER) + "\n")
    n = 0
    for rec in records:
        obj = {"t": rec.time, "kind": rec.kind}
        obj.update(rec.detail)
        fh.write(json.dumps(obj) + "\n")
        n += 1
    return n


def read_jsonl(fh: IO[str]) -> List[TraceRecord]:
    """Read a JSONL export back into records (header is checked)."""
    header = json.loads(fh.readline())
    if header.get("schema") != JSONL_HEADER["schema"]:
        raise ValueError(f"not a repro trace file: header {header!r}")
    if header.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"trace schema version {header.get('version')!r} != "
            f"supported {SCHEMA_VERSION}")
    records = []
    for line in fh:
        if not line.strip():
            continue
        obj = json.loads(line)
        time = obj.pop("t")
        kind = obj.pop("kind")
        records.append(TraceRecord(time, kind, obj))
    return records


# --------------------------------------------------------- Chrome trace

class _Lanes:
    """Maps (process label, thread label) -> integer pid/tid, plus the
    ``M`` metadata events that name them in the viewer."""

    def __init__(self):
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self.metadata: List[dict] = []

    def lane(self, process: str, thread: str) -> Tuple[int, int]:
        pid = self._pids.get(process)
        if pid is None:
            pid = self._pids[process] = len(self._pids) + 1
            self.metadata.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process}})
        tid = self._tids.get((pid, thread))
        if tid is None:
            tid = self._tids[(pid, thread)] = \
                sum(1 for key in self._tids if key[0] == pid) + 1
            self.metadata.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": thread}})
        return pid, tid


def _lane_for(rec: TraceRecord) -> Tuple[str, str, str]:
    """(process label, thread label, event name) for one record."""
    d = rec.detail
    kind = rec.kind
    if kind == "link.busy":
        return "network links", d["link"], f"busy {d['size']}B"
    if kind == "wan.xfer":
        return ("network links",
                f"xfer c{d['src_cluster']}->c{d['dst_cluster']}",
                f"wan {d['size']}B")
    if kind == "gw.forward":
        return "gateways", f"gw{d['cluster']}", f"fwd {d['size']}B"
    if kind in ("msg.send", "msg.deliver"):
        node = d["src"] if kind == "msg.send" else d["dst"]
        return "messages", f"node{node}", f"{kind} {d['msg_kind']}"
    if kind in ("rpc.issue", "rpc.complete"):
        return "orca", f"node{d['caller']}", f"rpc {d['obj']}.{d['op']}"
    if kind in ("bcast.issue", "bcast.complete"):
        return "orca", f"node{d['sender']}", f"bcast {d['obj']}.{d['op']}"
    if kind == "bcast.apply":
        return "orca", f"node{d['node']}", f"apply #{d['seq']}"
    if kind in ("seq.request", "seq.grant"):
        return "sequencer", f"node{d['sender']}", kind
    if kind == "seq.acquire":
        return "sequencer", "token", f"acquire #{d['seq']}"
    if kind == "seq.migrate":
        return "sequencer", "token", f"migrate c{d['frm']}->c{d['to']}"
    if kind in ("proc.spawn", "proc.finish"):
        return "sim processes", "spawns", f"{kind} {d['name']}"
    return "other", kind, kind


def chrome_trace(records: Iterable[TraceRecord]) -> dict:
    """Build the Chrome ``trace_event`` object for an iterable of records.

    The result is JSON-serializable and structurally valid for Perfetto:
    a ``traceEvents`` list of ``M``/``X``/``i`` events plus metadata
    carrying the repro schema version.
    """
    lanes = _Lanes()
    events: List[dict] = []
    for rec in records:
        spec = KINDS.get(rec.kind)
        process, thread, name = _lane_for(rec)
        pid, tid = lanes.lane(process, thread)
        args = {k: v for k, v in rec.detail.items() if k not in ("t0", "dur")}
        if spec is not None and spec.span:
            events.append({
                "name": name, "ph": "X", "cat": rec.kind,
                "ts": rec.detail["t0"] * 1e6,
                "dur": rec.detail["dur"] * 1e6,
                "pid": pid, "tid": tid, "args": args})
        else:
            events.append({
                "name": name, "ph": "i", "cat": rec.kind,
                "ts": rec.time * 1e6, "s": "t",
                "pid": pid, "tid": tid, "args": args})
    return {
        "traceEvents": lanes.metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": "repro.trace", "version": SCHEMA_VERSION},
    }


def write_chrome(records: Iterable[TraceRecord], fh: IO[str]) -> int:
    """Serialize :func:`chrome_trace` to ``fh``; returns the event count
    (metadata events excluded)."""
    trace = chrome_trace(records)
    json.dump(trace, fh)
    return sum(1 for ev in trace["traceEvents"] if ev["ph"] != "M")
