"""Trace exporters: JSONL, Chrome ``trace_event`` (Perfetto), folded stacks.

Three stable on-disk formats, all stamped with the schema version where
the format allows it:

* **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`) — a header line
  ``{"schema": "repro.trace", "version": N}`` followed by one JSON
  object per record, ``{"t": <time>, "kind": <kind>, ...fields}``.
  Lossless; round-trips back into :class:`~repro.sim.trace.TraceRecord`
  (sequence-valued detail fields are normalized to tuples on read —
  JSON cannot tell a tuple from a list, and the emitters only ever use
  tuples).  Detail fields named ``t`` or ``kind`` would silently
  overwrite the record envelope, so :func:`write_jsonl` rejects them.
* **Chrome trace** (:func:`chrome_trace` / :func:`write_chrome`) — the
  ``trace_event`` JSON object format that chrome://tracing and
  https://ui.perfetto.dev open directly.  Span kinds become complete
  ("X") events, instants become instant ("i") events; lanes (pid/tid)
  group records by subsystem: network links, gateways, Orca per-node
  operation lifecycles, the sequencer, and simulation processes.
  Message journeys additionally become **flow events** ("s"/"t"/"f"
  sharing the message id) connecting each hop's slice across lanes —
  the causal chains of :mod:`repro.obs.chains`, drawn as arrows.
  Virtual seconds are exported as microseconds (the format's unit).
* **Folded stacks** (:func:`folded_stacks` / :func:`write_folded`) —
  the semicolon-separated stack format consumed by flamegraph.pl,
  speedscope and friends: caller lane, then nested Orca operation
  spans (``rpc.complete`` / ``bcast.complete`` with the sequencer legs
  inside them), one line per unique stack with its *self* time in
  virtual microseconds.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Tuple

from ..sim.trace import TraceRecord
from .schema import KINDS, SCHEMA_VERSION

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "chrome_trace",
    "write_chrome",
    "folded_stacks",
    "write_folded",
]

JSONL_HEADER = {"schema": "repro.trace", "version": SCHEMA_VERSION}

#: Envelope keys of the JSONL record objects; detail fields must not
#: collide with them (they would corrupt the export).
_RESERVED_JSONL_KEYS = ("t", "kind")


# ---------------------------------------------------------------- JSONL

def write_jsonl(records: Iterable[TraceRecord], fh: IO[str]) -> int:
    """Write the header line plus one JSON object per record.

    Raises :class:`ValueError` on a detail field named ``t`` or
    ``kind`` — flattening such a record would silently overwrite the
    record's time or kind in the export.  Returns the number of records
    written.
    """
    fh.write(json.dumps(JSONL_HEADER) + "\n")
    n = 0
    for rec in records:
        obj = {"t": rec.time, "kind": rec.kind}
        for key in _RESERVED_JSONL_KEYS:
            if key in rec.detail:
                raise ValueError(
                    f"record {rec.kind!r} at t={rec.time}: detail field "
                    f"{key!r} collides with the JSONL envelope; rename it")
        obj.update(rec.detail)
        fh.write(json.dumps(obj) + "\n")
        n += 1
    return n


def _tuplify(value: Any) -> Any:
    """Normalize JSON arrays (and nested containers) back to tuples."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    if isinstance(value, dict):
        return {k: _tuplify(v) for k, v in value.items()}
    return value


def read_jsonl(fh: IO[str]) -> List[TraceRecord]:
    """Read a JSONL export back into records (header is checked).

    Sequence-valued detail fields come back as tuples: JSON has no
    tuple type, and the trace emitters only attach tuples, so this is
    the lossless direction.
    """
    header = json.loads(fh.readline())
    if header.get("schema") != JSONL_HEADER["schema"]:
        raise ValueError(f"not a repro trace file: header {header!r}")
    if header.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"trace schema version {header.get('version')!r} != "
            f"supported {SCHEMA_VERSION}")
    records = []
    for line in fh:
        if not line.strip():
            continue
        obj = json.loads(line)
        time = obj.pop("t")
        kind = obj.pop("kind")
        records.append(TraceRecord(time, kind, _tuplify(obj)))
    return records


# --------------------------------------------------------- Chrome trace

class _Lanes:
    """Maps (process label, thread label) -> integer pid/tid, plus the
    ``M`` metadata events that name them in the viewer."""

    def __init__(self):
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self._next_tid: Dict[int, int] = {}   # per-pid tid counter
        self.metadata: List[dict] = []

    def lane(self, process: str, thread: str) -> Tuple[int, int]:
        pid = self._pids.get(process)
        if pid is None:
            pid = self._pids[process] = len(self._pids) + 1
            self.metadata.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process}})
        tid = self._tids.get((pid, thread))
        if tid is None:
            tid = self._next_tid.get(pid, 0) + 1
            self._next_tid[pid] = tid
            self._tids[(pid, thread)] = tid
            self.metadata.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": thread}})
        return pid, tid


def _lane_for(rec: TraceRecord) -> Tuple[str, str, str]:
    """(process label, thread label, event name) for one record."""
    d = rec.detail
    kind = rec.kind
    if kind == "link.busy":
        return "network links", d["link"], f"busy {d['size']}B"
    if kind == "wan.xfer":
        return ("network links",
                f"xfer c{d['src_cluster']}->c{d['dst_cluster']}",
                f"wan {d['size']}B")
    if kind == "gw.forward":
        return "gateways", f"gw{d['cluster']}", f"fwd {d['size']}B"
    if kind in ("msg.send", "msg.deliver"):
        node = d["src"] if kind == "msg.send" else d["dst"]
        return "messages", f"node{node}", f"{kind} {d['msg_kind']}"
    if kind in ("rpc.issue", "rpc.complete"):
        return "orca", f"node{d['caller']}", f"rpc {d['obj']}.{d['op']}"
    if kind in ("bcast.issue", "bcast.complete"):
        return "orca", f"node{d['sender']}", f"bcast {d['obj']}.{d['op']}"
    if kind == "bcast.apply":
        return "orca", f"node{d['node']}", f"apply #{d['seq']}"
    if kind in ("seq.request", "seq.grant"):
        return "sequencer", f"node{d['sender']}", kind
    if kind == "seq.acquire":
        return "sequencer", "token", f"acquire #{d['seq']}"
    if kind == "seq.migrate":
        return "sequencer", "token", f"migrate c{d['frm']}->c{d['to']}"
    if kind in ("proc.spawn", "proc.finish"):
        return "sim processes", "spawns", f"{kind} {d['name']}"
    if kind == "scn.fault":
        # Span: each fault window renders as one "X" slice on its
        # target's lane, so outages line up under the traffic they stall.
        return "scenario", d["target"], f"fault {d['model']}"
    if kind == "scn.impair":
        return "scenario", d["link"], f"impair {d['model']}"
    return "other", kind, kind


def _flow_events(hop_events: Dict[int, List[dict]]) -> List[dict]:
    """Perfetto flow events tying each message's hop slices together.

    For every message whose path touched at least two attributed hop
    slices, emit one flow: ``"s"`` (start) anchored inside the first
    slice, ``"t"`` (step) in each intermediate slice, ``"f"`` (finish,
    ``bp: "e"`` = bind to enclosing slice) in the last.  All share
    ``id`` = the message id, so Perfetto draws them as one connected
    arrow chain across lanes.
    """
    flows: List[dict] = []
    for msg_id, evs in hop_events.items():
        if len(evs) < 2:
            continue
        for i, ev in enumerate(evs):
            ph = "s" if i == 0 else ("f" if i == len(evs) - 1 else "t")
            flow = {
                "name": "message path", "cat": "flow", "ph": ph,
                "id": msg_id, "pid": ev["pid"], "tid": ev["tid"],
                "ts": ev["ts"],
            }
            if ph == "f":
                flow["bp"] = "e"
            flows.append(flow)
    return flows


def chrome_trace(records: Iterable[TraceRecord], flows: bool = True) -> dict:
    """Build the Chrome ``trace_event`` object for an iterable of records.

    The result is JSON-serializable and structurally valid for Perfetto:
    a ``traceEvents`` list of ``M``/``X``/``i`` events plus metadata
    carrying the repro schema version.  With ``flows`` (the default),
    message hop slices carrying a ``msg_id`` are additionally connected
    by ``"s"``/``"t"``/``"f"`` flow events (appended after the data
    events), rendering each message's causal chain as arrows.
    """
    lanes = _Lanes()
    events: List[dict] = []
    hop_events: Dict[int, List[dict]] = {}
    for rec in records:
        spec = KINDS.get(rec.kind)
        process, thread, name = _lane_for(rec)
        pid, tid = lanes.lane(process, thread)
        args = {k: v for k, v in rec.detail.items() if k not in ("t0", "dur")}
        if spec is not None and spec.span:
            event = {
                "name": name, "ph": "X", "cat": rec.kind,
                "ts": rec.detail["t0"] * 1e6,
                "dur": rec.detail["dur"] * 1e6,
                "pid": pid, "tid": tid, "args": args}
            msg_id = rec.detail.get("msg_id", -1)
            if flows and msg_id >= 0:
                hop_events.setdefault(msg_id, []).append(event)
        else:
            event = {
                "name": name, "ph": "i", "cat": rec.kind,
                "ts": rec.time * 1e6, "s": "t",
                "pid": pid, "tid": tid, "args": args}
        events.append(event)
    if flows:
        events.extend(_flow_events(hop_events))
    return {
        "traceEvents": lanes.metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": "repro.trace", "version": SCHEMA_VERSION},
    }


def write_chrome(records: Iterable[TraceRecord], fh: IO[str],
                 flows: bool = True) -> int:
    """Serialize :func:`chrome_trace` to ``fh``; returns the event count
    (metadata and flow events excluded)."""
    trace = chrome_trace(records, flows=flows)
    json.dump(trace, fh)
    return sum(1 for ev in trace["traceEvents"]
               if ev["ph"] not in ("M", "s", "t", "f"))


# -------------------------------------------------------- folded stacks

#: Span kinds that appear in flame graphs, with the lane (stack root)
#: each belongs to and its frame name.
_FOLDED_LANE = {
    "rpc.complete": lambda d: f"node{d['caller']}",
    "bcast.complete": lambda d: f"node{d['sender']}",
    "seq.request": lambda d: f"node{d['sender']}",
    "seq.grant": lambda d: f"node{d['sender']}",
    "seq.acquire": lambda d: f"sequencer c{d['cluster']}",
}

_FOLDED_FRAME = {
    "rpc.complete": lambda d: f"rpc {d['obj']}.{d['op']}"
                              + (" [inter]" if d["inter"] else ""),
    "bcast.complete": lambda d: f"bcast {d['obj']}.{d['op']}",
    "seq.request": lambda d: "seq request"
                             + (" [bb]" if d["bb"] else "")
                             + (" [inter]" if d["inter"] else ""),
    "seq.grant": lambda d: "seq grant"
                           + (" [inter]" if d["inter"] else ""),
    "seq.acquire": lambda d: f"seq acquire [{d['protocol']}]",
}


def folded_stacks(records: Iterable[TraceRecord]) -> Dict[str, float]:
    """Aggregate Orca operation spans into folded flame-graph stacks.

    Per caller lane (``node<N>``, plus one ``sequencer c<C>`` lane per
    stamping cluster), spans nest by interval containment: a
    ``seq.request`` leg that ran inside a ``bcast.complete`` span
    becomes its child frame, a nested RPC stacks under its enclosing
    operation, and so on.  Returns ``{stack: seconds}`` where ``stack``
    is the semicolon-joined frame path and ``seconds`` the *self* time
    (the span's length minus its nested children) — the folded
    convention flamegraph.pl and speedscope expect.
    """
    by_lane: Dict[str, List[TraceRecord]] = {}
    for rec in records:
        lane_of = _FOLDED_LANE.get(rec.kind)
        if lane_of is not None:
            by_lane.setdefault(lane_of(rec.detail), []).append(rec)

    folded: Dict[str, float] = {}

    def close(entry: dict) -> None:
        self_time = max(0.0, entry["dur"] - entry["child"])
        key = ";".join(entry["path"])
        folded[key] = folded.get(key, 0.0) + self_time

    eps = 1e-12
    for lane, recs in sorted(by_lane.items()):
        spans = sorted(recs, key=lambda r: (r.detail["t0"], -r.detail["dur"]))
        stack: List[dict] = []
        for rec in spans:
            t0 = rec.detail["t0"]
            while stack and stack[-1]["end"] <= t0 + eps:
                close(stack.pop())
            frame = _FOLDED_FRAME[rec.kind](rec.detail)
            parent_path = stack[-1]["path"] if stack else (lane,)
            entry = {"end": rec.time, "dur": rec.detail["dur"],
                     "child": 0.0, "path": parent_path + (frame,)}
            if stack:
                stack[-1]["child"] += rec.detail["dur"]
            stack.append(entry)
        while stack:
            close(stack.pop())
    return folded


def write_folded(records: Iterable[TraceRecord], fh: IO[str]) -> int:
    """Write folded stacks, one ``stack value`` line per unique stack.

    Values are virtual **microseconds** with nanosecond resolution
    (decimals are accepted by flamegraph.pl and speedscope); lines come
    out sorted for reproducible diffs.  Returns the line count.
    """
    folded = folded_stacks(records)
    n = 0
    for path in sorted(folded):
        fh.write(f"{path} {folded[path] * 1e6:.3f}\n")
        n += 1
    return n
