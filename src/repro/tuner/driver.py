"""The tuner's microbenchmark driver: probe, fit, decide.

The driver is the ninth "application" of the harness: it runs each
collective primitive in :data:`repro.tuner.primitives.PRIMITIVES` inside
the simulator — a minimal stack per probe, no application layer — over a
grid of message sizes x cluster counts x scenarios, averages the
measured virtual-time costs, fits the per-primitive cost lines, and
freezes them into a :class:`~repro.tuner.model.DecisionModel`.

Probes are ordinary simulations: deterministic per seed, traceable
(every repetition emits one ``tune.probe`` span when a tracer is
installed), and cheap — a full default sweep is a few hundred
sub-millisecond runs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..network import DAS_PARAMS, Fabric, uniform_clusters
from ..orca import OrcaRuntime
from ..orca.objects import ObjectSpec, Operation
from ..sim import Simulator, Tracer
from .model import (STREAM_CHOICES, ContextModel, DecisionModel, FittedLine,
                    Strategy, crossover, fit_line)
from .primitives import PRIMITIVES

__all__ = ["Probe", "sweep", "fit", "tune", "format_model",
           "DEFAULT_SIZES", "DEFAULT_CLUSTERS"]

#: Default probe grid: spans the PB/BB decision range (the fixed
#: threshold is 8 KiB) and the striping-relevant large sizes.
DEFAULT_SIZES = (64, 1024, 4096, 8192, 16384, 65536)
DEFAULT_CLUSTERS = (2, 4)

_PROBE_OBJ = "tune.probe.obj"
_PROBE_PORT = "tune.probe.port"


@dataclass(frozen=True)
class Probe:
    """One averaged measurement: a primitive at one grid point."""

    primitive: str
    n_clusters: int
    size: int
    cost: float  # mean virtual seconds per repetition


class _Forced:
    """A stand-in decision model that always answers one strategy.

    Installed on the probe stack so a measurement exercises exactly the
    primitive under test (e.g. force BB regardless of size, or force
    ``k`` WAN streams) — duck-typed to the two methods the runtime and
    fabric call on a :class:`~repro.tuner.model.DecisionModel`.
    """

    def __init__(self, strat: Strategy, streams: int = 1):
        self._strat = strat
        self._streams = streams

    def strategy(self, size: int, n_clusters: int) -> Strategy:
        return self._strat

    def wan_streams(self, size: int, n_clusters: int) -> int:
        return self._streams


def _probe_object() -> ObjectSpec:
    """A minimal replicated object whose one write op carries ``size``
    payload bytes (the arg) and does nothing else."""
    return ObjectSpec(
        name=_PROBE_OBJ,
        state_factory=lambda: [0],
        operations={
            "put": Operation(
                fn=lambda st, size: st.__setitem__(0, st[0] + 1),
                writes=True,
                arg_bytes=lambda size: size,
                result_bytes=0),
        },
        replicated=True)


def _stack(n_clusters: int, nodes_per_cluster: int, scenario,
           tracer: Optional[Tracer], decision=None):
    from ..network.message import reset_ids
    from ..orca.runtime import reset_req_ids
    reset_ids()
    reset_req_ids()
    sim = Simulator()
    topo = uniform_clusters(n_clusters, nodes_per_cluster)
    if scenario is not None:
        from ..scenario import install, scenario_topology
        topo = scenario_topology(scenario, topo)
    fabric = Fabric(sim, topo, DAS_PARAMS, tracer=tracer)
    if tracer is not None:
        fabric.tracer.enabled = True
    if scenario is not None:
        install(sim, fabric, scenario)
    if decision is not None:
        fabric.decision = decision
    return sim, topo, fabric


def _emit_probe(fabric: Fabric, label: str, size: int, n_clusters: int,
                rep: int, t0: float) -> None:
    tr = fabric.tracer
    if tr.enabled:
        now = fabric.sim.now
        tr.emit(now, "tune.probe", primitive=label, size=size,
                clusters=n_clusters, rep=rep, t0=t0, dur=now - t0)


def _measure_bcast(bb: bool, size: int, n_clusters: int,
                   nodes_per_cluster: int, scenario, reps: int,
                   tracer: Optional[Tracer]) -> float:
    """Mean completion latency of one ordered broadcast (PB or BB)."""
    label = "bcast_bb" if bb else "bcast_pb"
    forced = _Forced(Strategy(bb=bb))
    sim, topo, fabric = _stack(n_clusters, nodes_per_cluster, scenario,
                               tracer, decision=forced)
    # Centralized sequencer, stamping at cluster 0's first node; the
    # sender sits as far from it as the topology allows so the PB/BB
    # shipping difference is on the probed path.
    rts = OrcaRuntime(sim, fabric, sequencer="centralized", decision=forced)
    rts.register(_probe_object())
    if n_clusters > 1:
        sender = topo.nodes_in(n_clusters - 1)[0]
    else:
        nodes = topo.nodes_in(0)
        sender = nodes[-1] if len(nodes) > 1 else nodes[0]
    costs: List[float] = []

    def driver():
        for rep in range(reps):
            t0 = sim.now
            yield from rts.invoke(sender, _PROBE_OBJ, "put", (size,))
            costs.append(sim.now - t0)
            _emit_probe(fabric, label, size, n_clusters, rep, t0)

    sim.spawn(driver(), name="tuneprobe")
    sim.run()
    return sum(costs) / len(costs)


def _measure_fanout(shape: str, size: int, n_clusters: int,
                    nodes_per_cluster: int, scenario, reps: int,
                    tracer: Optional[Tracer]) -> float:
    """Mean all-remote-clusters-delivered latency of one WAN fan-out."""
    label = f"fanout_{shape}"
    sim, topo, fabric = _stack(n_clusters, nodes_per_cluster, scenario,
                               tracer)
    costs: List[float] = []

    def driver():
        for rep in range(reps):
            t0 = sim.now
            done = yield from fabric.wan_fanout_multicast(
                0, size, port=_PROBE_PORT, shape=shape)
            yield done
            costs.append(sim.now - t0)
            _emit_probe(fabric, label, size, n_clusters, rep, t0)

    sim.spawn(driver(), name="tuneprobe")
    sim.run()
    return sum(costs) / len(costs)


def _measure_stripe(k: int, size: int, n_clusters: int,
                    nodes_per_cluster: int, scenario, reps: int,
                    tracer: Optional[Tracer]) -> float:
    """Mean delivery latency of one cross-cluster transfer at ``k``
    parallel WAN streams."""
    label = f"stripe_{k}"
    forced = _Forced(Strategy(bb=False), streams=k)
    sim, topo, fabric = _stack(n_clusters, nodes_per_cluster, scenario,
                               tracer, decision=forced)
    src, dst = topo.nodes_in(0)[0], topo.nodes_in(1)[0]
    costs: List[float] = []

    def driver():
        for rep in range(reps):
            t0 = sim.now
            yield from fabric.send_and_wait(src, dst, size, port=_PROBE_PORT)
            costs.append(sim.now - t0)
            _emit_probe(fabric, label, size, n_clusters, rep, t0)

    sim.spawn(driver(), name="tuneprobe")
    sim.run()
    return sum(costs) / len(costs)


def _grid_scenarios(scenarios, seeds: Sequence[int]):
    """The (scenario-or-None) instances one grid point averages over."""
    out = []
    for scn in (scenarios if scenarios else (None,)):
        if scn is None or scn.is_noop():
            out.append(scn)  # deterministic: one run regardless of seeds
        else:
            out.extend(dataclasses.replace(scn, seed=seed)
                       for seed in seeds)
    return out


def sweep(sizes: Sequence[int] = DEFAULT_SIZES,
          cluster_counts: Sequence[int] = DEFAULT_CLUSTERS,
          nodes_per_cluster: int = 2,
          scenarios: Sequence = (None,),
          seeds: Sequence[int] = (0, 1),
          reps: int = 3,
          tracer: Optional[Tracer] = None) -> List[Probe]:
    """Probe every primitive over the grid; one :class:`Probe` per
    (primitive, cluster count, size), averaged over scenarios x seeds
    x repetitions.

    Single-cluster contexts only probe the ordering protocols (the
    ``wan_only`` primitives need a WAN).  ``scenarios`` holds
    :class:`~repro.scenario.Scenario` values (``None`` = clean); seeded
    variants of each impaired scenario are generated per ``seeds``.
    """
    for size in sizes:
        if size < 1:
            raise ValueError(f"probe sizes must be >= 1: {size}")
    probes: List[Probe] = []
    for n_clusters in cluster_counts:
        variants = _grid_scenarios(scenarios, seeds)
        for size in sizes:
            for name, spec in PRIMITIVES.items():
                if spec.wan_only and n_clusters < 2:
                    continue
                if name == "bcast_pb":
                    runs = [("bcast_pb", lambda s: _measure_bcast(
                        False, size, n_clusters, nodes_per_cluster, s,
                        reps, tracer))]
                elif name == "bcast_bb":
                    runs = [("bcast_bb", lambda s: _measure_bcast(
                        True, size, n_clusters, nodes_per_cluster, s,
                        reps, tracer))]
                elif name == "stripe":
                    runs = [(f"stripe_{k}",
                             lambda s, k=k: _measure_stripe(
                                 k, size, n_clusters, nodes_per_cluster,
                                 s, reps, tracer))
                            for k in STREAM_CHOICES]
                else:  # fanout_<shape>
                    shape = name[len("fanout_"):]
                    runs = [(name, lambda s, sh=shape: _measure_fanout(
                        sh, size, n_clusters, nodes_per_cluster, s,
                        reps, tracer))]
                for label, measure in runs:
                    costs = [measure(scn) for scn in variants]
                    probes.append(Probe(
                        primitive=label, n_clusters=n_clusters, size=size,
                        cost=sum(costs) / len(costs)))
    return probes


def fit(probes: Sequence[Probe], source: str = "") -> DecisionModel:
    """Fit per-primitive cost lines and freeze a :class:`DecisionModel`.

    Needs at least the two ordering-protocol primitives per cluster
    context; shape and stripe lines are included when probed (they are
    absent for single-cluster contexts, where the context falls back to
    the flat/1-stream defaults).
    """
    by_ctx: Dict[int, Dict[str, List[Tuple[int, float]]]] = {}
    for p in probes:
        by_ctx.setdefault(p.n_clusters, {}).setdefault(
            p.primitive, []).append((p.size, p.cost))
    contexts = []
    for n_clusters in sorted(by_ctx):
        prim = by_ctx[n_clusters]
        if "bcast_pb" not in prim or "bcast_bb" not in prim:
            raise ValueError(
                f"context {n_clusters} clusters is missing ordering-"
                f"protocol probes; have {sorted(prim)}")
        pb = fit_line(prim["bcast_pb"])
        bb = fit_line(prim["bcast_bb"])
        shapes = tuple(sorted(
            (name[len("fanout_"):], fit_line(points))
            for name, points in prim.items() if name.startswith("fanout_")))
        streams = tuple(sorted(
            (int(name[len("stripe_"):]), fit_line(points))
            for name, points in prim.items() if name.startswith("stripe_")))
        contexts.append((n_clusters, ContextModel(
            n_clusters=n_clusters, pb=pb, bb=bb,
            bb_threshold=crossover(pb, bb),
            shapes=shapes, streams=streams)))
    if not contexts:
        raise ValueError("no probes to fit")
    return DecisionModel(contexts=tuple(contexts), source=source)


def tune(sizes: Sequence[int] = DEFAULT_SIZES,
         cluster_counts: Sequence[int] = DEFAULT_CLUSTERS,
         nodes_per_cluster: int = 2,
         scenarios: Sequence = (None,),
         seeds: Sequence[int] = (0, 1),
         reps: int = 3,
         tracer: Optional[Tracer] = None) -> DecisionModel:
    """Sweep + fit in one call (what ``repro tune`` runs)."""
    probes = sweep(sizes, cluster_counts, nodes_per_cluster, scenarios,
                   seeds, reps, tracer)
    described = [s.describe() for s in scenarios if s is not None]
    source = (f"sizes={list(sizes)} clusters={list(cluster_counts)} "
              f"nodes={nodes_per_cluster} reps={reps} "
              f"scenarios={described or ['clean']}")
    return fit(probes, source=source)


def format_model(model: DecisionModel) -> str:
    """Human-readable report of a fitted model (the CLI's output)."""
    lines = ["tuned decision model"]
    if model.source:
        lines.append(f"  calibrated on: {model.source}")
    for n_clusters, ctx in model.contexts:
        thr = ctx.bb_threshold
        thr_text = ("always BB" if thr == 0.0
                    else "never BB" if thr == float("inf")
                    else f"{thr:.0f} B")
        lines.append(f"  {n_clusters} clusters: PB->BB at {thr_text} "
                     f"(fixed default: 8192 B)")
        for name, line in ctx.shapes:
            lines.append(f"    fanout {name:<9} cost = {line.a:.6f} "
                         f"+ {line.b:.3e}*size")
        for k, line in ctx.streams:
            lines.append(f"    stripe k={k:<2}     cost = {line.a:.6f} "
                         f"+ {line.b:.3e}*size")
        if ctx.shapes:
            for probe_size in (1024, 65536):
                s = ctx.strategy(probe_size)
                lines.append(
                    f"    @{probe_size} B -> "
                    f"{'BB' if s.bb else 'PB'}, shape={s.shape}, "
                    f"streams={s.streams}")
    return "\n".join(lines)
