"""Fitted cost models and the frozen :class:`DecisionModel`.

The tuner (see :mod:`repro.tuner.driver`) measures each collective
primitive inside the simulator over a grid of message sizes, cluster
counts and scenarios, then fits one LogP-style linear cost line

    cost(size) = a + b * size        (virtual seconds)

per (primitive, cluster-count) context.  A :class:`DecisionModel` is
the frozen product of such a sweep: per cluster count it stores the
fitted lines and answers the runtime's one question — *which protocol
for this message?* — by evaluating them:

* **PB vs BB** — the fitted crossover of the two ordering protocols
  replaces the hard-wired ``BB_THRESHOLD``;
* **WAN fan-out shape** — ``flat`` / ``chain`` / ``binomial``
  dissemination trees, argmin of their lines at the message size;
* **WAN striping** — how many parallel streams to split a WAN transfer
  into (MPWide-style), argmin of the per-``k`` lines.

With no model installed (``decision=None`` everywhere) the runtime uses
the fixed strategy — ``BB_THRESHOLD``, flat fan-out, one stream — and
is bit-identical to the pre-tuner code; every golden suite runs in that
tier.  Models are plain frozen dataclasses: hashable, picklable, with a
field-by-field ``repr`` (so a :class:`~repro.harness.sweeps.RunSpec`
carrying one caches correctly), and JSON round-trippable for
``repro tune --out`` / ``--apply``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Tuple

from ..orca.broadcast import BB_THRESHOLD

__all__ = [
    "FAN_OUT_SHAPES",
    "STREAM_CHOICES",
    "Strategy",
    "FittedLine",
    "ContextModel",
    "DecisionModel",
    "FIXED_STRATEGY",
]

#: The WAN dissemination tree shapes the fabric implements (see
#: :meth:`repro.network.fabric.Fabric.wan_fanout_multicast`).
FAN_OUT_SHAPES = ("flat", "chain", "binomial")

#: Stream counts the tuner probes for WAN striping.
STREAM_CHOICES = (1, 2, 4)


@dataclass(frozen=True)
class Strategy:
    """One runtime decision: ordering protocol, tree shape, striping."""

    bb: bool                 # True: sender broadcasts (BB); False: PB
    shape: str = "flat"      # WAN fan-out tree shape
    streams: int = 1         # WAN striping factor (1 = no striping)

    def __post_init__(self):
        if self.shape not in FAN_OUT_SHAPES:
            raise ValueError(f"unknown fan-out shape {self.shape!r}; "
                             f"choose from {FAN_OUT_SHAPES}")
        if self.streams < 1:
            raise ValueError(f"streams must be >= 1: {self.streams}")


#: The fixed default tier: exactly the pre-tuner runtime behavior.
FIXED_STRATEGY = Strategy(bb=False, shape="flat", streams=1)


@dataclass(frozen=True)
class FittedLine:
    """``cost(size) = a + b * size`` — one primitive's fitted cost."""

    a: float  # fixed cost, virtual seconds
    b: float  # per-byte cost, virtual seconds/byte

    def cost(self, size: int) -> float:
        return self.a + self.b * size


@dataclass(frozen=True)
class ContextModel:
    """The fitted lines for one cluster count.

    ``bb_threshold`` is the precomputed PB/BB crossover (the size at
    which the fitted BB line undercuts the PB line); ``shapes`` and
    ``streams`` hold one line per probed alternative and are evaluated
    at the message size when the runtime asks for a strategy.
    """

    n_clusters: int
    pb: FittedLine
    bb: FittedLine
    bb_threshold: float
    shapes: Tuple[Tuple[str, FittedLine], ...] = ()
    streams: Tuple[Tuple[int, FittedLine], ...] = ()

    def best_shape(self, size: int) -> str:
        if not self.shapes:
            return "flat"
        return min(self.shapes, key=lambda kv: (kv[1].cost(size),
                                                FAN_OUT_SHAPES.index(kv[0])))[0]

    def best_streams(self, size: int) -> int:
        if not self.streams:
            return 1
        return min(self.streams, key=lambda kv: (kv[1].cost(size), kv[0]))[0]

    def strategy(self, size: int) -> Strategy:
        return Strategy(bb=size >= self.bb_threshold,
                        shape=self.best_shape(size),
                        streams=self.best_streams(size))


def crossover(pb: FittedLine, bb: FittedLine,
              default: float = float(BB_THRESHOLD)) -> float:
    """The size where the BB line undercuts PB (the fitted threshold).

    Parallel or inverted lines have no finite crossover: if BB is never
    cheaper the threshold is ``inf`` (always PB); if BB is cheaper from
    size zero it is ``0.0`` (always BB); ``default`` is only used when
    the lines are numerically identical.
    """
    da, db = bb.a - pb.a, bb.b - pb.b
    if db == 0.0:
        if da == 0.0:
            return default
        return 0.0 if da < 0 else float("inf")
    x = -da / db
    if db < 0:  # BB gets *relatively* cheaper with size (the usual case)
        return max(0.0, x)
    # BB only cheaper below x — clamp to "always/never" semantics.
    return 0.0 if x > 0 and pb.a > bb.a else float("inf")


@dataclass(frozen=True)
class DecisionModel:
    """A frozen, calibrated protocol-selection model.

    ``contexts`` maps cluster counts to their fitted
    :class:`ContextModel`; lookups for an unprobed cluster count use
    the nearest probed one (ties break toward fewer clusters), so a
    model swept at 2 and 4 clusters still answers for 3.  ``source``
    is a human-readable note about the calibration grid.
    """

    contexts: Tuple[Tuple[int, ContextModel], ...]
    source: str = ""

    def __post_init__(self):
        seen = [c for c, _m in self.contexts]
        if len(seen) != len(set(seen)):
            raise ValueError(f"duplicate cluster contexts: {seen}")

    def context_for(self, n_clusters: int) -> ContextModel:
        if not self.contexts:
            raise ValueError("empty DecisionModel has no contexts")
        return min(self.contexts,
                   key=lambda kv: (abs(kv[0] - n_clusters), kv[0]))[1]

    def strategy(self, size: int, n_clusters: int) -> Strategy:
        """The calibrated strategy for one message."""
        if n_clusters <= 1:
            # No WAN: shape/striping are moot; PB/BB still applies
            # (the stamping site may be another node in the cluster).
            ctx = self.context_for(n_clusters)
            return Strategy(bb=size >= ctx.bb_threshold)
        return self.context_for(n_clusters).strategy(size)

    def wan_streams(self, size: int, n_clusters: int) -> int:
        """Striping factor for one point-to-point WAN transfer."""
        if n_clusters <= 1:
            return 1
        return self.context_for(n_clusters).best_streams(size)

    # ------------------------------------------------------------- JSON

    def to_json(self) -> str:
        def line(ln: FittedLine) -> Dict[str, float]:
            return {"a": ln.a, "b": ln.b}

        payload = {
            "model": "repro.tuner.DecisionModel",
            "version": 1,
            "source": self.source,
            "contexts": [
                {
                    "n_clusters": n,
                    "pb": line(ctx.pb),
                    "bb": line(ctx.bb),
                    "bb_threshold": ctx.bb_threshold,
                    "shapes": {name: line(ln) for name, ln in ctx.shapes},
                    "streams": {str(k): line(ln) for k, ln in ctx.streams},
                }
                for n, ctx in self.contexts
            ],
        }
        return json.dumps(payload, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "DecisionModel":
        payload = json.loads(text)
        if payload.get("model") != "repro.tuner.DecisionModel":
            raise ValueError("not a repro.tuner.DecisionModel JSON document")
        if payload.get("version") != 1:
            raise ValueError(
                f"unsupported DecisionModel version {payload.get('version')!r}")

        def line(d: Dict[str, float]) -> FittedLine:
            return FittedLine(a=float(d["a"]), b=float(d["b"]))

        contexts = []
        for ctx in payload["contexts"]:
            contexts.append((int(ctx["n_clusters"]), ContextModel(
                n_clusters=int(ctx["n_clusters"]),
                pb=line(ctx["pb"]),
                bb=line(ctx["bb"]),
                bb_threshold=float(ctx["bb_threshold"]),
                shapes=tuple(sorted(
                    (name, line(d)) for name, d in ctx["shapes"].items())),
                streams=tuple(sorted(
                    (int(k), line(d)) for k, d in ctx["streams"].items())),
            )))
        return cls(contexts=tuple(contexts), source=payload.get("source", ""))


def fit_line(points) -> FittedLine:
    """Least-squares ``a + b*size`` over ``(size, cost)`` pairs.

    Closed-form 1-D fit — no numpy.  A single point degenerates to a
    flat line through it; identical sizes fit their mean.
    """
    pts = list(points)
    if not pts:
        raise ValueError("cannot fit a cost line to zero points")
    n = len(pts)
    sx = sum(x for x, _y in pts)
    sy = sum(y for _x, y in pts)
    sxx = sum(x * x for x, _y in pts)
    sxy = sum(x * y for x, y in pts)
    denom = n * sxx - sx * sx
    if denom == 0:
        return FittedLine(a=sy / n, b=0.0)
    b = (n * sxy - sx * sy) / denom
    a = (sy - b * sx) / n
    return FittedLine(a=a, b=b)
