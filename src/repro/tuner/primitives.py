"""The registry of collective primitives the tuner probes.

This is the machine-readable source of truth for what the tuner can
measure — the same role :data:`repro.obs.schema.KINDS` plays for trace
records and :data:`repro.scenario.models.IMPAIRMENTS` for scenario
models.  ``docs/TUNING.md`` documents every primitive for humans, and
``tools/check_docs.py`` (the CI docs job) keeps the two in lockstep both
ways: a primitive registered here without a reference section, or a
documented primitive that is not registered, fails the build.

Each entry names one microbenchmark the driver runs inside the
simulator (see :mod:`repro.tuner.driver`); the ``stripe`` primitive is
probed once per stream count in
:data:`repro.tuner.model.STREAM_CHOICES`, labelled ``stripe_<k>`` in
``tune.probe`` trace records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["PrimitiveSpec", "PRIMITIVES"]


@dataclass(frozen=True)
class PrimitiveSpec:
    """One registered collective primitive."""

    name: str
    doc: str       # one-line human description
    wan_only: bool  # True: only probed on multi-cluster topologies


def _prim(name: str, doc: str, wan_only: bool = True) -> PrimitiveSpec:
    return PrimitiveSpec(name=name, doc=doc, wan_only=wan_only)


#: Every primitive the tuner can probe.
PRIMITIVES: Dict[str, PrimitiveSpec] = {spec.name: spec for spec in [
    _prim("bcast_pb",
          "PB ordered broadcast: ship the full operation to the "
          "sequencer's node, which stamps and disseminates it",
          wan_only=False),
    _prim("bcast_bb",
          "BB ordered broadcast: a small sequence-number request travels "
          "to the sequencer and back; the sender disseminates",
          wan_only=False),
    _prim("fanout_flat",
          "flat WAN fan-out: the source gateway sends on every PVC in "
          "parallel (the paper's shape, and the fixed default)"),
    _prim("fanout_chain",
          "chain WAN fan-out: a gateway relay, each cluster forwarding "
          "to the next while its local multicast proceeds"),
    _prim("fanout_binomial",
          "binomial WAN fan-out: recursive halving over the cluster "
          "gateways, ceil(log2 n) rounds of parallel hops"),
    _prim("stripe",
          "k-stream WAN striping of one point-to-point transfer "
          "(MPWide-style): chunks still serialize on the PVC, but "
          "latencies and loss-retransmit timeouts overlap"),
]}
