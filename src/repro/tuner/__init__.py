"""Auto-tuned collectives: calibrate, fit, and install a DecisionModel.

The tuner closes the loop the paper leaves open: instead of hard-wiring
the PB/BB switch at ``BB_THRESHOLD`` and always using the flat WAN
fan-out tree, it *measures* each collective primitive inside the
simulator (optionally under scenario impairments), fits per-primitive
cost lines, and freezes the result into a :class:`DecisionModel` the
Orca runtime and the fabric consult at runtime.  With no model
installed, everything is bit-identical to the fixed strategy.

See docs/TUNING.md for the primitive reference, the cost model, the
``repro tune`` CLI, and the caveats.
"""

from .model import (FAN_OUT_SHAPES, FIXED_STRATEGY, STREAM_CHOICES,
                    ContextModel, DecisionModel, FittedLine, Strategy,
                    crossover, fit_line)
from .primitives import PRIMITIVES, PrimitiveSpec
from .driver import (DEFAULT_CLUSTERS, DEFAULT_SIZES, Probe, fit,
                     format_model, sweep, tune)

__all__ = [
    "FAN_OUT_SHAPES",
    "STREAM_CHOICES",
    "FIXED_STRATEGY",
    "Strategy",
    "FittedLine",
    "ContextModel",
    "DecisionModel",
    "crossover",
    "fit_line",
    "PRIMITIVES",
    "PrimitiveSpec",
    "Probe",
    "sweep",
    "fit",
    "tune",
    "format_model",
    "DEFAULT_SIZES",
    "DEFAULT_CLUSTERS",
]
