"""repro: a reproduction of "Optimizing Parallel Applications for
Wide-Area Clusters" (Bal, Plaat, Bakker, Dozy, Hofman; IPPS 1998).

The package builds the whole stack the paper rests on:

* :mod:`repro.sim` — deterministic discrete-event engine;
* :mod:`repro.network` — the multilevel DAS machine model (Myrinet
  clusters, dedicated gateways, ATM WAN PVCs);
* :mod:`repro.orca` — an Orca-like runtime (shared objects, RPC,
  totally-ordered broadcast with pluggable sequencers);
* :mod:`repro.core` — the wide-area optimization library (the paper's
  contribution): cluster caching, cluster-level reduction, job-queue
  reorganizations, message combining, sequencer migration, chaotic
  relaxation, split-phase latency hiding;
* :mod:`repro.apps` — the eight applications, original + optimized;
* :mod:`repro.harness` / :mod:`repro.metrics` — experiment runners and
  the figure/table registry of the evaluation.
"""

__version__ = "1.0.0"

from . import apps, core, harness, metrics, network, orca, sim  # noqa: F401

__all__ = ["apps", "core", "harness", "metrics", "network", "orca", "sim",
           "__version__"]
