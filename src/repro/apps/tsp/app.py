"""The TSP application: centralized vs static per-cluster job queues.

Original (Section 4.2): master/worker with one shared FIFO job queue on
the manager's machine; with four clusters about 75% of job fetches cross
the WAN.  The current best tour length lives in a replicated object (read
frequently, written rarely — here never, because the bound is fixed).

Optimized: the master divides the jobs statically over one queue per
cluster; fetches become intracluster RPCs at the cost of load imbalance.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from ...core import DONE, fifo_queue_spec, partition_static
from ...orca import Context, ObjectSpec, Operation, OrcaRuntime
from ..base import Application, KERNEL_REAL
from . import problem
from .problem import JOB_BYTES, TSPParams

__all__ = ["TSPApp"]

#: CPU cost for the master to generate one job.
JOB_GEN_COST = 2e-5
#: jobs shipped per put_many chunk (lets workers start early).
CHUNK = 32


def _min_object_spec() -> ObjectSpec:
    def read(state):
        return state["len"]

    def update(state, length, tour):
        if length < state["len"]:
            state["len"] = length
            state["tour"] = tour

    return ObjectSpec(
        "tsp.min", lambda: {"len": None, "tour": None},
        {"read": Operation(fn=read, arg_bytes=1, result_bytes=8),
         "update": Operation(fn=update, writes=True, arg_bytes=80)},
        replicated=True)


class TSPApp(Application):
    """Branch-and-bound traveling salesman on the multilevel cluster."""

    name = "tsp"

    def register(self, rts: OrcaRuntime, params: TSPParams,
                 variant: str) -> Dict[str, Any]:
        dist = problem.distance_matrix(params)
        bound, opt = problem.optimal_tour(dist) if params.kernel == KERNEL_REAL \
            else (None, None)
        jobs = problem.generate_jobs(params)
        shared: Dict[str, Any] = {
            "dist": dist,
            "bound": bound,
            "optimal": opt,
            "jobs": jobs,
            "found": [],            # (length, tour) found by workers
            "jobs_done": [0] * rts.topo.n_nodes,
            "nodes_expanded": 0,
        }
        spec = _min_object_spec()
        spec.state_factory = lambda: {"len": bound, "tour": None}
        rts.register(spec)
        if variant == "original":
            rts.register(fifo_queue_spec("tsp.q0", owner=0,
                                         job_bytes=JOB_BYTES))
            shared["queues"] = {0: "tsp.q0"}
        else:
            shared["queues"] = {}
            for c in range(rts.topo.n_clusters):
                owner = rts.topo.nodes_in(c)[0]
                qname = f"tsp.q{c}"
                rts.register(fifo_queue_spec(qname, owner=owner,
                                             job_bytes=JOB_BYTES))
                shared["queues"][c] = qname
        return shared

    # ------------------------------------------------------------- master

    def _master(self, ctx: Context, params: TSPParams, variant: str,
                shared: Dict[str, Any]) -> Generator:
        jobs: List[Tuple[int, ...]] = shared["jobs"]
        if variant == "original":
            qname = shared["queues"][0]
            for i in range(0, len(jobs), CHUNK):
                chunk = jobs[i:i + CHUNK]
                yield from ctx.compute(JOB_GEN_COST * len(chunk))
                yield from ctx.invoke(qname, "put_many", chunk)
            yield from ctx.invoke(qname, "close")
            return
        # Static distribution: one feeder per cluster queue, running
        # concurrently so a WAN round trip to one cluster does not delay
        # the others' work.
        parts = partition_static(jobs, ctx.topo.n_clusters)

        def feeder(c, part):
            qname = shared["queues"][c]
            for i in range(0, len(part), CHUNK):
                chunk = part[i:i + CHUNK]
                yield from ctx.compute(JOB_GEN_COST * len(chunk))
                yield from ctx.invoke(qname, "put_many", chunk)
            yield from ctx.invoke(qname, "close")

        feeders = [ctx.sim.spawn(feeder(c, part), name=f"tspfeed{c}")
                   for c, part in enumerate(parts)]
        yield ctx.sim.all_of(feeders)

    # ------------------------------------------------------------- worker

    def process(self, ctx: Context, params: TSPParams, variant: str,
                shared: Dict[str, Any]) -> Generator:
        master = None
        if ctx.node == 0:
            master = ctx.sim.spawn(
                self._master(ctx, params, variant, shared), name="tspmaster")
        qname = (shared["queues"][0] if variant == "original"
                 else shared["queues"][ctx.cluster])
        real = params.kernel == KERNEL_REAL
        dist = shared["dist"]

        while True:
            job = yield from ctx.invoke(qname, "get")
            if job == DONE:
                break
            bound = yield from ctx.invoke("tsp.min", "read")
            if real:
                best_len, tour, nodes = problem.search_job(dist, job, bound)
                if tour is not None:
                    shared["found"].append((best_len, tour))
                    if best_len < bound:
                        yield from ctx.invoke("tsp.min", "update",
                                              best_len, tour)
            else:
                nodes = problem.synthetic_job_nodes(params, job)
            yield from ctx.compute(nodes * params.node_cost)
            shared["nodes_expanded"] += nodes
            shared["jobs_done"][ctx.node] += 1

        if master is not None:
            yield master
        return None

    # ------------------------------------------------------------ results

    def finalize(self, rts: OrcaRuntime, params: TSPParams, variant: str,
                 shared: Dict[str, Any]) -> Any:
        if params.kernel != KERNEL_REAL:
            return None
        if not shared["found"]:
            return None
        return min(shared["found"], key=lambda lt: lt[0])

    def stats(self, rts: OrcaRuntime, params: TSPParams, variant: str,
              shared: Dict[str, Any]) -> Dict[str, Any]:
        done = shared["jobs_done"]
        return {
            "jobs": sum(done),
            "nodes_expanded": shared["nodes_expanded"],
            "max_jobs_per_node": max(done),
            "min_jobs_per_node": min(done),
        }
