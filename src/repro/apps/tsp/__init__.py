"""TSP: branch-and-bound with a dynamic-load-balancing job queue."""

from .app import TSPApp
from .problem import TSPParams

__all__ = ["TSPApp", "TSPParams"]
