"""TSP domain: distance matrices, branch-and-bound search, job generation.

The paper's TSP computes the shortest tour from a start city through all
others with branch-and-bound; the master generates jobs (initial paths of
fixed depth) and the global bound is *fixed in advance* to keep runs
deterministic (Section 4.2).  We fix the bound at the optimal tour length,
so pruning behaves identically in every configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ...sim.rng import derive_seed, substream

__all__ = ["TSPParams", "distance_matrix", "generate_jobs", "search_job",
           "optimal_tour", "synthetic_job_nodes", "JOB_BYTES"]

#: wire size of one job (a short city prefix plus bookkeeping).
JOB_BYTES = 32


@dataclass(frozen=True)
class TSPParams:
    n_cities: int = 17
    job_depth: int = 3          # master expands prefixes of this length
    seed: int = 7
    #: seconds of CPU per search-tree node (calibrated Pentium Pro grain).
    node_cost: float = 2.0e-6
    kernel: str = "synthetic"
    #: synthetic subtree-size distribution (lognormal, heavy tailed).
    synth_mean_nodes: float = 2000.0
    synth_sigma: float = 0.6

    @staticmethod
    def paper() -> "TSPParams":
        """Section 4.2: a 17-city problem."""
        return TSPParams()

    @staticmethod
    def small(n_cities: int = 9, job_depth: int = 2) -> "TSPParams":
        return TSPParams(n_cities=n_cities, job_depth=job_depth,
                         kernel="real")

    def with_(self, **kw) -> "TSPParams":
        return replace(self, **kw)


def distance_matrix(params: TSPParams) -> np.ndarray:
    """Symmetric integer distances in [1, 100], zero diagonal."""
    rng = substream(params.seed, "tsp.dist")
    n = params.n_cities
    d = rng.integers(1, 101, size=(n, n))
    d = np.triu(d, 1)
    d = d + d.T
    return d.astype(np.int64)


def generate_jobs(params: TSPParams) -> List[Tuple[int, ...]]:
    """All city prefixes of length ``job_depth + 1`` starting at city 0."""
    n = params.n_cities
    depth = params.job_depth
    jobs: List[Tuple[int, ...]] = []

    def extend(prefix: Tuple[int, ...]):
        if len(prefix) == depth + 1:
            jobs.append(prefix)
            return
        for city in range(1, n):
            if city not in prefix:
                extend(prefix + (city,))

    extend((0,))
    return jobs


def _prefix_length(dist: np.ndarray, prefix: Tuple[int, ...]) -> int:
    return int(sum(dist[prefix[i], prefix[i + 1]]
                   for i in range(len(prefix) - 1)))


def search_job(dist: np.ndarray, prefix: Tuple[int, ...],
               bound: int) -> Tuple[int, Optional[Tuple[int, ...]], int]:
    """Depth-first branch-and-bound below ``prefix`` with a fixed bound.

    Returns ``(best_length, best_tour, nodes_expanded)`` where tours not
    strictly shorter than ``bound`` are pruned except exact matches, so the
    optimum is always recoverable when ``bound`` equals it.
    """
    n = dist.shape[0]
    best_len = bound
    best_tour: Optional[Tuple[int, ...]] = None
    nodes = 0
    visited = set(prefix)
    path = list(prefix)
    start_len = _prefix_length(dist, prefix)

    def dfs(length: int):
        nonlocal best_len, best_tour, nodes
        nodes += 1
        if length > best_len:
            return  # prune: already longer than the bound
        if len(path) == n:
            total = length + dist[path[-1], path[0]]
            if total <= best_len:
                best_len = int(total)
                best_tour = tuple(path)
            return
        last = path[-1]
        for city in range(1, n):
            if city in visited:
                continue
            visited.add(city)
            path.append(city)
            dfs(length + dist[last, city])
            path.pop()
            visited.discard(city)

    dfs(start_len)
    return best_len, best_tour, nodes


def optimal_tour(dist: np.ndarray) -> Tuple[int, Tuple[int, ...]]:
    """Exact optimum by branch-and-bound with a dynamic bound (reference)."""
    n = dist.shape[0]
    best_len = int(dist[0].sum() + dist[:, 0].sum())  # loose initial bound
    # Nearest-neighbour warm start tightens the bound considerably.
    tour = [0]
    unvisited = set(range(1, n))
    while unvisited:
        last = tour[-1]
        nxt = min(unvisited, key=lambda c: dist[last, c])
        tour.append(nxt)
        unvisited.discard(nxt)
    best_len = min(best_len, _prefix_length(dist, tuple(tour))
                   + int(dist[tour[-1], 0]))
    best_tour = tuple(tour)

    path = [0]
    visited = {0}

    def dfs(length: int):
        nonlocal best_len, best_tour
        if length >= best_len:
            return
        if len(path) == n:
            total = length + dist[path[-1], 0]
            if total < best_len:
                best_len = int(total)
                best_tour = tuple(path)
            return
        last = path[-1]
        order = sorted((c for c in range(1, n) if c not in visited),
                       key=lambda c: dist[last, c])
        for city in order:
            visited.add(city)
            path.append(city)
            dfs(length + dist[last, city])
            path.pop()
            visited.discard(city)

    dfs(0)
    return best_len, best_tour


def synthetic_job_nodes(params: TSPParams, prefix: Tuple[int, ...]) -> int:
    """Deterministic heavy-tailed subtree size for the synthetic kernel.

    Keyed by the job prefix so every variant/configuration sees the same
    per-job cost."""
    rng = substream(params.seed, f"tsp.job.{prefix}")
    mu = np.log(params.synth_mean_nodes) - params.synth_sigma ** 2 / 2
    return max(1, int(rng.lognormal(mu, params.synth_sigma)))
