"""Shared data-partitioning helpers for the row/block-parallel programs."""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["block_slices", "owner_of_index"]


def block_slices(n: int, p: int) -> List[Tuple[int, int]]:
    """Contiguous (start, stop) split of ``n`` items over ``p`` blocks.

    The first ``n % p`` blocks get one extra item, matching the row-wise
    distribution the paper's data-parallel programs use.
    """
    if p < 1 or n < 0:
        raise ValueError(f"invalid partition: n={n}, p={p}")
    base, extra = divmod(n, p)
    out = []
    start = 0
    for i in range(p):
        m = base + (1 if i < extra else 0)
        out.append((start, start + m))
        start += m
    return out


def owner_of_index(slices: List[Tuple[int, int]], idx: int) -> int:
    """The block owning global index ``idx``."""
    for b, (lo, hi) in enumerate(slices):
        if lo <= idx < hi:
            return b
    raise ValueError(f"index {idx} outside all slices")
