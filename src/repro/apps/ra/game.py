"""RA domain: retrograde analysis of a game database.

The paper enumerates a 12-stone Awari end-game database.  We do not have
Awari's 1.3M-position state space to spare in pure Python, so the
substitution (documented in DESIGN.md) is a deterministic random game DAG
with the same structure: positions with forward edges to successors,
terminal positions of known value, and values computed *backwards* —
a position is a WIN if any successor is a LOSS for the opponent, a LOSS
once all successors are WINs.  The parallel program partitions positions
round-robin and streams tiny asynchronous update messages to the owners
of predecessor positions — exactly RA's irregular fine-grain pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

import numpy as np

from ...sim.rng import substream

__all__ = ["RAParams", "GameGraph", "build_game", "sequential_reference",
           "UNDETERMINED", "WIN", "LOSS", "UPDATE_BYTES"]

UNDETERMINED, WIN, LOSS = 0, 1, 2
#: one (position, value) update on the wire.
UPDATE_BYTES = 8


@dataclass(frozen=True)
class RAParams:
    n_positions: int = 20000
    max_branch: int = 4
    span: int = 200
    terminal_prob: float = 0.04
    seed: int = 17
    #: seconds per database update (hash + table write on the PPro).
    update_cost: float = 12e-6
    #: per-destination batch size already used by the single-cluster
    #: program (the SC'95 node-level message combining).
    node_batch: int = 16
    #: cluster-level combiner flush policy (the optimized variant).
    combine_max_messages: int = 64
    combine_max_bytes: int = 16 * 1024
    combine_max_delay: float = 2e-3
    kernel: str = "real"  # the real kernel *is* the scaled substitution

    @staticmethod
    def paper() -> "RAParams":
        """Scaled stand-in for the 12-stone Awari database."""
        return RAParams()

    @staticmethod
    def small(n_positions: int = 600) -> "RAParams":
        return RAParams(n_positions=n_positions, span=24)

    def with_(self, **kw) -> "RAParams":
        return replace(self, **kw)


@dataclass
class GameGraph:
    n: int
    succs: List[np.ndarray]        # forward edges (to higher indices)
    preds: List[List[int]]         # reverse adjacency

    def n_edges(self) -> int:
        return sum(len(s) for s in self.succs)


_GAME_CACHE: Dict[RAParams, GameGraph] = {}
_GAME_CACHE_MAX = 4


def build_game(params: RAParams) -> GameGraph:
    """Deterministic forward DAG: succ(v) in (v, v+span].

    The graph is a pure function of the (frozen, hashable) params and
    is never mutated by a run — values live in separate tables — so it
    is memoized: every PDES partition worker, sweep repeat and bench
    iteration over the same point reuses one build.
    """
    cached = _GAME_CACHE.get(params)
    if cached is not None:
        return cached
    rng = substream(params.seed, "ra.game")
    n = params.n_positions
    succs: List[np.ndarray] = []
    preds: List[List[int]] = [[] for _ in range(n)]
    for v in range(n):
        room = n - 1 - v
        if room == 0 or rng.random() < params.terminal_prob:
            succs.append(np.empty(0, dtype=np.int64))
            continue
        k = int(rng.integers(1, params.max_branch + 1))
        hi = min(params.span, room)
        offsets = np.unique(rng.integers(1, hi + 1, size=k))
        s = v + offsets
        succs.append(s)
        for w in s:
            preds[int(w)].append(v)
    if len(_GAME_CACHE) >= _GAME_CACHE_MAX:
        _GAME_CACHE.clear()
    g = _GAME_CACHE[params] = GameGraph(n, succs, preds)
    return g


def sequential_reference(params: RAParams) -> np.ndarray:
    """Backward-induction values (edges point forward, so one sweep)."""
    g = build_game(params)
    values = np.zeros(g.n, dtype=np.int8)
    for v in range(g.n - 1, -1, -1):
        s = g.succs[v]
        if len(s) == 0:
            values[v] = LOSS
        elif (values[s] == LOSS).any():
            values[v] = WIN
        else:
            values[v] = LOSS
    return values
