"""The RA application: fine-grain async updates, combined per cluster.

Original (Section 4.5): positions are divided round-robin; whenever a
position's value is determined, small update messages stream to the
owners of its predecessors.  The single-cluster program already batches
per destination *node* (the SC'95 message-combining optimization); on the
wide-area system the traffic is still far too fine-grained.

Optimized: additionally combine intercluster messages at the cluster
level — a designated machine per cluster accumulates outgoing updates and
occasionally ships one large message per destination cluster.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Generator, List, Tuple

from ...core import ClusterCombiner, CombinerConfig
from ...orca import Context, OrcaRuntime
from ..base import Application
from . import game
from .game import LOSS, RAParams, UNDETERMINED, UPDATE_BYTES, WIN

__all__ = ["RAApp"]

RA_PORT = "ra.updates"


class RAApp(Application):
    """Retrograde analysis of a game database."""

    name = "ra"
    #: Updates travel as plain (combined) sends between owners — no
    #: broadcasts, so per-cluster partitioning works.
    pdes_capable = True

    def register(self, rts: OrcaRuntime, params: RAParams,
                 variant: str) -> Dict[str, Any]:
        g = game.build_game(params)
        shared: Dict[str, Any] = {
            "game": g,
            "values": {},        # position -> WIN/LOSS, filled by owners
            "determined": [0] * rts.topo.n_nodes,
            "messages": 0,
        }
        if variant == "optimized":
            shared["combiner"] = ClusterCombiner(
                rts, CombinerConfig(max_messages=params.combine_max_messages,
                                    max_bytes=params.combine_max_bytes,
                                    max_delay=params.combine_max_delay))
        return shared

    def process(self, ctx: Context, params: RAParams, variant: str,
                shared: Dict[str, Any]) -> Generator:
        me = ctx.node
        p = ctx.topo.n_nodes
        g: game.GameGraph = shared["game"]
        combiner = shared.get("combiner")

        mine = list(range(me, g.n, p))
        mine_count = len(mine)
        counters: Dict[int, int] = {}
        values: Dict[int, int] = {}
        pending: deque = deque()
        out_buf: Dict[int, List[Tuple[int, int]]] = {}
        determined = 0

        def determine(v: int, value: int) -> None:
            nonlocal determined
            values[v] = value
            shared["values"][v] = value
            determined += 1
            pending.append((v, value))

        # Terminal positions of our partition are LOSS for the mover.
        for v in mine:
            if len(g.succs[v]) == 0:
                determine(v, LOSS)
            else:
                counters[v] = len(g.succs[v])

        def apply_update(v: int, succ_value: int) -> None:
            """A successor of our position v got ``succ_value``."""
            if values.get(v, UNDETERMINED) != UNDETERMINED:
                return
            if succ_value == LOSS:
                determine(v, WIN)
                return
            counters[v] -= 1
            if counters[v] == 0:
                determine(v, LOSS)

        def flush(owner: int) -> Generator:
            batch = out_buf.pop(owner, None)
            if not batch:
                return
            shared["messages"] += len(batch)
            size = UPDATE_BYTES * len(batch)
            if combiner is not None:
                yield from combiner.send(ctx, owner, size, payload=batch,
                                         port=RA_PORT)
            else:
                yield from ctx.send(owner, size, payload=batch, port=RA_PORT)

        while True:
            # Drain local work first.
            while pending:
                v, value = pending.popleft()
                for pred in g.preds[v]:
                    owner = pred % p
                    yield from ctx.compute(params.update_cost)
                    if owner == me:
                        apply_update(pred, value)
                    else:
                        out_buf.setdefault(owner, []).append((pred, value))
                        if len(out_buf[owner]) >= params.node_batch:
                            yield from flush(owner)
            # Nothing local: push out partial batches so peers can proceed.
            for owner in list(out_buf):
                yield from flush(owner)
            if determined >= mine_count:
                break
            # Block for incoming updates.
            msg = yield from ctx.receive(port=RA_PORT)
            for v, value in msg.payload:
                yield from ctx.compute(params.update_cost)
                apply_update(v, value)

        shared["determined"][me] = determined
        return None

    def finalize(self, rts: OrcaRuntime, params: RAParams, variant: str,
                 shared: Dict[str, Any]) -> Any:
        values = shared["values"]
        n = shared["game"].n
        wins = sum(1 for v in values.values() if v == WIN)
        return {"n": n, "determined": len(values), "wins": wins,
                "losses": len(values) - wins}

    def stats(self, rts: OrcaRuntime, params: RAParams, variant: str,
              shared: Dict[str, Any]) -> Dict[str, Any]:
        return {"updates_sent": shared["messages"]}

    def pdes_shared_payload(self, shared, params: RAParams,
                            variant: str) -> Dict[str, Any]:
        # The combiner holds runtime references (sim, fabric) and is
        # finished by merge time; everything else pickles fine.
        return {k: v for k, v in shared.items() if k != "combiner"}

    def pdes_merge_shared(self, parts, params: RAParams,
                          variant: str) -> Dict[str, Any]:
        # "values" keys are owner-disjoint; "determined" slots are
        # written only by their own node; "messages" accumulates per
        # partition.  The game graph is seed-identical everywhere.
        merged = {"game": parts[0]["game"], "values": {},
                  "determined": [0] * len(parts[0]["determined"]),
                  "messages": 0}
        for part in parts:
            merged["values"].update(part["values"])
            merged["messages"] += part["messages"]
            for i, d in enumerate(part["determined"]):
                if d:
                    merged["determined"][i] = d
        return merged
