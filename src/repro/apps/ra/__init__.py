"""RA: retrograde analysis (irregular asynchronous message passing)."""

from .app import RAApp
from .game import RAParams

__all__ = ["RAApp", "RAParams"]
