"""Application framework.

Every paper application is a subclass of :class:`Application` with (at
least) two *variants*: ``original`` (as designed for a single cluster) and
``optimized`` (restructured for the wide-area system).  An application

* registers its shared objects and core-library services in
  :meth:`register`,
* contributes one :meth:`process` generator per compute node,
* reports its answer and app-specific statistics in :meth:`finalize`.

Problem parameters are small frozen dataclasses with two constructors:
``paper()`` (the sizes of Section 3/4, used by the benchmarks, usually
with the ``synthetic`` kernel) and ``small()`` (test-sized, ``real``
kernel, validated against a sequential reference).

Kernel modes: with ``kernel="real"`` the numeric inner loops actually run
(results are checked against sequential references in the tests); with
``kernel="synthetic"`` the inner loop is replaced by its operation-count
cost charge while every message keeps its true size and path.  Both modes
share all communication code, so the *performance* model is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from ..orca import Context, OrcaRuntime

__all__ = ["Application", "AppResult", "KERNEL_REAL", "KERNEL_SYNTHETIC"]

KERNEL_REAL = "real"
KERNEL_SYNTHETIC = "synthetic"

VARIANT_ORIGINAL = "original"
VARIANT_OPTIMIZED = "optimized"


@dataclass
class AppResult:
    """Outcome of one experiment run."""

    app: str
    variant: str
    n_clusters: int
    nodes_per_cluster: int
    elapsed: float                 # virtual seconds, start -> last worker done
    answer: Any                    # app-specific result payload
    stats: Dict[str, Any] = field(default_factory=dict)
    traffic: Dict[str, Dict[str, int]] = field(default_factory=dict)
    utilization: Any = None        # UtilizationReport when requested
    trace_records: Any = None      # List[TraceRecord] when the run was
                                   # traced through the sweep harness
    sim_stats: Any = None          # Simulator.stats() snapshot (event,
                                   # spawn, fast-path/fallback counters)

    @property
    def n_nodes(self) -> int:
        return self.n_clusters * self.nodes_per_cluster


class Application:
    """Base class; subclasses implement the paper's eight programs."""

    #: short identifier ("water", "tsp", ...)
    name: str = "base"
    #: variants this app supports.
    variants = (VARIANT_ORIGINAL, VARIANT_OPTIMIZED)
    #: sequencer protocol used by default for each variant; apps that
    #: optimize the broadcast layer override the optimized entry (ASP).
    sequencers: Dict[str, str] = {
        VARIANT_ORIGINAL: "distributed",
        VARIANT_OPTIMIZED: "distributed",
    }

    #: Whether the app is eligible for partitioned (PDES) execution:
    #: True only for pure message-passing/RPC apps — no totally-ordered
    #: broadcasts and no sequencer traffic, the two control flows whose
    #: cross-cluster fan-out the per-cluster partitioning cannot cut
    #: (see docs/ARCHITECTURE.md).  Capable apps also implement
    #: :meth:`pdes_merge_shared`.
    pdes_capable: bool = False

    def check_variant(self, variant: str) -> None:
        if variant not in self.variants:
            raise ValueError(
                f"{self.name}: unknown variant {variant!r}; "
                f"supported: {self.variants}")

    def sequencer_for(self, variant: str) -> str:
        return self.sequencers.get(variant, "distributed")

    # -- to be implemented by subclasses ------------------------------------

    def register(self, rts: OrcaRuntime, params: Any, variant: str) -> Any:
        """Create shared objects/services; returns opaque shared state."""
        raise NotImplementedError

    def process(self, ctx: Context, params: Any, variant: str,
                shared: Any) -> Generator:
        """The per-node worker (a simulation process generator)."""
        raise NotImplementedError

    def finalize(self, rts: OrcaRuntime, params: Any, variant: str,
                 shared: Any) -> Any:
        """Extract the answer after all workers completed."""
        return None

    def stats(self, rts: OrcaRuntime, params: Any, variant: str,
              shared: Any) -> Dict[str, Any]:
        """App-specific counters to attach to the result."""
        return {}

    def pdes_shared_payload(self, shared: Any, params: Any,
                            variant: str) -> Any:
        """Reduce per-partition ``shared`` to what ships back (pickled).

        Partition workers send their ``shared`` over a pipe; service
        objects holding runtime references (combiners, queues) cannot
        pickle and are not needed for the merge — capable apps override
        this to drop them.  The default ships everything.
        """
        return shared

    def pdes_merge_shared(self, parts: List[Any], params: Any,
                          variant: str) -> Any:
        """Merge per-partition ``shared`` states into one whole-run state.

        A PDES run calls :meth:`register` once *per partition* (each
        worker rebuilds the full stack), and every worker's node
        processes mutate only their partition's copy.  This hook folds
        the copies back into the single ``shared`` that
        :meth:`finalize`/:meth:`stats` expect.  Only apps with
        ``pdes_capable = True`` need it.
        """
        raise NotImplementedError(
            f"{self.name}: pdes_capable without pdes_merge_shared")
