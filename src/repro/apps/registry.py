"""Registry of the paper's eight applications with their paper-scale and
test-scale parameter sets."""

from __future__ import annotations

from typing import Any, Dict, Tuple

from .acp import ACPApp, ACPParams
from .asp import ASPApp, ASPParams
from .atpg import ATPGApp, ATPGParams
from .base import Application
from .ida import IDAApp, IDAParams
from .ra import RAApp, RAParams
from .sor import SORApp, SORParams
from .tsp import TSPApp, TSPParams
from .water import WaterApp, WaterParams

__all__ = ["ALL_APPS", "make_app", "paper_params", "small_params",
           "PAPER_ORDER"]

#: the paper's presentation order (Table 2).
PAPER_ORDER = ["water", "tsp", "asp", "atpg", "ida", "ra", "acp", "sor"]

ALL_APPS: Dict[str, Tuple[type, type]] = {
    "water": (WaterApp, WaterParams),
    "tsp": (TSPApp, TSPParams),
    "asp": (ASPApp, ASPParams),
    "atpg": (ATPGApp, ATPGParams),
    "ida": (IDAApp, IDAParams),
    "ra": (RAApp, RAParams),
    "acp": (ACPApp, ACPParams),
    "sor": (SORApp, SORParams),
}


def make_app(name: str) -> Application:
    """Instantiate one of the eight paper applications by name."""
    try:
        cls, _ = ALL_APPS[name]
    except KeyError:
        raise ValueError(f"unknown application {name!r}; "
                         f"choose from {sorted(ALL_APPS)}") from None
    return cls()


def paper_params(name: str) -> Any:
    """The paper's problem sizes for ``name`` (Sections 3/4)."""
    _, params_cls = ALL_APPS[name]
    return params_cls.paper()


def small_params(name: str) -> Any:
    """Test-sized parameters with the real (verifiable) kernel."""
    _, params_cls = ALL_APPS[name]
    return params_cls.small()
