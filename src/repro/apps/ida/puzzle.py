"""IDA* domain: the 15-puzzle and iterative-deepening A* search.

The paper parallelizes IDA* over the subtrees below a shallow frontier:
the root position is expanded to a fixed depth, the resulting jobs are
divided over per-processor queues, and idle processors steal jobs.  Each
iteration searches to a fixed cost bound and — to stay deterministic —
finds *all* solutions at that bound before the bound is increased.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ...sim.rng import substream

__all__ = ["IDAParams", "PuzzleState", "scrambled", "manhattan", "expand",
           "dfs_count", "generate_jobs", "sequential_reference",
           "synthetic_job_nodes", "JOB_BYTES"]

#: 4x4 board plus bookkeeping on the wire.
JOB_BYTES = 72

GOAL = tuple(range(1, 16)) + (0,)
#: legal moves of the blank per position (4x4 grid adjacency).
NEIGHBORS: List[Tuple[int, ...]] = []
for pos in range(16):
    r, c = divmod(pos, 4)
    adj = []
    if r > 0:
        adj.append(pos - 4)
    if r < 3:
        adj.append(pos + 4)
    if c > 0:
        adj.append(pos - 1)
    if c < 3:
        adj.append(pos + 1)
    NEIGHBORS.append(tuple(adj))

PuzzleState = Tuple[int, ...]


@dataclass(frozen=True)
class IDAParams:
    scramble_moves: int = 14
    frontier_depth: int = 3
    seed: int = 3
    #: seconds per search-tree node (move gen + heuristic on a ~200 MHz PPro).
    node_cost: float = 8e-6
    kernel: str = "synthetic"
    # Synthetic search-tree model: per-iteration growth and job-size spread.
    synth_iterations: int = 4
    synth_jobs: int = 512
    synth_base_nodes: float = 400.0
    synth_growth: float = 5.0
    synth_sigma: float = 0.6
    #: a worker asks this many victims in turn before declaring itself idle.
    max_steal_attempts: int = 8

    @staticmethod
    def paper() -> "IDAParams":
        return IDAParams()

    @staticmethod
    def small(scramble_moves: int = 12) -> "IDAParams":
        return IDAParams(scramble_moves=scramble_moves, frontier_depth=2,
                         kernel="real")

    def with_(self, **kw) -> "IDAParams":
        return replace(self, **kw)


def scrambled(params: IDAParams) -> PuzzleState:
    """A solvable instance: random-walk ``scramble_moves`` from the goal."""
    rng = substream(params.seed, "ida.scramble")
    state = list(GOAL)
    blank = 15
    prev = -1
    for _ in range(params.scramble_moves):
        options = [n for n in NEIGHBORS[blank] if n != prev]
        nxt = int(options[int(rng.integers(0, len(options)))])
        state[blank], state[nxt] = state[nxt], state[blank]
        prev, blank = blank, nxt
    return tuple(state)


def manhattan(state: PuzzleState) -> int:
    """Sum of tile Manhattan distances to their goal squares."""
    total = 0
    for pos, tile in enumerate(state):
        if tile == 0:
            continue
        goal = tile - 1
        total += abs(pos // 4 - goal // 4) + abs(pos % 4 - goal % 4)
    return total


def expand(state: PuzzleState, last_blank: int
           ) -> List[Tuple[PuzzleState, int]]:
    """Children of ``state`` (skipping the move that undoes the last one).

    Returns ``(child, old_blank)`` pairs; ``old_blank`` is where the blank
    was, i.e. the child's "don't go back" square.
    """
    blank = state.index(0)
    out = []
    for nxt in NEIGHBORS[blank]:
        if nxt == last_blank:
            continue
        child = list(state)
        child[blank], child[nxt] = child[nxt], child[blank]
        out.append((tuple(child), blank))
    return out


def dfs_count(state: PuzzleState, g: int, last_blank: int,
              bound: int) -> Tuple[int, int]:
    """Depth-first search below ``state`` with cost bound ``bound``.

    Returns ``(nodes_expanded, solutions_found)`` where a solution is a
    path reaching the goal with f = g exactly at most ``bound``.
    """
    h = manhattan(state)
    if g + h > bound:
        return 1, 0
    if state == GOAL:
        return 1, 1
    nodes = 1
    solutions = 0
    for child, old_blank in expand(state, last_blank):
        n, s = dfs_count(child, g + 1, old_blank, bound)
        nodes += n
        solutions += s
    return nodes, solutions


def generate_jobs(params: IDAParams
                  ) -> Tuple[PuzzleState, List[Tuple[PuzzleState, int, int]]]:
    """Expand the root to ``frontier_depth``; jobs are (state, g, last_blank)."""
    root = scrambled(params)
    frontier: List[Tuple[PuzzleState, int, int]] = [(root, 0, -1)]
    for _ in range(params.frontier_depth):
        nxt: List[Tuple[PuzzleState, int, int]] = []
        for state, g, last in frontier:
            if state == GOAL:
                nxt.append((state, g, last))  # keep trivial solutions
                continue
            for child, old_blank in expand(state, last):
                nxt.append((child, g + 1, old_blank))
        frontier = nxt
    return root, frontier


def bounds_sequence(root: PuzzleState, max_bound: int = 80) -> List[int]:
    """IDA* bound schedule: h(root), h+2, h+4, ... (15-puzzle parity)."""
    h = manhattan(root)
    return list(range(h, max_bound + 1, 2))


def sequential_reference(params: IDAParams) -> Tuple[int, int, int]:
    """(optimal bound, #solutions at that bound, total nodes over all
    iterations) — the deterministic quantities the parallel runs must match."""
    root, jobs = generate_jobs(params)
    total_nodes = 0
    for bound in bounds_sequence(root):
        nodes = 0
        solutions = 0
        for state, g, last in jobs:
            n, s = dfs_count(state, g, last, bound)
            nodes += n
            solutions += s
        total_nodes += nodes
        if solutions > 0:
            return bound, solutions, total_nodes
    raise RuntimeError("no solution within the bound schedule")


def synthetic_job_nodes(params: IDAParams, job_index: int,
                        iteration: int) -> int:
    """Deterministic per-(job, iteration) subtree size for the synthetic
    kernel: heavy-tailed across jobs, growing geometrically per iteration."""
    rng = substream(params.seed, f"ida.job.{job_index}.{iteration}")
    mu = np.log(params.synth_base_nodes) - params.synth_sigma ** 2 / 2
    base = rng.lognormal(mu, params.synth_sigma)
    return max(1, int(base * params.synth_growth ** iteration))
