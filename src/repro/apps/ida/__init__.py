"""IDA*: iterative deepening A* search with work stealing."""

from .app import IDAApp
from .puzzle import IDAParams

__all__ = ["IDAApp", "IDAParams"]
