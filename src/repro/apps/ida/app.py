"""The IDA* application: distributed work stealing on the multilevel cluster.

Original (Section 4.6): per-processor job queues; an idle worker asks a
fixed power-of-two-offset victim sequence for work, which makes the
highest-numbered processes of a cluster start stealing *remotely* first.
Idle/active transitions are broadcast for termination detection.

Optimized: (1) steal from the own cluster first, and (2) the "remember
empty" heuristic — skip victims known (from the termination-detection
broadcasts) to be idle.  As in the paper, this halves the intercluster
steal requests but barely moves the speedup, because the load balance is
already good.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ...core import cluster_first_order, power_of_two_order
from ...orca import Blocked, Context, ObjectSpec, Operation, OrcaRuntime
from ..base import Application, KERNEL_REAL
from . import puzzle
from .puzzle import IDAParams, JOB_BYTES

__all__ = ["IDAApp"]


def _queue_spec(k: int) -> ObjectSpec:
    """Per-processor job queue; ``steal`` takes from the tail, never blocks."""

    def push_many(state, jobs):
        state.extend(jobs)

    def pop(state):
        if state:
            return state.pop(0)
        return None

    def steal(state):
        if state:
            return state.pop()
        return None

    return ObjectSpec(
        f"ida.q{k}", list,
        {
            "push_many": Operation(fn=push_many, writes=True,
                                   arg_bytes=lambda jobs: JOB_BYTES * len(jobs)),
            "pop": Operation(fn=pop, writes=True, arg_bytes=4,
                             result_bytes=JOB_BYTES),
            "steal": Operation(fn=steal, writes=True, arg_bytes=4,
                               result_bytes=JOB_BYTES),
        },
        owner=k)


def _status_spec(p: int) -> ObjectSpec:
    """Replicated idle/active board driving termination detection."""

    def set_idle(state, node):
        state["idle"][node] = True

    def set_active(state, node):
        state["idle"][node] = False

    def wait_all_idle(state):
        if not all(state["idle"]):
            raise Blocked
        return True

    def idle_set(state):
        return frozenset(i for i, idle in enumerate(state["idle"]) if idle)

    return ObjectSpec(
        "ida.status", lambda: {"idle": [False] * p},
        {
            "set_idle": Operation(fn=set_idle, writes=True, arg_bytes=8),
            "set_active": Operation(fn=set_active, writes=True, arg_bytes=8),
            "wait_all_idle": Operation(fn=wait_all_idle, arg_bytes=1,
                                       result_bytes=1),
            "idle_set": Operation(fn=idle_set, arg_bytes=1, result_bytes=8),
        },
        replicated=True)


class IDAApp(Application):
    """Iterative deepening A* (15-puzzle) with work stealing."""

    name = "ida"

    def register(self, rts: OrcaRuntime, params: IDAParams,
                 variant: str) -> Dict[str, Any]:
        p = rts.topo.n_nodes
        for k in range(p):
            rts.register(_queue_spec(k))
        rts.register(_status_spec(p))
        if params.kernel == KERNEL_REAL:
            root, jobs = puzzle.generate_jobs(params)
            bounds = puzzle.bounds_sequence(root)
        else:
            root = None
            jobs = list(range(params.synth_jobs))  # synthetic job ids
            bounds = list(range(params.synth_iterations))
        # Static round-robin assignment of frontier jobs to processors.
        assignment: List[List[Tuple[int, Any]]] = [[] for _ in range(p)]
        for j, job in enumerate(jobs):
            assignment[j % p].append((j, job))
        return {
            "root": root,
            "bounds": bounds,
            "assignment": assignment,
            "nodes": [0] * p,
            "solutions": 0,
            "final_bound": None,
            "steals": {"local": 0, "remote": 0, "requests": 0},
        }

    # ------------------------------------------------------------- helpers

    def _victim_order(self, ctx: Context, variant: str) -> List[int]:
        p = ctx.topo.n_nodes
        base = power_of_two_order(p, ctx.node)
        if variant == "optimized":
            return cluster_first_order(ctx.topo, ctx.node, base)
        return base

    def _run_job(self, ctx: Context, params: IDAParams, shared: Dict[str, Any],
                 entry: Tuple[int, Any], bound: int,
                 iteration: int) -> Generator:
        j, job = entry
        if params.kernel == KERNEL_REAL:
            state, g, last = job
            nodes, sols = puzzle.dfs_count(state, g, last, bound)
        else:
            nodes = puzzle.synthetic_job_nodes(params, j, iteration)
            sols = 1 if (iteration == len(shared["bounds"]) - 1
                         and j == 0) else 0
        yield from ctx.compute(nodes * params.node_cost)
        shared["nodes"][ctx.node] += nodes
        shared["solutions"] += sols
        return sols

    # -------------------------------------------------------------- worker

    def process(self, ctx: Context, params: IDAParams, variant: str,
                shared: Dict[str, Any]) -> Generator:
        me = ctx.node
        victims = self._victim_order(ctx, variant)
        my_jobs = shared["assignment"][me]
        found_any = False

        for iteration, bound in enumerate(shared["bounds"]):
            if found_any:
                break
            yield from ctx.invoke("ida.status", "set_active", me)
            if my_jobs:
                yield from ctx.invoke(f"ida.q{me}", "push_many",
                                      list(my_jobs))
            while True:
                entry = yield from ctx.invoke(f"ida.q{me}", "pop")
                if entry is None:
                    entry = yield from self._try_steal(ctx, params, variant,
                                                       shared, victims)
                if entry is None:
                    break
                yield from self._run_job(ctx, params, shared, entry, bound,
                                         iteration)
            yield from ctx.invoke("ida.status", "set_idle", me)
            yield from ctx.invoke("ida.status", "wait_all_idle")
            # All processors drained: solutions for this bound are final.
            if shared["solutions"] > 0:
                shared["final_bound"] = bound
                found_any = True
        return None

    def _try_steal(self, ctx: Context, params: IDAParams, variant: str,
                   shared: Dict[str, Any],
                   victims: List[int]) -> Generator:
        candidates = victims
        if variant == "optimized":
            idle = yield from ctx.invoke("ida.status", "idle_set")
            candidates = [v for v in victims if v not in idle]
        for victim in candidates[:params.max_steal_attempts]:
            shared["steals"]["requests"] += 1
            entry = yield from ctx.invoke(f"ida.q{victim}", "steal")
            if entry is not None:
                if ctx.topo.same_cluster(ctx.node, victim):
                    shared["steals"]["local"] += 1
                else:
                    shared["steals"]["remote"] += 1
                return entry
        return None

    # ------------------------------------------------------------ results

    def finalize(self, rts: OrcaRuntime, params: IDAParams, variant: str,
                 shared: Dict[str, Any]) -> Any:
        return (shared["final_bound"], shared["solutions"],
                sum(shared["nodes"]))

    def stats(self, rts: OrcaRuntime, params: IDAParams, variant: str,
              shared: Dict[str, Any]) -> Dict[str, Any]:
        return dict(shared["steals"])
