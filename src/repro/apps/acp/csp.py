"""ACP domain: binary constraint networks and arc revision.

The Arc Consistency Problem prunes variable domains by repeatedly
applying binary constraints until a fixpoint: a value survives only while
it has *support* (a compatible value) in every constraining neighbour's
domain.  Domains are bitmasks; each constraint carries precomputed
support masks, so a revision is a handful of integer operations whose
count the performance model charges.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

import numpy as np

from ...sim.rng import substream

__all__ = ["ACPParams", "Network", "build_network", "revise",
           "sequential_reference", "popcount"]


@dataclass(frozen=True)
class ACPParams:
    n_vars: int = 1500
    domain_size: int = 64
    n_constraints: int = 4500
    tightness: float = 0.45
    seed: int = 23
    #: seconds per support check (scan of the support bitset on the PPro).
    check_cost: float = 4.0e-6
    kernel: str = "real"  # bitmask revision is cheap enough at paper scale

    @staticmethod
    def paper() -> "ACPParams":
        """Section 4.7: a problem with 1,500 variables."""
        return ACPParams()

    @staticmethod
    def small(n_vars: int = 80, n_constraints: int = 240) -> "ACPParams":
        return ACPParams(n_vars=n_vars, n_constraints=n_constraints)

    def with_(self, **kw) -> "ACPParams":
        return replace(self, **kw)

    @property
    def full_domain(self) -> int:
        return (1 << self.domain_size) - 1


@dataclass
class Network:
    """Constraint network with per-arc support masks.

    ``arcs[x]`` lists ``(y, supports)`` pairs constraining variable x;
    ``supports[a]`` is the bitmask of y-values compatible with x=a, so
    value a of x survives while ``supports[a] & dom(y) != 0``.
    """

    n_vars: int
    domain_size: int
    arcs: Dict[int, List[Tuple[int, List[int]]]]
    #: some variables start with restricted domains (the propagation seeds).
    initial_domains: List[int]

    def arcs_of(self, x: int) -> List[Tuple[int, List[int]]]:
        return self.arcs.get(x, [])


def build_network(params: ACPParams) -> Network:
    rng = substream(params.seed, "acp.network")
    n, d = params.n_vars, params.domain_size
    arcs: Dict[int, List[Tuple[int, List[int]]]] = {}
    for _ in range(params.n_constraints):
        x = int(rng.integers(0, n))
        y = int(rng.integers(0, n))
        if x == y:
            continue
        allowed = rng.random((d, d)) >= params.tightness
        # Support masks in both directions (a constraint yields two arcs).
        sup_xy = [int(sum(1 << b for b in range(d) if allowed[a, b]))
                  for a in range(d)]
        sup_yx = [int(sum(1 << a for a in range(d) if allowed[a, b]))
                  for b in range(d)]
        arcs.setdefault(x, []).append((y, sup_xy))
        arcs.setdefault(y, []).append((x, sup_yx))
    domains = [params.full_domain] * n
    # Seed the propagation: clamp a few variables to small domains.
    n_seeds = max(1, n // 20)
    for _ in range(n_seeds):
        v = int(rng.integers(0, n))
        keep = int(rng.integers(1, 4))
        mask = 0
        while popcount(mask) < keep:
            mask |= 1 << int(rng.integers(0, d))
        domains[v] = mask
    return Network(n, d, arcs, domains)


def popcount(mask: int) -> int:
    return bin(mask).count("1")


def revise(dom_x: int, dom_y: int, supports: List[int]) -> Tuple[int, int]:
    """Prune values of x without support in dom(y).

    Returns ``(new_dom_x, checks)`` where checks counts the support tests
    performed (the charged work).
    """
    new = 0
    checks = 0
    mask = dom_x
    while mask:
        a = (mask & -mask).bit_length() - 1
        mask &= mask - 1
        checks += 1
        if supports[a] & dom_y:
            new |= 1 << a
    return new, checks


def sequential_reference(params: ACPParams) -> List[int]:
    """AC fixpoint by round-based sweeps (same schedule as the parallel
    program, so domains match exactly)."""
    net = build_network(params)
    domains = list(net.initial_domains)
    changed = True
    while changed:
        changed = False
        snapshot = list(domains)
        for x in range(net.n_vars):
            for y, supports in net.arcs_of(x):
                new, _ = revise(domains[x], snapshot[y], supports)
                if new != domains[x]:
                    domains[x] = new
                    changed = True
    return domains
