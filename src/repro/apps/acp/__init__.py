"""ACP: arc consistency (irregular broadcast pattern)."""

from .app import ACPApp
from .csp import ACPParams

__all__ = ["ACPApp", "ACPParams"]
