"""The ACP application: irregular broadcasts of domain prunings.

The variables are statically divided over the processors; when a
processor prunes one of its domains it must inform everyone, which the
program does by updating a replicated object — many small broadcasts, a
heavy load for the cluster gateways (Section 4.7).

The paper implements *no* optimization for ACP but suggests asynchronous
broadcasts.  We ship that suggestion as the ``optimized`` variant
(flagged as an extension in EXPERIMENTS.md): writes to the replicated
domain object are issued without waiting for the local apply, so a run
of prunings pipelines through the sequencer.  Total order — and thus the
fixpoint — is unchanged.

Termination: rounds with a broadcast-based report.  Because reports and
prunings share the totally-ordered broadcast channel, a round that
reports zero changes globally is a true fixpoint.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from ...orca import Blocked, Context, ObjectSpec, Operation, OrcaRuntime
from ..base import Application
from ..partition import block_slices
from . import csp
from .csp import ACPParams

__all__ = ["ACPApp"]


def _domains_spec(params: ACPParams) -> ObjectSpec:
    def set_domain(state, x, mask):
        state[x] = mask

    def get_domain(state, x, default):
        return state.get(x, default)

    return ObjectSpec(
        "acp.domains", dict,
        {"set_domain": Operation(fn=set_domain, writes=True, arg_bytes=12),
         "get_domain": Operation(fn=get_domain, arg_bytes=8, result_bytes=4)},
        replicated=True)


def _round_spec(p: int) -> ObjectSpec:
    def report(state, rnd, changes):
        entry = state.setdefault(rnd, [0, 0])
        entry[0] += 1
        entry[1] += changes

    def wait_round(state, rnd, parties):
        entry = state.get(rnd)
        if entry is None or entry[0] < parties:
            raise Blocked
        return entry[1]

    return ObjectSpec(
        "acp.round", dict,
        {"report": Operation(fn=report, writes=True, arg_bytes=12),
         "wait_round": Operation(fn=wait_round, arg_bytes=8, result_bytes=4)},
        replicated=True)


class ACPApp(Application):
    """Arc consistency on the multilevel cluster."""

    name = "acp"

    def register(self, rts: OrcaRuntime, params: ACPParams,
                 variant: str) -> Dict[str, Any]:
        rts.register(_domains_spec(params))
        rts.register(_round_spec(rts.topo.n_nodes))
        net = csp.build_network(params)
        return {
            "net": net,
            "slices": block_slices(params.n_vars, rts.topo.n_nodes),
            "final": {},
            "rounds": 0,
            "prunings": 0,
        }

    def process(self, ctx: Context, params: ACPParams, variant: str,
                shared: Dict[str, Any]) -> Generator:
        net: csp.Network = shared["net"]
        lo, hi = shared["slices"][ctx.node]
        mine = {x: net.initial_domains[x] for x in range(lo, hi)}
        full = params.full_domain
        p = ctx.topo.n_nodes
        asynchronous = variant == "optimized"

        # Publish non-default initial domains so peers see the seeds.
        pending = []
        for x, mask in mine.items():
            if mask != full:
                if asynchronous:
                    pending.append(ctx.invoke_async("acp.domains",
                                                    "set_domain", x, mask))
                else:
                    yield from ctx.invoke("acp.domains", "set_domain", x, mask)

        rnd = 0
        while True:
            changes = 0
            for x in range(lo, hi):
                dom_x = mine[x]
                if dom_x == 0:
                    continue
                for y, supports in net.arcs_of(x):
                    if lo <= y < hi:
                        dom_y = mine[y]
                    else:
                        dom_y = yield from ctx.invoke(
                            "acp.domains", "get_domain", y, full)
                    new, checks = csp.revise(dom_x, dom_y, supports)
                    yield from ctx.compute(checks * params.check_cost)
                    if new != dom_x:
                        dom_x = new
                        changes += 1
                        shared["prunings"] += 1
                        if asynchronous:
                            pending.append(ctx.invoke_async(
                                "acp.domains", "set_domain", x, new))
                        else:
                            yield from ctx.invoke("acp.domains",
                                                  "set_domain", x, new)
                mine[x] = dom_x
            # Round gate: report our change count, wait for everyone's.
            yield from ctx.invoke("acp.round", "report", rnd, changes)
            total = yield from ctx.invoke("acp.round", "wait_round", rnd, p)
            rnd += 1
            if total == 0:
                break
        shared["rounds"] = max(shared["rounds"], rnd)
        shared["final"].update(mine)
        # Flush stragglers so the simulation drains cleanly.
        for ev in pending:
            if not ev.triggered:
                yield ev
        return None

    def finalize(self, rts: OrcaRuntime, params: ACPParams, variant: str,
                 shared: Dict[str, Any]) -> List[int]:
        return [shared["final"][x] for x in range(params.n_vars)]

    def stats(self, rts: OrcaRuntime, params: ACPParams, variant: str,
              shared: Dict[str, Any]) -> Dict[str, Any]:
        return {"rounds": shared["rounds"], "prunings": shared["prunings"]}
