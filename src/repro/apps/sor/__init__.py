"""SOR: red/black successive overrelaxation (nearest-neighbour pattern)."""

from .app import SORApp
from .grid import SORParams

__all__ = ["SORApp", "SORParams"]
