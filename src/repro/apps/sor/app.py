"""The SOR application: nearest-neighbour exchange on the multilevel cluster.

Variants:

* ``original`` — red/black SOR, synchronous boundary exchange before each
  phase.  Processors at cluster boundaries block in an intercluster RPC
  every iteration, stalling the whole pipeline (Section 4.8).
* ``optimized`` — chaotic relaxation: 2 out of 3 *intercluster* exchanges
  are dropped (stale ghost rows are reused); intracluster exchanges are
  untouched.  Convergence slows a few percent, intercluster traffic drops
  to a third.
* ``splitphase`` — the paper's rewrite against the low-level RTS: boundary
  rows are sent asynchronously and the *inner* rows are computed while
  they travel, hiding the WAN latency (numerics identical to original).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

import numpy as np

from ...core import ChaoticExchange, FullExchange, cluster_reduce, cluster_scatter
from ...orca import Context, OrcaRuntime
from ..base import Application
from ..partition import block_slices
from . import grid as gridmod
from .grid import SORParams

__all__ = ["SORApp"]

FROM_UP = "sor.fromup"
FROM_DOWN = "sor.fromdown"


class SORApp(Application):
    """Red/black successive overrelaxation."""

    name = "sor"
    variants = ("original", "optimized", "splitphase")
    sequencers = {"original": "distributed", "optimized": "distributed",
                  "splitphase": "distributed"}
    #: Pure message passing (border rows + reduce/scatter trees over
    #: plain sends) — no broadcasts, so per-cluster partitioning works.
    pdes_capable = True

    def register(self, rts: OrcaRuntime, params: SORParams,
                 variant: str) -> Dict[str, Any]:
        if params.n_rows < rts.topo.n_nodes:
            raise ValueError("SOR needs at least one row per processor")
        return {
            "slices": block_slices(params.n_rows, rts.topo.n_nodes),
            "blocks": {},
            "iterations": 0,
            "skipped_exchanges": 0,
        }

    # ------------------------------------------------------------- worker

    def process(self, ctx: Context, params: SORParams, variant: str,
                shared: Dict[str, Any]) -> Generator:
        k = ctx.node
        p = ctx.topo.n_nodes
        lo, hi = shared["slices"][k]
        m = hi - lo
        cols = params.n_cols
        block = gridmod.initial_grid(params)[lo:hi].copy()
        top_bc, bottom_bc = gridmod.boundary_rows(params)
        ghost_top = top_bc.copy()      # stale copies persist when skipping
        ghost_bottom = bottom_bc.copy()
        up = k - 1 if k > 0 else None
        down = k + 1 if k < p - 1 else None
        policy = (ChaoticExchange(keep_one_in=params.chaotic_keep_one_in)
                  if variant == "optimized"
                  else FullExchange())
        half_cost = m * cols * params.elem_cost / 2.0
        inner_cost = max(0, (m - 2)) * cols * params.elem_cost / 2.0
        edge_cost = half_cost - inner_cost

        def pair_skipped(neighbor: Optional[int], it: int) -> bool:
            if neighbor is None:
                return False
            inter = not ctx.topo.same_cluster(k, neighbor)
            return not policy.should_exchange(it, inter)

        for it in range(params.n_iterations):
            maxdiff = 0.0
            for parity in (0, 1):
                skip_up = pair_skipped(up, it)
                skip_down = pair_skipped(down, it)
                shared["skipped_exchanges"] += int(skip_up) + int(skip_down)
                blocking = variant != "splitphase"
                # Send our boundary rows.
                if up is not None and not skip_up:
                    send = ctx.send_wait if blocking else ctx.send
                    yield from send(up, params.row_bytes,
                                    payload=block[0].copy(), port=FROM_DOWN,
                                    kind="rpc")
                if down is not None and not skip_down:
                    send = ctx.send_wait if blocking else ctx.send
                    yield from send(down, params.row_bytes,
                                    payload=block[-1].copy(), port=FROM_UP,
                                    kind="rpc")
                if not blocking:
                    # Latency hiding: inner rows are independent of the
                    # in-flight ghosts; compute them while the rows travel.
                    yield from ctx.compute(inner_cost)
                # Collect the neighbours' rows (unless skipped).
                if up is not None and not skip_up:
                    msg = yield from ctx.receive(port=FROM_UP)
                    ghost_top = msg.payload
                if down is not None and not skip_down:
                    msg = yield from ctx.receive(port=FROM_DOWN)
                    ghost_bottom = msg.payload
                yield from ctx.compute(edge_cost if not blocking
                                       else half_cost)
                top = ghost_top if up is not None else top_bc
                bottom = ghost_bottom if down is not None else bottom_bc
                maxdiff = max(maxdiff, gridmod.sweep_phase(
                    block, top, bottom, parity, params.omega, lo))
            # Once per iteration: global convergence decision by node 0,
            # via hierarchical reduce + scatter (a per-iteration totally-
            # ordered broadcast would drag the WAN sequencer into every
            # iteration, which the Orca SOR does not do).
            total = yield from cluster_reduce(ctx, maxdiff, max, size=8,
                                              root=0, tag=f"sor{it}")
            stop = False
            if k == 0:
                stop = (it + 1 >= params.n_iterations
                        or (params.precision is not None
                            and total < params.precision))
            stop = yield from cluster_scatter(ctx, stop, size=2, root=0,
                                              tag=f"sor{it}")
            shared["iterations"] = max(shared["iterations"], it + 1)
            if stop:
                break

        shared["blocks"][k] = block
        return None

    # ------------------------------------------------------------ results

    def finalize(self, rts: OrcaRuntime, params: SORParams, variant: str,
                 shared: Dict[str, Any]) -> Any:
        p = rts.topo.n_nodes
        grid = np.vstack([shared["blocks"][k] for k in range(p)])
        return {"grid": grid, "iterations": shared["iterations"]}

    def stats(self, rts: OrcaRuntime, params: SORParams, variant: str,
              shared: Dict[str, Any]) -> Dict[str, Any]:
        return {"iterations": shared["iterations"],
                "skipped_exchanges": shared["skipped_exchanges"]}

    def pdes_merge_shared(self, parts, params: SORParams,
                          variant: str) -> Dict[str, Any]:
        # Each node writes exactly its own block; counters are
        # partition-local accumulations (skips) or per-node maxima.
        merged = {"slices": parts[0]["slices"], "blocks": {},
                  "iterations": 0, "skipped_exchanges": 0}
        for part in parts:
            merged["blocks"].update(part["blocks"])
            merged["iterations"] = max(merged["iterations"],
                                       part["iterations"])
            merged["skipped_exchanges"] += part["skipped_exchanges"]
        return merged
