"""SOR domain: red/black successive overrelaxation on a 2-D grid.

The paper solves a discretized Laplace equation on a 3500 x 900 grid,
row-distributed, with a termination precision of 0.0002 (52 iterations).
Every iteration runs a red phase and a black phase; boundary rows are
exchanged with both neighbours before each phase, so the parallel
computation is *bit-identical* to the sequential one for the full
exchange policy (each cell always sees exactly the values the sequential
sweep would).

Grid values are float32, matching the 4-byte elements implied by the
paper's "5 ms" intercluster row-exchange cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

__all__ = ["SORParams", "initial_grid", "boundary_rows", "sweep_phase",
           "sequential_reference", "ELEM_BYTES"]

ELEM_BYTES = 4


@dataclass(frozen=True)
class SORParams:
    n_rows: int = 3500
    n_cols: int = 900
    omega: float = 1.5
    #: iteration cap (the paper's input converges in 52).
    n_iterations: int = 52
    #: optional termination precision; None runs exactly ``n_iterations``.
    precision: Optional[float] = None
    #: seconds per cell update (5-point stencil on the PPro).
    elem_cost: float = 60e-9
    #: chaotic relaxation: keep 1 in N intercluster exchanges (paper: 3).
    chaotic_keep_one_in: int = 3
    kernel: str = "real"  # numpy sweeps are fast enough at paper scale

    @staticmethod
    def paper() -> "SORParams":
        return SORParams()

    @staticmethod
    def small(n_rows: int = 40, n_cols: int = 24,
              precision: Optional[float] = None) -> "SORParams":
        return SORParams(n_rows=n_rows, n_cols=n_cols, n_iterations=60,
                         precision=precision)

    def with_(self, **kw) -> "SORParams":
        return replace(self, **kw)

    @property
    def row_bytes(self) -> int:
        return self.n_cols * ELEM_BYTES


def initial_grid(params: SORParams) -> np.ndarray:
    """Interior starts at zero; the hot boundary is the virtual row above
    row 0 (all ones), so the solution is a smooth top-to-bottom gradient."""
    return np.zeros((params.n_rows, params.n_cols), dtype=np.float32)


def boundary_rows(params: SORParams) -> Tuple[np.ndarray, np.ndarray]:
    """(ghost row above the grid, ghost row below the grid)."""
    top = np.ones(params.n_cols, dtype=np.float32)
    bottom = np.zeros(params.n_cols, dtype=np.float32)
    return top, bottom


def sweep_phase(block: np.ndarray, top: np.ndarray, bottom: np.ndarray,
                parity: int, omega: float, row0: int) -> float:
    """One red (parity 0) or black (parity 1) half-sweep of a row block.

    ``top``/``bottom`` are the ghost rows; ``row0`` is the global index of
    the block's first row (checkerboard parity must be global).  The first
    and last columns are fixed boundary.  Returns the max absolute change.
    """
    rows, cols = block.shape
    if rows == 0:
        return 0.0
    padded = np.vstack([top[None, :], block, bottom[None, :]])
    nb = (padded[:-2, 1:-1] + padded[2:, 1:-1]
          + padded[1:-1, :-2] + padded[1:-1, 2:])
    om = np.float32(omega)
    upd = (np.float32(1.0) - om) * block[:, 1:-1] + om * np.float32(0.25) * nb
    gi = (np.arange(rows) + row0)[:, None]
    jj = np.arange(1, cols - 1)[None, :]
    mask = ((gi + jj) % 2) == parity
    diff = np.abs(np.where(mask, upd - block[:, 1:-1], np.float32(0.0)))
    block[:, 1:-1] = np.where(mask, upd, block[:, 1:-1])
    return float(diff.max())


def sequential_reference(params: SORParams) -> Tuple[np.ndarray, int]:
    """Full-grid sweeps; returns (grid, iterations executed)."""
    grid = initial_grid(params)
    top, bottom = boundary_rows(params)
    iterations = 0
    for it in range(params.n_iterations):
        maxdiff = 0.0
        for parity in (0, 1):
            maxdiff = max(maxdiff,
                          sweep_phase(grid, top, bottom, parity,
                                      params.omega, 0))
        iterations += 1
        if params.precision is not None and maxdiff < params.precision:
            break
    return grid, iterations
