"""ASP domain: all-pairs shortest paths by row-parallel Floyd-Warshall.

The distance matrix is divided row-wise over the processors; iteration k
broadcasts the (current) pivot row k, and every processor relaxes its own
rows against it.  Running time is cubic in n; communication quadratic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from ...sim.rng import substream

__all__ = ["ASPParams", "random_graph", "sequential_reference", "relax_block",
           "ROW_ELEM_BYTES"]

#: Orca ints on the wire.
ROW_ELEM_BYTES = 4

#: "No edge" marker, safely below overflow when added once.
INF = np.int64(10 ** 9)


@dataclass(frozen=True)
class ASPParams:
    n_vertices: int = 3000
    edge_prob: float = 0.2
    seed: int = 11
    #: seconds per min-plus element update (~20 cycles of compiled Orca
    #: on a 200 MHz Pentium Pro).
    elem_cost: float = 100e-9
    kernel: str = "synthetic"

    @staticmethod
    def paper() -> "ASPParams":
        """Section 4.3: a 3,000-node input problem."""
        return ASPParams()

    @staticmethod
    def small(n_vertices: int = 48) -> "ASPParams":
        return ASPParams(n_vertices=n_vertices, kernel="real")

    def with_(self, **kw) -> "ASPParams":
        return replace(self, **kw)

    @property
    def row_bytes(self) -> int:
        return self.n_vertices * ROW_ELEM_BYTES


def random_graph(params: ASPParams) -> np.ndarray:
    """Directed weighted graph as an n x n distance matrix."""
    rng = substream(params.seed, "asp.graph")
    n = params.n_vertices
    w = rng.integers(1, 100, size=(n, n)).astype(np.int64)
    present = rng.random((n, n)) < params.edge_prob
    d = np.where(present, w, INF)
    np.fill_diagonal(d, 0)
    return d


def sequential_reference(params: ASPParams) -> np.ndarray:
    """Vectorized Floyd-Warshall."""
    d = random_graph(params)
    n = d.shape[0]
    for k in range(n):
        np.minimum(d, d[:, k, None] + d[None, k, :], out=d)
    return d


def relax_block(block: np.ndarray, col_k: np.ndarray,
                row_k: np.ndarray) -> None:
    """One pivot-row relaxation of a row block, in place.

    ``col_k`` is the block's column k (distances to the pivot); ``row_k``
    the broadcast pivot row.
    """
    np.minimum(block, col_k[:, None] + row_k[None, :], out=block)
