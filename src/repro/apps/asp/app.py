"""The ASP application: broadcast pipelining via sequencer migration.

Original (Section 4.3): at iteration k the owner of row k broadcasts it
through a replicated object; with the distributed per-cluster sequencer
every broadcast waits for the cluster's turn (a WAN token rotation), and
the other processors idle until the row arrives.

Optimized: the *migrating* sequencer moves to the broadcasting cluster, so
a processor issuing a run of row broadcasts gets its sequence numbers at
LAN latency and WAN dissemination pipelines with the next iteration's
computation.  The algorithm itself is unchanged — only the ordering
protocol differs, which is why the variant is selected through
``Application.sequencers``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

import numpy as np

from ...orca import Blocked, Context, ObjectSpec, Operation, OrcaRuntime
from ..base import Application, KERNEL_REAL
from ..partition import block_slices, owner_of_index
from . import graph
from .graph import ASPParams

__all__ = ["ASPApp"]


def _rows_object_spec(params: ASPParams) -> ObjectSpec:
    """Replicated pivot-row board: write = totally-ordered broadcast."""

    def publish(state, k, payload):
        state[k] = payload

    def get_row(state, k):
        if k not in state:
            raise Blocked
        return state[k]

    def forget(state, k):
        state.pop(k, None)

    return ObjectSpec(
        "asp.rows", dict,
        {
            "publish": Operation(fn=publish, writes=True,
                                 arg_bytes=params.row_bytes + 8,
                                 cpu_cost=5e-6),
            # Local read on the replica; blocks until the row arrived.
            "get_row": Operation(fn=get_row, arg_bytes=8, result_bytes=0),
            "forget": Operation(fn=forget, arg_bytes=8),
        },
        replicated=True)


class ASPApp(Application):
    """All-pairs shortest paths on the multilevel cluster."""

    name = "asp"
    sequencers = {"original": "distributed", "optimized": "migrating"}

    def register(self, rts: OrcaRuntime, params: ASPParams,
                 variant: str) -> Dict[str, Any]:
        rts.register(_rows_object_spec(params))
        p = rts.topo.n_nodes
        shared: Dict[str, Any] = {
            "slices": block_slices(params.n_vertices, p),
            "dist0": (graph.random_graph(params)
                      if params.kernel == KERNEL_REAL else None),
            "blocks": {},
            "iterations": 0,
        }
        return shared

    def process(self, ctx: Context, params: ASPParams, variant: str,
                shared: Dict[str, Any]) -> Generator:
        k_node = ctx.node
        real = params.kernel == KERNEL_REAL
        lo, hi = shared["slices"][k_node]
        m = hi - lo
        n = params.n_vertices
        block = shared["dist0"][lo:hi].copy() if real else None
        slices = shared["slices"]

        for k in range(n):
            owner = owner_of_index(slices, k)
            if owner == k_node:
                payload = block[k - lo].copy() if real else None
                yield from ctx.invoke("asp.rows", "publish", k, payload)
                row_k = payload
            else:
                row_k = yield from ctx.invoke("asp.rows", "get_row", k)
            yield from ctx.compute(m * n * params.elem_cost)
            if real:
                graph.relax_block(block, block[:, k], row_k)
            shared["iterations"] += 1

        shared["blocks"][k_node] = block
        return None

    def finalize(self, rts: OrcaRuntime, params: ASPParams, variant: str,
                 shared: Dict[str, Any]) -> Any:
        if params.kernel != KERNEL_REAL:
            return None
        p = rts.topo.n_nodes
        return np.vstack([shared["blocks"][k] for k in range(p)])

    def stats(self, rts: OrcaRuntime, params: ASPParams, variant: str,
              shared: Dict[str, Any]) -> Dict[str, Any]:
        return {"row_broadcasts": params.n_vertices,
                "relaxations": shared["iterations"]}
