"""ASP: all-pairs shortest paths (regular broadcast pattern)."""

from .app import ASPApp
from .graph import ASPParams

__all__ = ["ASPApp", "ASPParams"]
