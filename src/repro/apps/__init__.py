"""The eight paper applications."""

from .base import Application, AppResult, KERNEL_REAL, KERNEL_SYNTHETIC
from .registry import ALL_APPS, PAPER_ORDER, make_app, paper_params, small_params

__all__ = [
    "Application",
    "AppResult",
    "KERNEL_REAL",
    "KERNEL_SYNTHETIC",
    "ALL_APPS",
    "PAPER_ORDER",
    "make_app",
    "paper_params",
    "small_params",
]
