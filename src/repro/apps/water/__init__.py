"""Water: n-squared n-body simulation (all-to-all exchange pattern)."""

from .app import WaterApp
from .model import WaterParams

__all__ = ["WaterApp", "WaterParams"]
