"""The Water application: original and wide-area-optimized variants.

Original (Section 4.1): every processor RPCs the processors in its
half-window for their molecule positions at each time step and RPCs force
contributions back — many of those cross cluster boundaries.

Optimized: cluster-level caching.  Each cluster designates a local
coordinator per remote processor; position blocks cross a WAN link once
per epoch and are cached, and force contributions are combined by the
coordinator so one summed update crosses the WAN instead of many.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

import numpy as np

from ...core import ClusterCache
from ...orca import Blocked, Context, ObjectSpec, Operation, OrcaRuntime
from ...sim import Barrier, Channel
from ..base import Application, KERNEL_REAL
from . import model
from .model import BYTES_PER_MOLECULE, WaterParams

__all__ = ["WaterApp"]


def _block_object_spec(k: int, owner: int, m_k: int) -> ObjectSpec:
    """The shared object holding processor ``k``'s molecule block."""
    block_bytes = BYTES_PER_MOLECULE * m_k

    def make_state():
        return {"epoch": -1, "pos": None, "forces": [], "contribs": 0}

    def publish(state, epoch, payload):
        state["epoch"] = epoch
        state["pos"] = payload
        state["forces"] = []
        state["contribs"] = 0

    def get_pos(state, epoch):
        if state["epoch"] != epoch:
            raise Blocked
        return state["pos"]

    def add_forces(state, epoch, payload):
        if state["epoch"] != epoch:
            raise Blocked
        state["forces"].append(payload)
        state["contribs"] += 1

    def collect_forces(state, epoch, expected):
        if state["epoch"] != epoch or state["contribs"] < expected:
            raise Blocked
        return list(state["forces"])

    return ObjectSpec(
        f"water{k}", make_state,
        {
            "publish": Operation(fn=publish, writes=True, arg_bytes=8),
            "get_pos": Operation(fn=get_pos, arg_bytes=8,
                                 result_bytes=block_bytes),
            "add_forces": Operation(fn=add_forces, writes=True,
                                    arg_bytes=block_bytes + 8),
            "collect_forces": Operation(fn=collect_forces, writes=True,
                                        arg_bytes=8, result_bytes=0),
        },
        owner=owner)


class WaterApp(Application):
    """SPLASH-style n-squared Water on the multilevel cluster."""

    name = "water"

    def register(self, rts: OrcaRuntime, params: WaterParams,
                 variant: str) -> Dict[str, Any]:
        p = rts.topo.n_nodes
        slices = model.block_slices(params.n_molecules, p)
        pos, vel = (model.initial_state(params)
                    if params.kernel == KERNEL_REAL else (None, None))
        shared: Dict[str, Any] = {
            "slices": slices,
            "pos0": pos,
            "vel0": vel,
            "barrier": Barrier(rts.sim, parties=p, fast=rts.fast_paths),
            "final": {},
            "pairs": 0,
        }
        if variant == "original":
            for k in range(p):
                m_k = slices[k][1] - slices[k][0]
                rts.register(_block_object_spec(k, owner=k, m_k=m_k))
        else:
            cache = ClusterCache(rts, reduce_fn=self._combine_forces)
            store: Dict[Any, Any] = {}
            chans = [Channel(rts.sim) for _ in range(p)]
            for k in range(p):
                m_k = slices[k][1] - slices[k][0]
                cache.register_provider(
                    k, lambda e, k=k, m=m_k: (store[(k, e)],
                                              BYTES_PER_MOLECULE * m))
                cache.register_consumer(
                    k, lambda e, v, k=k: chans[k].put((e, v)))
            shared["cache"] = cache
            shared["store"] = store
            shared["chans"] = chans
        return shared

    @staticmethod
    def _combine_forces(a, b):
        if a is None or b is None:
            return None  # synthetic kernel carries no data
        return a + b

    # ------------------------------------------------------------- worker

    def process(self, ctx: Context, params: WaterParams, variant: str,
                shared: Dict[str, Any]) -> Generator:
        k = ctx.node
        p = ctx.topo.n_nodes
        real = params.kernel == KERNEL_REAL
        lo, hi = shared["slices"][k]
        m_k = hi - lo
        pos = shared["pos0"][lo:hi].copy() if real else None
        vel = shared["vel0"][lo:hi].copy() if real else None
        win = model.window(p, k)
        writers = model.writers_of(p, k)
        sizes = [s[1] - s[0] for s in shared["slices"]]

        for step in range(params.n_steps):
            # Publish this epoch's positions.
            if variant == "original":
                yield from ctx.invoke(f"water{k}", "publish", step, pos)
            else:
                shared["store"][(k, step)] = pos
            yield shared["barrier"].wait()

            # Forces within the own block.
            n_self = model.self_pair_count(m_k)
            yield from ctx.compute(n_self * params.pair_cost)
            shared["pairs"] += n_self
            forces = (model.self_forces(pos, params.softening)
                      if real else None)

            # Half-window exchange: fetch, compute, send contribution back.
            for b in win:
                if variant == "original":
                    pos_b = yield from ctx.invoke(f"water{b}", "get_pos", step)
                else:
                    pos_b = yield from shared["cache"].fetch(ctx, b, step)
                n_pair = model.pair_count(m_k, sizes[b])
                yield from ctx.compute(n_pair * params.pair_cost)
                shared["pairs"] += n_pair
                if real:
                    f_own, f_b = model.pair_forces(pos, pos_b,
                                                   params.softening)
                    forces = forces + f_own
                else:
                    f_b = None
                if variant == "original":
                    yield from ctx.invoke(f"water{b}", "add_forces", step, f_b)
                else:
                    expected = self._cluster_writers(ctx, b, p)
                    yield from shared["cache"].write_combined(
                        ctx, b, step, f_b,
                        size=BYTES_PER_MOLECULE * sizes[b] + 8,
                        expected=expected)

            # Collect contributions computed for us by our writers.
            if variant == "original":
                contribs = yield from ctx.invoke(
                    f"water{k}", "collect_forces", step, len(writers))
            else:
                contribs = []
                for _ in range(self._expected_updates(ctx, writers)):
                    epoch, value = yield shared["chans"][k].get()
                    if epoch != step:
                        raise RuntimeError(
                            f"water{k}: update for epoch {epoch} during "
                            f"step {step}")
                    contribs.append(value)
            if real:
                for c in contribs:
                    forces = forces + c
                pos, vel = model.step_update(pos, vel, forces, params.dt)

        shared["final"][k] = pos
        return None

    @staticmethod
    def _cluster_writers(ctx: Context, b: int, p: int) -> int:
        """How many processors in the caller's cluster write forces to b."""
        return sum(1 for a in ctx.topo.nodes_in(ctx.cluster)
                   if b in model.window(p, a))

    @staticmethod
    def _expected_updates(ctx: Context, writers: List[int]) -> int:
        """Distinct update messages node k receives in the optimized scheme:
        one per same-cluster writer plus one combined per remote cluster."""
        topo = ctx.topo
        local = sum(1 for a in writers if topo.same_cluster(a, ctx.node))
        remote_clusters = {topo.cluster_of(a) for a in writers
                           if not topo.same_cluster(a, ctx.node)}
        return local + len(remote_clusters)

    # ------------------------------------------------------------ results

    def finalize(self, rts: OrcaRuntime, params: WaterParams, variant: str,
                 shared: Dict[str, Any]) -> Any:
        if params.kernel != KERNEL_REAL:
            return None
        p = rts.topo.n_nodes
        return np.vstack([shared["final"][k] for k in range(p)])

    def stats(self, rts: OrcaRuntime, params: WaterParams, variant: str,
              shared: Dict[str, Any]) -> Dict[str, Any]:
        return {"pairs": shared["pairs"]}
