"""Water domain model: an "n-squared" molecular-dynamics surrogate.

The paper's Water is the SPLASH n-squared water simulation: every
molecule interacts with every other, processors own contiguous blocks of
molecules, and each timestep exchanges molecule data with the next p/2
processors.  We keep exactly that computation/communication structure with
a simplified pair force (softened inverse-square), which preserves the
operation counts and message sizes — the quantities the experiments
measure — while remaining verifiable against a sequential reference.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

import numpy as np

from ...sim.rng import substream

__all__ = ["WaterParams", "window", "writers_of", "block_slices",
           "initial_state", "pair_forces", "self_forces", "step_update",
           "sequential_reference"]

#: bytes per molecule on the wire (3 doubles position; forces likewise).
BYTES_PER_MOLECULE = 24


@dataclass(frozen=True)
class WaterParams:
    n_molecules: int = 4096
    n_steps: int = 2
    #: seconds of CPU per pairwise interaction.  Water's molecule-molecule
    #: interaction is expensive (multiple atom-pair terms); ~4.5 us on a
    #: 200 MHz Pentium Pro places the single-cluster efficiency and the
    #: WAN-degradation of Figure 1 where the paper has them.
    pair_cost: float = 4.5e-6
    dt: float = 1e-3
    softening: float = 0.5
    seed: int = 42
    kernel: str = "synthetic"

    @staticmethod
    def paper() -> "WaterParams":
        """The Section 4.1 input: 4096 molecules, two time steps."""
        return WaterParams()

    @staticmethod
    def small(n_molecules: int = 96, n_steps: int = 2) -> "WaterParams":
        return WaterParams(n_molecules=n_molecules, n_steps=n_steps,
                           kernel="real")

    def with_(self, **kw) -> "WaterParams":
        return replace(self, **kw)


def window(p: int, k: int) -> List[int]:
    """Blocks whose interactions with block ``k`` are computed *by* ``k``.

    The SPLASH half-window: the next (p-1)//2 blocks, plus — for even p —
    the diametrically opposite block for the lower half of processors, so
    every unordered block pair is computed exactly once.
    """
    if not 0 <= k < p:
        raise ValueError(f"k={k} out of range for p={p}")
    if p == 1:
        return []
    half = (p - 1) // 2
    w = [(k + d) % p for d in range(1, half + 1)]
    if p % 2 == 0 and k < p // 2:
        w.append((k + p // 2) % p)
    return w


def writers_of(p: int, k: int) -> List[int]:
    """Blocks that compute forces *for* block ``k`` (the inverse window)."""
    return [a for a in range(p) if k in window(p, a)]


# Re-exported so Water callers keep a single import site.
from ..partition import block_slices  # noqa: E402


def initial_state(params: WaterParams) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic initial positions and velocities in a unit box."""
    rng = substream(params.seed, "water.init")
    pos = rng.random((params.n_molecules, 3))
    vel = np.zeros_like(pos)
    return pos, vel


def pair_forces(pos_a: np.ndarray, pos_b: np.ndarray,
                softening: float) -> Tuple[np.ndarray, np.ndarray]:
    """Softened inverse-square forces between two disjoint blocks.

    Returns (force on a, force on b); Newton's third law holds exactly.
    """
    d = pos_a[:, None, :] - pos_b[None, :, :]
    r2 = (d * d).sum(axis=-1) + softening ** 2
    f = d / (r2 ** 1.5)[..., None]
    return f.sum(axis=1), -f.sum(axis=0)


def self_forces(pos: np.ndarray, softening: float) -> np.ndarray:
    """Forces within one block (diagonal excluded)."""
    n = pos.shape[0]
    if n < 2:
        return np.zeros_like(pos)
    d = pos[:, None, :] - pos[None, :, :]
    r2 = (d * d).sum(axis=-1) + softening ** 2
    np.fill_diagonal(r2, np.inf)
    f = d / (r2 ** 1.5)[..., None]
    return f.sum(axis=1)


def step_update(pos: np.ndarray, vel: np.ndarray, forces: np.ndarray,
                dt: float) -> Tuple[np.ndarray, np.ndarray]:
    """Leapfrog-style update (the integration detail is immaterial to the
    communication study; what matters is that both the parallel program and
    the sequential reference apply the identical rule)."""
    vel = vel + forces * dt
    pos = pos + vel * dt
    return pos, vel


def sequential_reference(params: WaterParams) -> np.ndarray:
    """Single-processor result used to validate the parallel runs."""
    pos, vel = initial_state(params)
    for _ in range(params.n_steps):
        forces = self_forces(pos, params.softening)
        pos, vel = step_update(pos, vel, forces, params.dt)
    return pos


def pair_count(m_a: int, m_b: int) -> int:
    return m_a * m_b


def self_pair_count(m: int) -> int:
    return m * (m - 1) // 2
