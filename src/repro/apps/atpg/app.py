"""The ATPG application: per-pattern accumulator vs cluster-level reduction.

Original (Section 4.4): every processor RPCs a shared statistics object
(on processor 0) each time it generates a pattern; on multiple clusters
many of those RPCs cross the WAN.

Optimized: processors accumulate locally and the totals are combined with
one cluster-level reduction at the end — a single intercluster RPC per
cluster.  At DAS bandwidth/latency the difference is minor (the paper
found the same); on the slower 10 ms / 2 Mbit/s network it matters.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Tuple

from ...core import cluster_reduce
from ...orca import Context, ObjectSpec, Operation, OrcaRuntime
from ..base import Application, KERNEL_REAL
from ..partition import block_slices
from . import circuit as circuit_mod
from .circuit import ATPGParams

__all__ = ["ATPGApp"]


def _stats_object_spec() -> ObjectSpec:
    def add(state, patterns, covered):
        state["patterns"] += patterns
        state["covered"] += covered

    def read(state):
        return (state["patterns"], state["covered"])

    return ObjectSpec(
        "atpg.stats", lambda: {"patterns": 0, "covered": 0},
        {"add": Operation(fn=add, writes=True, arg_bytes=16),
         "read": Operation(fn=read, arg_bytes=1, result_bytes=16)},
        owner=0)


class ATPGApp(Application):
    """Automatic test pattern generation on the multilevel cluster."""

    name = "atpg"

    def register(self, rts: OrcaRuntime, params: ATPGParams,
                 variant: str) -> Dict[str, Any]:
        rts.register(_stats_object_spec())
        shared: Dict[str, Any] = {
            "circuit": (circuit_mod.build_circuit(params)
                        if params.kernel == KERNEL_REAL else None),
            "slices": block_slices(params.n_gates, rts.topo.n_nodes),
            "result": None,
            "tries": 0,
        }
        return shared

    def process(self, ctx: Context, params: ATPGParams, variant: str,
                shared: Dict[str, Any]) -> Generator:
        real = params.kernel == KERNEL_REAL
        lo, hi = shared["slices"][ctx.node]
        local_patterns = 0
        local_covered = 0

        for gate in range(lo, hi):
            if real:
                p, c, tries = circuit_mod.generate_for_gate(
                    shared["circuit"], gate, params)
            else:
                p, c, tries = circuit_mod.synthetic_gate_effort(params, gate)
            # Two circuit simulations per candidate pattern.
            yield from ctx.compute(2 * tries * params.eval_cost)
            shared["tries"] += tries
            if variant == "original":
                # One RPC to the shared statistics object per pattern
                # (each generated pattern covers the fault it was found for).
                for _ in range(p):
                    yield from ctx.invoke("atpg.stats", "add", 1, 1)
            else:
                local_patterns += p
                local_covered += c

        if variant == "optimized":
            total = yield from cluster_reduce(
                ctx, (local_patterns, local_covered),
                lambda a, b: (a[0] + b[0], a[1] + b[1]),
                size=16, root=0, tag="atpg")
            if ctx.node == 0:
                shared["result"] = total
        elif ctx.node == 0:
            pass  # totals live in the shared object; read them in finalize
        return None

    def finalize(self, rts: OrcaRuntime, params: ATPGParams, variant: str,
                 shared: Dict[str, Any]) -> Tuple[int, int]:
        if variant == "optimized":
            return shared["result"]
        state = rts.state_of("atpg.stats")
        return (state["patterns"], state["covered"])

    def stats(self, rts: OrcaRuntime, params: ATPGParams, variant: str,
              shared: Dict[str, Any]) -> Dict[str, Any]:
        return {"tries": shared["tries"]}
