"""ATPG domain: combinational circuits and random-pattern test generation.

The paper's ATPG statically partitions the gates of a combinational
circuit over the processors; each processor searches test patterns for
the (stuck-at) faults of its gates and the processors communicate only to
maintain global statistics — the all-to-one accumulator pattern.

The real kernel builds a random topological circuit and searches input
patterns that *detect* each gate's stuck-at-0/1 faults (a pattern detects
a fault if the primary output differs with and without the fault — honest
single-fault simulation).  The synthetic kernel draws the per-gate search
effort from the same deterministic streams without simulating the logic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ...sim.rng import substream

__all__ = ["ATPGParams", "Circuit", "build_circuit", "generate_for_gate",
           "synthetic_gate_effort", "sequential_reference"]


@dataclass(frozen=True)
class ATPGParams:
    n_gates: int = 2048
    n_inputs: int = 16
    max_tries: int = 24
    seed: int = 5
    #: seconds per single full-circuit evaluation (two per try).  Sized so
    #: each processor issues tens of statistics RPCs per second, matching
    #: the paper's Table 2 rate of ~70 RPC/s per processor.
    eval_cost: float = 2e-3
    kernel: str = "synthetic"

    @staticmethod
    def paper() -> "ATPGParams":
        return ATPGParams()

    @staticmethod
    def small(n_gates: int = 96, n_inputs: int = 10) -> "ATPGParams":
        return ATPGParams(n_gates=n_gates, n_inputs=n_inputs, kernel="real")

    def with_(self, **kw) -> "ATPGParams":
        return replace(self, **kw)


OPS = ("AND", "OR", "NOT", "XOR")


@dataclass
class Circuit:
    """A random combinational circuit in topological order.

    Signal ids: 0..n_inputs-1 are primary inputs; n_inputs..n_inputs+
    n_gates-1 are gate outputs.  The last gate is the primary output.
    """

    n_inputs: int
    gates: List[Tuple[str, int, int]]  # (op, in_a, in_b); NOT ignores in_b

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def outputs(self) -> List[int]:
        """Primary outputs: gate signals with no fan-out (circuit convention)."""
        used = {a for _, a, _ in self.gates} | {b for _, _, b in self.gates}
        return [self.n_inputs + g for g in range(self.n_gates)
                if self.n_inputs + g not in used]

    def eval_values(self, inputs: np.ndarray,
                    fault: Optional[Tuple[int, int]] = None) -> np.ndarray:
        """All signal values for one input vector, optionally with gate
        ``fault = (gate_index, stuck_value)`` injected."""
        values = np.empty(self.n_inputs + self.n_gates, dtype=np.int8)
        values[:self.n_inputs] = inputs
        for g, (op, a, b) in enumerate(self.gates):
            va, vb = values[a], values[b]
            if op == "AND":
                v = va & vb
            elif op == "OR":
                v = va | vb
            elif op == "XOR":
                v = va ^ vb
            else:  # NOT
                v = 1 - va
            if fault is not None and fault[0] == g:
                v = fault[1]
            values[self.n_inputs + g] = v
        return values

    def evaluate(self, inputs: np.ndarray,
                 fault: Optional[Tuple[int, int]] = None) -> int:
        """Value of the last gate (kept for simple truth-table checks)."""
        return int(self.eval_values(inputs, fault)[-1])

    def detects(self, inputs: np.ndarray, fault: Tuple[int, int]) -> bool:
        """True if the pattern makes any primary output differ."""
        outs = self.outputs
        good = self.eval_values(inputs)[outs]
        bad = self.eval_values(inputs, fault)[outs]
        return bool((good != bad).any())


def build_circuit(params: ATPGParams) -> Circuit:
    rng = substream(params.seed, "atpg.circuit")
    gates: List[Tuple[str, int, int]] = []
    for g in range(params.n_gates):
        n_signals = params.n_inputs + g
        op = OPS[int(rng.integers(0, len(OPS)))]
        # Bias inputs toward recent signals so the circuit stays deep and
        # faults propagate to the output often enough to be detectable.
        lo = max(0, n_signals - 12)
        a = int(rng.integers(lo, n_signals))
        b = int(rng.integers(lo, n_signals))
        gates.append((op, a, b))
    return Circuit(params.n_inputs, gates)


def generate_for_gate(circuit: Circuit, gate: int,
                      params: ATPGParams) -> Tuple[int, int, int]:
    """Random-pattern test generation for one gate's two stuck-at faults.

    Returns ``(patterns_found, covered_faults, tries)`` — ``tries`` is the
    number of candidate patterns evaluated (each costs two circuit
    simulations: fault-free and faulty).
    """
    rng = substream(params.seed, f"atpg.gate.{gate}")
    patterns = 0
    covered = 0
    tries = 0
    for stuck in (0, 1):
        for _ in range(params.max_tries):
            tries += 1
            vec = rng.integers(0, 2, size=params.n_inputs).astype(np.int8)
            if circuit.detects(vec, (gate, stuck)):
                patterns += 1
                covered += 1
                break
    return patterns, covered, tries


def synthetic_gate_effort(params: ATPGParams, gate: int) -> Tuple[int, int, int]:
    """Deterministic (patterns, covered, tries) without logic simulation.

    The tries distribution is geometric-flavored like real random-pattern
    ATPG: easy faults detect in a try or two, hard ones exhaust the budget.
    """
    rng = substream(params.seed, f"atpg.gate.{gate}")
    patterns = 0
    covered = 0
    tries = 0
    for _stuck in (0, 1):
        # Per-fault detection probability; some faults are hard.
        p_detect = float(rng.beta(1.2, 2.0))
        t = int(rng.geometric(max(p_detect, 1e-3)))
        if t <= params.max_tries:
            tries += t
            patterns += 1
            covered += 1
        else:
            tries += params.max_tries
    return patterns, covered, tries


def sequential_reference(params: ATPGParams) -> Tuple[int, int]:
    """Total (patterns, covered) over the whole circuit."""
    total_p = 0
    total_c = 0
    if params.kernel == "real":
        circuit = build_circuit(params)
        for g in range(params.n_gates):
            p, c, _ = generate_for_gate(circuit, g, params)
            total_p += p
            total_c += c
    else:
        for g in range(params.n_gates):
            p, c, _ = synthetic_gate_effort(params, g)
            total_p += p
            total_c += c
    return total_p, total_c
