"""ATPG: automatic test pattern generation (all-to-one accumulator)."""

from .app import ATPGApp
from .circuit import ATPGParams

__all__ = ["ATPGApp", "ATPGParams"]
