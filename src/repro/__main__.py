"""Command-line interface: regenerate paper experiments from the shell.

Examples::

    python -m repro list                      # apps, figures, tables
    python -m repro table 1                   # Table 1 micro-benchmarks
    python -m repro table 2
    python -m repro table 4                   # tables 4 & 5 (traffic)
    python -m repro figure fig5               # one speedup figure
    python -m repro figure fig15 --jobs 4     # the 4-cluster summary, parallel
    python -m repro app water --variant optimized --clusters 4 --nodes 15
    python -m repro profile asp --clusters 4  # name the WAN bottleneck
    python -m repro trace ra --out ra.json    # Perfetto-loadable trace
    python -m repro trace tsp --format folded # flame-graph input
    python -m repro chains water --clusters 2 # per-hop message latency
    python -m repro figure fig5 --jobs 4 --trace-dir traces \
        --trace-ring 20000                    # traced parallel sweep
    python -m repro cache clear               # drop the result cache
    python -m repro bench --check             # regress vs BENCH_*.json
    python -m repro bench --write --suite orca  # refresh one baseline
    python -m repro scenario ra --wan-jitter lognormal:0.3 \
        --fault gw_outage@2.0s+0.5s           # impaired vs clean run
    python -m repro scenario ra asp --wan-loss 0.02 --seeds 3 --jobs 4
    python -m repro scenario water --cluster 1:cpu=0.5,link=fast-ethernet
    python -m repro tune --wan-loss 0.2 --out model.json  # calibrate
    python -m repro tune --wan-loss 0.2 --apply --jobs 4  # before/after
    python -m repro app asp --decision model.json         # run tuned

Experiment commands accept ``--jobs N`` (or the ``REPRO_JOBS`` env var)
to fan the independent simulations of a figure or table out over a
process pool, and ``--no-cache`` to bypass the on-disk result cache.
With ``--trace-dir DIR`` every grid point also runs traced (bounded
with ``--trace-ring N`` / ``--trace-sample kind=k,...``) and leaves one
Perfetto file per point in DIR.  ``docs/ARCHITECTURE.md`` has the
consolidated CLI reference; ``docs/TRACING.md`` documents the trace
schema behind ``trace``, ``chains`` and ``profile``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Tuple

from .apps import PAPER_ORDER, make_app
from .harness import (
    QUICK_CPUS,
    SPEEDUP_FIGURES,
    ParallelRunner,
    ResultCache,
    RunSpec,
    bench_params,
    figure15_bars_many,
    figure16_bars_many,
    figure_curves,
    format_bars,
    format_curves,
    format_table1,
    format_table2,
    format_traffic,
    table1_microbenchmarks,
    table2_row,
    traffic_row,
)
from .sim import TraceSpec
from .tuner import DEFAULT_CLUSTERS, DEFAULT_SIZES


class _CLIError(Exception):
    """A user-facing argument error (printed, exit code 2)."""


def _parse_sample(text: str) -> Tuple[Tuple[str, int], ...]:
    """Parse ``kind=k,kind2=k2`` into sampling pairs, validated."""
    from .obs import KINDS

    pairs = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        kind, sep, val = part.partition("=")
        kind = kind.strip()
        if not sep:
            raise _CLIError(f"bad sample entry {part!r} (want kind=k)")
        if kind not in KINDS:
            raise _CLIError(f"unknown kind {kind!r} in sample spec; "
                            "see docs/TRACING.md")
        try:
            k = int(val)
        except ValueError:
            raise _CLIError(f"bad sample rate {val!r} for {kind!r} "
                            "(want an integer >= 1)")
        if k < 1:
            raise _CLIError(f"sample rate for {kind!r} must be >= 1: {k}")
        pairs.append((kind, k))
    return tuple(pairs)


def _trace_spec(args) -> Tuple[Optional[TraceSpec], Optional[str]]:
    """(trace spec, trace dir) from the shared --trace-* flags."""
    trace_dir = getattr(args, "trace_dir", None)
    ring = getattr(args, "trace_ring", None)
    sample = getattr(args, "trace_sample", None)
    if not trace_dir:
        if ring is not None or sample:
            raise _CLIError("--trace-ring/--trace-sample require --trace-dir")
        return None, None
    spec = TraceSpec(ring=ring,
                     sample=_parse_sample(sample) if sample else ())
    return spec, trace_dir


def _runner(args) -> ParallelRunner:
    """Build the sweep runner from the shared --jobs/--no-cache and
    --trace-* flags."""
    cache = None if getattr(args, "no_cache", False) else ResultCache()
    trace, trace_dir = _trace_spec(args)
    return ParallelRunner(jobs=getattr(args, "jobs", None), cache=cache,
                          trace=trace, trace_dir=trace_dir,
                          batch=getattr(args, "batch", None),
                          pdes=getattr(args, "pdes", None),
                          pdes_workers=getattr(args, "pdes_workers", None))


def cmd_list(_args) -> int:
    """List the runnable applications, figures and tables."""
    print("applications:", ", ".join(PAPER_ORDER))
    print("figures:", ", ".join(list(SPEEDUP_FIGURES) + ["fig15", "fig16"]))
    print("tables: 1, 2, 4 (prints 4 and 5)")
    return 0


def cmd_table(args) -> int:
    """Regenerate one of the paper's tables."""
    runner = _runner(args)
    if args.number == 1:
        print(format_table1(table1_microbenchmarks()))
    elif args.number == 2:
        rows = []
        for name in PAPER_ORDER:
            print(f"running {name}...", file=sys.stderr)
            rows.append(table2_row(name, runner=runner))
        print(format_table2(rows))
    elif args.number in (4, 5):
        before, after = [], []
        for name in PAPER_ORDER:
            print(f"running {name}...", file=sys.stderr)
            before.append(traffic_row(name, "original", runner=runner))
            after.append(traffic_row(name, "optimized", runner=runner))
        print(format_traffic("Table 4: intercluster traffic before "
                             "optimization (P=60, C=4)", before))
        print()
        print(format_traffic("Table 5: intercluster traffic after "
                             "optimization (P=60, C=4)", after))
    else:
        print(f"no such table: {args.number} (choose 1, 2 or 4)",
              file=sys.stderr)
        return 2
    return 0


def cmd_figure(args) -> int:
    """Regenerate one of the paper's figures."""
    fig = args.figure
    runner = _runner(args)
    if fig == "fig15":
        print(f"running {len(PAPER_ORDER)} apps "
              f"({runner.jobs} jobs)...", file=sys.stderr)
        bars = figure15_bars_many(PAPER_ORDER, runner=runner)
        print(format_bars("Figure 15: four-cluster performance improvements",
                          bars))
    elif fig == "fig16":
        print(f"running {len(PAPER_ORDER)} apps "
              f"({runner.jobs} jobs)...", file=sys.stderr)
        bars = figure16_bars_many(PAPER_ORDER, runner=runner)
        print(format_bars("Figure 16: two-cluster performance improvements",
                          bars))
    elif fig in SPEEDUP_FIGURES:
        curves = figure_curves(fig, cpu_counts=tuple(args.cpus),
                               runner=runner)
        if args.plot:
            from .harness import ascii_speedup_plot
            spec = SPEEDUP_FIGURES[fig]
            print(ascii_speedup_plot(curves, title=spec.caption))
        else:
            print(format_curves(fig, curves))
    else:
        print(f"no such figure: {fig}", file=sys.stderr)
        return 2
    if runner.hits:
        print(f"({runner.hits} cached, {runner.computed} simulated)",
              file=sys.stderr)
    if runner.trace_files:
        print(f"(wrote {len(runner.trace_files)} Perfetto traces to "
              f"{runner.trace_dir})", file=sys.stderr)
    if runner.jobs > 1 and runner.point_records:
        from .harness import format_stragglers
        print(format_stragglers(runner.point_records), file=sys.stderr)
    return 0


def cmd_app(args) -> int:
    """Run a single application configuration and print its traffic."""
    try:
        make_app(args.app).check_variant(args.variant)
    except ValueError as exc:
        print(f"repro app: error: {exc}", file=sys.stderr)
        return 2
    runner = _runner(args)
    params = bench_params(args.app)
    spec = RunSpec(args.app, args.variant, args.clusters, args.nodes, params,
                   decision=_load_decision(args), pdes=args.pdes,
                   pdes_workers=args.pdes_workers)
    if args.pdes in ("on", "auto"):
        # Execute in-process: a sweep-pool worker would claim the host
        # cores for itself and the partition pool would resolve to one.
        res = spec.execute()
    else:
        res = runner.run_one(spec)
    print(f"{args.app}/{args.variant} on {args.clusters}x{args.nodes}: "
          f"{res.elapsed:.4f} virtual seconds")
    for key, row in sorted(res.traffic.items()):
        if row["count"]:
            print(f"  {key:>12}: {row['count']:>8} messages, "
                  f"{row['bytes'] / 1024:.0f} kbytes")
    if res.stats:
        print(f"  stats: {res.stats}")
    if args.pdes in ("on", "auto"):
        from .obs import format_pdes_summary
        summary = format_pdes_summary(res.sim_stats or {})
        if summary:
            print(f"  {summary}")
    return 0


def cmd_profile(args) -> int:
    """Run apps traced and print the wide-area bottleneck breakdown."""
    from .obs import (format_bottleneck, format_profile_diff,
                      format_profile_table, profile_app)
    from .sim import Tracer

    names = PAPER_ORDER if args.app == "all" else [args.app]
    sample = dict(_parse_sample(args.sample)) if args.sample else None
    # Shared across apps; profile_app clears it per run.  Bounds (ring /
    # sampling) are built in here because profile_app only applies its
    # own ring/sample arguments when it creates the tracer itself.
    tracer = Tracer(ring=args.ring, sample=sample)
    if args.diff:
        before_variant, after_variant = args.diff
        for name in names:
            print(f"profiling {name} {before_variant} vs {after_variant} "
                  f"on {args.clusters}x{args.nodes}...", file=sys.stderr)
            before = profile_app(name, before_variant, args.clusters,
                                 args.nodes, tracer=tracer)
            after = profile_app(name, after_variant, args.clusters,
                                args.nodes, tracer=tracer)
            print(format_profile_diff(before, after))
            print()
        return 0
    reports = []
    for name in names:
        print(f"profiling {name}/{args.variant} on "
              f"{args.clusters}x{args.nodes}...", file=sys.stderr)
        reports.append(profile_app(
            name, args.variant, args.clusters, args.nodes, tracer=tracer))
    for report in reports:
        print(format_bottleneck(report))
        print()
    if len(reports) > 1:
        print(format_profile_table(reports))
    return 0


_TRACE_EXT = {"chrome": "trace.json", "jsonl": "trace.jsonl",
              "folded": "folded"}


def cmd_trace(args) -> int:
    """Run one app traced and export the trace (JSONL, Chrome or folded)."""
    from .apps import make_app
    from .harness import bench_params, run_app
    from .obs import KINDS, write_chrome, write_folded, write_jsonl

    kinds = None
    if args.kinds:
        kinds = frozenset(k.strip() for k in args.kinds.split(",") if k.strip())
        unknown = kinds - set(KINDS)
        if unknown:
            print(f"repro trace: unknown kinds {sorted(unknown)}; "
                  f"see docs/TRACING.md", file=sys.stderr)
            return 2
    from .sim import Tracer
    sample = dict(_parse_sample(args.sample)) if args.sample else None
    tracer = Tracer(kinds=kinds, ring=args.ring, sample=sample)
    res = run_app(make_app(args.app), args.variant, args.clusters,
                  args.nodes, bench_params(args.app), trace=True,
                  tracer=tracer)
    out = args.out or f"{args.app}-{args.variant}.{_TRACE_EXT[args.format]}"
    with open(out, "w") as fh:
        if args.format == "chrome":
            n = write_chrome(tracer.records, fh)
        elif args.format == "folded":
            n = write_folded(tracer.records, fh)
        else:
            n = write_jsonl(tracer.records, fh)
    print(f"{args.app}/{args.variant} on {args.clusters}x{args.nodes}: "
          f"{res.elapsed:.4f} virtual seconds")
    unit = "stacks" if args.format == "folded" else "records"
    print(f"wrote {n} {unit} to {out} ({args.format})")
    if tracer.dropped:
        print(f"({tracer.dropped} records dropped by ring/sampling bounds; "
              f"{len(tracer.records)} kept)")
    if args.format == "chrome":
        print("open in https://ui.perfetto.dev or chrome://tracing")
    elif args.format == "folded":
        print("feed to flamegraph.pl or https://speedscope.app")
    return 0


def cmd_chains(args) -> int:
    """Reconstruct causal message chains with per-hop latency attribution."""
    from .apps import make_app
    from .harness import bench_params, run_app
    from .obs import CHAIN_KINDS, build_chains, format_chains
    from .sim import Tracer

    tracer = Tracer(kinds=CHAIN_KINDS)
    res = run_app(make_app(args.app), args.variant, args.clusters,
                  args.nodes, bench_params(args.app),
                  sequencer=args.sequencer, trace=True, tracer=tracer)
    chains, counts = build_chains(tracer.records)
    print(f"{args.app}/{args.variant} on {args.clusters}x{args.nodes}: "
          f"{res.elapsed:.4f} virtual seconds")
    print(format_chains(chains, counts, limit=args.limit))
    return 0


def cmd_bench(args) -> int:
    """Measure throughput and write/check the committed perf baselines."""
    from .harness import bench

    try:
        suites, tier = bench.parse_suite_request(args.suite)
    except ValueError as exc:
        raise _CLIError(str(exc)) from None
    if args.write:
        if tier is not None:
            raise _CLIError("--write refreshes whole suites; drop the "
                            ":tier suffix")
        return bench.write_baselines(args.repeat, suites)
    return bench.check_baselines(args.repeat, args.threshold, suites,
                                 tier=tier)


def _load_decision(args):
    """The :class:`~repro.tuner.DecisionModel` named by ``--decision``,
    or ``None`` (the fixed default strategy)."""
    path = getattr(args, "decision", None)
    if not path:
        return None
    from .tuner import DecisionModel

    try:
        with open(path, "r", encoding="utf-8") as fh:
            return DecisionModel.from_json(fh.read())
    except (OSError, ValueError, KeyError) as exc:
        raise _CLIError(f"cannot load decision model {path!r}: {exc}")


def _scenario_parts(args):
    """(impairments, faults, tweaks) from the ``repro scenario`` flags."""
    from .scenario import Impairment, parse_cluster_tweak, parse_fault

    impairments = []
    if args.wan_jitter:
        dist, sep, sigma = args.wan_jitter.partition(":")
        if not sep or dist != "lognormal":
            raise _CLIError(f"bad --wan-jitter {args.wan_jitter!r} "
                            "(want lognormal:SIGMA, e.g. lognormal:0.3)")
        impairments.append(Impairment.of("jitter", sigma=float(sigma)))
    if args.wan_loss:
        p, _sep, rto = args.wan_loss.partition(":")
        kw = {"p": float(p)}
        if rto:
            kw["rto"] = float(rto)
        impairments.append(Impairment.of("loss", **kw))
    if args.wan_dip:
        bits = args.wan_dip.split(":")
        if len(bits) > 3:
            raise _CLIError(f"bad --wan-dip {args.wan_dip!r} "
                            "(want DEPTH[:PERIOD[:DUTY]])")
        keys = ("depth", "period", "duty")
        impairments.append(Impairment.of(
            "bw_dip", **{k: float(v) for k, v in zip(keys, bits)}))
    if args.cross_traffic is not None:
        impairments.append(Impairment.of("cross_traffic",
                                         load=args.cross_traffic))
    try:
        faults = tuple(parse_fault(text) for text in (args.fault or []))
        tweaks = tuple(parse_cluster_tweak(text)
                       for text in (args.cluster or []))
    except ValueError as exc:
        raise _CLIError(str(exc)) from None
    return tuple(impairments), faults, tweaks


def cmd_scenario(args) -> int:
    """Run apps clean and under a scenario; print the elapsed comparison."""
    from .scenario import Scenario

    try:
        impairments, faults, tweaks = _scenario_parts(args)
    except ValueError as exc:
        raise _CLIError(str(exc)) from None
    seeds = [args.seed + i for i in range(max(1, args.seeds))]
    scenarios = [Scenario(seed=s, impairments=impairments, faults=faults,
                          clusters=tweaks) for s in seeds]
    print(f"scenario: {scenarios[0].describe()}"
          + (f" (+{len(seeds) - 1} more seeds)" if len(seeds) > 1 else ""),
          file=sys.stderr)

    runner = _runner(args)
    decision = _load_decision(args)
    specs = []
    for app in args.apps:
        params = bench_params(app)
        specs.append(RunSpec(app, args.variant, args.clusters, args.nodes,
                             params, decision=decision))
        specs.extend(RunSpec(app, args.variant, args.clusters, args.nodes,
                             params, scenario=scn, decision=decision)
                     for scn in scenarios)
    results = runner.run(specs)

    width = 1 + len(scenarios)
    header = (f"{'app':<8} {'clean':>10}  "
              + "  ".join(f"{'seed ' + str(s):>10}" for s in seeds)
              + f"  {'slowdown':>8}")
    print(header)
    print("-" * len(header))
    for i, app in enumerate(args.apps):
        group = results[i * width:(i + 1) * width]
        clean, impaired = group[0], group[1:]
        mean = sum(r.elapsed for r in impaired) / len(impaired)
        slow = mean / clean.elapsed if clean.elapsed > 0 else float("inf")
        print(f"{app:<8} {clean.elapsed:>9.4f}s  "
              + "  ".join(f"{r.elapsed:>9.4f}s" for r in impaired)
              + f"  {slow:>7.2f}x")
    if runner.hits:
        print(f"({runner.hits} cached, {runner.computed} simulated)",
              file=sys.stderr)
    if runner.jobs > 1 and runner.point_records:
        from .harness import format_stragglers
        print(format_stragglers(runner.point_records), file=sys.stderr)
    return 0


def cmd_tune(args) -> int:
    """Calibrate a decision model; optionally save it and show the
    before/after effect on the applications."""
    from .scenario import Scenario
    from .tuner import format_model, tune

    try:
        impairments, faults, tweaks = _scenario_parts(args)
    except ValueError as exc:
        raise _CLIError(str(exc)) from None
    scenario = None
    if impairments or faults or tweaks:
        scenario = Scenario(seed=args.seed, impairments=impairments,
                            faults=faults, clusters=tweaks)
        print(f"calibrating under: {scenario.describe()}", file=sys.stderr)
    seeds = tuple(args.seed + i for i in range(max(1, args.seeds)))
    print(f"probing {len(args.sizes)} sizes x {len(args.clusters)} cluster "
          f"counts x {args.reps} reps...", file=sys.stderr)
    model = tune(sizes=tuple(args.sizes), cluster_counts=tuple(args.clusters),
                 nodes_per_cluster=args.nodes,
                 scenarios=(scenario,) if scenario is not None else (None,),
                 seeds=seeds, reps=args.reps)
    print(format_model(model))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(model.to_json())
        print(f"wrote model to {args.out}")
    if not args.apply:
        return 0

    # --apply: every app, fixed strategy vs the freshly tuned model, on
    # the calibration scenario (or clean when none was given).
    runner = _runner(args)
    apps = args.apps or list(PAPER_ORDER)
    n_clusters = max(args.clusters)
    specs = []
    for app in apps:
        params = bench_params(app)
        specs.append(RunSpec(app, args.variant, n_clusters, args.apply_nodes,
                             params, scenario=scenario))
        specs.append(RunSpec(app, args.variant, n_clusters, args.apply_nodes,
                             params, scenario=scenario, decision=model))
    print(f"applying to {len(apps)} apps on {n_clusters}x{args.apply_nodes} "
          f"({runner.jobs} jobs)...", file=sys.stderr)
    results = runner.run(specs)
    header = f"{'app':<8} {'fixed':>10} {'tuned':>10} {'delta':>8}"
    print(header)
    print("-" * len(header))
    improved = 0
    for i, app in enumerate(apps):
        fixed, tuned = results[2 * i], results[2 * i + 1]
        delta = ((tuned.elapsed - fixed.elapsed) / fixed.elapsed
                 if fixed.elapsed > 0 else 0.0)
        improved += tuned.elapsed < fixed.elapsed
        print(f"{app:<8} {fixed.elapsed:>9.4f}s {tuned.elapsed:>9.4f}s "
              f"{delta:>+7.1%}")
    print(f"({improved}/{len(apps)} apps improved)")
    return 0


def cmd_cache(args) -> int:
    """Inspect or clear the on-disk sweep result cache."""
    cache = ResultCache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
    else:
        import os
        count = sum(
            name.endswith(".pkl")
            for _dir, _dirs, files in os.walk(cache.root) for name in files
        ) if os.path.isdir(cache.root) else 0
        print(f"cache: {cache.root} ({count} results)")
    return 0


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for independent runs "
                             "(default: $REPRO_JOBS or 1)")
    parser.add_argument("--batch", type=int, default=None, metavar="B",
                        help="grid points per worker dispatch (default: "
                             "auto — 1 for small batches, larger on big "
                             "grids to amortize pool IPC)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="trace every grid point and write one "
                             "Perfetto file per point into DIR (traced "
                             "points bypass the result cache)")
    parser.add_argument("--trace-ring", type=int, default=None, metavar="N",
                        help="with --trace-dir: keep only the last N "
                             "records per run (ring buffer)")
    parser.add_argument("--trace-sample", default=None, metavar="K1=k,...",
                        help="with --trace-dir: keep 1 in k records of "
                             "each listed kind (deterministic)")


def _add_pdes_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pdes", choices=["off", "on", "auto"], default=None,
                        help="partitioned (per-cluster) execution across "
                             "host cores; identical results (default: "
                             "the REPRO_PDES environment variable)")
    parser.add_argument("--pdes-workers", type=int, default=None, metavar="N",
                        help="partition worker count (default: one per "
                             "cluster, capped at host cores)")


def _add_bound_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ring", type=int, default=None, metavar="N",
                        help="keep only the last N trace records "
                             "(ring buffer)")
    parser.add_argument("--sample", default=None, metavar="K1=k,...",
                        help="keep 1 in k records of each listed kind "
                             "(deterministic; e.g. msg.send=8)")


def _add_impairment_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--wan-jitter", default=None, metavar="lognormal:S",
                        help="latency jitter: median-preserving lognormal "
                             "with shape S, e.g. lognormal:0.3")
    parser.add_argument("--wan-loss", default=None, metavar="P[:RTO]",
                        help="packet loss probability P per transfer, "
                             "retransmit timeout RTO seconds (0.05)")
    parser.add_argument("--wan-dip", default=None,
                        metavar="DEPTH[:PERIOD[:DUTY]]",
                        help="periodic bandwidth dip: fraction DEPTH lost "
                             "for DUTY of each PERIOD seconds")
    parser.add_argument("--cross-traffic", type=float, default=None,
                        metavar="LOAD",
                        help="background traffic as a fraction of each "
                             "transfer's bytes (exponential, mean LOAD)")
    parser.add_argument("--fault", action="append", metavar="SPEC",
                        help="timed fault, e.g. gw_outage@2.0s+0.5s, "
                             "link_flap@1s+0.2s:c0-c1, "
                             "slow_node@0.5s+1s:n3,factor=0.1 (repeatable)")
    parser.add_argument("--cluster", action="append", metavar="SPEC",
                        help="heterogeneity tweak, e.g. "
                             "1:cpu=0.5,nodes=8,link=fast-ethernet "
                             "(repeatable)")


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from 'Optimizing Parallel "
                    "Applications for Wide-Area Clusters'")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list apps, figures, tables")

    p_table = sub.add_parser("table", help="regenerate a table")
    p_table.add_argument("number", type=int)
    _add_sweep_flags(p_table)

    p_fig = sub.add_parser("figure", help="regenerate a figure")
    p_fig.add_argument("figure")
    p_fig.add_argument("--cpus", type=int, nargs="+",
                       default=list(QUICK_CPUS))
    p_fig.add_argument("--plot", action="store_true",
                       help="render as an ASCII chart")
    _add_pdes_flags(p_fig)
    _add_sweep_flags(p_fig)

    p_app = sub.add_parser("app", help="run one application once")
    p_app.add_argument("app", choices=PAPER_ORDER)
    p_app.add_argument("--variant", default="original")
    p_app.add_argument("--clusters", type=int, default=4)
    p_app.add_argument("--nodes", type=int, default=15)
    p_app.add_argument("--decision", default=None, metavar="PATH",
                       help="install a tuned DecisionModel (JSON from "
                            "'repro tune --out'; default: fixed strategy)")
    _add_pdes_flags(p_app)
    _add_sweep_flags(p_app)

    p_prof = sub.add_parser(
        "profile", help="trace a run and print the wide-area bottleneck "
                        "breakdown (docs/TRACING.md)")
    p_prof.add_argument("app", choices=PAPER_ORDER + ["all"])
    p_prof.add_argument("--variant", default="original")
    p_prof.add_argument("--diff", nargs=2, metavar=("BEFORE", "AFTER"),
                        help="profile two variants and print them side by "
                             "side, e.g. --diff original optimized")
    p_prof.add_argument("--clusters", type=int, default=4)
    p_prof.add_argument("--nodes", type=int, default=8)
    _add_bound_flags(p_prof)

    p_trace = sub.add_parser(
        "trace", help="trace a run and export it (JSONL, Chrome "
                      "trace_event for Perfetto, or folded stacks for "
                      "flame-graph tools)")
    p_trace.add_argument("app", choices=PAPER_ORDER)
    p_trace.add_argument("--variant", default="original")
    p_trace.add_argument("--clusters", type=int, default=4)
    p_trace.add_argument("--nodes", type=int, default=8)
    p_trace.add_argument("--format", choices=["jsonl", "chrome", "folded"],
                         default="chrome")
    p_trace.add_argument("--out", default=None, metavar="PATH",
                         help="output path (default <app>-<variant>."
                              "trace.json[l] / .folded)")
    p_trace.add_argument("--kinds", default=None, metavar="K1,K2",
                         help="emit-time filter: comma-separated record "
                              "kinds to keep (default: all)")
    _add_bound_flags(p_trace)

    p_chains = sub.add_parser(
        "chains", help="reconstruct causal message chains with per-hop "
                       "latency attribution (docs/TRACING.md)")
    p_chains.add_argument("app", choices=PAPER_ORDER)
    p_chains.add_argument("--variant", default="original")
    p_chains.add_argument("--clusters", type=int, default=4)
    p_chains.add_argument("--nodes", type=int, default=8)
    p_chains.add_argument("--sequencer", default=None,
                          choices=["centralized", "distributed", "migrating"],
                          help="override the variant's sequencer protocol "
                               "(centralized makes broadcast-only apps "
                               "ship intercluster sequencer requests)")
    p_chains.add_argument("--limit", type=int, default=5, metavar="N",
                          help="slowest intercluster chains to print")

    p_bench = sub.add_parser(
        "bench", help="measure host throughput and write/check the "
                      "committed BENCH_*.json perf baselines (the CI "
                      "perf-smoke entry point)")
    b_mode = p_bench.add_mutually_exclusive_group(required=True)
    b_mode.add_argument("--write", action="store_true",
                        help="measure and (over)write the baselines")
    b_mode.add_argument("--check", action="store_true",
                        help="measure and fail on >threshold regressions")
    p_bench.add_argument("--repeat", type=int, default=3,
                         help="repetitions per workload (best is reported)")
    p_bench.add_argument("--threshold", type=float, default=0.30,
                         help="allowed fractional drop vs baseline (0.30)")
    p_bench.add_argument("--suite", default="all", metavar="SUITE[:TIER]",
                         help="restrict to one baseline suite, optionally "
                              "one tier of it, e.g. engine:compiled "
                              "(default: all)")

    p_scn = sub.add_parser(
        "scenario", help="run apps clean and under WAN impairments, "
                         "faults and heterogeneity tweaks "
                         "(docs/SCENARIOS.md)")
    p_scn.add_argument("apps", nargs="+", choices=PAPER_ORDER,
                       metavar="APP",
                       help=f"applications to run ({', '.join(PAPER_ORDER)})")
    p_scn.add_argument("--variant", default="original")
    p_scn.add_argument("--clusters", type=int, default=4)
    p_scn.add_argument("--nodes", type=int, default=8)
    _add_impairment_flags(p_scn)
    p_scn.add_argument("--decision", default=None, metavar="PATH",
                       help="install a tuned DecisionModel (JSON from "
                            "'repro tune --out'; default: fixed strategy)")
    p_scn.add_argument("--seed", type=int, default=0,
                       help="base scenario seed (default 0)")
    p_scn.add_argument("--seeds", type=int, default=1, metavar="K",
                       help="run K consecutive seeds starting at --seed")
    _add_sweep_flags(p_scn)

    p_tune = sub.add_parser(
        "tune", help="calibrate collective primitives inside the simulator "
                     "and fit a DecisionModel (docs/TUNING.md)")
    p_tune.add_argument("--sizes", type=int, nargs="+",
                        default=list(DEFAULT_SIZES), metavar="BYTES",
                        help="message sizes to probe "
                             f"(default: {' '.join(map(str, DEFAULT_SIZES))})")
    p_tune.add_argument("--clusters", type=int, nargs="+",
                        default=list(DEFAULT_CLUSTERS), metavar="N",
                        help="cluster counts to probe (default: "
                             f"{' '.join(map(str, DEFAULT_CLUSTERS))})")
    p_tune.add_argument("--nodes", type=int, default=4,
                        help="nodes per cluster in probe topologies (4)")
    p_tune.add_argument("--reps", type=int, default=3,
                        help="repetitions per probe point (3)")
    _add_impairment_flags(p_tune)
    p_tune.add_argument("--seed", type=int, default=0,
                        help="base scenario seed (default 0)")
    p_tune.add_argument("--seeds", type=int, default=1, metavar="K",
                        help="average probes over K consecutive seeds "
                             "(impaired scenarios only)")
    p_tune.add_argument("--out", default=None, metavar="PATH",
                        help="write the fitted DecisionModel as JSON")
    p_tune.add_argument("--apply", action="store_true",
                        help="after fitting, run the apps fixed-vs-tuned "
                             "on the calibration scenario and print a "
                             "before/after table")
    p_tune.add_argument("--apps", nargs="*", choices=PAPER_ORDER,
                        default=None, metavar="APP",
                        help="with --apply: restrict to these apps")
    p_tune.add_argument("--variant", default="original",
                        help="with --apply: app variant (original)")
    p_tune.add_argument("--apply-nodes", type=int, default=8, metavar="N",
                        help="with --apply: nodes per cluster (8); the "
                             "cluster count is max(--clusters)")
    _add_sweep_flags(p_tune)

    p_cache = sub.add_parser("cache", help="inspect or clear the result cache")
    p_cache.add_argument("action", choices=["info", "clear"], nargs="?",
                         default="info")

    args = parser.parse_args(argv)
    commands = {"list": cmd_list, "table": cmd_table, "figure": cmd_figure,
                "app": cmd_app, "profile": cmd_profile, "trace": cmd_trace,
                "chains": cmd_chains, "cache": cmd_cache,
                "bench": cmd_bench, "scenario": cmd_scenario,
                "tune": cmd_tune}
    try:
        return commands[args.command](args)
    except _CLIError as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
