"""Command-line interface: regenerate paper experiments from the shell.

Examples::

    python -m repro list                      # apps, figures, tables
    python -m repro table 1                   # Table 1 micro-benchmarks
    python -m repro table 2
    python -m repro table 4                   # tables 4 & 5 (traffic)
    python -m repro figure fig5               # one speedup figure
    python -m repro figure fig15              # the 4-cluster summary
    python -m repro app water --variant optimized --clusters 4 --nodes 15
"""

from __future__ import annotations

import argparse
import sys

from .apps import PAPER_ORDER, make_app
from .harness import (
    QUICK_CPUS,
    SPEEDUP_FIGURES,
    bench_params,
    figure15_bars,
    figure16_bars,
    figure_curves,
    format_bars,
    format_curves,
    format_table1,
    format_table2,
    format_traffic,
    run_app,
    table1_microbenchmarks,
    table2_row,
    traffic_row,
)


def cmd_list(_args) -> int:
    """List the runnable applications, figures and tables."""
    print("applications:", ", ".join(PAPER_ORDER))
    print("figures:", ", ".join(list(SPEEDUP_FIGURES) + ["fig15", "fig16"]))
    print("tables: 1, 2, 4 (prints 4 and 5)")
    return 0


def cmd_table(args) -> int:
    """Regenerate one of the paper's tables."""
    if args.number == 1:
        print(format_table1(table1_microbenchmarks()))
    elif args.number == 2:
        rows = []
        for name in PAPER_ORDER:
            print(f"running {name}...", file=sys.stderr)
            rows.append(table2_row(name))
        print(format_table2(rows))
    elif args.number in (4, 5):
        before, after = [], []
        for name in PAPER_ORDER:
            print(f"running {name}...", file=sys.stderr)
            before.append(traffic_row(name, "original"))
            after.append(traffic_row(name, "optimized"))
        print(format_traffic("Table 4: intercluster traffic before "
                             "optimization (P=60, C=4)", before))
        print()
        print(format_traffic("Table 5: intercluster traffic after "
                             "optimization (P=60, C=4)", after))
    else:
        print(f"no such table: {args.number} (choose 1, 2 or 4)",
              file=sys.stderr)
        return 2
    return 0


def cmd_figure(args) -> int:
    """Regenerate one of the paper's figures."""
    fig = args.figure
    if fig == "fig15":
        bars = {}
        for name in PAPER_ORDER:
            print(f"running {name}...", file=sys.stderr)
            bars[name] = figure15_bars(name)
        print(format_bars("Figure 15: four-cluster performance improvements",
                          bars))
    elif fig == "fig16":
        bars = {}
        for name in PAPER_ORDER:
            print(f"running {name}...", file=sys.stderr)
            bars[name] = figure16_bars(name)
        print(format_bars("Figure 16: two-cluster performance improvements",
                          bars))
    elif fig in SPEEDUP_FIGURES:
        curves = figure_curves(fig, cpu_counts=tuple(args.cpus))
        if args.plot:
            from .harness import ascii_speedup_plot
            spec = SPEEDUP_FIGURES[fig]
            print(ascii_speedup_plot(curves, title=spec.caption))
        else:
            print(format_curves(fig, curves))
    else:
        print(f"no such figure: {fig}", file=sys.stderr)
        return 2
    return 0


def cmd_app(args) -> int:
    """Run a single application configuration and print its traffic."""
    app = make_app(args.app)
    params = bench_params(args.app)
    res = run_app(app, args.variant, args.clusters, args.nodes, params)
    print(f"{args.app}/{args.variant} on {args.clusters}x{args.nodes}: "
          f"{res.elapsed:.4f} virtual seconds")
    for key, row in sorted(res.traffic.items()):
        if row["count"]:
            print(f"  {key:>12}: {row['count']:>8} messages, "
                  f"{row['bytes'] / 1024:.0f} kbytes")
    if res.stats:
        print(f"  stats: {res.stats}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from 'Optimizing Parallel "
                    "Applications for Wide-Area Clusters'")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list apps, figures, tables")

    p_table = sub.add_parser("table", help="regenerate a table")
    p_table.add_argument("number", type=int)

    p_fig = sub.add_parser("figure", help="regenerate a figure")
    p_fig.add_argument("figure")
    p_fig.add_argument("--cpus", type=int, nargs="+",
                       default=list(QUICK_CPUS))
    p_fig.add_argument("--plot", action="store_true",
                       help="render as an ASCII chart")

    p_app = sub.add_parser("app", help="run one application once")
    p_app.add_argument("app", choices=PAPER_ORDER)
    p_app.add_argument("--variant", default="original")
    p_app.add_argument("--clusters", type=int, default=4)
    p_app.add_argument("--nodes", type=int, default=15)

    args = parser.parse_args(argv)
    return {"list": cmd_list, "table": cmd_table,
            "figure": cmd_figure, "app": cmd_app}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
