"""Orca shared-object model.

Orca processes communicate exclusively through operations on *shared
objects*.  The runtime implements an object either **non-replicated**
(stored on one owner node; remote invocations become RPCs) or
**replicated** (every node holds a copy; read operations run locally,
write operations are broadcast with a write-update, function-shipping
protocol in total order).

Operations may *block* on a guard (Orca condition synchronization) by
raising :class:`Blocked`; the owner retries the invocation after every
write to the object — this is how a worker blocks on an empty job queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Union

__all__ = ["Blocked", "Operation", "ObjectSpec", "Replica", "estimate_bytes"]


class Blocked(Exception):
    """Raised by an operation whose guard does not (yet) hold."""


SizeSpec = Union[int, Callable[..., int]]
CostSpec = Union[float, Callable[..., float]]

#: Default CPU cost of executing one operation (unmarshalling + dispatch).
DEFAULT_OP_COST = 2e-6


def _resolve(spec, *args) -> float:
    return spec(*args) if callable(spec) else spec


def estimate_bytes(value: Any) -> int:
    """Crude structural size estimate used when no explicit size is given."""
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(estimate_bytes(v) for v in value)
    if isinstance(value, dict):
        return 8 + sum(estimate_bytes(k) + estimate_bytes(v)
                       for k, v in value.items())
    nbytes = getattr(value, "nbytes", None)  # numpy arrays
    if nbytes is not None:
        return int(nbytes)
    return 64


@dataclass
class Operation:
    """One operation on a shared object.

    ``fn(state, *args)`` mutates/queries ``state`` and returns a result.
    ``writes`` decides the protocol (RPC/local for reads, broadcast for
    writes on replicated objects).  ``arg_bytes``/``result_bytes`` size the
    messages; ``cpu_cost`` charges the executing node's CPU.
    """

    fn: Callable[..., Any]
    writes: bool = False
    arg_bytes: Optional[SizeSpec] = None
    result_bytes: Optional[SizeSpec] = None
    cpu_cost: CostSpec = DEFAULT_OP_COST

    def args_size(self, args: tuple) -> int:
        if self.arg_bytes is None:
            return estimate_bytes(args)
        return int(_resolve(self.arg_bytes, *args))

    def result_size(self, result: Any) -> int:
        if self.result_bytes is None:
            return estimate_bytes(result)
        return int(_resolve(self.result_bytes, result))

    def cost(self, args: tuple) -> float:
        return float(_resolve(self.cpu_cost, *args))


@dataclass
class ObjectSpec:
    """Declaration of a shared object.

    ``state_factory`` builds the initial state; for replicated objects it
    is called once per node so every replica owns independent state.
    ``owner`` is the node storing a non-replicated object.
    """

    name: str
    state_factory: Callable[[], Any]
    operations: Dict[str, Operation]
    replicated: bool = False
    owner: int = 0

    def __post_init__(self):
        if not self.operations:
            raise ValueError(f"object {self.name!r} declares no operations")

    def op(self, op_name: str) -> Operation:
        try:
            return self.operations[op_name]
        except KeyError:
            raise KeyError(
                f"object {self.name!r} has no operation {op_name!r}; "
                f"available: {sorted(self.operations)}") from None


@dataclass
class Replica:
    """Per-node instantiation of an object (state + parked guard waiters)."""

    spec: ObjectSpec
    state: Any
    # Invocations parked on a failed guard, retried after each write.
    parked: list = field(default_factory=list)

    def execute(self, op_name: str, args: tuple) -> Any:
        """Run the operation against this replica's state (may raise Blocked)."""
        return self.spec.op(op_name).fn(self.state, *args)
