"""Totally-ordered broadcast with write-update function shipping.

Every write to a replicated object becomes one logical broadcast:

1. the sender ships the operation to the *stamping site* (which cluster
   that is depends on the sequencer protocol — see
   :mod:`repro.orca.sequencer`);
2. the stamping site acquires the next global sequence number;
3. the stamped operation is disseminated: a Myrinet multicast inside the
   stamping cluster plus one WAN transfer per remote cluster, whose
   gateway re-multicasts locally;
4. every node applies broadcasts strictly in sequence order (a hold-back
   queue reorders early arrivals), executing the operation against its
   local replica — the function-shipping write-update;
5. the sender's invocation completes when its *own* node has applied the
   operation (the Orca completion rule).

Total order is therefore global across all replicated objects, exactly as
in the single-sequencer Orca runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from ..sim import Event, Simulator
from ..network import Fabric
from .sequencer import SequencerProtocol

__all__ = ["TotalOrderBroadcast", "BcastPayload"]

BCAST_PORT = "orca.bcast"

#: Above this payload size the runtime switches from PB (ship the operation
#: to the sequencer, which broadcasts it) to BB (ask the sequencer for a
#: sequence number with a small control message and broadcast the payload
#: from the *sender*), exactly like the Orca/FM implementation.
BB_THRESHOLD = 8 * 1024
SEQ_REQUEST_BYTES = 16


@dataclass
class BcastPayload:
    seq: int
    obj_name: str
    op_name: str
    args: tuple
    sender: int


@dataclass
class _NodeDeliveryState:
    next_expected: int = 0
    holdback: Dict[int, BcastPayload] = field(default_factory=dict)
    applied: list = field(default_factory=list)  # seq numbers, for asserts


class TotalOrderBroadcast:
    """The broadcast engine shared by all replicated objects."""

    def __init__(self, sim: Simulator, fabric: Fabric,
                 protocol: SequencerProtocol,
                 apply_fn: Callable[[int, BcastPayload], Generator],
                 dedicated_sequencer_node: bool = False,
                 fast_paths: bool = False,
                 apply_fast: Optional[Callable[[int, BcastPayload,
                                                Callable[[Any], None]],
                                               None]] = None,
                 decision: Optional[Any] = None):
        """``apply_fn(node, payload)`` is a generator provided by the
        runtime that executes the operation on ``node``'s replica and
        charges its CPU; it returns the op result.

        With ``fast_paths=True`` delivery runs as flat callback chains
        instead of per-node dispatcher processes, and ``apply_fast(node,
        payload, k)`` — the chain counterpart of ``apply_fn``, calling
        ``k(result)`` where the generator would return — must be
        provided.  The two tiers are bit-identical in virtual time,
        traffic, and trace records; see ``_arm`` for the parity
        argument.

        ``decision`` is an optional :class:`repro.tuner.DecisionModel`:
        when installed, every broadcast asks it for the PB/BB protocol,
        the WAN fan-out shape, and the striping factor instead of using
        the fixed ``size >= BB_THRESHOLD`` rule and the flat tree.
        ``None`` keeps the fixed strategy — bit-identical to the
        pre-tuner runtime (see docs/TUNING.md)."""
        self.sim = sim
        self.fabric = fabric
        self.topo = fabric.topo
        self.protocol = protocol
        self.apply_fn = apply_fn
        self.decision = decision
        self.fast_paths = fast_paths
        self.apply_fast = apply_fast
        if fast_paths and apply_fast is None:
            raise ValueError("fast_paths=True requires an apply_fast chain")
        self._delivery = [_NodeDeliveryState() for _ in range(self.topo.n_nodes)]
        # seq -> (sender node, completion event)
        self._completions: Dict[int, Tuple[int, Event]] = {}
        self._stat_broadcasts = 0
        # Per-sender issue tickets: broadcasts from one node acquire their
        # global sequence numbers in the order the node *issued* them, so
        # asynchronous writes keep program order even when a later
        # synchronous write races ahead of the spawned issue process.
        self._issue_next: Dict[int, int] = {}
        self._issue_turn: Dict[int, int] = {}
        self._issue_waiters: Dict[int, Dict[int, Event]] = {}
        # Stamping node per cluster: by default the first node of the
        # cluster also runs the sequencer; the paper mentions using a
        # dedicated node as cluster sequencer as a further optimization.
        self._dedicated = dedicated_sequencer_node
        if fast_paths:
            for node in fabric.nodes:
                self._arm(node.nid)
        else:
            for node in fabric.nodes:
                sim.spawn(self._dispatcher(node.nid),
                          name=f"bcastdisp{node.nid}")

    # ----------------------------------------------------------------- API

    def stamping_node(self, cluster: int) -> int:
        nodes = self.topo.nodes_in(cluster)
        # "Dedicated" sequencer: the last node of the cluster, which the
        # harness then excludes from application work.
        return nodes[-1] if self._dedicated else nodes[0]

    def next_issue(self, sender: int) -> int:
        """Allocate the sender-local issue ticket for a broadcast.

        Must be called synchronously at the point the application issues
        the write (``invoke``/``invoke_async``), then passed to
        :meth:`broadcast`."""
        ticket = self._issue_next.get(sender, 0)
        self._issue_next[sender] = ticket + 1
        return ticket

    def _await_issue_turn(self, sender: int, issue: int) -> Generator:
        while self._issue_turn.get(sender, 0) != issue:
            gate = Event(self.sim)
            self._issue_waiters.setdefault(sender, {})[issue] = gate
            yield gate

    def _advance_issue_turn(self, sender: int) -> None:
        turn = self._issue_turn.get(sender, 0) + 1
        self._issue_turn[sender] = turn
        waiter = self._issue_waiters.get(sender, {}).pop(turn, None)
        if waiter is not None:
            waiter.succeed(None)

    def broadcast(self, sender: int, obj_name: str, op_name: str,
                  args: tuple, size: int,
                  issue: Optional[int] = None) -> Generator:
        """Sender-side flow; returns the op result from the sender's replica."""
        if issue is None:
            issue = self.next_issue(sender)
        self._stat_broadcasts += 1
        sender_cluster = self.topo.cluster_of(sender)
        stamp_cluster = self.protocol.stamping_cluster(sender_cluster)
        stamp_node = self.stamping_node(stamp_cluster)
        if self.decision is None:
            bb_mode = size >= BB_THRESHOLD
            shape, streams = "flat", 1
        else:
            strat = self.decision.strategy(size, self.topo.n_clusters)
            bb_mode, shape, streams = strat.bb, strat.shape, strat.streams
        tr = self.fabric.tracer
        traced = tr.enabled
        t_issue = self.sim.now
        if traced:
            tr.emit(t_issue, "bcast.issue", sender=sender, obj=obj_name,
                    op=op_name, size=size, issue=issue)

        # 1. Ship the operation — or, for large payloads (BB mode), just a
        #    sequence-number request — to the stamping site.
        if stamp_node != sender:
            req_size = SEQ_REQUEST_BYTES if bb_mode else size
            t0 = self.sim.now
            yield from self.fabric.send_and_wait(
                sender, stamp_node, req_size, port="orca.seqreq")
            if traced:
                now = self.sim.now
                tr.emit(now, "seq.request", sender=sender,
                        stamp_node=stamp_node, size=req_size, bb=bb_mode,
                        inter=not self.topo.same_cluster(sender, stamp_node),
                        t0=t0, dur=now - t0)

        # 2. Order.  Same-sender broadcasts take their tickets in issue
        #    order; the acquire generator models token/migration delays.
        yield from self._await_issue_turn(sender, issue)
        seq = None
        if self.fast_paths:
            # Analytic stamp when ordering is local and the instant is
            # quiet; an uncontended remote token takes the deferred
            # shortcut (an analytic hop-delay event); contended instants
            # hand back to the acquire generator so same-instant races
            # linearize identically.
            seq = self.protocol.try_acquire(stamp_cluster)
            if seq is not None:
                self.sim._n_fast += 1
            else:
                ev = self.protocol.try_acquire_deferred(stamp_cluster)
                if ev is not None:
                    self.sim._n_fast += 1
                    seq = yield ev
                else:
                    self.sim._n_fallback += 1
        if seq is None:
            seq = yield from self.protocol.acquire(stamp_cluster)
        self._advance_issue_turn(sender)

        payload = BcastPayload(seq=seq, obj_name=obj_name, op_name=op_name,
                               args=args, sender=sender)
        done = Event(self.sim)
        self._completions[seq] = (sender, done)

        if bb_mode and stamp_node != sender:
            # The sequence number travels back; the sender disseminates.
            t0 = self.sim.now
            yield from self.fabric.send_and_wait(
                stamp_node, sender, SEQ_REQUEST_BYTES, port="orca.seqgrant")
            if traced:
                now = self.sim.now
                tr.emit(now, "seq.grant", sender=sender,
                        stamp_node=stamp_node,
                        inter=not self.topo.same_cluster(sender, stamp_node),
                        t0=t0, dur=now - t0)
        origin = sender if bb_mode else stamp_node
        origin_cluster = sender_cluster if bb_mode else stamp_cluster

        # 3. Disseminate from the origin node, in the background.
        if self.fast_paths:
            if self.sim.idle_at_now():
                # Quiet instant: launch the chain inline — the spawn
                # bootstrap a process-based dissemination would pay is
                # unobservable here.
                self._fast_disseminate(origin, payload, size, shape, streams)
            else:
                # Busy instant: defer one dispatch, the exact depth of
                # the legacy spawn bootstrap.
                self.sim._n_fallback += 1
                self.sim.after(0.0, lambda _ev: self._fast_disseminate(
                    origin, payload, size, shape, streams))
        else:
            self.sim.spawn(self._disseminate(origin, origin_cluster, payload,
                                             size, shape, streams),
                           name=f"dissem{seq}")

        # 4./5. Wait until our own node applied it.
        result = yield done
        if tr.enabled:
            now = self.sim.now
            tr.emit(now, "bcast.complete", sender=sender, seq=seq,
                    obj=obj_name, op=op_name, size=size,
                    t0=t_issue, dur=now - t_issue)
        return result

    # ------------------------------------------------------------ internals

    def _disseminate(self, stamp_node: int, stamp_cluster: int,
                     payload: BcastPayload, size: int, shape: str = "flat",
                     streams: int = 1) -> Generator:
        waits = []
        # Local multicast within the stamping cluster.
        done = yield from self.fabric.multicast_local(
            stamp_node, size, payload=payload, port=BCAST_PORT,
            kind="bcast")
        waits.append(done)
        # One trip up the access link, then WAN transfers on the PVCs
        # (tree shape and striping from the installed strategy); every
        # remote gateway re-multicasts into its cluster.
        if self.topo.n_clusters > 1:
            done = yield from self.fabric.wan_fanout_multicast(
                stamp_node, size, payload=payload, port=BCAST_PORT,
                kind="bcast", shape=shape, streams=streams)
            waits.append(done)
        yield self.sim.all_of(waits)

    def _dispatcher(self, node: int) -> Generator:
        """Per-node delivery: hold back until in order, then apply."""
        st = self._delivery[node]
        port = self.fabric.nodes[node].port(BCAST_PORT)
        while True:
            msg = yield port.get()
            payload: BcastPayload = msg.payload
            st.holdback[payload.seq] = payload
            while st.next_expected in st.holdback:
                current = st.holdback.pop(st.next_expected)
                result = yield from self.apply_fn(node, current)
                tr = self.fabric.tracer
                if tr.enabled:
                    tr.emit(self.sim.now, "bcast.apply", node=node,
                            seq=current.seq, sender=current.sender)
                st.applied.append(current.seq)
                st.next_expected += 1
                completion = self._completions.get(current.seq)
                if completion is not None and completion[0] == node:
                    del self._completions[current.seq]
                    completion[1].succeed(result)

    # ----------------------------------------------------- fast delivery tier
    #
    # The callback-chain counterpart of _disseminate/_dispatcher.  Parity
    # with the process tier, flow by flow:
    #
    # * arrival — the armed getter's callback runs at the dispatch of the
    #   same event a dispatcher process would resume on (the put-side
    #   succeed, or the get-side immediate grant when a message was
    #   already queued), so holdback mutation happens at the identical
    #   dispatch position;
    # * apply — ``apply_fast`` attaches its continuation to the same CPU
    #   charge event the ``apply_fn`` generator yields on, so the
    #   ``bcast.apply`` emit, applied-list append, and completion
    #   succeed all run at the legacy dispatch;
    # * re-arm — only after the drain stalls on a gap, exactly where the
    #   dispatcher loops back to ``port.get()``;
    # * dissemination — the chain charges the same sender CPU costs
    #   back-to-back (the WAN fan-out charge is requested only once the
    #   local-multicast charge completes, preserving FIFO order against
    #   concurrent requesters) and launches the same fast legs.  The
    #   legacy tail ``all_of`` wait is dropped: nothing ever waits on
    #   the dissemination process, so it is unobservable.

    def _fast_disseminate(self, origin: int, payload: BcastPayload,
                          size: int, shape: str = "flat",
                          streams: int = 1) -> None:
        fab = self.fabric
        if self.topo.n_clusters > 1:
            fab.multicast_local_chain(
                origin, size, payload=payload, port=BCAST_PORT, kind="bcast",
                then=lambda _done: fab.wan_fanout_multicast_chain(
                    origin, size, payload=payload, port=BCAST_PORT,
                    kind="bcast", shape=shape, streams=streams))
        else:
            fab.multicast_local_chain(origin, size, payload=payload,
                                      port=BCAST_PORT, kind="bcast")

    def _arm(self, node: int) -> None:
        """Park a one-shot delivery continuation on the node's bcast port."""
        ev = self.fabric.nodes[node].port(BCAST_PORT).get()
        ev.callbacks.append(lambda _ev, n=node: self._fast_arrival(n, _ev._value))

    def _fast_arrival(self, node: int, msg: Any) -> None:
        st = self._delivery[node]
        payload: BcastPayload = msg.payload
        st.holdback[payload.seq] = payload
        self._fast_drain(node, st)

    def _fast_drain(self, node: int, st: _NodeDeliveryState) -> None:
        if st.next_expected not in st.holdback:
            self._arm(node)  # stalled on a gap: wait for the next arrival
            return
        # Snapshot the whole contiguous in-order run out of the holdback
        # map in one pass and apply it as a single index-chained batch:
        # one dict probe per payload here instead of one per applied
        # payload plus one per drain re-entry.  Safe because exactly one
        # of {armed getter, drain/apply chain} is ever live per node —
        # arrivals during the batch queue in the port channel and are
        # only seen by the drain re-entry below, so the pops cannot race
        # a concurrent drain.  Apply order, dispatch depths, and trace
        # records are identical to the one-at-a-time drain.
        holdback = st.holdback
        nxt = st.next_expected
        run = []
        while nxt in holdback:
            run.append(holdback.pop(nxt))
            nxt += 1
        self._apply_run(node, st, run, 0)

    def _apply_run(self, node: int, st: _NodeDeliveryState,
                   run: list, i: int) -> None:
        if i == len(run):
            # Batch done: arrivals that landed while applying (their
            # seqs are beyond the snapshot) drain next, or we re-arm.
            self._fast_drain(node, st)
            return
        current = run[i]
        self.apply_fast(
            node, current,
            lambda result: self._fast_applied(node, st, run, i, result))

    def _fast_applied(self, node: int, st: _NodeDeliveryState,
                      run: list, i: int, result: Any) -> None:
        current = run[i]
        tr = self.fabric.tracer
        if tr.enabled:
            tr.emit(self.sim.now, "bcast.apply", node=node,
                    seq=current.seq, sender=current.sender)
        st.applied.append(current.seq)
        st.next_expected += 1
        completion = self._completions.get(current.seq)
        if completion is not None and completion[0] == node:
            del self._completions[current.seq]
            completion[1].succeed(result)
        self._apply_run(node, st, run, i + 1)

    # ------------------------------------------------------------- testing

    def applied_sequence(self, node: int) -> list:
        return list(self._delivery[node].applied)

    @property
    def broadcasts_sent(self) -> int:
        return self._stat_broadcasts
