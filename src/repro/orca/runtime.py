"""The Orca-like runtime system (RTS).

Application processes interact with the RTS through a per-node
:class:`Context`:

* ``invoke(obj, op, *args)`` — the Orca shared-object abstraction.  The
  runtime picks the protocol: local call, RPC to the owner, or
  totally-ordered broadcast (write-update) for writes to replicated
  objects.  Operations may block on guards (:class:`repro.orca.Blocked`).
* ``send/receive`` — the lower-level asynchronous message primitives of
  the Orca RTS, which the paper's RA and rewritten-in-C SOR use directly.
* ``compute(seconds)`` — charge application compute to the node's CPU.

All methods are generators to be driven with ``yield from`` inside a
simulation process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..metrics.counters import TrafficMeter
from ..network import Fabric, Message
from ..sim import Event, Simulator
from .broadcast import BcastPayload, TotalOrderBroadcast
from .objects import Blocked, ObjectSpec, Operation, Replica
from .sequencer import SequencerProtocol, make_sequencer

__all__ = ["OrcaRuntime", "Context", "reset_req_ids"]

RPC_PORT = "orca.rpc"
#: CPU cost of evaluating a guard that fails.
GUARD_EVAL_COST = 1e-6

#: Request ids are per *caller node* (``caller * STRIDE + seq``), like
#: message ids — deterministic per site, so a partitioned (PDES) run
#: allocates exactly the ids the single-process oracle does.
REQ_ID_STRIDE = 1_000_000

_req_site_seq: Dict[int, int] = {}


def _alloc_req_id(caller: int) -> int:
    seq = _req_site_seq.get(caller, 0)
    _req_site_seq[caller] = seq + 1
    return caller * REQ_ID_STRIDE + seq


def reset_req_ids() -> None:
    """Restart RPC request-id allocation (see
    :func:`repro.network.message.reset_ids` — same run-local-trace
    rationale; request ids only pair an RPC with its reply port within
    one run)."""
    _req_site_seq.clear()


@dataclass
class _RpcRequest:
    req_id: int
    obj_name: str
    op_name: str
    args: tuple
    caller: int
    result_port: str
    req_size: int


class OrcaRuntime:
    """One RTS instance per simulated machine configuration."""

    def __init__(self, sim: Simulator, fabric: Fabric,
                 sequencer: str = "distributed",
                 dedicated_sequencer_node: bool = False,
                 fast_paths: Optional[bool] = None,
                 decision: Optional[Any] = None):
        """``fast_paths`` selects the control-plane tier: ``True`` runs
        broadcast delivery and RPC service as flat callback chains,
        ``False`` as generator processes, ``None`` (default) inherits
        the fabric's tier.  Both tiers are bit-identical in virtual
        time, answers, traffic, and trace records; the fast tier only
        reduces host-side event and process counts.  Runtime fast paths
        require a fast-path fabric — the chains call the fabric's
        chain-style entry points directly.

        ``decision`` is an optional :class:`repro.tuner.DecisionModel`
        consulted per broadcast for the PB/BB protocol, WAN fan-out
        shape, and striping factor; ``None`` keeps the fixed strategy
        (bit-identical to the pre-tuner runtime).  See docs/TUNING.md."""
        self.sim = sim
        self.fabric = fabric
        self.topo = fabric.topo
        self.meter: TrafficMeter = fabric.meter
        self.fast_paths = fabric.fast_paths if fast_paths is None else fast_paths
        if self.fast_paths and not fabric.fast_paths:
            raise ValueError(
                "OrcaRuntime(fast_paths=True) requires Fabric(fast_paths="
                "True): the runtime's callback chains use the fabric's "
                "chain entry points")
        p = fabric.params
        hop = (p.wan.latency + 2 * p.access.latency
               + 2 * p.gateway.forward_cost)
        self.protocol: SequencerProtocol = make_sequencer(
            sequencer, sim, self.topo.n_clusters, hop,
            tracer=fabric.tracer)
        self.tob = TotalOrderBroadcast(
            sim, fabric, self.protocol, self._apply_bcast,
            dedicated_sequencer_node=dedicated_sequencer_node,
            fast_paths=self.fast_paths, apply_fast=self._apply_bcast_fast,
            decision=decision)
        self.specs: Dict[str, ObjectSpec] = {}
        # Replicated objects: one replica per node.  Non-replicated: the
        # owner's replica only, at [owner].
        self._replicas: Dict[str, Dict[int, Replica]] = {}
        if self.fast_paths:
            for node in fabric.nodes:
                self._arm_rpc(node.nid)
        else:
            for node in fabric.nodes:
                sim.spawn(self._rpc_server(node.nid),
                          name=f"rpcserver{node.nid}")

    # --------------------------------------------------------------- setup

    def register(self, spec: ObjectSpec) -> None:
        """Instantiate a shared object (replicas on every node if replicated)."""
        if spec.name in self.specs:
            raise ValueError(f"object {spec.name!r} already registered")
        self.specs[spec.name] = spec
        if spec.replicated:
            self._replicas[spec.name] = {
                nid: Replica(spec, spec.state_factory())
                for nid in range(self.topo.n_nodes)
            }
        else:
            if not 0 <= spec.owner < self.topo.n_nodes:
                raise ValueError(f"owner {spec.owner} out of range")
            self._replicas[spec.name] = {
                spec.owner: Replica(spec, spec.state_factory())
            }

    def context(self, node: int) -> "Context":
        """The per-node handle application processes program against."""
        if not 0 <= node < self.topo.n_nodes:
            raise ValueError(f"node {node} out of range")
        return Context(self, node)

    def replica(self, obj_name: str, node: int) -> Replica:
        """Direct replica access (tests/diagnostics only)."""
        return self._replicas[obj_name][node]

    def state_of(self, obj_name: str, node: Optional[int] = None) -> Any:
        """Peek at object state (testing/reporting; no simulation cost)."""
        spec = self.specs[obj_name]
        nid = node if node is not None else (0 if spec.replicated else spec.owner)
        return self._replicas[obj_name][nid].state

    # ------------------------------------------------------------ execution

    def _charge(self, node: int, seconds: float) -> Generator:
        cpu = self.fabric.nodes[node].cpu
        if self.fast_paths:
            yield cpu.execute_ev(seconds)
        else:
            yield self.sim.spawn(cpu.execute(seconds))

    def _execute_blocking(self, node: int, replica: Replica, op_name: str,
                          args: tuple) -> Generator:
        """Execute locally, waiting on the guard if necessary."""
        op = replica.spec.op(op_name)
        while True:
            try:
                result = replica.execute(op_name, args)
            except Blocked:
                yield from self._charge(node, GUARD_EVAL_COST)
                gate = Event(self.sim)
                replica.parked.append(("ev", gate))
                yield gate
                continue
            yield from self._charge(node, op.cost(args))
            return result

    def _kick(self, owner: int, replica: Replica) -> None:
        """A write succeeded: wake guard waiters, retry parked RPCs."""
        if not replica.parked:
            return
        parked, replica.parked = replica.parked, []
        retries = []
        for tag, item in parked:
            if tag == "ev":
                item.succeed(None)
            else:
                retries.append(item)
        if not retries:
            return
        if self.fast_paths:
            sim = self.sim
            if sim.idle_at_now():
                self._fast_retry(owner, replica, retries, 0)
            else:
                # Busy instant (e.g. guard waiters were just woken):
                # defer one dispatch, the legacy spawn-bootstrap depth.
                sim._n_fallback += 1
                sim.after(0.0, lambda _ev: self._fast_retry(
                    owner, replica, retries, 0))
        else:
            self.sim.spawn(self._retry_rpcs(owner, replica, retries),
                           name="rpcretry")

    def _retry_rpcs(self, owner: int, replica: Replica,
                    requests: List[_RpcRequest]) -> Generator:
        for req in requests:
            yield from self._serve_request(owner, req)

    def _fast_retry(self, owner: int, replica: Replica,
                    requests: List[_RpcRequest], i: int) -> None:
        """Chain counterpart of :meth:`_retry_rpcs`: strictly sequential —
        request ``i+1`` starts where the generator would resume, after
        ``i``'s reply send overhead (or guard-fail charge)."""
        if i >= len(requests):
            return
        self._serve_chain(owner, requests[i],
                          then=lambda: self._fast_retry(owner, replica,
                                                        requests, i + 1))

    # ------------------------------------------------------------------ RPC

    def _rpc_server(self, node: int) -> Generator:
        port = self.fabric.nodes[node].port(RPC_PORT)
        while True:
            msg = yield port.get()
            # Serve concurrently: the operation itself executes atomically
            # on arrival (Python-level), while the CPU charge and the reply
            # proceed in their own process.  A serial server would bound
            # RPC throughput by the CPU-queue wait behind application
            # compute quanta, which a real interrupt-driven RTS does not.
            self.sim.spawn(self._serve_request(node, msg.payload),
                           name=f"rpcserve{node}")

    def _serve_request(self, node: int, req: _RpcRequest) -> Generator:
        replica = self._replicas[req.obj_name].get(node)
        if replica is None:
            raise RuntimeError(
                f"RPC for {req.obj_name!r} arrived at non-owner node {node}")
        op = replica.spec.op(req.op_name)
        try:
            result = replica.execute(req.op_name, req.args)
        except Blocked:
            yield from self._charge(node, GUARD_EVAL_COST)
            replica.parked.append(("rpc", req))
            return
        yield from self._charge(node, op.cost(req.args))
        if op.writes:
            self._kick(node, replica)
        result_size = op.result_size(result)
        yield from self.fabric.send(
            node, req.caller, result_size, payload=(result, result_size),
            port=req.result_port, kind="rpc")

    # ------------------------------------------------------- RPC (fast tier)
    #
    # Chain counterparts of _rpc_server/_serve_request.  Parity: the
    # armed getter's continuation runs at the dispatch the server
    # process would resume on; the serve body attaches to the same CPU
    # charge events the generator yields on; a fresh arrival at a busy
    # instant defers the serve one dispatch — the legacy spawn
    # bootstrap — *before* re-arming, matching the server's
    # spawn-then-get push order.

    def _arm_rpc(self, node: int) -> None:
        ev = self.fabric.nodes[node].port(RPC_PORT).get()
        ev.callbacks.append(
            lambda _ev, n=node: self._fast_rpc_arrival(n, _ev._value))

    def _fast_rpc_arrival(self, node: int, msg: Message) -> None:
        sim = self.sim
        req: _RpcRequest = msg.payload
        if sim.idle_at_now():
            # Quiet instant: serve inline (the spawn bootstrap is
            # unobservable), then re-arm.
            sim._n_fast += 1
            self._serve_chain(node, req)
            self._arm_rpc(node)
        else:
            sim._n_fallback += 1
            sim.after(0.0, lambda _ev: self._serve_chain(node, req))
            self._arm_rpc(node)

    def _serve_chain(self, node: int, req: _RpcRequest,
                     then: Optional[Any] = None) -> None:
        """Chain counterpart of :meth:`_serve_request`; ``then()`` runs
        where a driving generator would resume (after the reply's
        sender-side overhead, or after the guard-fail charge)."""
        replica = self._replicas[req.obj_name].get(node)
        if replica is None:
            raise RuntimeError(
                f"RPC for {req.obj_name!r} arrived at non-owner node {node}")
        op = replica.spec.op(req.op_name)
        cpu = self.fabric.nodes[node].cpu
        try:
            result = replica.execute(req.op_name, req.args)
        except Blocked:
            def _parked(_ev: Event) -> None:
                replica.parked.append(("rpc", req))
                if then is not None:
                    then()
            cpu.execute_ev(GUARD_EVAL_COST).callbacks.append(_parked)
            return

        def _charged(_ev: Event) -> None:
            if op.writes:
                self._kick(node, replica)
            result_size = op.result_size(result)
            self.fabric.send_chain(
                node, req.caller, result_size, payload=(result, result_size),
                port=req.result_port, kind="rpc",
                then=None if then is None else (lambda _done: then()))

        cpu.execute_ev(op.cost(req.args)).callbacks.append(_charged)

    def _invoke_rpc(self, caller: int, spec: ObjectSpec, op: Operation,
                    op_name: str, args: tuple) -> Generator:
        req_id = _alloc_req_id(caller)
        req = _RpcRequest(
            req_id=req_id, obj_name=spec.name, op_name=op_name, args=args,
            caller=caller, result_port=f"orca.rpcret.{req_id}",
            req_size=op.args_size(args))
        inter = not self.topo.same_cluster(caller, spec.owner)
        tr = self.fabric.tracer
        traced = tr.enabled
        t0 = self.sim.now
        if traced:
            tr.emit(t0, "rpc.issue", req_id=req_id, caller=caller,
                    owner=spec.owner, obj=spec.name, op=op_name,
                    size=req.req_size, inter=inter)
        yield from self.fabric.send(caller, spec.owner, req.req_size,
                                    payload=req, port=RPC_PORT, kind="rpc")
        msg = yield self.fabric.nodes[caller].port(req.result_port).get()
        result, result_size = msg.payload
        self.meter.record("rpc", req.req_size + result_size,
                          intercluster=inter)
        if traced:
            now = self.sim.now
            tr.emit(now, "rpc.complete", req_id=req_id, caller=caller,
                    owner=spec.owner, obj=spec.name, op=op_name,
                    bytes=req.req_size + result_size, inter=inter,
                    t0=t0, dur=now - t0)
        return result

    # ------------------------------------------------------------ broadcast

    def _apply_bcast(self, node: int, payload: BcastPayload) -> Generator:
        """Apply one ordered write to this node's replica (function shipping)."""
        replica = self._replicas[payload.obj_name][node]
        op = replica.spec.op(payload.op_name)
        result = replica.execute(payload.op_name, payload.args)
        yield from self._charge(node, op.cost(payload.args))
        self._kick(node, replica)
        return result

    def _apply_bcast_fast(self, node: int, payload: BcastPayload,
                          k: Any) -> None:
        """Chain counterpart of :meth:`_apply_bcast`: the continuation
        ``k(result)`` attaches to the same CPU charge event the
        generator yields on."""
        replica = self._replicas[payload.obj_name][node]
        op = replica.spec.op(payload.op_name)
        result = replica.execute(payload.op_name, payload.args)

        def _charged(_ev: Event) -> None:
            self._kick(node, replica)
            k(result)

        self.fabric.nodes[node].cpu.execute_ev(
            op.cost(payload.args)).callbacks.append(_charged)

    # ----------------------------------------------------------- public ops

    def invoke(self, node: int, obj_name: str, op_name: str,
               args: tuple) -> Generator:
        """Perform an Orca operation from ``node``, choosing the protocol:
        local call, RPC to the owner, or totally-ordered broadcast."""
        spec = self.specs[obj_name]
        op = spec.op(op_name)
        if spec.replicated:
            if op.writes:
                size = op.args_size(args)
                self.meter.record("bcast", size,
                                  intercluster=self.topo.n_clusters > 1)
                issue = self.tob.next_issue(node)
                result = yield from self.tob.broadcast(
                    node, obj_name, op_name, args, size, issue=issue)
                return result
            replica = self._replicas[obj_name][node]
            result = yield from self._execute_blocking(
                node, replica, op_name, args)
            return result
        # Non-replicated.
        if spec.owner == node:
            replica = self._replicas[obj_name][node]
            result = yield from self._execute_blocking(
                node, replica, op_name, args)
            if op.writes:
                self._kick(node, replica)
            return result
        result = yield from self._invoke_rpc(node, spec, op, op_name, args)
        return result


class Context:
    """Per-node handle used by application processes."""

    def __init__(self, rts: OrcaRuntime, node: int):
        self.rts = rts
        self.node = node
        self.sim = rts.sim
        self.topo = rts.topo
        self.cluster = rts.topo.cluster_of(node)

    # -- Orca shared objects ------------------------------------------------
    def invoke(self, obj_name: str, op_name: str, *args: Any) -> Generator:
        """The Orca shared-object abstraction (see :meth:`OrcaRuntime.invoke`)."""
        result = yield from self.rts.invoke(self.node, obj_name, op_name, args)
        return result

    def invoke_async(self, obj_name: str, op_name: str, *args: Any):
        """Asynchronous write to a replicated object (the paper's proposed
        ACP optimization): the broadcast is issued but the caller does not
        wait for its own copy to be updated.  Returns the completion event
        for callers that want to flush later.  Total order is preserved —
        only the *blocking* is removed."""
        spec = self.rts.specs[obj_name]
        op = spec.op(op_name)
        if not (spec.replicated and op.writes):
            raise ValueError(
                "invoke_async is only meaningful for writes to replicated "
                f"objects; {obj_name}.{op_name} is not one")
        size = op.args_size(args)
        self.rts.meter.record("bcast", size,
                              intercluster=self.topo.n_clusters > 1)
        issue = self.rts.tob.next_issue(self.node)
        return self.sim.spawn(
            self.rts.tob.broadcast(self.node, obj_name, op_name, args, size,
                                   issue=issue),
            name="asyncbcast")

    # -- low-level messages (Orca RTS primitives) ----------------------------
    def send(self, dst: int, size: int, payload: Any = None,
             port: str = "app", kind: str = "msg") -> Generator:
        """Asynchronous send; returns after the sender-side overhead.

        ``kind`` is the traffic-accounting bucket ("msg" for application
        messages; the core library uses "proto" for internal protocol
        messages it accounts for logically, and "rpc" for request/reply
        style messages).
        """
        self.rts.meter.record(
            kind, size, intercluster=not self.topo.same_cluster(self.node, dst))
        yield from self.rts.fabric.send(self.node, dst, size, payload,
                                        port=port, kind=kind)

    def send_wait(self, dst: int, size: int, payload: Any = None,
                  port: str = "app", kind: str = "msg") -> Generator:
        """Synchronous send: blocks until delivered at the receiver."""
        self.rts.meter.record(
            kind, size, intercluster=not self.topo.same_cluster(self.node, dst))
        msg = yield from self.rts.fabric.send_and_wait(
            self.node, dst, size, payload, port=port, kind=kind)
        return msg

    def receive(self, port: str = "app") -> Generator:
        """Block until a message arrives on ``port``; returns the Message."""
        msg = yield self.rts.fabric.nodes[self.node].port(port).get()
        return msg

    def try_receive(self, port: str = "app") -> Optional[Message]:
        """Non-blocking receive: the next message or ``None``."""
        return self.rts.fabric.nodes[self.node].port(port).try_get()

    # -- compute -------------------------------------------------------------
    #: compute is charged in quanta so incoming protocol work (RPC service,
    #: broadcast application) interleaves with it, the way interrupt-driven
    #: message handling preempts user code on a real node.
    COMPUTE_QUANTUM = 1e-3

    def compute(self, seconds: float, quantum: Optional[float] = None) -> Generator:
        """Charge application compute to this node's CPU, in quanta."""
        if seconds < 0:
            raise ValueError(f"negative compute time: {seconds}")
        q = quantum if quantum is not None else self.COMPUTE_QUANTUM
        fabric = self.rts.fabric
        cpu = fabric.nodes[self.node].cpu
        # Heterogeneity/faults: per-quantum speed lookup, so a slow_node
        # window changes only the quanta inside it.  ``node_speed`` is
        # None on the clean model; the 1.0 guard keeps the arithmetic
        # bit-identical to the unscaled path.
        speeds = fabric.node_speed
        node = self.node
        remaining = seconds
        if self.rts.fast_paths:
            while remaining > 0:
                step = remaining if remaining <= q else q
                sp = 1.0 if speeds is None else speeds[node]
                cost = step if sp == 1.0 else step / sp
                yield cpu.execute_ev(cost, priority=1)
                remaining -= step
        else:
            while remaining > 0:
                step = remaining if remaining <= q else q
                sp = 1.0 if speeds is None else speeds[node]
                cost = step if sp == 1.0 else step / sp
                yield self.sim.spawn(cpu.execute(cost, priority=1))
                remaining -= step

    def sleep(self, seconds: float) -> Generator:
        """Idle wait (no CPU occupancy)."""
        yield self.sim.timeout(seconds)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.sim.now
