"""Orca-like runtime: shared objects, RPC, totally-ordered broadcast."""

from .broadcast import BcastPayload, TotalOrderBroadcast
from .objects import Blocked, ObjectSpec, Operation, Replica, estimate_bytes
from .runtime import Context, OrcaRuntime
from .sequencer import (
    CentralizedSequencer,
    DistributedSequencer,
    MigratingSequencer,
    SequencerProtocol,
    make_sequencer,
)

__all__ = [
    "BcastPayload",
    "TotalOrderBroadcast",
    "Blocked",
    "ObjectSpec",
    "Operation",
    "Replica",
    "estimate_bytes",
    "Context",
    "OrcaRuntime",
    "CentralizedSequencer",
    "DistributedSequencer",
    "MigratingSequencer",
    "SequencerProtocol",
    "make_sequencer",
]
