"""Sequencers for totally-ordered broadcast.

Orca keeps replicated objects consistent with a write-update protocol on a
totally-ordered broadcast.  Ordering comes from a sequencer that stamps
every broadcast with a global sequence number.  This module provides the
paper's three protocols:

* :class:`CentralizedSequencer` — one sequencer machine for the whole
  system.  Excellent on a single LAN cluster; on the wide-area system every
  remote broadcast pays WAN round trips through the sequencer (the
  "major performance problem" of Section 2).
* :class:`DistributedSequencer` — one sequencer per cluster; clusters
  broadcast *in turn* (a token rotates over the WAN in ring order).  The
  system default on multicluster DAS.
* :class:`MigratingSequencer` — the ASP optimization (Section 4.3): a
  single sequencer that *migrates* to the cluster that is broadcasting, so
  a machine issuing a run of broadcasts gets its sequence numbers locally
  and can pipeline computation with communication.

A sequencer's job here is ordering only; dissemination (who multicasts the
stamped message where) is shared code in :class:`repro.orca.broadcast`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Optional, Tuple

from ..sim import Event, Simulator, fire

__all__ = [
    "SequencerProtocol",
    "CentralizedSequencer",
    "DistributedSequencer",
    "MigratingSequencer",
    "make_sequencer",
]


class SequencerProtocol:
    """Interface: assign the next global sequence number to a request.

    ``acquire(cluster)`` is a generator the broadcast layer drives from the
    *stamping site*; it returns the sequence number once ordering is
    established.  Timing differs per protocol; counting is shared.
    """

    name = "base"

    def __init__(self, sim: Simulator, n_clusters: int, hop_latency: float,
                 tracer=None):
        self.sim = sim
        self.n_clusters = n_clusters
        self.hop_latency = hop_latency
        self._next_seq = 0
        #: optional repro.sim.Tracer; ``seq.acquire``/``seq.migrate``
        #: records are emitted through it when enabled.
        self.tracer = tracer

    def _stamp(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _trace_acquire(self, cluster: int, seq: int, t0: float) -> None:
        tr = self.tracer
        if tr is not None and tr.enabled:
            now = self.sim.now
            tr.emit(now, "seq.acquire", cluster=cluster, seq=seq,
                    protocol=self.name, t0=t0, dur=now - t0)

    def acquire(self, cluster: int) -> Generator:
        raise NotImplementedError

    def try_acquire(self, cluster: int) -> Optional[int]:
        """Analytic fast path: stamp synchronously, or ``None``.

        Succeeds only when :meth:`acquire` would have returned at the
        current instant with no observable intermediate state — i.e.
        stamping is local (token already here / centralized stamp) and,
        for the token protocols, nothing else is scheduled at this
        instant that could race the grant.  On ``None`` the caller
        falls back to driving the :meth:`acquire` generator, so
        same-instant contention linearizes exactly as on the legacy
        path.  Emits the same ``seq.acquire`` record either way.
        """
        return None

    def try_acquire_deferred(self, cluster: int) -> Optional[Event]:
        """Analytic remote-token path: an event firing with the stamp.

        The token-ring extension of :meth:`try_acquire` — succeeds when
        the ring is uncontended (token parked, no holder) but the token
        is *k* hops away, so the acquire cannot complete at this
        instant.  Returns an event that fires with the sequence number
        after the analytic ``k * hop_latency`` delay, reproducing the
        legacy grant's dispatch schedule exactly (one call-slot, one
        event dispatch, state changes in the same order); the ring
        invariant — waiters only accumulate while the token is held —
        makes the uncontended check sufficient.  ``None`` means the
        caller must drive :meth:`acquire`.
        """
        return None

    def _deferred_grant(self, ring: "_TokenRing", cluster: int,
                        dist: int) -> Event:
        """Shared remote-token shortcut for the token protocols."""
        sim = self.sim
        t0 = sim.now
        # Replicate _grant's state changes: the token is committed to
        # the requester immediately, arrival is dist hops out.
        ring.held = True
        ring.at = cluster
        ring._turn_done = False
        done = Event(sim)

        def _resume(_ev: Event) -> None:
            seq = self._stamp()
            ring.release()
            self._trace_acquire(cluster, seq, t0)
            fire(done, seq)

        def _slot() -> None:
            # The legacy grant's ev.succeed: one posted event dispatch
            # between the call-slot and the resume, so same-instant
            # arrivals linearize at identical depths in both tiers.
            gate = Event(sim)
            gate.callbacks.append(_resume)
            gate.succeed(None)

        sim.call_at(t0 + dist * self.hop_latency, _slot)
        return done


class CentralizedSequencer(SequencerProtocol):
    """Single sequencer, fixed at ``home`` cluster (cluster 0 by default)."""

    name = "centralized"

    def __init__(self, sim: Simulator, n_clusters: int, hop_latency: float,
                 home: int = 0, tracer=None):
        super().__init__(sim, n_clusters, hop_latency, tracer=tracer)
        self.home = home

    def stamping_cluster(self, sender_cluster: int) -> int:
        return self.home

    def acquire(self, cluster: int) -> Generator:
        # The request already traveled to the sequencer node (the broadcast
        # layer routes it there); stamping itself is immediate.
        if False:  # pragma: no cover - make this a generator
            yield None
        seq = self._stamp()
        self._trace_acquire(cluster, seq, self.sim.now)
        return seq

    def try_acquire(self, cluster: int) -> Optional[int]:
        # Stamping never yields, so the fast path is always available
        # and needs no quiet-instant check.
        seq = self._stamp()
        self._trace_acquire(cluster, seq, self.sim.now)
        return seq


class _TokenRing:
    """A token moving between clusters; grants honor ring order.

    The token is *lazy*: it sits parked until some cluster requests it, then
    travels the ring distance from its current position (one WAN hop of
    latency per step for the distributed protocol, a single direct hop for
    the migrating protocol).
    """

    def __init__(self, sim: Simulator, n_clusters: int, hop_latency: float,
                 direct: bool):
        self.sim = sim
        self.n = n_clusters
        self.hop_latency = hop_latency
        self.direct = direct
        self.at = 0
        self.held = False
        # A finished turn means the token has departed: the same cluster
        # only gets it back after a full ring rotation.
        self._turn_done = False
        self._waiters: List[Tuple[int, Event]] = []

    def _distance(self, src: int, dst: int) -> int:
        if self.n == 1:
            return 0  # a single cluster never pays WAN token hops
        if src == dst:
            return self.n if (self._turn_done and not self.direct) else 0
        if self.direct:
            return 1
        return (dst - src) % self.n

    def request(self, cluster: int) -> Event:
        ev = Event(self.sim)
        if not self.held:
            self._grant(cluster, ev)
        else:
            self._waiters.append((cluster, ev))
        return ev

    def _grant(self, cluster: int, ev: Event) -> None:
        self.held = True
        dist = self._distance(self.at, cluster)
        self.at = cluster
        self._turn_done = False
        if dist == 0:
            ev.succeed(cluster)
        else:
            delay = dist * self.hop_latency
            self.sim.call_at(self.sim.now + delay, lambda: ev.succeed(cluster))

    def release(self) -> None:
        self.held = False
        if not self.direct:
            # A cluster's turn covers everything queued there meanwhile:
            # grant same-cluster waiters before the token moves on.
            for i, (cluster, ev) in enumerate(self._waiters):
                if cluster == self.at:
                    del self._waiters[i]
                    self._grant(cluster, ev)
                    return
            # "Each cluster broadcasts in turn": the token departs, so a
            # cluster issuing back-to-back broadcasts waits a *full ring
            # rotation* between them — what makes original ASP slow and
            # what puts the Table 1 WAN broadcast latency near 3 ms.
            self._turn_done = True
        if not self._waiters:
            return
        # Ring order: the waiter closest ahead of the token goes first.
        self._waiters.sort(key=lambda cw: self._distance(self.at, cw[0]))
        cluster, ev = self._waiters.pop(0)
        self._grant(cluster, ev)


class DistributedSequencer(SequencerProtocol):
    """One sequencer per cluster; clusters broadcast in (ring) turn."""

    name = "distributed"

    def __init__(self, sim: Simulator, n_clusters: int, hop_latency: float,
                 tracer=None):
        super().__init__(sim, n_clusters, hop_latency, tracer=tracer)
        self._ring = _TokenRing(sim, n_clusters, hop_latency, direct=False)

    def stamping_cluster(self, sender_cluster: int) -> int:
        return sender_cluster  # stamped by the sender's own cluster sequencer

    def acquire(self, cluster: int) -> Generator:
        t0 = self.sim.now
        yield self._ring.request(cluster)
        seq = self._stamp()
        self._ring.release()
        self._trace_acquire(cluster, seq, t0)
        return seq

    def try_acquire(self, cluster: int) -> Optional[int]:
        ring = self._ring
        if ring.held or ring._distance(ring.at, cluster) != 0:
            return None  # token away or departing: WAN hops, legacy path
        sim = self.sim
        if not sim.idle_at_now():
            return None  # busy instant: the grant dispatch is observable
        t0 = sim.now
        # Replicate _grant's distance-0 state changes, minus the event.
        ring.held = True
        ring.at = cluster
        ring._turn_done = False
        seq = self._stamp()
        ring.release()
        self._trace_acquire(cluster, seq, t0)
        return seq

    def try_acquire_deferred(self, cluster: int) -> Optional[Event]:
        ring = self._ring
        if ring.held:
            return None  # contended: waiter ordering is the ring's job
        dist = ring._distance(ring.at, cluster)
        if dist == 0:
            return None  # local token: try_acquire's (cheaper) territory
        return self._deferred_grant(ring, cluster, dist)

    @property
    def token_at(self) -> int:
        return self._ring.at


class MigratingSequencer(SequencerProtocol):
    """A single sequencer that migrates to the requesting cluster.

    Repeated broadcasts from one cluster (ASP's phases) pay the migration
    once and then get local-latency sequence numbers, pipelining the
    remaining WAN transfers with computation.
    """

    name = "migrating"

    def __init__(self, sim: Simulator, n_clusters: int, hop_latency: float,
                 tracer=None):
        super().__init__(sim, n_clusters, hop_latency, tracer=tracer)
        self._ring = _TokenRing(sim, n_clusters, hop_latency, direct=True)
        self.migrations = 0

    def stamping_cluster(self, sender_cluster: int) -> int:
        return sender_cluster

    def acquire(self, cluster: int) -> Generator:
        t0 = self.sim.now
        if self._ring.at != cluster:
            self.migrations += 1
            tr = self.tracer
            if tr is not None and tr.enabled:
                tr.emit(t0, "seq.migrate", frm=self._ring.at, to=cluster)
        yield self._ring.request(cluster)
        seq = self._stamp()
        self._ring.release()
        self._trace_acquire(cluster, seq, t0)
        return seq

    def try_acquire(self, cluster: int) -> Optional[int]:
        ring = self._ring
        if ring.held or ring.at != cluster:
            return None  # a migration pays a WAN hop: legacy path
        sim = self.sim
        if not sim.idle_at_now():
            return None  # busy instant: the grant dispatch is observable
        t0 = sim.now
        ring.held = True
        ring._turn_done = False
        seq = self._stamp()
        ring.release()
        self._trace_acquire(cluster, seq, t0)
        return seq

    def try_acquire_deferred(self, cluster: int) -> Optional[Event]:
        ring = self._ring
        if ring.held or ring.at == cluster:
            return None  # held: ring's job; local: try_acquire's
        # The migration bookkeeping the legacy acquire does at request
        # time, before the token travels.
        self.migrations += 1
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.emit(self.sim.now, "seq.migrate", frm=ring.at, to=cluster)
        return self._deferred_grant(ring, cluster, 1)

    @property
    def located_at(self) -> int:
        return self._ring.at


def make_sequencer(kind: str, sim: Simulator, n_clusters: int,
                   hop_latency: float, tracer=None) -> SequencerProtocol:
    """Factory: ``kind`` in {"centralized", "distributed", "migrating"}.

    ``tracer`` (a :class:`repro.sim.Tracer`) enables ``seq.*`` trace
    records; the runtime passes the fabric's tracer through here.
    """
    kinds = {
        "centralized": CentralizedSequencer,
        "distributed": DistributedSequencer,
        "migrating": MigratingSequencer,
    }
    try:
        cls = kinds[kind]
    except KeyError:
        raise ValueError(f"unknown sequencer kind {kind!r}; "
                         f"choose from {sorted(kinds)}") from None
    return cls(sim, n_clusters, hop_latency, tracer=tracer)
