"""Facade over the two-tier discrete-event core: selects and re-exports.

The engine API (:class:`Event`, :class:`Timeout`, :class:`Process`,
:class:`Simulator`, :func:`chain`, :func:`fire`, …) has two
implementations of one shared *event store* contract — heap entries are
compact ``(time, tiebreak, item)`` triples, same-instant entries drain
in batched dispatch runs, and every entry bumps the tie-break counter
exactly once so ``Simulator.stats()`` agrees across tiers:

* ``_pyengine`` — the portable pure-Python tier.  Always available.
* ``_cengine`` — the compiled tier: the same store as a C extension
  (``_ccore.c``) with C-native parallel arrays, built on demand with
  the system C compiler.  Unavailable without a compiler or Python
  headers.

Selection happens once at import via ``REPRO_ENGINE``:

* ``auto`` (default, also the empty string) — use the compiled tier
  when it builds/loads, else fall back to pure Python silently;
* ``compiled`` — require the compiled tier; raise if it cannot be
  built (use in CI to catch toolchain regressions);
* ``python`` — force the pure-Python tier (the reference engine for
  differential runs and for debugging with readable tracebacks).

``ENGINE_TIER`` names the tier that actually loaded (``"python"`` or
``"compiled"``).  Mixing tiers in one process is not supported: all
callers import from this module (or :mod:`repro.sim`), so one process
has one engine.  Cross-tier differential tests run the second tier in a
subprocess with ``REPRO_ENGINE`` set.

Everything downstream (``primitives``, ``network.fabric``, ``orca.*``)
is tier-agnostic: it sees the same classes, the same exception types
(:class:`SimulationError` and :class:`Interrupt` are defined once in
``_pyengine`` and shared by the compiled tier), and the same fast-path
hooks (``fire``/``chain``/``after_call``/``idle_at_now``).
"""

from __future__ import annotations

import os

from . import _pyengine
from ._pyengine import PENDING, Interrupt, SimulationError

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Simulator",
    "Interrupt",
    "SimulationError",
    "chain",
    "fire",
    "PENDING",
    "ENGINE_TIER",
]


def _select():
    requested = os.environ.get("REPRO_ENGINE", "auto").strip().lower() or "auto"
    if requested == "python":
        return _pyengine, "python"
    if requested not in ("auto", "compiled"):
        raise SimulationError(
            f"unknown REPRO_ENGINE value {requested!r} "
            "(expected 'auto', 'python', or 'compiled')")
    try:
        from . import _cengine
        return _cengine, "compiled"
    except Exception as exc:
        if requested == "compiled":
            raise SimulationError(
                f"REPRO_ENGINE=compiled but the compiled core is "
                f"unavailable: {exc}") from exc
        return _pyengine, "python"


_impl, ENGINE_TIER = _select()

Event = _impl.Event
Timeout = _impl.Timeout
AllOf = _impl.AllOf
AnyOf = _impl.AnyOf
Process = _impl.Process
Simulator = _impl.Simulator
chain = _impl.chain
fire = _impl.fire
