"""Discrete-event simulation engine (the bottom of the substrate stack)."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    chain,
    fire,
)
from .primitives import CPU, Barrier, Channel, Resource
from .rng import derive_seed, substream
from .trace import TraceRecord, Tracer, TraceSpec

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "chain",
    "fire",
    "CPU",
    "Barrier",
    "Channel",
    "Resource",
    "derive_seed",
    "substream",
    "TraceRecord",
    "Tracer",
    "TraceSpec",
]
