"""On-demand build of the compiled event core (``_ccore.c``).

No build system, no ``pip install``: the extension is a single C file
compiled straight with the system compiler against the running
interpreter's headers the first time the compiled tier is requested,
and cached next to the source.  A content stamp (source mtime/size +
interpreter version) triggers rebuilds when either changes.  The build
is concurrency-safe for forked sweep workers: each builder writes to a
unique temporary file and ``os.replace``s it into place atomically, so
concurrent importers see either the old or the new extension, never a
partial one.

Raises on any failure — the caller (``engine.py``) decides whether
that is fatal (``REPRO_ENGINE=compiled``) or a silent fallback to the
pure tier (``auto``).
"""

from __future__ import annotations

import importlib
import os
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path

__all__ = ["load_ccore", "compiler_available"]

_PKG = Path(__file__).resolve().parent
_SRC = _PKG / "_ccore.c"


def _ext_path() -> Path:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return _PKG / f"_ccore{suffix}"


def _stamp_path() -> Path:
    return _PKG / "_ccore.stamp"


def _signature() -> str:
    st = _SRC.stat()
    return (f"{st.st_mtime_ns}:{st.st_size}:"
            f"{sys.version_info[0]}.{sys.version_info[1]}:{sys.platform}")


def compiler_available() -> bool:
    """True when a C compiler is on PATH (cc, gcc, or clang, or $CC)."""
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return True
    return any(shutil.which(c) for c in ("cc", "gcc", "clang"))


def _find_compiler() -> str:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for cand in ("cc", "gcc", "clang"):
        if shutil.which(cand):
            return cand
    raise RuntimeError("no C compiler found (tried $CC, cc, gcc, clang)")


def _build() -> None:
    cc = _find_compiler()
    include = sysconfig.get_paths()["include"]
    out = _ext_path()
    tmp = out.with_name(f"{out.stem}.build{os.getpid()}{out.suffix}")
    cmd = [cc, "-O2", "-fPIC", "-shared", f"-I{include}",
           str(_SRC), "-o", str(tmp)]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise RuntimeError(
                f"compiling _ccore.c failed ({' '.join(cmd)}):\n"
                f"{proc.stderr.strip()[-2000:]}")
        os.replace(tmp, out)
    finally:
        if tmp.exists():
            tmp.unlink()
    _stamp_path().write_text(_signature())


def load_ccore():
    """Build (if stale or missing) and import ``repro.sim._ccore``."""
    out = _ext_path()
    stamp = _stamp_path()
    sig = _signature()
    fresh = (out.exists() and stamp.exists()
             and stamp.read_text() == sig)
    if not fresh:
        _build()
    return importlib.import_module("repro.sim._ccore")
