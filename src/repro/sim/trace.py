"""Structured event tracing: the collection substrate for ``repro.obs``.

A :class:`Tracer` is a cheap append-only log of ``(time, kind, detail)``
records.  It is off by default — every instrumented call site guards on
``tracer.enabled`` before building its record, so a disabled tracer
costs one attribute load and a branch on the paths it observes and
nothing anywhere else.  The record *kinds* the instrumented layers emit,
their fields and their units are registered in :mod:`repro.obs.schema`
and documented in ``docs/TRACING.md``.

Filtering caveat — **filtering happens at emit time**: when ``kinds`` is
set, a record whose kind is not in the set is never appended, and there
is no way to recover it later.  Analyses that need a kind must enable it
*before* the run (this is deliberate: post-hoc filtering would require
keeping everything, and full traces of paper-scale runs are large).

Memory caveat — an unbounded tracer grows with every record for as long
as it is enabled.  Three complementary bounds exist:

* ``kinds`` — the emit-time filter above;
* ``ring`` — keep only the *last* ``ring`` records (a ring buffer: the
  oldest record is evicted on overflow).  Right for "what led up to the
  end of the run" questions on long sweeps;
* ``sample`` — per-kind deterministic 1-in-k downsampling: of every
  ``k`` emissions of a kind, the first is kept and the next ``k - 1``
  are dropped.  Right for high-volume kinds (``msg.send``,
  ``link.busy``) where a representative subset suffices.

Sampling is *deterministic*: it counts emissions per kind, so the same
simulation with the same tracer configuration keeps exactly the same
records — no randomness, no wall-clock dependence.  ``dropped`` counts
the records sampling skipped or the ring evicted.  Long sweeps that
reuse one tracer across grid points must still call
:meth:`Tracer.clear` between points (the profiler in
:mod:`repro.obs.profile` does this); ``clear`` also resets the sampling
counters so every grid point samples identically.

:class:`TraceSpec` is the frozen, picklable description of a tracer
configuration — the sweep harness ships it to worker processes so
``repro figure --jobs N --trace-dir ...`` runs stay traced with bounded
memory (see :mod:`repro.harness.sweeps`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, Mapping, Optional,
                    Tuple)

__all__ = ["TraceRecord", "Tracer", "TraceSpec"]


@dataclass(frozen=True)
class TraceRecord:
    time: float
    kind: str
    detail: Dict[str, Any]


@dataclass
class Tracer:
    enabled: bool = False
    records: Any = field(default_factory=list)  # List, or deque when ring set
    # Emit-time filter: kinds to keep (None = keep all).  Records of
    # other kinds are dropped as they are emitted and are unrecoverable.
    kinds: Optional[frozenset] = None
    # Ring-buffer bound: keep only the last `ring` records (None = all).
    ring: Optional[int] = None
    # Deterministic downsampling: kind -> k keeps the 1st of every k
    # emissions of that kind (None / missing kind / k <= 1 = keep all).
    sample: Optional[Mapping[str, int]] = None
    # Records not retained (sampled out or evicted by the ring).
    dropped: int = 0
    # Per-kind emission counters driving the 1-in-k sampling.
    _seen: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.ring is not None:
            if self.ring < 1:
                raise ValueError(f"ring must be >= 1: {self.ring}")
            self.records = deque(self.records, maxlen=self.ring)

    def emit(self, time: float, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        if self.sample:
            k = self.sample.get(kind, 1)
            if k > 1:
                seen = self._seen.get(kind, 0)
                self._seen[kind] = seen + 1
                if seen % k:
                    self.dropped += 1
                    return
        if self.ring is not None and len(self.records) == self.ring:
            self.dropped += 1  # the append below evicts the oldest record
        self.records.append(TraceRecord(time, kind, detail))

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def select(self, kind: str, pred: Optional[Callable[[TraceRecord], bool]] = None
               ) -> List[TraceRecord]:
        out = [r for r in self.records if r.kind == kind]
        if pred is not None:
            out = [r for r in out if pred(r)]
        return out

    def span(self) -> Tuple[float, float]:
        """(first, last) record times; (0, 0) when empty."""
        if not self.records:
            return (0.0, 0.0)
        return (self.records[0].time, self.records[-1].time)

    def clear(self) -> None:
        """Drop all collected records and reset the sampling state
        (``enabled``/``kinds``/``ring``/``sample`` unchanged).

        Call between sweep grid points when one tracer is shared across
        many runs, so memory is bounded by a single run's trace and each
        point's 1-in-k sampling starts from the same counters.
        """
        self.records.clear()
        self._seen.clear()
        self.dropped = 0


@dataclass(frozen=True)
class TraceSpec:
    """A frozen, picklable tracer configuration.

    The sweep harness attaches one of these to a
    :class:`~repro.harness.sweeps.RunSpec` so worker processes can
    rebuild an identical tracer; :meth:`build` constructs the tracer.
    Because the fields are hashable tuples, the spec participates in
    cache keys and batch deduplication like any other run parameter.

    Determinism: ``build()`` of the same spec always yields the same
    configuration, and the tracer's sampling is counter-based, so the
    same simulation traced under the same spec keeps exactly the same
    records.
    """

    kinds: Optional[Tuple[str, ...]] = None
    ring: Optional[int] = None
    sample: Tuple[Tuple[str, int], ...] = ()

    def build(self) -> Tracer:
        return Tracer(
            kinds=frozenset(self.kinds) if self.kinds is not None else None,
            ring=self.ring,
            sample=dict(self.sample) if self.sample else None)
