"""Event tracing for debugging and for the traffic accounting tables.

A :class:`Tracer` is a cheap append-only log of ``(time, kind, detail)``
records.  It is off by default; the experiment harness enables it when a
table needs per-event data (e.g. Tables 4/5 intercluster traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    time: float
    kind: str
    detail: Dict[str, Any]


@dataclass
class Tracer:
    enabled: bool = False
    records: List[TraceRecord] = field(default_factory=list)
    # Optional live filter: kinds to keep (None = keep all).
    kinds: Optional[frozenset] = None

    def emit(self, time: float, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self.records.append(TraceRecord(time, kind, detail))

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def select(self, kind: str, pred: Optional[Callable[[TraceRecord], bool]] = None
               ) -> List[TraceRecord]:
        out = [r for r in self.records if r.kind == kind]
        if pred is not None:
            out = [r for r in out if pred(r)]
        return out

    def span(self) -> Tuple[float, float]:
        """(first, last) record times; (0, 0) when empty."""
        if not self.records:
            return (0.0, 0.0)
        return (self.records[0].time, self.records[-1].time)

    def clear(self) -> None:
        self.records.clear()
