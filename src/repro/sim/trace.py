"""Structured event tracing: the collection substrate for ``repro.obs``.

A :class:`Tracer` is a cheap append-only log of ``(time, kind, detail)``
records.  It is off by default — every instrumented call site guards on
``tracer.enabled`` before building its record, so a disabled tracer
costs one attribute load and a branch on the paths it observes and
nothing anywhere else.  The record *kinds* the instrumented layers emit,
their fields and their units are registered in :mod:`repro.obs.schema`
and documented in ``docs/TRACING.md``.

Filtering caveat — **filtering happens at emit time**: when ``kinds`` is
set, a record whose kind is not in the set is never appended, and there
is no way to recover it later.  Analyses that need a kind must enable it
*before* the run (this is deliberate: post-hoc filtering would require
keeping everything, and full traces of paper-scale runs are large).

Memory caveat — a tracer grows with every record for as long as it is
enabled.  Long sweeps that reuse one tracer across grid points must call
:meth:`Tracer.clear` between points (the profiler in
:mod:`repro.obs.profile` does this) so memory is bounded by one run's
trace, not the whole sweep's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    time: float
    kind: str
    detail: Dict[str, Any]


@dataclass
class Tracer:
    enabled: bool = False
    records: List[TraceRecord] = field(default_factory=list)
    # Emit-time filter: kinds to keep (None = keep all).  Records of
    # other kinds are dropped as they are emitted and are unrecoverable.
    kinds: Optional[frozenset] = None

    def emit(self, time: float, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self.records.append(TraceRecord(time, kind, detail))

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def select(self, kind: str, pred: Optional[Callable[[TraceRecord], bool]] = None
               ) -> List[TraceRecord]:
        out = [r for r in self.records if r.kind == kind]
        if pred is not None:
            out = [r for r in out if pred(r)]
        return out

    def span(self) -> Tuple[float, float]:
        """(first, last) record times; (0, 0) when empty."""
        if not self.records:
            return (0.0, 0.0)
        return (self.records[0].time, self.records[-1].time)

    def clear(self) -> None:
        """Drop all collected records (``enabled``/``kinds`` unchanged).

        Call between sweep grid points when one tracer is shared across
        many runs, so memory is bounded by a single run's trace.
        """
        self.records.clear()
