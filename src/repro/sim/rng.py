"""Deterministic random-number utilities.

Every stochastic choice in the repository draws from a
:class:`numpy.random.Generator` seeded through :func:`substream`, which
derives independent, reproducible streams from a root seed and a string
label.  This keeps simulation runs bit-identical across processes and
machines while letting each subsystem (workload generator, application,
network jitter) own an isolated stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["substream", "derive_seed"]


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a 63-bit seed from a root seed and a textual label."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little") >> 1


def substream(root_seed: int, label: str) -> np.random.Generator:
    """An independent Generator for ``label`` under ``root_seed``."""
    return np.random.default_rng(derive_seed(root_seed, label))
