"""Pure-Python tier of the discrete-event core.

The engine is an event-heap scheduler: simulated activities are Python
generators (wrapped by :class:`Process`) that yield :class:`Event`
objects, and the engine resumes a generator when the event it waits on
fires.  Virtual time is a ``float`` in seconds and the engine is fully
deterministic — events scheduled for the same instant fire in schedule
order (a monotonically increasing tie-break counter guarantees this).

This module is the **portable tier** of a two-tier core (see
``engine.py`` for tier selection and ``_ccore.c`` for the compiled
tier).  Relative to the historical boxed engine (``_legacy.py``) the
hot path is reorganized around the *event store* contract both tiers
share:

* heap entries are compact ``(time, tiebreak, item)`` triples where
  ``item`` is either a boxed :class:`Event` **or a bare callable** — a
  *call slot*.  Engine-internal one-shot steps (process bootstraps,
  analytic resource holds, deferred chain launches) schedule a call
  slot via :meth:`Simulator.after_call` instead of boxing a Timeout,
  so the hottest schedule sites allocate no event object at all;
* the run loop drains all events of one instant in a batched dispatch
  run: the clock store and the ``until`` horizon check happen once per
  *instant*, not once per event;
* a finished process's recycled kick event (slot reuse for the
  already-processed-target resume) is retained from the previous
  engine and generalized by the call-slot store above.

Counter contract: every heap entry — boxed or call slot — bumps the
tie-break counter exactly once, so ``Simulator.stats()`` reports the
same ``events_processed`` for a given workload as the legacy engine
(each legacy boxed entry maps to exactly one entry here).

The compiled tier implements this same store with C-native parallel
arrays (times / tie-breaks / items) and a C event record; the two tiers
are drop-in interchangeable and golden-suite verified against each
other (``REPRO_ENGINE=python|compiled``).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ._conditions import build_conditions

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Simulator",
    "Interrupt",
    "SimulationError",
    "chain",
    "fire",
    "PENDING",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation API (not for modeled failures)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it, schedules its callbacks, and records a value that is sent
    into every waiting process.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_default")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._scheduled = False
        self._default: Any = None  # value assumed when fired straight off the heap

    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is PENDING:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event; ``value`` is sent to every waiting process."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.sim._post(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive the exception."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.sim._post(self)
        return self


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._default = value
        sim._post(self, delay=delay)


AllOf, AnyOf = build_conditions(Event)


class Process(Event):
    """Wraps a generator; the process event fires when the generator returns.

    The generator yields :class:`Event` objects.  The yielded event's value is
    sent back into the generator when it fires; failed events are thrown in as
    exceptions, so processes can use ordinary ``try/except``.
    """

    __slots__ = ("gen", "name", "_waiting_on", "_kick", "_kick_cbs")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise SimulationError(f"Process requires a generator, got {gen!r}")
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._kick: Optional[Event] = None
        self._kick_cbs: Optional[list] = None
        sim._n_spawned += 1
        # Bootstrap: resume the generator at the current instant via a
        # call slot — one heap entry (the same count the legacy engine's
        # born-triggered start event cost) and zero boxed events.
        sim._seq = seq = sim._seq + 1
        heapq.heappush(sim._heap, (sim.now, seq, self._start))

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._value is not PENDING:
            return
        waited = self._waiting_on
        if waited is not None and waited._value is PENDING:
            # Detach from the event we were waiting on.
            try:
                waited.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
        self._waiting_on = None
        kick = Event(self.sim)
        kick.callbacks.append(self._resume)
        kick.fail(Interrupt(cause))

    def _start(self) -> None:
        """Call-slot bootstrap: first resume, at the spawn instant."""
        if self._value is not PENDING:  # interrupted before the bootstrap ran
            return
        self._step(None, True)

    def _resume(self, ev: Event) -> None:
        if self._value is not PENDING:  # finished (e.g. interrupted mid-wait)
            return
        self._waiting_on = None
        self._step(ev._value, ev._ok)

    def _step(self, value: Any, ok: bool) -> None:
        gen = self.gen
        while True:
            try:
                if ok:
                    target = gen.send(value)
                else:
                    target = gen.throw(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc)
                return
            if isinstance(target, Event):
                break
            # Misuse: throw into the generator *and keep driving it* — it
            # may catch the error and yield a proper Event (loop again),
            # return (StopIteration above), or let it propagate (the
            # process fails with the SimulationError).
            ok = False
            value = SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.callbacks is None:
            # Already fired and processed: resume immediately (next tick)
            # via a recycled per-process kick event instead of allocating
            # a fresh one for every such resume.
            kick = self._kick
            if kick is None or kick.callbacks is not None:
                # First use, or the previous kick is still in the heap
                # (an interrupt resumed us early): allocate.
                kick = Event(self.sim)
                self._kick = kick
                self._kick_cbs = kick.callbacks = [self._resume]
            else:
                kick._scheduled = False
                kick.callbacks = self._kick_cbs
            kick._value = target._value
            kick._ok = target._ok
            self.sim._post(kick)
            self._waiting_on = kick
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Simulator:
    """The event loop over the slot-based store.

    The heap holds ``(time, tiebreak, item)`` triples; ``item`` is a
    boxed :class:`Event` or a bare callable (a *call slot*, see
    :meth:`after_call`).  Dispatch drains one instant per batch.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._running = False
        self._n_spawned: int = 0
        # Fast-path observability (see stats()): inline completions the
        # fast tier performed without a heap dispatch, and the times a
        # fast-path site had to defer through the heap (or hand a flow
        # back to the legacy generator path) to preserve same-instant
        # ordering.  Both are plain integer bumps on paths that already
        # branch, so the dispatch loop never sees them.
        self._n_fast: int = 0
        self._n_fallback: int = 0
        # Optional observer (a repro.sim.Tracer) for process-lifecycle
        # records; None keeps spawn() free of any tracing work and the
        # dispatch loop is never touched either way.
        self.obs = None

    # -- event factory helpers -------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        # Fast path: build the Timeout and schedule it inline (this is the
        # single most-called boxed allocation in the simulator).
        # Equivalent to Timeout(self, delay, value) without the two
        # __init__ frames and the _post call.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        ev = Event.__new__(Timeout)
        ev.sim = self
        ev.callbacks = []
        ev._value = PENDING
        ev._ok = True
        ev._scheduled = True
        ev._default = value
        ev.delay = delay
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (self.now + delay, seq, ev))
        return ev

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new simulation process from a generator."""
        proc = Process(self, gen, name=name)
        obs = self.obs
        if obs is not None and obs.enabled:
            pid = self._n_spawned
            obs.emit(self.now, "proc.spawn", pid=pid, name=proc.name)
            # The finish record rides on the process's own completion
            # event, so the resume hot path carries no tracing branch.
            proc.callbacks.append(
                lambda ev, p=proc, i=pid: obs.emit(
                    self.now, "proc.finish", pid=i, name=p.name, ok=p._ok))
        return proc

    # -- scheduling -------------------------------------------------------
    def _post(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError("event already scheduled")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def after_call(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule bare ``fn()`` as a *call slot*, ``delay`` seconds out.

        The unboxed counterpart of :meth:`after` for engine-internal
        one-shot steps: one compact heap entry, no event object, no
        callback list.  Nothing can wait on a call slot — use
        :meth:`after` when the completion must be observable.
        """
        if delay < 0:
            raise SimulationError(f"negative after_call delay: {delay}")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (self.now + delay, seq, fn))

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn`` at absolute virtual time ``when`` (>= now)."""
        if when < self.now:
            raise SimulationError(f"call_at past time {when} < now {self.now}")
        ev = self.timeout(when - self.now)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    def after(self, delay: float, fn: Callable[[Event], None],
              value: Any = None) -> Timeout:
        """Schedule ``fn(event)`` to run ``delay`` virtual seconds from now.

        The callback-chain counterpart of ``yield sim.timeout(delay)``: one
        heap entry, no generator.  Returns the timeout so further callbacks
        can be chained onto the same instant.
        """
        ev = self.timeout(delay, value)
        ev.callbacks.append(fn)
        return ev

    # -- introspection ----------------------------------------------------
    def idle_at_now(self) -> bool:
        """True when nothing further is scheduled at the current instant.

        The quiet-instant guard every analytic fast path checks before
        completing work inline: when the next heap entry (if any) lies
        strictly in the future, an elided dispatch cannot interleave
        with anything.  Both tiers implement this as a peek at the top
        of the event store.
        """
        heap = self._heap
        return not heap or heap[0][0] > self.now

    def next_time(self) -> Optional[float]:
        """Virtual time of the earliest scheduled entry, or ``None``.

        A peek at the top of the event store — the PDES coordinator uses
        it between epochs to size the next conservative window.  Both
        tiers expose it.
        """
        heap = self._heap
        return heap[0][0] if heap else None

    def stats(self) -> dict:
        """Dispatch and fast-path counters.

        ``events_processed`` is derived — every scheduled entry (boxed
        event or call slot) bumps ``_seq`` and sits in the heap until
        popped, so the difference is exactly the number of dispatches.
        This keeps the counter live mid-run without any cost in the
        dispatch loop.

        The event-minimization counters make the two-tier model
        observable per run:

        * ``spawns`` — processes started (same value as the legacy
          ``processes_spawned`` key, kept for compatibility).  A
          fast-tier run spawns far fewer than a legacy run of the same
          workload.
        * ``fast_completions`` — completions the fast tier performed
          inline at a quiet instant (every :func:`fire` call plus the
          sequencers' synchronous ``try_acquire`` stamps), i.e. heap
          dispatches that never happened.
        * ``fallbacks`` — times a fast-path site found the current
          instant busy (or the state contended) and deferred through
          the heap at legacy dispatch depths — or handed the flow back
          to the legacy generator path — so same-instant races
          linearize identically in both tiers.
        """
        return {
            "events_processed": self._seq - len(self._heap),
            "processes_spawned": self._n_spawned,
            "spawns": self._n_spawned,
            "fast_completions": self._n_fast,
            "fallbacks": self._n_fallback,
        }

    # -- main loop --------------------------------------------------------
    def step(self) -> None:
        """Process the next scheduled event (advances the clock)."""
        when, _seq, item = heapq.heappop(self._heap)
        self.now = when
        if not isinstance(item, Event):
            item()  # call slot
            return
        if item._value is PENDING:  # scheduled directly (Timeout): fire now
            item._value = item._default
        callbacks = item.callbacks
        item.callbacks = None
        if callbacks is None:
            return
        for cb in callbacks:
            cb(item)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap is empty or virtual time passes ``until``.

        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        # The dispatch loop is inlined (no per-event step() frame) with
        # hot globals bound to locals, and drains one *instant* per
        # outer iteration: the until-horizon check and the clock store
        # happen once per instant, then the inner loop pops every entry
        # scheduled for it.  An event triggered by succeed/fail already
        # carries its value, so only heap-fired events (Timeouts) take
        # the PENDING branch, and ``_ok`` needs no write (fail() always
        # sets the value, so a PENDING pop is always ok).
        heappop = heapq.heappop
        heap = self._heap
        _event = Event
        _pending = PENDING
        try:
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    break
                self.now = when
                while heap and heap[0][0] == when:
                    _when, _seq, item = heappop(heap)
                    if not isinstance(item, _event):
                        item()  # call slot
                        continue
                    if item._value is _pending:
                        item._value = item._default
                    callbacks = item.callbacks
                    item.callbacks = None
                    if callbacks is not None:
                        for cb in callbacks:
                            cb(item)
        finally:
            self._running = False
        return self.now

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn ``gen``, run to completion, and return its value.

        Raises the process's exception if it failed, and
        :class:`SimulationError` if the simulation deadlocks before the
        process finishes (usually a process waiting on a message that is
        never sent).
        """
        proc = self.spawn(gen, name=name)
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        heappop = heapq.heappop
        heap = self._heap
        _event = Event
        _pending = PENDING
        try:
            # Stop as soon as the process completes so orphaned timers
            # (e.g. abandoned timeouts) do not advance the clock further.
            while heap and proc._value is _pending:
                when = heap[0][0]
                self.now = when
                while heap and heap[0][0] == when and proc._value is _pending:
                    _when, _seq, item = heappop(heap)
                    if not isinstance(item, _event):
                        item()
                        continue
                    if item._value is _pending:
                        item._value = item._default
                    callbacks = item.callbacks
                    item.callbacks = None
                    if callbacks is not None:
                        for cb in callbacks:
                            cb(item)
        finally:
            self._running = False
        if proc._value is PENDING:
            raise SimulationError(
                f"deadlock: process {proc.name!r} never finished "
                f"(simulation ran dry at t={self.now})"
            )
        if not proc._ok:
            raise proc._value
        return proc._value


def fire(ev: Event, value: Any = None) -> None:
    """Trigger ``ev`` and run its callbacks inline, bypassing the heap.

    Equivalent to ``ev.succeed(value)`` followed immediately by the heap
    pop that would dispatch it — sound only when nothing else is
    scheduled at the current instant, so the skipped dispatch could not
    have interleaved with anything.  The fabric's fast paths use it to
    complete occupancies at quiet instants (checking the heap first); at
    busy instants they post through the heap like everything else.
    """
    if ev._value is not PENDING:
        raise SimulationError("event already triggered")
    ev._value = value
    ev._ok = True
    ev._scheduled = True
    ev.sim._n_fast += 1
    callbacks = ev.callbacks
    ev.callbacks = None
    if callbacks is not None:
        for cb in callbacks:
            cb(ev)


def chain(ev: Event, fn: Callable[[Event], None]) -> Event:
    """Run ``fn(ev)`` when ``ev`` fires (immediately if already processed).

    The building block of callback-chained state machines: where a
    generator would ``yield ev`` and resume, a chain appends the next
    step as a callback — no process object, no generator frame.  An
    event that has already fired *and* been dispatched off the heap has
    ``callbacks is None``; its value is final, so the continuation runs
    inline.
    """
    cbs = ev.callbacks
    if cbs is None:
        fn(ev)
    else:
        cbs.append(fn)
    return ev
