"""Composite events (AllOf / AnyOf), parameterized over the Event base.

The condition classes are ordinary Python subclasses of :class:`Event`
— they only use the public event surface (``triggered``, ``_value``,
``_ok``, ``callbacks``, ``succeed``/``fail``), so the same definitions
work over either tier's Event: :func:`build_conditions` is called once
by ``_pyengine`` with the pure-Python base and once by ``_cengine``
with the compiled base.  Conditions are control-plane objects (a
handful per collective episode, not per message), so a Python-level
implementation costs nothing measurable even on the compiled tier.
"""

from __future__ import annotations

__all__ = ["build_conditions"]


def build_conditions(Event):
    """Return ``(AllOf, AnyOf)`` subclasses of the given Event base."""

    class _Condition(Event):
        """Base for AllOf/AnyOf composite events."""

        __slots__ = ("events", "_n_fired")

        def __init__(self, sim, events):
            super().__init__(sim)
            self.events = list(events)
            self._n_fired = 0
            if not self.events:
                self.succeed([])
                return
            for ev in self.events:
                if ev.triggered:
                    self._on_fire(ev)
                else:
                    ev.callbacks.append(self._on_fire)

        def _on_fire(self, ev):  # pragma: no cover - overridden
            raise NotImplementedError

    class AllOf(_Condition):
        """Fires when *all* component events have fired; value is their values."""

        __slots__ = ()

        def _on_fire(self, ev):
            if self.triggered:
                return
            if not ev._ok:
                self.fail(ev._value)
                return
            self._n_fired += 1
            if self._n_fired == len(self.events):
                self.succeed([e._value for e in self.events])

    class AnyOf(_Condition):
        """Fires as soon as *any* component fires; value is (event, value)."""

        __slots__ = ()

        def _on_fire(self, ev):
            if self.triggered:
                return
            if not ev._ok:
                self.fail(ev._value)
                return
            self.succeed((ev, ev._value))

    return AllOf, AnyOf
