/* Compiled tier of the discrete-event core.
 *
 * Implements the same event-store contract as _pyengine.py with
 * C-native storage: the heap is a struct-of-arrays binary heap
 * (parallel arrays of times, tie-break counters, item pointers and
 * item kinds), events are C structs, and the dispatch loop — including
 * the generator send/throw protocol of Process — runs without
 * re-entering the interpreter except to run user callbacks and
 * generator frames.
 *
 * Semantics are transcribed from _pyengine.py, which is the readable
 * reference: same error messages, same tie-break counting (every heap
 * entry bumps the counter exactly once, so Simulator.stats() agrees
 * across tiers record-for-record), same kick-event recycling, same
 * batched same-instant drain.  Exception types (SimulationError,
 * Interrupt) and the PENDING sentinel are *shared* with the pure tier:
 * they are injected once via _set_helpers() so isinstance checks and
 * identity tests work across the facade.
 *
 * Built on demand by _build.py with the system C compiler; see
 * engine.py for tier selection.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* Injected from _cengine.py via _set_helpers(). */
static PyObject *Pending;       /* the shared PENDING sentinel */
static PyObject *SimError;      /* SimulationError class */
static PyObject *InterruptCls;  /* Interrupt class */
static PyObject *AllOfCls;      /* AllOf (Python subclass of our Event) */
static PyObject *AnyOfCls;      /* AnyOf */
static PyObject *SpawnObsHook;  /* callable(sim, proc) -> None */
static PyObject *DropArgHelper; /* callable(fn) -> (lambda _ev: fn()) */

static PyObject *str_send, *str_throw, *str_value, *str_dunder_name;

/* Heap item kinds. */
#define K_EVENT 0   /* boxed Event: fire-and-dispatch */
#define K_CALL  1   /* bare callable: call with no args */
#define K_START 2   /* Process bootstrap: first generator resume */

typedef struct {
    PyObject_HEAD
    double now;
    long long seq;          /* monotone tie-break counter */
    long long n_spawned;
    long long n_fast;
    long long n_fallback;
    int running;
    PyObject *obs;          /* tracer or NULL */
    /* Struct-of-arrays binary heap keyed by (time, seq). */
    Py_ssize_t hlen, hcap;
    double *ht;
    long long *hseq;
    PyObject **hitem;       /* strong references */
    unsigned char *hkind;
} SimObject;

typedef struct {
    PyObject_HEAD
    PyObject *sim;          /* SimObject, strong */
    PyObject *callbacks;    /* PyList, or NULL once processed */
    PyObject *value;        /* Pending sentinel until triggered */
    PyObject *defval;       /* value assumed when fired off the heap */
    char ok;
    char scheduled;
} EventObject;

typedef struct {
    EventObject ev;
    double delay;
} TimeoutObject;

typedef struct {
    EventObject ev;
    PyObject *gen;
    PyObject *name;         /* str */
    PyObject *waiting_on;   /* Event or NULL */
    PyObject *kick;         /* recycled kick Event or NULL */
    PyObject *kick_cbs;     /* the kick's callback list, or NULL */
    PyObject *resume_cb;    /* cached bound _resume (stable identity) */
} ProcessObject;

static PyTypeObject SimType;
static PyTypeObject EventType;
static PyTypeObject TimeoutType;
static PyTypeObject ProcessType;

static int process_step(ProcessObject *self, PyObject *sendval, int ok);

/* ------------------------------------------------------------------ */
/* Heap primitives                                                     */
/* ------------------------------------------------------------------ */

static int
heap_grow(SimObject *s)
{
    Py_ssize_t ncap = s->hcap ? s->hcap * 2 : 64;
    double *nt = PyMem_Realloc(s->ht, (size_t)ncap * sizeof(double));
    if (!nt) { PyErr_NoMemory(); return -1; }
    s->ht = nt;
    long long *nseq = PyMem_Realloc(s->hseq, (size_t)ncap * sizeof(long long));
    if (!nseq) { PyErr_NoMemory(); return -1; }
    s->hseq = nseq;
    PyObject **nitem = PyMem_Realloc(s->hitem, (size_t)ncap * sizeof(PyObject *));
    if (!nitem) { PyErr_NoMemory(); return -1; }
    s->hitem = nitem;
    unsigned char *nkind = PyMem_Realloc(s->hkind, (size_t)ncap);
    if (!nkind) { PyErr_NoMemory(); return -1; }
    s->hkind = nkind;
    s->hcap = ncap;
    return 0;
}

/* Push (t, ++seq, item, kind); increfs item. */
static int
heap_push(SimObject *s, double t, PyObject *item, int kind)
{
    if (s->hlen == s->hcap && heap_grow(s) < 0)
        return -1;
    long long seq = ++s->seq;
    Py_ssize_t i = s->hlen++;
    while (i > 0) {
        Py_ssize_t p = (i - 1) >> 1;
        if (s->ht[p] < t || (s->ht[p] == t && s->hseq[p] < seq))
            break;
        s->ht[i] = s->ht[p];
        s->hseq[i] = s->hseq[p];
        s->hitem[i] = s->hitem[p];
        s->hkind[i] = s->hkind[p];
        i = p;
    }
    s->ht[i] = t;
    s->hseq[i] = seq;
    s->hitem[i] = Py_NewRef(item);
    s->hkind[i] = (unsigned char)kind;
    return 0;
}

/* Pop the root; returns an owned item reference.  hlen must be > 0. */
static PyObject *
heap_pop(SimObject *s, double *t_out, int *kind_out)
{
    PyObject *item = s->hitem[0];
    *t_out = s->ht[0];
    *kind_out = s->hkind[0];
    Py_ssize_t n = --s->hlen;
    if (n > 0) {
        double t = s->ht[n];
        long long seq = s->hseq[n];
        PyObject *last = s->hitem[n];
        unsigned char kind = s->hkind[n];
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t c = 2 * i + 1;
            if (c >= n)
                break;
            Py_ssize_t r = c + 1;
            if (r < n && (s->ht[r] < s->ht[c] ||
                          (s->ht[r] == s->ht[c] && s->hseq[r] < s->hseq[c])))
                c = r;
            if (t < s->ht[c] || (t == s->ht[c] && seq < s->hseq[c]))
                break;
            s->ht[i] = s->ht[c];
            s->hseq[i] = s->hseq[c];
            s->hitem[i] = s->hitem[c];
            s->hkind[i] = s->hkind[c];
            i = c;
        }
        s->ht[i] = t;
        s->hseq[i] = seq;
        s->hitem[i] = last;
        s->hkind[i] = kind;
    }
    return item;
}

/* ------------------------------------------------------------------ */
/* Event                                                               */
/* ------------------------------------------------------------------ */

static int
check_ready(void)
{
    if (!Pending) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_ccore helpers not initialized (import via "
                        "repro.sim.engine, not directly)");
        return -1;
    }
    return 0;
}

/* Allocate a bare event of `type` bound to `sim` (no heap entry). */
static EventObject *
event_new_bare(PyTypeObject *type, SimObject *sim)
{
    EventObject *ev = (EventObject *)type->tp_alloc(type, 0);
    if (!ev)
        return NULL;
    ev->sim = Py_NewRef((PyObject *)sim);
    ev->callbacks = PyList_New(0);
    if (!ev->callbacks) { Py_DECREF(ev); return NULL; }
    ev->value = Py_NewRef(Pending);
    ev->defval = Py_NewRef(Py_None);
    ev->ok = 1;
    ev->scheduled = 0;
    return ev;
}

static int
event_post(EventObject *ev, double delay)
{
    if (ev->scheduled) {
        PyErr_SetString(SimError, "event already scheduled");
        return -1;
    }
    ev->scheduled = 1;
    SimObject *sim = (SimObject *)ev->sim;
    return heap_push(sim, sim->now + delay, (PyObject *)ev, K_EVENT);
}

/* Internal succeed/fail: no "already triggered" possible at call sites
 * that checked; callers that may race use event_complete_checked. */
static int
event_complete(EventObject *ev, PyObject *value, int ok)
{
    if (ev->value != Pending) {
        PyErr_SetString(SimError, "event already triggered");
        return -1;
    }
    Py_XSETREF(ev->value, Py_NewRef(value));
    ev->ok = (char)ok;
    return event_post(ev, 0.0);
}

static int
Event_init(EventObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *sim;
    static char *kwlist[] = {"sim", NULL};
    if (check_ready() < 0)
        return -1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!", kwlist,
                                     &SimType, &sim))
        return -1;
    Py_XSETREF(self->sim, Py_NewRef(sim));
    PyObject *cbs = PyList_New(0);
    if (!cbs)
        return -1;
    Py_XSETREF(self->callbacks, cbs);
    Py_XSETREF(self->value, Py_NewRef(Pending));
    Py_XSETREF(self->defval, Py_NewRef(Py_None));
    self->ok = 1;
    self->scheduled = 0;
    return 0;
}

static int
Event_traverse(EventObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->callbacks);
    Py_VISIT(self->value);
    Py_VISIT(self->defval);
    return 0;
}

static int
Event_clear(EventObject *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    Py_CLEAR(self->defval);
    return 0;
}

static void
Event_dealloc(EventObject *self)
{
    PyObject_GC_UnTrack(self);
    Event_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Event_succeed(EventObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError, "succeed() takes at most 1 argument");
        return NULL;
    }
    PyObject *value = nargs ? args[0] : Py_None;
    if (event_complete(self, value, 1) < 0)
        return NULL;
    return Py_NewRef((PyObject *)self);
}

static PyObject *
Event_fail(EventObject *self, PyObject *exc)
{
    if (self->value != Pending) {
        PyErr_SetString(SimError, "event already triggered");
        return NULL;
    }
    if (!PyExceptionInstance_Check(exc)) {
        PyErr_SetString(SimError, "fail() requires an exception instance");
        return NULL;
    }
    Py_XSETREF(self->value, Py_NewRef(exc));
    self->ok = 0;
    if (event_post(self, 0.0) < 0)
        return NULL;
    return Py_NewRef((PyObject *)self);
}

static PyObject *
Event_get_triggered(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->value != Pending);
}

static PyObject *
Event_get_processed(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->callbacks == NULL);
}

static PyObject *
Event_get_ok(EventObject *self, void *closure)
{
    if (self->value == Pending) {
        PyErr_SetString(SimError, "event not yet triggered");
        return NULL;
    }
    return PyBool_FromLong(self->ok);
}

static PyObject *
Event_get_value(EventObject *self, void *closure)
{
    if (self->value == Pending) {
        PyErr_SetString(SimError, "event not yet triggered");
        return NULL;
    }
    return Py_NewRef(self->value);
}

static PyObject *
Event_get_callbacks(EventObject *self, void *closure)
{
    if (self->callbacks == NULL)
        Py_RETURN_NONE;
    return Py_NewRef(self->callbacks);
}

static int
Event_set_callbacks(EventObject *self, PyObject *v, void *closure)
{
    if (v == NULL || v == Py_None) {
        Py_CLEAR(self->callbacks);
        return 0;
    }
    if (!PyList_Check(v)) {
        PyErr_SetString(PyExc_TypeError, "callbacks must be a list or None");
        return -1;
    }
    Py_XSETREF(self->callbacks, Py_NewRef(v));
    return 0;
}

static PyObject *
Event_get_rawvalue(EventObject *self, void *closure)
{
    return Py_NewRef(self->value);
}

static PyObject *
Event_get_rawok(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->ok);
}

static PyObject *
Event_get_scheduled(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->scheduled);
}

static PyObject *
Event_get_default(EventObject *self, void *closure)
{
    return Py_NewRef(self->defval);
}

static PyMethodDef Event_methods[] = {
    {"succeed", (PyCFunction)(void (*)(void))Event_succeed, METH_FASTCALL,
     "Trigger the event; the value is sent to every waiting process."},
    {"fail", (PyCFunction)Event_fail, METH_O,
     "Trigger the event as failed; waiters receive the exception."},
    {NULL}
};

static PyGetSetDef Event_getset[] = {
    {"triggered", (getter)Event_get_triggered, NULL, NULL, NULL},
    {"processed", (getter)Event_get_processed, NULL, NULL, NULL},
    {"ok", (getter)Event_get_ok, NULL, NULL, NULL},
    {"value", (getter)Event_get_value, NULL, NULL, NULL},
    {"callbacks", (getter)Event_get_callbacks, (setter)Event_set_callbacks,
     NULL, NULL},
    {"_value", (getter)Event_get_rawvalue, NULL, NULL, NULL},
    {"_ok", (getter)Event_get_rawok, NULL, NULL, NULL},
    {"_scheduled", (getter)Event_get_scheduled, NULL, NULL, NULL},
    {"_default", (getter)Event_get_default, NULL, NULL, NULL},
    {NULL}
};

static PyMemberDef Event_members[] = {
    {"sim", T_OBJECT, offsetof(EventObject, sim), READONLY, NULL},
    {NULL}
};

static PyTypeObject EventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Event",
    .tp_basicsize = sizeof(EventObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A one-shot occurrence that processes can wait on.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Event_init,
    .tp_dealloc = (destructor)Event_dealloc,
    .tp_traverse = (traverseproc)Event_traverse,
    .tp_clear = (inquiry)Event_clear,
    .tp_methods = Event_methods,
    .tp_getset = Event_getset,
    .tp_members = Event_members,
};

/* ------------------------------------------------------------------ */
/* Timeout                                                             */
/* ------------------------------------------------------------------ */

static int
Timeout_init(TimeoutObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *sim, *dobj, *value = Py_None;
    static char *kwlist[] = {"sim", "delay", "value", NULL};
    if (check_ready() < 0)
        return -1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!O|O", kwlist,
                                     &SimType, &sim, &dobj, &value))
        return -1;
    double delay = PyFloat_AsDouble(dobj);
    if (delay == -1.0 && PyErr_Occurred())
        return -1;
    if (delay < 0) {
        PyErr_Format(SimError, "negative timeout delay: %S", dobj);
        return -1;
    }
    EventObject *ev = &self->ev;
    Py_XSETREF(ev->sim, Py_NewRef(sim));
    PyObject *cbs = PyList_New(0);
    if (!cbs)
        return -1;
    Py_XSETREF(ev->callbacks, cbs);
    Py_XSETREF(ev->value, Py_NewRef(Pending));
    Py_XSETREF(ev->defval, Py_NewRef(value));
    ev->ok = 1;
    ev->scheduled = 0;
    self->delay = delay;
    return event_post(ev, delay);
}

static PyMemberDef Timeout_members[] = {
    {"delay", T_DOUBLE, offsetof(TimeoutObject, delay), READONLY, NULL},
    {NULL}
};

static PyTypeObject TimeoutType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Timeout",
    .tp_basicsize = sizeof(TimeoutObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "An event that fires after a fixed virtual-time delay.",
    .tp_base = &EventType,
    .tp_init = (initproc)Timeout_init,
    .tp_dealloc = (destructor)Event_dealloc,
    .tp_traverse = (traverseproc)Event_traverse,
    .tp_clear = (inquiry)Event_clear,
    .tp_members = Timeout_members,
};

/* ------------------------------------------------------------------ */
/* Process                                                             */
/* ------------------------------------------------------------------ */

static PyObject *
Process_resume_impl(PyObject *self_obj, PyObject *evobj)
{
    ProcessObject *self = (ProcessObject *)self_obj;
    if (self->ev.value != Pending)  /* finished (e.g. interrupted mid-wait) */
        Py_RETURN_NONE;
    if (!PyObject_TypeCheck(evobj, &EventType)) {
        PyErr_SetString(PyExc_TypeError, "_resume expects an Event");
        return NULL;
    }
    Py_CLEAR(self->waiting_on);
    EventObject *ev = (EventObject *)evobj;
    if (process_step(self, ev->value, ev->ok) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef Process_resume_def = {
    "_resume", (PyCFunction)Process_resume_impl, METH_O,
    "Resume the generator with the fired event's value."};

static int
Process_init(ProcessObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *sim, *gen, *name = NULL;
    static char *kwlist[] = {"sim", "gen", "name", NULL};
    if (check_ready() < 0)
        return -1;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!O|U", kwlist,
                                     &SimType, &sim, &gen, &name))
        return -1;

    PyObject *send = PyObject_GetAttr(gen, str_send);
    if (!send) {
        PyErr_Clear();
        PyErr_Format(SimError, "Process requires a generator, got %R", gen);
        return -1;
    }
    Py_DECREF(send);

    EventObject *ev = &self->ev;
    Py_XSETREF(ev->sim, Py_NewRef(sim));
    PyObject *cbs = PyList_New(0);
    if (!cbs)
        return -1;
    Py_XSETREF(ev->callbacks, cbs);
    Py_XSETREF(ev->value, Py_NewRef(Pending));
    Py_XSETREF(ev->defval, Py_NewRef(Py_None));
    ev->ok = 1;
    ev->scheduled = 0;

    Py_XSETREF(self->gen, Py_NewRef(gen));
    if (name && PyUnicode_GET_LENGTH(name) > 0) {
        Py_XSETREF(self->name, Py_NewRef(name));
    }
    else {
        PyObject *gname = PyObject_GetAttr(gen, str_dunder_name);
        if (!gname) {
            PyErr_Clear();
            gname = PyUnicode_FromString("process");
            if (!gname)
                return -1;
        }
        Py_XSETREF(self->name, gname);
    }
    Py_CLEAR(self->waiting_on);
    Py_CLEAR(self->kick);
    Py_CLEAR(self->kick_cbs);
    PyObject *resume = PyCFunction_New(&Process_resume_def, (PyObject *)self);
    if (!resume)
        return -1;
    Py_XSETREF(self->resume_cb, resume);

    SimObject *s = (SimObject *)sim;
    s->n_spawned += 1;
    /* Bootstrap: one call-slot heap entry at the current instant (the
     * same tie-break cost the pure tier's bootstrap slot pays). */
    return heap_push(s, s->now, (PyObject *)self, K_START);
}

static int
Process_traverse(ProcessObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->ev.sim);
    Py_VISIT(self->ev.callbacks);
    Py_VISIT(self->ev.value);
    Py_VISIT(self->ev.defval);
    Py_VISIT(self->gen);
    Py_VISIT(self->name);
    Py_VISIT(self->waiting_on);
    Py_VISIT(self->kick);
    Py_VISIT(self->kick_cbs);
    Py_VISIT(self->resume_cb);
    return 0;
}

static int
Process_clear(ProcessObject *self)
{
    Event_clear(&self->ev);
    Py_CLEAR(self->gen);
    Py_CLEAR(self->name);
    Py_CLEAR(self->waiting_on);
    Py_CLEAR(self->kick);
    Py_CLEAR(self->kick_cbs);
    Py_CLEAR(self->resume_cb);
    return 0;
}

static void
Process_dealloc(ProcessObject *self)
{
    PyObject_GC_UnTrack(self);
    Process_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* Fail the process with the currently-raised exception (normalized),
 * re-raising KeyboardInterrupt/SystemExit.  Returns 0 on handled. */
static int
process_fail_from_err(ProcessObject *self)
{
    if (PyErr_ExceptionMatches(PyExc_KeyboardInterrupt) ||
        PyErr_ExceptionMatches(PyExc_SystemExit))
        return -1;
    PyObject *etype, *evalue, *tb;
    PyErr_Fetch(&etype, &evalue, &tb);
    PyErr_NormalizeException(&etype, &evalue, &tb);
    if (tb)
        PyException_SetTraceback(evalue, tb);
    int st = event_complete(&self->ev, evalue, 0);
    Py_XDECREF(etype);
    Py_XDECREF(evalue);
    Py_XDECREF(tb);
    return st;
}

static int
process_step(ProcessObject *self, PyObject *sendval, int ok)
{
    PyObject *gen = self->gen;
    PyObject *target = NULL;
    PyObject *val = Py_NewRef(sendval ? sendval : Py_None);

    for (;;) {
        if (ok) {
            PySendResult r = PyIter_Send(gen, val, &target);
            Py_CLEAR(val);
            if (r == PYGEN_RETURN) {
                int st = event_complete(&self->ev, target, 1);
                Py_DECREF(target);
                return st;
            }
            if (r == PYGEN_ERROR)
                return process_fail_from_err(self);
        }
        else {
            target = PyObject_CallMethodOneArg(gen, str_throw, val);
            Py_CLEAR(val);
            if (!target) {
                if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
                    PyObject *etype, *evalue, *tb;
                    PyErr_Fetch(&etype, &evalue, &tb);
                    PyErr_NormalizeException(&etype, &evalue, &tb);
                    PyObject *retval = evalue
                        ? PyObject_GetAttr(evalue, str_value)
                        : Py_NewRef(Py_None);
                    Py_XDECREF(etype);
                    Py_XDECREF(evalue);
                    Py_XDECREF(tb);
                    if (!retval)
                        return -1;
                    int st = event_complete(&self->ev, retval, 1);
                    Py_DECREF(retval);
                    return st;
                }
                return process_fail_from_err(self);
            }
        }
        if (PyObject_TypeCheck(target, &EventType))
            break;
        /* Misuse: throw into the generator and keep driving it. */
        PyObject *msg = PyUnicode_FromFormat(
            "process %R yielded %R, expected an Event", self->name, target);
        Py_CLEAR(target);
        if (!msg)
            return -1;
        PyObject *exc = PyObject_CallOneArg(SimError, msg);
        Py_DECREF(msg);
        if (!exc)
            return -1;
        val = exc;
        ok = 0;
    }

    EventObject *tev = (EventObject *)target;
    if (tev->callbacks == NULL) {
        /* Already fired and processed: resume next tick via the
         * recycled per-process kick event. */
        EventObject *kick = (EventObject *)self->kick;
        if (kick == NULL || kick->callbacks != NULL) {
            /* First use, or the previous kick is still in the heap
             * (an interrupt resumed us early): allocate. */
            kick = event_new_bare(&EventType, (SimObject *)self->ev.sim);
            if (!kick) { Py_DECREF(target); return -1; }
            if (PyList_Append(kick->callbacks, self->resume_cb) < 0) {
                Py_DECREF(kick);
                Py_DECREF(target);
                return -1;
            }
            Py_XSETREF(self->kick, (PyObject *)kick);
            Py_XSETREF(self->kick_cbs, Py_NewRef(kick->callbacks));
        }
        else {
            kick->scheduled = 0;
            Py_XSETREF(kick->callbacks, Py_NewRef(self->kick_cbs));
        }
        Py_XSETREF(kick->value, Py_NewRef(tev->value));
        kick->ok = tev->ok;
        if (event_post(kick, 0.0) < 0) { Py_DECREF(target); return -1; }
        Py_XSETREF(self->waiting_on, Py_NewRef((PyObject *)kick));
    }
    else {
        if (PyList_Append(tev->callbacks, self->resume_cb) < 0) {
            Py_DECREF(target);
            return -1;
        }
        Py_XSETREF(self->waiting_on, Py_NewRef(target));
    }
    Py_DECREF(target);
    return 0;
}

static PyObject *
Process_interrupt(ProcessObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError,
                        "interrupt() takes at most 1 argument");
        return NULL;
    }
    PyObject *cause = nargs ? args[0] : Py_None;
    if (self->ev.value != Pending)
        Py_RETURN_NONE;
    PyObject *waited = self->waiting_on;
    if (waited) {
        EventObject *wev = (EventObject *)waited;
        if (wev->value == Pending && wev->callbacks != NULL) {
            /* Detach from the event we were waiting on (mirrors the
             * pure tier's list.remove, ignoring absence). */
            Py_ssize_t n = PyList_GET_SIZE(wev->callbacks);
            for (Py_ssize_t i = 0; i < n; i++) {
                if (PyList_GET_ITEM(wev->callbacks, i) == self->resume_cb) {
                    if (PyList_SetSlice(wev->callbacks, i, i + 1, NULL) < 0)
                        return NULL;
                    break;
                }
            }
        }
    }
    Py_CLEAR(self->waiting_on);
    EventObject *kick = event_new_bare(&EventType, (SimObject *)self->ev.sim);
    if (!kick)
        return NULL;
    if (PyList_Append(kick->callbacks, self->resume_cb) < 0) {
        Py_DECREF(kick);
        return NULL;
    }
    PyObject *exc = PyObject_CallOneArg(InterruptCls, cause);
    if (!exc) {
        Py_DECREF(kick);
        return NULL;
    }
    Py_XSETREF(kick->value, exc);  /* steals exc */
    kick->ok = 0;
    int st = event_post(kick, 0.0);
    Py_DECREF(kick);
    if (st < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Process_get_is_alive(ProcessObject *self, void *closure)
{
    return PyBool_FromLong(self->ev.value == Pending);
}

static PyObject *
Process_get_resume(ProcessObject *self, void *closure)
{
    return Py_NewRef(self->resume_cb);
}

static PyMethodDef Process_methods[] = {
    {"interrupt", (PyCFunction)(void (*)(void))Process_interrupt,
     METH_FASTCALL,
     "Throw Interrupt into the process at the current instant."},
    {NULL}
};

static PyGetSetDef Process_getset[] = {
    {"is_alive", (getter)Process_get_is_alive, NULL, NULL, NULL},
    {"_resume", (getter)Process_get_resume, NULL, NULL, NULL},
    {NULL}
};

static PyMemberDef Process_members[] = {
    {"gen", T_OBJECT, offsetof(ProcessObject, gen), READONLY, NULL},
    {"name", T_OBJECT, offsetof(ProcessObject, name), READONLY, NULL},
    {NULL}
};

static PyTypeObject ProcessType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Process",
    .tp_basicsize = sizeof(ProcessObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Wraps a generator; the process event fires when it returns.",
    .tp_base = &EventType,
    .tp_init = (initproc)Process_init,
    .tp_dealloc = (destructor)Process_dealloc,
    .tp_traverse = (traverseproc)Process_traverse,
    .tp_clear = (inquiry)Process_clear,
    .tp_methods = Process_methods,
    .tp_getset = Process_getset,
    .tp_members = Process_members,
};

/* ------------------------------------------------------------------ */
/* Dispatch                                                            */
/* ------------------------------------------------------------------ */

/* Run one popped heap item.  Steals nothing (caller owns item). */
static int
dispatch_item(SimObject *sim, PyObject *item, int kind)
{
    if (kind == K_CALL) {
        PyObject *r = PyObject_CallNoArgs(item);
        if (!r)
            return -1;
        Py_DECREF(r);
        return 0;
    }
    if (kind == K_START) {
        ProcessObject *p = (ProcessObject *)item;
        if (p->ev.value != Pending)  /* interrupted before bootstrap */
            return 0;
        return process_step(p, Py_None, 1);
    }
    EventObject *ev = (EventObject *)item;
    if (ev->value == Pending) {
        /* Scheduled directly (Timeout): fire now with its default. */
        Py_XSETREF(ev->value, Py_NewRef(ev->defval));
    }
    PyObject *cbs = ev->callbacks;
    ev->callbacks = NULL;  /* ownership moves to this frame */
    if (cbs == NULL)
        return 0;
    /* Re-read the size every iteration, like the pure tier's list
     * iterator — a callback may reattach this same list (kick reuse). */
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(cbs); i++) {
        PyObject *cb = Py_NewRef(PyList_GET_ITEM(cbs, i));
        PyObject *r = PyObject_CallOneArg(cb, (PyObject *)ev);
        Py_DECREF(cb);
        if (!r) {
            Py_DECREF(cbs);
            return -1;
        }
        Py_DECREF(r);
    }
    Py_DECREF(cbs);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Simulator                                                           */
/* ------------------------------------------------------------------ */

static int
Sim_init(SimObject *self, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "Simulator() takes no arguments");
        return -1;
    }
    self->now = 0.0;
    self->seq = 0;
    self->n_spawned = self->n_fast = self->n_fallback = 0;
    self->running = 0;
    Py_CLEAR(self->obs);
    for (Py_ssize_t i = 0; i < self->hlen; i++)
        Py_DECREF(self->hitem[i]);
    self->hlen = 0;
    return 0;
}

static int
Sim_traverse(SimObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->obs);
    for (Py_ssize_t i = 0; i < self->hlen; i++)
        Py_VISIT(self->hitem[i]);
    return 0;
}

static int
Sim_clear(SimObject *self)
{
    Py_CLEAR(self->obs);
    Py_ssize_t n = self->hlen;
    self->hlen = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_CLEAR(self->hitem[i]);
    return 0;
}

static void
Sim_dealloc(SimObject *self)
{
    PyObject_GC_UnTrack(self);
    Sim_clear(self);
    PyMem_Free(self->ht);
    PyMem_Free(self->hseq);
    PyMem_Free(self->hitem);
    PyMem_Free(self->hkind);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Sim_event(SimObject *self, PyObject *noargs)
{
    if (check_ready() < 0)
        return NULL;
    return (PyObject *)event_new_bare(&EventType, self);
}

/* timeout(delay, value=None) — the hottest boxed allocation. */
static PyObject *
Sim_timeout(SimObject *self, PyObject *const *args, Py_ssize_t nargs,
            PyObject *kwnames)
{
    PyObject *value = Py_None;
    Py_ssize_t npos = nargs;
    if (kwnames) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *nm = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(nm, "value") == 0)
                value = args[nargs + i];
            else {
                PyErr_Format(PyExc_TypeError,
                             "timeout() got an unexpected keyword argument "
                             "%R", nm);
                return NULL;
            }
        }
    }
    if (npos < 1 || npos > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "timeout() takes 1 or 2 positional arguments");
        return NULL;
    }
    if (npos == 2)
        value = args[1];
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(SimError, "negative timeout delay: %S", args[0]);
        return NULL;
    }
    if (check_ready() < 0)
        return NULL;
    TimeoutObject *ev = (TimeoutObject *)event_new_bare(&TimeoutType, self);
    if (!ev)
        return NULL;
    Py_XSETREF(ev->ev.defval, Py_NewRef(value));
    ev->delay = delay;
    ev->ev.scheduled = 1;
    if (heap_push(self, self->now + delay, (PyObject *)ev, K_EVENT) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return (PyObject *)ev;
}

static PyObject *
Sim_after_call(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "after_call() takes exactly 2 arguments");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(SimError, "negative after_call delay: %S", args[0]);
        return NULL;
    }
    if (heap_push(self, self->now + delay, args[1], K_CALL) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Sim_after(SimObject *self, PyObject *const *args, Py_ssize_t nargs,
          PyObject *kwnames)
{
    PyObject *value = Py_None;
    if (kwnames) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *nm = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(nm, "value") == 0)
                value = args[nargs + i];
            else {
                PyErr_Format(PyExc_TypeError,
                             "after() got an unexpected keyword argument %R",
                             nm);
                return NULL;
            }
        }
    }
    if (nargs < 2 || nargs > 3) {
        PyErr_SetString(PyExc_TypeError,
                        "after() takes 2 or 3 positional arguments");
        return NULL;
    }
    if (nargs == 3)
        value = args[2];
    PyObject *targs[3] = {args[0], value, NULL};
    PyObject *ev = Sim_timeout(self, targs, 2, NULL);
    if (!ev)
        return NULL;
    if (PyList_Append(((EventObject *)ev)->callbacks, args[1]) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return ev;
}

static PyObject *
Sim_call_at(SimObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "call_at() takes exactly 2 arguments");
        return NULL;
    }
    double when = PyFloat_AsDouble(args[0]);
    if (when == -1.0 && PyErr_Occurred())
        return NULL;
    if (when < self->now) {
        PyObject *nowobj = PyFloat_FromDouble(self->now);
        if (nowobj) {
            PyErr_Format(SimError, "call_at past time %S < now %S",
                         args[0], nowobj);
            Py_DECREF(nowobj);
        }
        return NULL;
    }
    PyObject *wrapper = PyObject_CallOneArg(DropArgHelper, args[1]);
    if (!wrapper)
        return NULL;
    PyObject *dobj = PyFloat_FromDouble(when - self->now);
    if (!dobj) { Py_DECREF(wrapper); return NULL; }
    PyObject *targs[1] = {dobj};
    PyObject *ev = Sim_timeout(self, targs, 1, NULL);
    Py_DECREF(dobj);
    if (!ev) { Py_DECREF(wrapper); return NULL; }
    int st = PyList_Append(((EventObject *)ev)->callbacks, wrapper);
    Py_DECREF(wrapper);
    if (st < 0) { Py_DECREF(ev); return NULL; }
    return ev;
}

static PyObject *
Sim_spawn(SimObject *self, PyObject *const *args, Py_ssize_t nargs,
          PyObject *kwnames)
{
    PyObject *name = NULL;
    if (kwnames) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *nm = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(nm, "name") == 0)
                name = args[nargs + i];
            else {
                PyErr_Format(PyExc_TypeError,
                             "spawn() got an unexpected keyword argument %R",
                             nm);
                return NULL;
            }
        }
    }
    if (nargs < 1 || nargs > 2) {
        PyErr_SetString(PyExc_TypeError,
                        "spawn() takes 1 or 2 positional arguments");
        return NULL;
    }
    if (nargs == 2)
        name = args[1];
    PyObject *proc;
    if (name)
        proc = PyObject_CallFunctionObjArgs((PyObject *)&ProcessType,
                                            (PyObject *)self, args[0], name,
                                            NULL);
    else
        proc = PyObject_CallFunctionObjArgs((PyObject *)&ProcessType,
                                            (PyObject *)self, args[0], NULL);
    if (!proc)
        return NULL;
    if (self->obs && self->obs != Py_None && SpawnObsHook) {
        PyObject *r = PyObject_CallFunctionObjArgs(SpawnObsHook,
                                                   (PyObject *)self, proc,
                                                   NULL);
        if (!r) { Py_DECREF(proc); return NULL; }
        Py_DECREF(r);
    }
    return proc;
}

static PyObject *
Sim_all_of(SimObject *self, PyObject *events)
{
    if (!AllOfCls) {
        PyErr_SetString(PyExc_RuntimeError, "_ccore helpers not initialized");
        return NULL;
    }
    return PyObject_CallFunctionObjArgs(AllOfCls, (PyObject *)self, events,
                                        NULL);
}

static PyObject *
Sim_any_of(SimObject *self, PyObject *events)
{
    if (!AnyOfCls) {
        PyErr_SetString(PyExc_RuntimeError, "_ccore helpers not initialized");
        return NULL;
    }
    return PyObject_CallFunctionObjArgs(AnyOfCls, (PyObject *)self, events,
                                        NULL);
}

static PyObject *
Sim_post(SimObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *ev;
    double delay = 0.0;
    static char *kwlist[] = {"event", "delay", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O!|d", kwlist,
                                     &EventType, &ev, &delay))
        return NULL;
    if (event_post((EventObject *)ev, delay) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Sim_idle_at_now(SimObject *self, PyObject *noargs)
{
    return PyBool_FromLong(self->hlen == 0 || self->ht[0] > self->now);
}

static PyObject *
Sim_next_time(SimObject *self, PyObject *noargs)
{
    if (self->hlen == 0)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(self->ht[0]);
}

static PyObject *
Sim_stats(SimObject *self, PyObject *noargs)
{
    PyObject *d = PyDict_New();
    if (!d)
        return NULL;
    int bad = 0;
    PyObject *v;
#define SET(key, val) \
    do { \
        v = PyLong_FromLongLong(val); \
        if (!v || PyDict_SetItemString(d, key, v) < 0) bad = 1; \
        Py_XDECREF(v); \
    } while (0)
    SET("events_processed", self->seq - (long long)self->hlen);
    SET("processes_spawned", self->n_spawned);
    SET("spawns", self->n_spawned);
    SET("fast_completions", self->n_fast);
    SET("fallbacks", self->n_fallback);
#undef SET
    if (bad) { Py_DECREF(d); return NULL; }
    return d;
}

static PyObject *
Sim_step(SimObject *self, PyObject *noargs)
{
    if (self->hlen == 0) {
        PyErr_SetString(PyExc_IndexError, "step from an empty schedule");
        return NULL;
    }
    double when;
    int kind;
    PyObject *item = heap_pop(self, &when, &kind);
    self->now = when;
    int st = dispatch_item(self, item, kind);
    Py_DECREF(item);
    if (st < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Sim_run(SimObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *untilobj = Py_None;
    static char *kwlist[] = {"until", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O", kwlist, &untilobj))
        return NULL;
    int has_until = untilobj != Py_None;
    double until = 0.0;
    if (has_until) {
        until = PyFloat_AsDouble(untilobj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    if (self->running) {
        PyErr_SetString(SimError, "simulator is not reentrant");
        return NULL;
    }
    self->running = 1;
    int err = 0;
    while (self->hlen) {
        double when = self->ht[0];
        if (has_until && when > until) {
            self->now = until;
            break;
        }
        self->now = when;
        /* Batched same-instant drain: clock store + horizon check once
         * per instant. */
        while (self->hlen && self->ht[0] == when) {
            double t;
            int kind;
            PyObject *item = heap_pop(self, &t, &kind);
            err = dispatch_item(self, item, kind);
            Py_DECREF(item);
            if (err)
                goto done;
        }
    }
done:
    self->running = 0;
    if (err)
        return NULL;
    return PyFloat_FromDouble(self->now);
}

static PyObject *
Sim_run_process(SimObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *gen, *name = NULL;
    static char *kwlist[] = {"gen", "name", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|U", kwlist, &gen, &name))
        return NULL;
    PyObject *sargs[2] = {gen, name};
    PyObject *procobj = Sim_spawn(self, sargs, name ? 2 : 1, NULL);
    if (!procobj)
        return NULL;
    ProcessObject *proc = (ProcessObject *)procobj;
    if (self->running) {
        Py_DECREF(procobj);
        PyErr_SetString(SimError, "simulator is not reentrant");
        return NULL;
    }
    self->running = 1;
    int err = 0;
    /* Stop as soon as the process completes so orphaned timers do not
     * advance the clock further. */
    while (self->hlen && proc->ev.value == Pending) {
        double when = self->ht[0];
        self->now = when;
        while (self->hlen && self->ht[0] == when &&
               proc->ev.value == Pending) {
            double t;
            int kind;
            PyObject *item = heap_pop(self, &t, &kind);
            err = dispatch_item(self, item, kind);
            Py_DECREF(item);
            if (err)
                goto done;
        }
    }
done:
    self->running = 0;
    if (err) {
        Py_DECREF(procobj);
        return NULL;
    }
    if (proc->ev.value == Pending) {
        PyObject *nowobj = PyFloat_FromDouble(self->now);
        if (nowobj) {
            PyErr_Format(SimError,
                         "deadlock: process %R never finished "
                         "(simulation ran dry at t=%S)",
                         proc->name, nowobj);
            Py_DECREF(nowobj);
        }
        Py_DECREF(procobj);
        return NULL;
    }
    if (!proc->ev.ok) {
        PyObject *exc = proc->ev.value;
        PyErr_SetObject(PyExceptionInstance_Class(exc), exc);
        Py_DECREF(procobj);
        return NULL;
    }
    PyObject *result = Py_NewRef(proc->ev.value);
    Py_DECREF(procobj);
    return result;
}

static PyMethodDef Sim_methods[] = {
    {"event", (PyCFunction)Sim_event, METH_NOARGS,
     "Return a fresh pending event."},
    {"timeout", (PyCFunction)(void (*)(void))Sim_timeout,
     METH_FASTCALL | METH_KEYWORDS,
     "Return an event that fires after a fixed delay."},
    {"after_call", (PyCFunction)(void (*)(void))Sim_after_call, METH_FASTCALL,
     "Schedule bare fn() as a call slot, delay seconds out."},
    {"after", (PyCFunction)(void (*)(void))Sim_after,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule fn(event) to run delay seconds from now."},
    {"call_at", (PyCFunction)(void (*)(void))Sim_call_at, METH_FASTCALL,
     "Run fn at absolute virtual time when (>= now)."},
    {"spawn", (PyCFunction)(void (*)(void))Sim_spawn,
     METH_FASTCALL | METH_KEYWORDS,
     "Start a new simulation process from a generator."},
    {"all_of", (PyCFunction)Sim_all_of, METH_O,
     "An event that fires when all the given events have fired."},
    {"any_of", (PyCFunction)Sim_any_of, METH_O,
     "An event that fires when any of the given events fires."},
    {"_post", (PyCFunction)(void (*)(void))Sim_post,
     METH_VARARGS | METH_KEYWORDS,
     "Schedule a triggered event for dispatch delay seconds out."},
    {"next_time", (PyCFunction)Sim_next_time, METH_NOARGS,
     PyDoc_STR("Time of the earliest scheduled entry, or None.")},
    {"idle_at_now", (PyCFunction)Sim_idle_at_now, METH_NOARGS,
     "True when nothing further is scheduled at the current instant."},
    {"stats", (PyCFunction)Sim_stats, METH_NOARGS,
     "Dispatch and fast-path counters."},
    {"step", (PyCFunction)Sim_step, METH_NOARGS,
     "Process the next scheduled event (advances the clock)."},
    {"run", (PyCFunction)(void (*)(void))Sim_run,
     METH_VARARGS | METH_KEYWORDS,
     "Run until the heap is empty or virtual time passes `until`."},
    {"run_process", (PyCFunction)(void (*)(void))Sim_run_process,
     METH_VARARGS | METH_KEYWORDS,
     "Spawn gen, run to completion, and return its value."},
    {NULL}
};

static PyMemberDef Sim_members[] = {
    {"now", T_DOUBLE, offsetof(SimObject, now), 0, NULL},
    {"obs", T_OBJECT, offsetof(SimObject, obs), 0, NULL},
    {"_seq", T_LONGLONG, offsetof(SimObject, seq), READONLY, NULL},
    {"_n_spawned", T_LONGLONG, offsetof(SimObject, n_spawned), 0, NULL},
    {"_n_fast", T_LONGLONG, offsetof(SimObject, n_fast), 0, NULL},
    {"_n_fallback", T_LONGLONG, offsetof(SimObject, n_fallback), 0, NULL},
    {NULL}
};

static PyTypeObject SimType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ccore.Simulator",
    .tp_basicsize = sizeof(SimObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "The event loop over the struct-of-arrays slot store.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Sim_init,
    .tp_dealloc = (destructor)Sim_dealloc,
    .tp_traverse = (traverseproc)Sim_traverse,
    .tp_clear = (inquiry)Sim_clear,
    .tp_methods = Sim_methods,
    .tp_members = Sim_members,
};

/* ------------------------------------------------------------------ */
/* Module functions                                                    */
/* ------------------------------------------------------------------ */

static PyObject *
mod_fire(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 1 || nargs > 2) {
        PyErr_SetString(PyExc_TypeError, "fire() takes 1 or 2 arguments");
        return NULL;
    }
    if (!PyObject_TypeCheck(args[0], &EventType)) {
        PyErr_SetString(PyExc_TypeError, "fire() expects an Event");
        return NULL;
    }
    EventObject *ev = (EventObject *)args[0];
    PyObject *value = nargs == 2 ? args[1] : Py_None;
    if (ev->value != Pending) {
        PyErr_SetString(SimError, "event already triggered");
        return NULL;
    }
    Py_XSETREF(ev->value, Py_NewRef(value));
    ev->ok = 1;
    ev->scheduled = 1;
    ((SimObject *)ev->sim)->n_fast += 1;
    PyObject *cbs = ev->callbacks;
    ev->callbacks = NULL;
    if (cbs != NULL) {
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(cbs); i++) {
            PyObject *cb = Py_NewRef(PyList_GET_ITEM(cbs, i));
            PyObject *r = PyObject_CallOneArg(cb, (PyObject *)ev);
            Py_DECREF(cb);
            if (!r) {
                Py_DECREF(cbs);
                return NULL;
            }
            Py_DECREF(r);
        }
        Py_DECREF(cbs);
    }
    Py_RETURN_NONE;
}

static PyObject *
mod_chain(PyObject *mod, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "chain() takes exactly 2 arguments");
        return NULL;
    }
    if (!PyObject_TypeCheck(args[0], &EventType)) {
        PyErr_SetString(PyExc_TypeError, "chain() expects an Event");
        return NULL;
    }
    EventObject *ev = (EventObject *)args[0];
    PyObject *cbs = ev->callbacks;
    if (cbs == NULL) {
        PyObject *r = PyObject_CallOneArg(args[1], (PyObject *)ev);
        if (!r)
            return NULL;
        Py_DECREF(r);
    }
    else if (PyList_Append(cbs, args[1]) < 0)
        return NULL;
    return Py_NewRef((PyObject *)ev);
}

static PyObject *
mod_set_helpers(PyObject *mod, PyObject *args, PyObject *kwds)
{
    PyObject *pending, *simerror, *interrupt, *allof, *anyof, *spawn_obs,
        *drop_arg;
    static char *kwlist[] = {"pending", "simerror", "interrupt", "allof",
                             "anyof", "spawn_obs", "drop_arg", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OOOOOOO", kwlist,
                                     &pending, &simerror, &interrupt, &allof,
                                     &anyof, &spawn_obs, &drop_arg))
        return NULL;
    Py_XSETREF(Pending, Py_NewRef(pending));
    Py_XSETREF(SimError, Py_NewRef(simerror));
    Py_XSETREF(InterruptCls, Py_NewRef(interrupt));
    Py_XSETREF(AllOfCls, Py_NewRef(allof));
    Py_XSETREF(AnyOfCls, Py_NewRef(anyof));
    Py_XSETREF(SpawnObsHook, Py_NewRef(spawn_obs));
    Py_XSETREF(DropArgHelper, Py_NewRef(drop_arg));
    Py_RETURN_NONE;
}

static PyMethodDef mod_methods[] = {
    {"fire", (PyCFunction)(void (*)(void))mod_fire, METH_FASTCALL,
     "Trigger an event and run its callbacks inline, bypassing the heap."},
    {"chain", (PyCFunction)(void (*)(void))mod_chain, METH_FASTCALL,
     "Run fn(ev) when ev fires (immediately if already processed)."},
    {"_set_helpers", (PyCFunction)(void (*)(void))mod_set_helpers,
     METH_VARARGS | METH_KEYWORDS,
     "Inject the shared sentinel, exception types, and Python helpers."},
    {NULL}
};

static struct PyModuleDef ccoremodule = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ccore",
    .m_doc = "Compiled tier of the discrete-event core (see engine.py).",
    .m_size = -1,
    .m_methods = mod_methods,
};

PyMODINIT_FUNC
PyInit__ccore(void)
{
    str_send = PyUnicode_InternFromString("send");
    str_throw = PyUnicode_InternFromString("throw");
    str_value = PyUnicode_InternFromString("value");
    str_dunder_name = PyUnicode_InternFromString("__name__");
    if (!str_send || !str_throw || !str_value || !str_dunder_name)
        return NULL;
    if (PyType_Ready(&SimType) < 0 || PyType_Ready(&EventType) < 0 ||
        PyType_Ready(&TimeoutType) < 0 || PyType_Ready(&ProcessType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&ccoremodule);
    if (!m)
        return NULL;
    if (PyModule_AddObjectRef(m, "Simulator", (PyObject *)&SimType) < 0 ||
        PyModule_AddObjectRef(m, "Event", (PyObject *)&EventType) < 0 ||
        PyModule_AddObjectRef(m, "Timeout", (PyObject *)&TimeoutType) < 0 ||
        PyModule_AddObjectRef(m, "Process", (PyObject *)&ProcessType) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
