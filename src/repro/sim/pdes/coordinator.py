"""The conservative PDES coordinator: fork, synchronize, merge.

``run_app_pdes`` is the partitioned twin of
:func:`repro.harness.experiment.run_app`.  It splits the topology's
clusters into contiguous blocks (:mod:`.plan`), forks one worker per
block, and drives them through *epochs*: windows of virtual time each
partition may simulate without hearing from the others.

The window algebra (:func:`compute_caps`) is the whole correctness
story.  With ``N_j`` the earliest event time partition ``j`` could
still dispatch (its next heap entry, or anything routed to it this
epoch) and ``L`` the WAN lookahead:

    cap_i = min( min_{j != i} N_j + L,
                 min over i's un-acked floors (p, A) of max(A, N_p) )

The first term is classic conservative synchronization — nothing
another partition does before ``N_j`` can reach ``i`` before
``N_j + L``.  The second handles synchronous sends: until the
destination ``p`` acks the deposit of an armed message arriving at
``A``, partition ``i`` may not outrun ``max(A, N_p)``; the deposit
happens strictly after the arrival, and ``N_p`` tracks the
destination's frontier, so the sender's delivery event is always
planted in ``i``'s future.  Every term is ``>= min_j N_j``, so the
globally-earliest event is always dispatchable: the protocol cannot
deadlock.

Workers run each epoch *inclusively* to their cap (the engine's
``run(until=...)`` dispatches events at the horizon), report their new
frontier plus everything they exported, and the coordinator routes
messages/acks into the next epoch's injections.  A worker's own
:class:`~.boundary.PartitionBoundary` refuses (`call_at` raises) any
injection before its clock — the conservative guarantee is asserted on
every delivery, not assumed.

**The sync fast lane** (see :mod:`.channel`): grants and reports cross
per-partition shared-memory rings as struct-packed blocks — the setup
pipe carries only run dispatch, the final payload, and errors — and
the coordinator runs the cap algebra every round but only *delivers* a
grant to partitions that can act on it.  A partition is skipped when
its inbox is empty and its cap is at or below its own frontier (and it
does not own ``gmin``): granting it would route nothing, release no
held arrival, and dispatch no event, so eliding the round-trip leaves
the worker's state bit-identical and the next grant it does receive
subsumes every elided epoch — a multi-epoch cap.  Workers are pooled:
the forked processes persist across runs of the same width and
transport, so a figure sweep re-synchronizes instead of re-forking.

Determinism: partitions allocate the same per-site message/request ids
as the single-process run, impairment randomness is drawn from
per-(model, directed pair) substreams, and every cross-partition
delivery replays the destination half of the serial fabric code at the
exported instant — so answers, finish times and trace *contents* are
bit-identical to the oracle; only same-instant interleavings across
independent partitions (invisible in any record field) may differ.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing as mp
import pickle
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine import SimulationError, Simulator
from ..trace import TraceSpec
from . import channel
from .boundary import EpochBreak, PartitionBoundary
from .plan import (channel_capacity, cluster_partition_map,
                   partition_clusters, wan_lookahead)

__all__ = ["WorkerSpec", "compute_caps", "run_app_pdes", "run_epoch",
           "shutdown_pool"]

INF = float("inf")


# --------------------------------------------------------------- protocol
#
# Setup pipe (per worker, long-lived across runs):
#   Parent -> worker:  ("run", WorkerSpec)          start one simulation
#   Worker -> parent:  ("ready", next_time)         stack built
#                      ("final", payload_dict)      after a FINISH grant
#                      ("error", tb, exc_or_None)   any state, fatal
#
# Fast lane (per worker, packed blocks — see channel.py):
#   Parent -> worker:  GRANT(cap_or_inf, gmin, sections) | FINISH
#   Worker -> parent:  REPORT(clock, frontier, pendings, sections)
#
# Routed items inside sections (built by PartitionBoundary.export /
# export_ack; index 3 is always the item's virtual time, which
# compute_caps relies on via the section's min_time):
#   ("msg", dst_partition, Message, arrival, path)
#   ("ack", dst_partition, msg_id, t_deposit)


@dataclass
class WorkerSpec:
    """Everything a forked partition worker needs to rebuild its stack."""

    part_id: int
    n_partitions: int
    clusters: Tuple[int, ...]
    cluster_partition: Tuple[int, ...]
    app: str
    variant: str
    params: Any
    network: Any
    sequencer: str
    dedicated_sequencer_node: bool
    topology: Any                      # final Topology (scenario applied)
    fast_paths: bool
    runtime_fast_paths: Optional[bool]
    scenario: Any = None
    trace: Optional[TraceSpec] = None
    lookahead: float = 0.0


def compute_caps(neff: Sequence[float], reals: Sequence[float],
                 pendings: Sequence[Sequence[Tuple[int, float]]],
                 lookahead: float) -> List[float]:
    """Per-partition epoch caps from effective frontiers and floors.

    ``reals[i]`` is the earliest virtual time partition ``i`` could
    still dispatch — its next heap entry, held arrivals, anything
    routed to it this round (``inf`` when dry).  ``neff[i]`` is
    ``reals[i]`` further lowered by partition ``i``'s own un-acked
    floors: a partition awaiting an ack wakes at the deposit (>= its
    floor) and can emit with one lookahead of margin, so for capping
    *others* it is only as far along as its earliest floor.
    ``pendings[i]`` lists partition ``i``'s un-acked synchronous sends
    as ``(owing partition, arrival floor)``; the deposit the ack
    reports is produced by *real* events at the owing partition, so
    that term uses ``reals`` — using ``neff`` there would let two
    mutually-waiting partitions pin each other's caps below the very
    chains that produce the deposits.  Pure, so the safety properties
    are directly property-testable.

    ``min_{j != i} neff_j`` is computed from the two smallest values
    (the minimum, unless ``i`` is its only holder, else the runner-up)
    — one pass instead of a scan per partition; this runs every epoch
    on the coordinator's critical path.
    """
    width = len(neff)
    m1 = INF        # smallest neff
    m1_count = 0    # how many partitions attain it
    m2 = INF        # smallest neff over the rest
    no_floors = True
    for v in neff:
        if v < m1:
            m1, m2, m1_count = v, m1, 1
        elif v == m1:
            m1_count += 1
        elif v < m2:
            m2 = v
    for p in pendings:
        if p:
            no_floors = False
            break
    if no_floors:
        e1 = m1 + lookahead
        e2 = m2 + lookahead
        lone = m1_count == 1
        return [e2 if (lone and neff[i] == m1) else e1
                for i in range(width)]
    caps = []
    for i in range(width):
        others = m2 if (neff[i] == m1 and m1_count == 1) else m1
        cap = others + lookahead
        for owing, floor in pendings[i]:
            cap = min(cap, max(floor, reals[owing]))
        caps.append(cap)
    return caps


def run_epoch(sim, boundary: PartitionBoundary, cap: Optional[float],
              gmin: Optional[float]) -> None:
    """Run one epoch: strictly below ``cap``, never past an ack floor.

    The cap is *exclusive* — events exactly at it wait for a later
    epoch — with two exceptions that keep the protocol live and exact:

    * ``gmin``, the globally-earliest event time, always dispatches
      (nothing in flight can precede or tie it un-routed, and some
      partition must move every epoch);
    * a fresh ack floor dispatches inclusively (events *at* an armed
      export's arrival are source-local; the remote deposit is
      strictly later).

    Exclusivity is what makes same-instant ties exact: an instant only
    dispatches once every partition's frontier plus the lookahead
    clears it, by which time all cross-partition arrivals at that
    instant are held at the boundary and enter the heap in serial
    order (see ``PartitionBoundary.flush``).

    Floors planted mid-run surface as :class:`EpochBreak` from the
    boundary's probes; each re-entry shortens the window to the
    earliest live floor.  ``cap=None`` means unbounded (every other
    partition is dry) — the worker drains, pausing only at floors.
    """
    while True:
        floor = boundary.floor()
        if cap is None:
            bound = floor
        elif floor is None:
            bound = cap
        else:
            bound = min(cap, floor)
        if bound is None:
            target = None
        else:
            if gmin is not None and bound < gmin:
                # Floors folded into the cap algebra can push a cap
                # below the globally-earliest real event; events at
                # gmin itself are always safe (nothing anywhere — wake
                # chains included — can produce an earlier one), and
                # the gmin owner must move for the protocol to be live.
                bound = gmin
            if bound < sim.now:
                # A slower partition dragged the cap below our clock:
                # the previous epoch already covered this window.
                return
            inclusive = bound == gmin or bound == floor
            target = bound if inclusive \
                else math.nextafter(bound, -math.inf)
            if target < sim.now:
                return
        try:
            sim.run(until=target)
        except EpochBreak:
            continue
        return


# ----------------------------------------------------------------- worker

def _worker_loop(chan, part_id: int) -> None:
    """Pooled worker body: one forked process, many runs.

    Each ``("run", spec)`` on the setup pipe drives one full
    simulation; the per-run state (message/request id counters, the
    whole simulator stack) is rebuilt from the spec exactly as a fresh
    process would — running many simulations in one process is the
    same invariant the test suite and the sweep pool already rely on.
    A worker that fails ships the error and exits; the coordinator
    then retires the whole pool.
    """
    chan.w_setup()
    conn = chan.wconn
    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):
            return
        if not isinstance(cmd, tuple) or cmd[0] != "run":
            return
        try:
            _worker_run(conn, chan, cmd[1])
        except BaseException as exc:
            # Ship the exception object itself when it pickles: the
            # coordinator then re-raises the app's real error (the
            # serial engine lets a ValueError out of ``register``
            # surface as a ValueError, and partitioning must not
            # change that contract).
            try:
                pickle.dumps(exc)
            except Exception:
                exc = None
            try:
                conn.send(("error", traceback.format_exc(), exc))
            except Exception:
                pass
            chan.w_post_error()
            return


def _worker_run(conn, chan, spec: WorkerSpec) -> None:
    # Deferred imports: the worker is forked, so these are usually
    # already loaded; top-level imports here would cycle (apps -> orca
    # -> sim -> pdes).
    from ...apps import make_app
    from ...network import Fabric
    from ...network.message import reset_ids
    from ...orca import OrcaRuntime
    from ...orca.runtime import reset_req_ids

    reset_ids()
    reset_req_ids()
    app = make_app(spec.app)
    sim = Simulator()
    topo = spec.topology
    tracer = spec.trace.build() if spec.trace is not None else None
    fabric = Fabric(sim, topo, spec.network, tracer=tracer,
                    fast_paths=spec.fast_paths)
    if tracer is not None:
        fabric.tracer.enabled = True
        sim.obs = fabric.tracer
    if spec.scenario is not None:
        from ...scenario import install
        install(sim, fabric, spec.scenario)
    boundary = PartitionBoundary(sim, topo, spec.cluster_partition,
                                 spec.part_id, lookahead=spec.lookahead)
    boundary.fabric = fabric
    fabric.pdes = boundary
    rts = OrcaRuntime(sim, fabric, sequencer=spec.sequencer,
                      dedicated_sequencer_node=spec.dedicated_sequencer_node,
                      fast_paths=spec.runtime_fast_paths)

    shared = app.register(rts, spec.params, spec.variant)
    local_nodes = [n for c in spec.clusters for n in topo.nodes_in(c)]
    finished_at: Dict[int, float] = {}

    def timed(nid):
        value = yield from app.process(rts.context(nid), spec.params,
                                       spec.variant, shared)
        finished_at[nid] = sim.now
        return value

    workers = [sim.spawn(timed(nid), name=f"{app.name}{nid}")
               for nid in local_nodes]

    conn.send(("ready", sim.next_time()))
    blocked = 0.0
    # Hot-path bindings: this loop turns over once per granted epoch.
    perf = time.perf_counter
    w_recv, w_send = chan.w_recv, chan.w_send
    decode_grant = channel.decode_grant
    encode_report = channel.encode_report
    encode_sections = channel.encode_sections
    while True:
        t0 = perf()
        block = w_recv()
        blocked += perf() - t0
        kind, cap, gmin, incoming = decode_grant(block)
        if kind == channel.FINISH:
            break
        if incoming:
            boundary.receive(incoming)
        boundary.flush(cap, gmin)
        run_epoch(sim, boundary, cap, gmin)
        frontier = sim.next_time()
        held = boundary.held_min()
        if frontier is None or (held is not None and held < frontier):
            frontier = held
        outbox = boundary.drain_outbox()
        w_send(encode_report(
            sim.now, frontier, boundary.pending(),
            encode_sections(outbox) if outbox else ()))

    # Same post-run checks as run_app, reported instead of raised: the
    # coordinator re-raises with the partition attached.
    deadlocked = [w.name for w in workers if not w.triggered]
    failure = None
    for w in workers:
        if w.triggered and not w._ok:
            failure = "".join(traceback.format_exception(
                type(w._value), w._value, w._value.__traceback__))
            break
    conn.send(("final", {
        "part": spec.part_id,
        "clock": sim.now,
        "finished_at": finished_at,
        "shared": app.pdes_shared_payload(shared, spec.params, spec.variant),
        "traffic": rts.meter.snapshot(),
        "sim_stats": sim.stats(),
        "records": list(tracer.records) if tracer is not None else None,
        "dropped": tracer.dropped if tracer is not None else 0,
        "blocked_s": blocked,
        "deadlocked": deadlocked,
        "failure": failure,
        "counters": {
            "exported": boundary.exported,
            "injected": boundary.injected,
            "acks_out": boundary.acks_out,
            "acks_in": boundary.acks_in,
            "epoch_breaks": boundary.epoch_breaks,
        },
    }))


# ------------------------------------------------------------ coordinator

class _WorkerPool:
    """Persistent forked partition workers, one channel each.

    Forked once per (width, transport, capacity) and reused across
    runs: ``repro figure`` grid points and bench repeats of the same
    topology re-synchronize over the existing channels instead of
    re-forking the whole stack.  Any error retires the pool (the
    failing worker has exited; the rest are terminated).
    """

    def __init__(self, width: int, kind: str, capacity: int):
        ctx = mp.get_context("fork")
        self.width = width
        self.kind = kind
        self.capacity = capacity
        self.chans = [channel.make_channel(kind, ctx, capacity)
                      for _ in range(width)]
        self.procs = []
        for i, chan in enumerate(self.chans):
            proc = ctx.Process(target=_worker_loop, args=(chan, i),
                               daemon=True)
            proc.start()
            chan.p_setup()
            self.procs.append(proc)
        self.runs = 0

    def alive(self) -> bool:
        return all(proc.is_alive() for proc in self.procs)

    def start(self, specs: Sequence[WorkerSpec]) -> None:
        self.runs += 1
        for chan, spec in zip(self.chans, specs):
            chan.conn.send(("run", spec))

    def _recv_pipe(self, i: int, want: str):
        conn = self.chans[i].conn
        while not conn.poll(0.5):
            if not self.procs[i].is_alive():
                self.chans[i]._died(self.procs[i], i)
        try:
            msg = conn.recv()
        except EOFError:
            self.chans[i]._died(self.procs[i], i)
        if msg[0] == "error":
            channel._raise_worker_error(msg, i)
        if msg[0] != want:
            raise SimulationError(
                f"pdes: partition {i} protocol error: "
                f"expected {want!r}, got {msg[0]!r}")
        return msg

    def recv_ready(self, i: int):
        return self._recv_pipe(i, "ready")[1]

    def recv_final(self, i: int) -> dict:
        return self._recv_pipe(i, "final")[1]

    def channel_totals(self) -> Tuple[int, int]:
        """Lifetime (bytes, overflows) across every channel — callers
        snapshot before/after a run for per-run numbers."""
        return (sum(c.bytes_out + c.bytes_in for c in self.chans),
                sum(c.overflows for c in self.chans))

    def close(self) -> None:
        for chan in self.chans:
            chan.close()
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5)


_POOL: Optional[_WorkerPool] = None


def _acquire_pool(width: int, kind: str, capacity: int) -> _WorkerPool:
    """The module-level pool singleton, re-forked only when the
    geometry, transport, or ring capacity changes (or a worker died)."""
    global _POOL
    if _POOL is not None and not (
            _POOL.width == width and _POOL.kind == kind
            and _POOL.capacity == capacity and _POOL.alive()):
        _POOL.close()
        _POOL = None
    if _POOL is None:
        _POOL = _WorkerPool(width, kind, capacity)
    return _POOL


def _release_pool(pool: _WorkerPool, ok: bool) -> None:
    """Return the pool after a run: keep it on success, retire on error
    (a failed worker has exited mid-protocol; nothing is resumable)."""
    global _POOL
    if ok and pool is _POOL and pool.alive():
        return
    pool.close()
    if pool is _POOL:
        _POOL = None


def shutdown_pool() -> None:
    """Terminate the persistent worker pool (idempotent; also atexit)."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


atexit.register(shutdown_pool)


def run_app_pdes(app, variant: str, n_clusters: int, nodes_per_cluster: int,
                 params: Any, *, network, sequencer: Optional[str],
                 dedicated_sequencer_node: bool, topo, trace: bool,
                 tracer, fast_paths: bool,
                 runtime_fast_paths: Optional[bool], scenario,
                 n_workers: int):
    """Partitioned ``run_app``: same result, all host cores.

    ``topo`` is the final topology (scenario layout applied); callers
    resolve eligibility and worker count first (see
    ``experiment.run_app``).  Returns the same :class:`AppResult` the
    single-process path would, with PDES counters added to
    ``sim_stats``.
    """
    from ...apps.base import AppResult
    from ...network import Fabric
    from ...network.message import reset_ids
    from ...orca import OrcaRuntime
    from ...orca.runtime import reset_req_ids

    blocks = partition_clusters(topo.n_clusters, n_workers)
    width = len(blocks)
    part_map = cluster_partition_map(blocks)
    lookahead = wan_lookahead(network, scenario)
    seq_kind = sequencer if sequencer is not None \
        else app.sequencer_for(variant)

    trace_spec = None
    if trace:
        if tracer is not None:
            trace_spec = TraceSpec(
                kinds=tuple(sorted(tracer.kinds))
                if tracer.kinds is not None else None,
                ring=tracer.ring,
                sample=tuple(sorted(tracer.sample.items()))
                if tracer.sample else ())
        else:
            trace_spec = TraceSpec()

    specs = [WorkerSpec(
        part_id=pi, n_partitions=width, clusters=block,
        cluster_partition=part_map, app=app.name, variant=variant,
        params=params, network=network, sequencer=seq_kind,
        dedicated_sequencer_node=dedicated_sequencer_node, topology=topo,
        fast_paths=fast_paths, runtime_fast_paths=runtime_fast_paths,
        scenario=scenario, trace=trace_spec, lookahead=lookahead)
        for pi, block in enumerate(blocks)]

    pool = _acquire_pool(
        width, channel.channel_kind(),
        channel.channel_capacity(channel_capacity(width, topo.n_nodes)))
    epochs = 0
    round_trips = 0
    coalesced = 0
    cross_msgs = 0
    cross_acks = 0
    bytes0, over0 = pool.channel_totals()
    ok = False
    try:
        pool.start(specs)
        clocks = [0.0] * width
        nexts: List[Optional[float]] = []
        pendings: List[List[Tuple[int, float]]] = [[] for _ in range(width)]
        inboxes: List[List[channel.Section]] = [[] for _ in range(width)]
        inbox_min = [INF] * width       # min over queued sections' times
        for i in range(width):
            nexts.append(pool.recv_ready(i))

        stall = 0
        # Hot-path bindings: this loop turns over once per epoch.
        sends = [chan.send for chan in pool.chans]
        recvs = [chan.recv for chan in pool.chans]
        procs = pool.procs
        encode_grant = channel.encode_grant
        decode_report = channel.decode_report
        part_range = range(width)
        neff = [INF] * width        # per-round scratch, reused
        reals = [INF] * width
        while True:
            for i in part_range:
                nx = nexts[i]
                v = nx if nx is not None else INF
                if inbox_min[i] < v:
                    v = inbox_min[i]
                reals[i] = v
                # A partition awaiting an ack is not inert: the deposit
                # wakes it at >= its floor, from where it can emit with
                # arrival >= floor + lookahead — so for capping *others*
                # its effective frontier includes its own floors.  The
                # floors stay out of reals/gmin: inclusive dispatch at
                # gmin needs an actual event at that instant, and
                # wake-generated events are always >= the real minimum
                # (the deposit is produced by real chain events).
                for _owing, floor in pendings[i]:
                    if floor < v:
                        v = floor
                neff[i] = v
            gmin = min(reals)
            if gmin == INF:
                if any(pendings):
                    raise SimulationError(
                        "pdes: un-acked synchronous sends with no "
                        "schedulable events anywhere (protocol stall)")
                break
            caps = compute_caps(neff, reals, pendings, lookahead)
            epochs += 1
            # Quiescence coalescing: deliver the grant only where it
            # can matter.  With an empty inbox, a finite cap at or
            # below the partition's own frontier (reals includes its
            # held arrivals), and no claim on gmin, the grant would
            # route nothing, release nothing from the holding pen, and
            # dispatch no event — a provable no-op, so the round-trip
            # is elided and the partition's next grant carries a cap
            # that subsumes every elided epoch.  The gmin owner is
            # never skipped (liveness), and a dry partition
            # (reals == inf) only runs when its cap is unbounded.
            active = [i for i in part_range
                      if inboxes[i] or caps[i] == INF
                      or (reals[i] != INF
                          and (caps[i] > reals[i] or reals[i] == gmin))]
            round_trips += len(active)
            coalesced += width - len(active)
            for i in active:
                cap = None if caps[i] == INF else caps[i]
                inbox = inboxes[i]
                if inbox:
                    sends[i](encode_grant(
                        cap, gmin, [sec.raw for sec in inbox]))
                    inboxes[i] = []
                    inbox_min[i] = INF
                else:
                    sends[i](encode_grant(cap, gmin, ()))
            routed = 0
            moved = False
            for i in active:
                block = recvs[i](procs[i], i)
                clock, nt, pending, sections = decode_report(block)
                moved = moved or clock != clocks[i] or nt != nexts[i] \
                    or pending != pendings[i]
                clocks[i] = clock
                nexts[i] = nt
                pendings[i] = pending
                for sec in sections:
                    dst = sec.dst
                    inboxes[dst].append(sec)
                    if sec.min_time < inbox_min[dst]:
                        inbox_min[dst] = sec.min_time
                    routed += sec.n_msgs + sec.n_acks
                    cross_msgs += sec.n_msgs
                    cross_acks += sec.n_acks
            # Belt-and-braces against protocol bugs: some partition must
            # advance or transfer something every epoch (the min-N one
            # always can).  Several idle epochs in a row mean the cap
            # algebra broke; fail loudly rather than spin.
            stall = 0 if (routed or moved) else stall + 1
            if stall > 3:
                raise SimulationError(
                    f"pdes: no progress for {stall} epochs "
                    f"(clocks={clocks}, frontiers={nexts}, "
                    f"pending={pendings})")

        finals = [None] * width
        for i in range(width):
            pool.chans[i].send(channel.encode_finish())
        for i in range(width):
            finals[i] = pool.recv_final(i)
        ok = True
    finally:
        _release_pool(pool, ok)

    bytes1, over1 = pool.channel_totals()

    for payload in finals:
        if payload["failure"]:
            raise SimulationError(
                f"pdes: partition {payload['part']} application error:\n"
                f"{payload['failure']}")
    deadlocked = [name for p in finals for name in p["deadlocked"]]
    if deadlocked:
        raise SimulationError(
            f"{app.name}/{variant} on {n_clusters}x{nodes_per_cluster}: "
            f"workers {deadlocked} never finished "
            f"(deadlock; partition clocks "
            f"{[p['clock'] for p in finals]})")

    # ---- merge: finish times, shared state, meters, stats, traces ----
    finished_at = [0.0] * topo.n_nodes
    for payload in finals:
        for nid, t in payload["finished_at"].items():
            finished_at[nid] = t
    elapsed = max(finished_at)

    merged_shared = app.pdes_merge_shared(
        [p["shared"] for p in finals], params, variant)

    # Fresh, never-run stack so finalize/stats see the usual interfaces
    # (topology, runtime) against the merged shared state.
    reset_ids()
    reset_req_ids()
    fsim = Simulator()
    ffabric = Fabric(fsim, topo, network, fast_paths=fast_paths)
    frts = OrcaRuntime(fsim, ffabric, sequencer=seq_kind,
                       dedicated_sequencer_node=dedicated_sequencer_node,
                       fast_paths=runtime_fast_paths)
    answer = app.finalize(frts, params, variant, merged_shared)
    stats = app.stats(frts, params, variant, merged_shared)

    traffic: Dict[str, Dict[str, int]] = {}
    for payload in finals:
        for bucket, counters in payload["traffic"].items():
            slot = traffic.setdefault(bucket, {})
            for key, val in counters.items():
                slot[key] = slot.get(key, 0) + val

    sim_stats: Dict[str, Any] = {}
    for payload in finals:
        for key, val in payload["sim_stats"].items():
            sim_stats[key] = sim_stats.get(key, 0) + val
    sim_stats["pdes_partitions"] = width
    sim_stats["pdes_epochs"] = epochs
    sim_stats["pdes_round_trips"] = round_trips
    sim_stats["pdes_coalesced_round_trips"] = coalesced
    sim_stats["pdes_channel_bytes"] = bytes1 - bytes0
    sim_stats["pdes_channel_overflows"] = over1 - over0
    sim_stats["pdes_cross_messages"] = cross_msgs
    sim_stats["pdes_acks"] = cross_acks
    sim_stats["pdes_epoch_breaks"] = sum(
        p["counters"]["epoch_breaks"] for p in finals)
    sim_stats["pdes_blocked_s"] = sum(p["blocked_s"] for p in finals)

    if trace and tracer is not None:
        merged = [r for p in finals for r in (p["records"] or [])]
        merged.sort(key=lambda r: r.time)   # stable: partition order ties
        tracer.records.extend(merged)
        tracer.dropped += sum(p["dropped"] for p in finals)

    return AppResult(
        app=app.name, variant=variant, n_clusters=n_clusters,
        nodes_per_cluster=nodes_per_cluster, elapsed=elapsed, answer=answer,
        stats=stats, traffic=traffic, utilization=None,
        sim_stats=sim_stats)
