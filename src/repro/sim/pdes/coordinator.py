"""The conservative PDES coordinator: fork, synchronize, merge.

``run_app_pdes`` is the partitioned twin of
:func:`repro.harness.experiment.run_app`.  It splits the topology's
clusters into contiguous blocks (:mod:`.plan`), forks one worker per
block, and drives them through *epochs*: windows of virtual time each
partition may simulate without hearing from the others.

The window algebra (:func:`compute_caps`) is the whole correctness
story.  With ``N_j`` the earliest event time partition ``j`` could
still dispatch (its next heap entry, or anything routed to it this
epoch) and ``L`` the WAN lookahead:

    cap_i = min( min_{j != i} N_j + L,
                 min over i's un-acked floors (p, A) of max(A, N_p) )

The first term is classic conservative synchronization — nothing
another partition does before ``N_j`` can reach ``i`` before
``N_j + L``.  The second handles synchronous sends: until the
destination ``p`` acks the deposit of an armed message arriving at
``A``, partition ``i`` may not outrun ``max(A, N_p)``; the deposit
happens strictly after the arrival, and ``N_p`` tracks the
destination's frontier, so the sender's delivery event is always
planted in ``i``'s future.  Every term is ``>= min_j N_j``, so the
globally-earliest event is always dispatchable: the protocol cannot
deadlock.

Workers run each epoch *inclusively* to their cap (the engine's
``run(until=...)`` dispatches events at the horizon), report their new
frontier plus everything they exported, and the coordinator routes
messages/acks into the next epoch's injections.  A worker's own
:class:`~.boundary.PartitionBoundary` refuses (`call_at` raises) any
injection before its clock — the conservative guarantee is asserted on
every delivery, not assumed.

Determinism: partitions allocate the same per-site message/request ids
as the single-process run, impairment randomness is drawn from
per-(model, directed pair) substreams, and every cross-partition
delivery replays the destination half of the serial fabric code at the
exported instant — so answers, finish times and trace *contents* are
bit-identical to the oracle; only same-instant interleavings across
independent partitions (invisible in any record field) may differ.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import pickle
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine import SimulationError, Simulator
from ..trace import TraceSpec
from .boundary import EpochBreak, PartitionBoundary
from .plan import cluster_partition_map, partition_clusters, wan_lookahead

__all__ = ["WorkerSpec", "compute_caps", "run_app_pdes", "run_epoch"]

INF = float("inf")


# --------------------------------------------------------------- protocol
#
# Parent -> worker:  ("epoch", cap_or_None, gmin, [items])
#                    then ("finish",)
# Worker -> parent:  ("ready", next_time)
#                    ("report", clock, next_time, outbox, pending)
#                    ("final", payload_dict)
#                    ("error", formatted_traceback)    (any state, fatal)
#
# Routed items (built by PartitionBoundary.export / export_ack; index 3
# is always the item's virtual time, which compute_caps relies on):
#   ("msg", dst_partition, Message, arrival, path)
#   ("ack", dst_partition, msg_id, t_deposit)


@dataclass
class WorkerSpec:
    """Everything a forked partition worker needs to rebuild its stack."""

    part_id: int
    n_partitions: int
    clusters: Tuple[int, ...]
    cluster_partition: Tuple[int, ...]
    app: str
    variant: str
    params: Any
    network: Any
    sequencer: str
    dedicated_sequencer_node: bool
    topology: Any                      # final Topology (scenario applied)
    fast_paths: bool
    runtime_fast_paths: Optional[bool]
    scenario: Any = None
    trace: Optional[TraceSpec] = None
    lookahead: float = 0.0


def compute_caps(neff: Sequence[float], reals: Sequence[float],
                 pendings: Sequence[Sequence[Tuple[int, float]]],
                 lookahead: float) -> List[float]:
    """Per-partition epoch caps from effective frontiers and floors.

    ``reals[i]`` is the earliest virtual time partition ``i`` could
    still dispatch — its next heap entry, held arrivals, anything
    routed to it this round (``inf`` when dry).  ``neff[i]`` is
    ``reals[i]`` further lowered by partition ``i``'s own un-acked
    floors: a partition awaiting an ack wakes at the deposit (>= its
    floor) and can emit with one lookahead of margin, so for capping
    *others* it is only as far along as its earliest floor.
    ``pendings[i]`` lists partition ``i``'s un-acked synchronous sends
    as ``(owing partition, arrival floor)``; the deposit the ack
    reports is produced by *real* events at the owing partition, so
    that term uses ``reals`` — using ``neff`` there would let two
    mutually-waiting partitions pin each other's caps below the very
    chains that produce the deposits.  Pure, so the safety properties
    are directly property-testable.
    """
    width = len(neff)
    caps = []
    for i in range(width):
        others = min((neff[j] for j in range(width) if j != i), default=INF)
        cap = others + lookahead
        for owing, floor in pendings[i]:
            cap = min(cap, max(floor, reals[owing]))
        caps.append(cap)
    return caps


def run_epoch(sim, boundary: PartitionBoundary, cap: Optional[float],
              gmin: Optional[float]) -> None:
    """Run one epoch: strictly below ``cap``, never past an ack floor.

    The cap is *exclusive* — events exactly at it wait for a later
    epoch — with two exceptions that keep the protocol live and exact:

    * ``gmin``, the globally-earliest event time, always dispatches
      (nothing in flight can precede or tie it un-routed, and some
      partition must move every epoch);
    * a fresh ack floor dispatches inclusively (events *at* an armed
      export's arrival are source-local; the remote deposit is
      strictly later).

    Exclusivity is what makes same-instant ties exact: an instant only
    dispatches once every partition's frontier plus the lookahead
    clears it, by which time all cross-partition arrivals at that
    instant are held at the boundary and enter the heap in serial
    order (see ``PartitionBoundary.flush``).

    Floors planted mid-run surface as :class:`EpochBreak` from the
    boundary's probes; each re-entry shortens the window to the
    earliest live floor.  ``cap=None`` means unbounded (every other
    partition is dry) — the worker drains, pausing only at floors.
    """
    while True:
        floor = boundary.floor()
        if cap is None:
            bound = floor
        elif floor is None:
            bound = cap
        else:
            bound = min(cap, floor)
        if bound is None:
            target = None
        else:
            if gmin is not None and bound < gmin:
                # Floors folded into the cap algebra can push a cap
                # below the globally-earliest real event; events at
                # gmin itself are always safe (nothing anywhere — wake
                # chains included — can produce an earlier one), and
                # the gmin owner must move for the protocol to be live.
                bound = gmin
            if bound < sim.now:
                # A slower partition dragged the cap below our clock:
                # the previous epoch already covered this window.
                return
            inclusive = bound == gmin or bound == floor
            target = bound if inclusive \
                else math.nextafter(bound, -math.inf)
            if target < sim.now:
                return
        try:
            sim.run(until=target)
        except EpochBreak:
            continue
        return


# ----------------------------------------------------------------- worker

def _worker_main(conn, spec: WorkerSpec) -> None:
    try:
        _worker_run(conn, spec)
    except BaseException as exc:
        # Ship the exception object itself when it pickles: the
        # coordinator then re-raises the app's real error (the serial
        # engine lets a ValueError out of ``register`` surface as a
        # ValueError, and partitioning must not change that contract).
        try:
            pickle.dumps(exc)
        except Exception:
            exc = None
        try:
            conn.send(("error", traceback.format_exc(), exc))
        except Exception:
            pass
    finally:
        conn.close()


def _worker_run(conn, spec: WorkerSpec) -> None:
    # Deferred imports: the worker is forked, so these are usually
    # already loaded; top-level imports here would cycle (apps -> orca
    # -> sim -> pdes).
    from ...apps import make_app
    from ...network import Fabric
    from ...network.message import reset_ids
    from ...orca import OrcaRuntime
    from ...orca.runtime import reset_req_ids

    reset_ids()
    reset_req_ids()
    app = make_app(spec.app)
    sim = Simulator()
    topo = spec.topology
    tracer = spec.trace.build() if spec.trace is not None else None
    fabric = Fabric(sim, topo, spec.network, tracer=tracer,
                    fast_paths=spec.fast_paths)
    if tracer is not None:
        fabric.tracer.enabled = True
        sim.obs = fabric.tracer
    if spec.scenario is not None:
        from ...scenario import install
        install(sim, fabric, spec.scenario)
    boundary = PartitionBoundary(sim, topo, spec.cluster_partition,
                                 spec.part_id, lookahead=spec.lookahead)
    boundary.fabric = fabric
    fabric.pdes = boundary
    rts = OrcaRuntime(sim, fabric, sequencer=spec.sequencer,
                      dedicated_sequencer_node=spec.dedicated_sequencer_node,
                      fast_paths=spec.runtime_fast_paths)

    shared = app.register(rts, spec.params, spec.variant)
    local_nodes = [n for c in spec.clusters for n in topo.nodes_in(c)]
    finished_at: Dict[int, float] = {}

    def timed(nid):
        value = yield from app.process(rts.context(nid), spec.params,
                                       spec.variant, shared)
        finished_at[nid] = sim.now
        return value

    workers = [sim.spawn(timed(nid), name=f"{app.name}{nid}")
               for nid in local_nodes]

    conn.send(("ready", sim.next_time()))
    blocked = 0.0
    while True:
        t0 = time.perf_counter()
        cmd = conn.recv()
        blocked += time.perf_counter() - t0
        if cmd[0] == "finish":
            break
        _tag, cap, gmin, incoming = cmd
        boundary.receive(incoming)
        boundary.flush(cap, gmin)
        run_epoch(sim, boundary, cap, gmin)
        frontier = sim.next_time()
        held = boundary.held_min()
        if frontier is None or (held is not None and held < frontier):
            frontier = held
        conn.send(("report", sim.now, frontier,
                   boundary.drain_outbox(), boundary.pending()))

    # Same post-run checks as run_app, reported instead of raised: the
    # coordinator re-raises with the partition attached.
    deadlocked = [w.name for w in workers if not w.triggered]
    failure = None
    for w in workers:
        if w.triggered and not w._ok:
            failure = "".join(traceback.format_exception(
                type(w._value), w._value, w._value.__traceback__))
            break
    conn.send(("final", {
        "part": spec.part_id,
        "clock": sim.now,
        "finished_at": finished_at,
        "shared": app.pdes_shared_payload(shared, spec.params, spec.variant),
        "traffic": rts.meter.snapshot(),
        "sim_stats": sim.stats(),
        "records": list(tracer.records) if tracer is not None else None,
        "dropped": tracer.dropped if tracer is not None else 0,
        "blocked_s": blocked,
        "deadlocked": deadlocked,
        "failure": failure,
        "counters": {
            "exported": boundary.exported,
            "injected": boundary.injected,
            "acks_out": boundary.acks_out,
            "acks_in": boundary.acks_in,
            "epoch_breaks": boundary.epoch_breaks,
        },
    }))


# ------------------------------------------------------------ coordinator

class _WorkerPool:
    """Forked partition workers with a pipe each; kills on error paths."""

    def __init__(self, specs: Sequence[WorkerSpec]):
        ctx = mp.get_context("fork")
        self.conns = []
        self.procs = []
        for spec in specs:
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child, spec),
                               daemon=True)
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def recv(self, i: int, want: str):
        try:
            msg = self.conns[i].recv()
        except EOFError:
            raise SimulationError(
                f"pdes: partition {i} worker died without reporting")
        if msg[0] == "error":
            exc = msg[2] if len(msg) > 2 else None
            if exc is not None:
                raise exc  # the app's own error, same type as serial
            raise SimulationError(
                f"pdes: partition {i} worker failed:\n{msg[1]}")
        if msg[0] != want:
            raise SimulationError(
                f"pdes: partition {i} protocol error: "
                f"expected {want!r}, got {msg[0]!r}")
        return msg

    def close(self) -> None:
        for conn in self.conns:
            try:
                conn.close()
            except Exception:
                pass
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5)


def run_app_pdes(app, variant: str, n_clusters: int, nodes_per_cluster: int,
                 params: Any, *, network, sequencer: Optional[str],
                 dedicated_sequencer_node: bool, topo, trace: bool,
                 tracer, fast_paths: bool,
                 runtime_fast_paths: Optional[bool], scenario,
                 n_workers: int):
    """Partitioned ``run_app``: same result, all host cores.

    ``topo`` is the final topology (scenario layout applied); callers
    resolve eligibility and worker count first (see
    ``experiment.run_app``).  Returns the same :class:`AppResult` the
    single-process path would, with PDES counters added to
    ``sim_stats``.
    """
    from ...apps.base import AppResult
    from ...network import Fabric
    from ...network.message import reset_ids
    from ...orca import OrcaRuntime
    from ...orca.runtime import reset_req_ids

    blocks = partition_clusters(topo.n_clusters, n_workers)
    width = len(blocks)
    part_map = cluster_partition_map(blocks)
    lookahead = wan_lookahead(network, scenario)
    seq_kind = sequencer if sequencer is not None \
        else app.sequencer_for(variant)

    trace_spec = None
    if trace:
        if tracer is not None:
            trace_spec = TraceSpec(
                kinds=tuple(sorted(tracer.kinds))
                if tracer.kinds is not None else None,
                ring=tracer.ring,
                sample=tuple(sorted(tracer.sample.items()))
                if tracer.sample else ())
        else:
            trace_spec = TraceSpec()

    specs = [WorkerSpec(
        part_id=pi, n_partitions=width, clusters=block,
        cluster_partition=part_map, app=app.name, variant=variant,
        params=params, network=network, sequencer=seq_kind,
        dedicated_sequencer_node=dedicated_sequencer_node, topology=topo,
        fast_paths=fast_paths, runtime_fast_paths=runtime_fast_paths,
        scenario=scenario, trace=trace_spec, lookahead=lookahead)
        for pi, block in enumerate(blocks)]

    pool = _WorkerPool(specs)
    epochs = 0
    cross_msgs = 0
    cross_acks = 0
    try:
        clocks = [0.0] * width
        nexts: List[Optional[float]] = []
        pendings: List[List[Tuple[int, float]]] = [[] for _ in range(width)]
        inboxes: List[List[tuple]] = [[] for _ in range(width)]
        for i in range(width):
            _tag, nt = pool.recv(i, "ready")
            nexts.append(nt)

        stall = 0
        while True:
            neff = []
            reals = []
            for i in range(width):
                v = nexts[i] if nexts[i] is not None else INF
                for item in inboxes[i]:
                    v = min(v, item[3])
                reals.append(v)
                # A partition awaiting an ack is not inert: the deposit
                # wakes it at >= its floor, from where it can emit with
                # arrival >= floor + lookahead — so for capping *others*
                # its effective frontier includes its own floors.  The
                # floors stay out of reals/gmin: inclusive dispatch at
                # gmin needs an actual event at that instant, and
                # wake-generated events are always >= the real minimum
                # (the deposit is produced by real chain events).
                for _owing, floor in pendings[i]:
                    v = min(v, floor)
                neff.append(v)
            gmin = min(reals)
            if gmin == INF:
                if any(pendings):
                    raise SimulationError(
                        "pdes: un-acked synchronous sends with no "
                        "schedulable events anywhere (protocol stall)")
                break
            caps = compute_caps(neff, reals, pendings, lookahead)
            epochs += 1
            for i in range(width):
                cap = None if caps[i] == INF else caps[i]
                pool.conns[i].send(("epoch", cap, gmin, inboxes[i]))
                inboxes[i] = []
            routed = 0
            moved = False
            for i in range(width):
                _tag, clock, nt, outbox, pending = pool.recv(i, "report")
                moved = moved or clock != clocks[i] or nt != nexts[i] \
                    or pending != pendings[i]
                clocks[i] = clock
                nexts[i] = nt
                pendings[i] = pending
                for item in outbox:
                    inboxes[item[1]].append(item)
                    routed += 1
                    if item[0] == "msg":
                        cross_msgs += 1
                    else:
                        cross_acks += 1
            # Belt-and-braces against protocol bugs: some partition must
            # advance or transfer something every epoch (the min-N one
            # always can).  Several idle epochs in a row mean the cap
            # algebra broke; fail loudly rather than spin.
            stall = 0 if (routed or moved) else stall + 1
            if stall > 3:
                raise SimulationError(
                    f"pdes: no progress for {stall} epochs "
                    f"(clocks={clocks}, frontiers={nexts}, "
                    f"pending={pendings})")

        finals = [None] * width
        for i in range(width):
            pool.conns[i].send(("finish",))
            finals[i] = pool.recv(i, "final")[1]
    finally:
        pool.close()

    for payload in finals:
        if payload["failure"]:
            raise SimulationError(
                f"pdes: partition {payload['part']} application error:\n"
                f"{payload['failure']}")
    deadlocked = [name for p in finals for name in p["deadlocked"]]
    if deadlocked:
        raise SimulationError(
            f"{app.name}/{variant} on {n_clusters}x{nodes_per_cluster}: "
            f"workers {deadlocked} never finished "
            f"(deadlock; partition clocks "
            f"{[p['clock'] for p in finals]})")

    # ---- merge: finish times, shared state, meters, stats, traces ----
    finished_at = [0.0] * topo.n_nodes
    for payload in finals:
        for nid, t in payload["finished_at"].items():
            finished_at[nid] = t
    elapsed = max(finished_at)

    merged_shared = app.pdes_merge_shared(
        [p["shared"] for p in finals], params, variant)

    # Fresh, never-run stack so finalize/stats see the usual interfaces
    # (topology, runtime) against the merged shared state.
    reset_ids()
    reset_req_ids()
    fsim = Simulator()
    ffabric = Fabric(fsim, topo, network, fast_paths=fast_paths)
    frts = OrcaRuntime(fsim, ffabric, sequencer=seq_kind,
                       dedicated_sequencer_node=dedicated_sequencer_node,
                       fast_paths=runtime_fast_paths)
    answer = app.finalize(frts, params, variant, merged_shared)
    stats = app.stats(frts, params, variant, merged_shared)

    traffic: Dict[str, Dict[str, int]] = {}
    for payload in finals:
        for bucket, counters in payload["traffic"].items():
            slot = traffic.setdefault(bucket, {})
            for key, val in counters.items():
                slot[key] = slot.get(key, 0) + val

    sim_stats: Dict[str, Any] = {}
    for payload in finals:
        for key, val in payload["sim_stats"].items():
            sim_stats[key] = sim_stats.get(key, 0) + val
    sim_stats["pdes_partitions"] = width
    sim_stats["pdes_epochs"] = epochs
    sim_stats["pdes_cross_messages"] = cross_msgs
    sim_stats["pdes_acks"] = cross_acks
    sim_stats["pdes_epoch_breaks"] = sum(
        p["counters"]["epoch_breaks"] for p in finals)
    sim_stats["pdes_blocked_s"] = sum(p["blocked_s"] for p in finals)

    if trace and tracer is not None:
        merged = [r for p in finals for r in (p["records"] or [])]
        merged.sort(key=lambda r: r.time)   # stable: partition order ties
        tracer.records.extend(merged)
        tracer.dropped += sum(p["dropped"] for p in finals)

    return AppResult(
        app=app.name, variant=variant, n_clusters=n_clusters,
        nodes_per_cluster=nodes_per_cluster, elapsed=elapsed, answer=answer,
        stats=stats, traffic=traffic, utilization=None,
        sim_stats=sim_stats)
