"""The PDES sync fast lane: packed epoch blocks over shared memory.

PR 9's epoch protocol pickled four Python tuples through a
``multiprocessing.Pipe`` per partition per epoch — ~0.1 ms of
syscall + pickle round-trip, times thousands of epochs, times every
partition.  This module replaces the transport with the same treatment
the paper applies to wide-area links: pack the records flat, coalesce
the round-trips, keep the expensive channel for the rare paths.

Three pieces live here:

* **The packing codec** — one struct-packed wire format shared by
  worker and coordinator.  A *section* is one epoch's routed items for
  one destination partition, laid out struct-of-arrays (arrival and
  send/recv-time doubles, node ids, sizes, message ids, then a small
  string table for port/kind/path names and *one* length-prefixed
  pickle blob for the whole payload tuple — only the payload objects
  still meet pickle, and they amortize its fixed cost across the
  section).
  The coordinator never decodes a section: it routes the raw bytes
  into the destination's next grant and reads only the section header
  (destination, counts, minimum time — all ``compute_caps`` needs).

* **:class:`ShmRing`** — a single-producer single-consumer byte ring
  over a fork-inherited ``multiprocessing.RawArray``, length-prefixed
  records, wraparound via split copies.  The epoch protocol is
  strictly alternating (at most one block in flight per direction), so
  a paired ``Semaphore`` both announces a block and provides the
  memory barrier; a block larger than the ring falls back — loudly,
  counted — to the setup pipe behind a 1-byte marker record so
  ordering is preserved.

* **The channels** — :class:`ShmChannel` (rings + semaphores; the
  default) and :class:`PipeChannel` (the ``REPRO_PDES_CHANNEL=pipe``
  escape hatch: the *same* packed blocks over the pipe, no pickled
  tuples), behind one interface.  Both keep a duplex pipe for
  setup/final/error traffic; worker death and worker errors surface as
  the same exceptions the PR-9 protocol raised.

The codec changes no virtual-time behavior: it is a byte-level
representation of exactly the items ``PartitionBoundary`` exported,
and the golden parity suite pins both transports record-for-record
against the single-process oracle.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import struct
from typing import Any, List, NamedTuple, Optional, Sequence, Tuple

from ..engine import SimulationError

__all__ = [
    "CHANNEL_ENV",
    "CAPACITY_ENV",
    "GRANT",
    "REPORT",
    "FINISH",
    "Section",
    "ShmRing",
    "ShmChannel",
    "PipeChannel",
    "channel_kind",
    "channel_capacity",
    "make_channel",
    "encode_sections",
    "decode_section_items",
    "encode_grant",
    "encode_finish",
    "decode_grant",
    "encode_report",
    "decode_report",
]

#: Transport selection: ``shm`` (default) or ``pipe`` (escape hatch —
#: same packed blocks, no shared memory; CI runs the golden subset
#: under it so both transports stay pinned).
CHANNEL_ENV = "REPRO_PDES_CHANNEL"
#: Ring capacity per direction, in bytes (clamped to the minimum; a
#: block that outgrows the ring falls back to the pipe, loudly).
CAPACITY_ENV = "REPRO_PDES_CHANNEL_CAP"

DEFAULT_CAPACITY = 1 << 17          # 128 KiB per direction
MIN_CAPACITY = 64                   # floor: tests force the overflow path

INF = float("inf")
NAN = float("nan")

# Block kinds (first byte of every block).
GRANT = 1
REPORT = 2
FINISH = 3

# Single-byte ring records pointing at the pipe (rare paths).
_VIA_PIPE = b"\xff"                 # block outgrew the ring: pipe carries it
_ERROR_MARK = b"\xfe"               # worker failed: pipe carries the error

_GRANT_HDR = struct.Struct("<BddH")     # kind, cap, gmin, n_sections
_REPORT_HDR = struct.Struct("<BddHH")   # kind, clock, frontier, n_pend, n_sec
_PEND = struct.Struct("<id")            # owing partition, arrival floor
_SEC_HDR = struct.Struct("<HHHHdI")     # dst, n_msgs, n_acks, n_strs,
                                        #   min_time, body length
_U32 = struct.Struct("<I")

_Message = None                     # lazy class ref, bound on first decode


def channel_kind() -> str:
    """Transport from ``REPRO_PDES_CHANNEL`` (loud fallback on typos)."""
    from ...harness.jobs import env_choice

    return env_choice(CHANNEL_ENV, ("shm", "pipe"), "shm")


def channel_capacity(default: Optional[int] = None) -> int:
    """Ring bytes per direction: ``REPRO_PDES_CHANNEL_CAP`` wins, else
    ``default`` (typically :func:`..plan.channel_capacity`'s
    geometry-scaled figure), else :data:`DEFAULT_CAPACITY`."""
    from ...harness.jobs import env_int

    if default is None:
        default = DEFAULT_CAPACITY
    return env_int(CAPACITY_ENV, default, minimum=MIN_CAPACITY,
                   fallback_note=f"using {default} bytes")


# ------------------------------------------------------------------ codec

class Section(NamedTuple):
    """One source epoch's routed items for one destination partition.

    The coordinator routes ``raw`` verbatim (header included) into the
    destination's next grant; only the header fields are read on the
    way through — ``min_time`` is the minimum over message arrivals and
    ack deposit times, which is exactly the term ``reals`` needs.
    """

    dst: int
    n_msgs: int
    n_acks: int
    min_time: float
    raw: bytes


def _encode_section(dst: int, items: Sequence[tuple]) -> bytes:
    """Pack one destination's items (struct-of-arrays + string table)."""
    msgs = [it for it in items if it[0] == "msg"]
    acks = [it for it in items if it[0] == "ack"]
    na = len(acks)
    if not msgs:
        # Ack-only fast path (the synchronous-send protocol makes these
        # as common as the messages themselves): no string table, no
        # payload blob, two flat arrays.
        ack_ts = [it[3] for it in acks]
        body = struct.pack(f"<{na}q", *[it[2] for it in acks]) \
            + struct.pack(f"<{na}d", *ack_ts)
        return _SEC_HDR.pack(dst, 0, na, 0, min(ack_ts), len(body)) + body
    strs: List[bytes] = []
    index = {}

    def sid(s: str) -> int:
        slot = index.get(s)
        if slot is None:
            slot = index[s] = len(strs)
            strs.append(s.encode())
        return slot

    min_time = INF
    arrivals, send_times, recv_times = [], [], []
    srcs, dsts, sizes, ids = [], [], [], []
    port_idx, kind_idx, path_idx = [], [], []
    payloads = []
    for _tag, _dst, msg, arrival, path in msgs:
        min_time = min(min_time, arrival)
        arrivals.append(arrival)
        send_times.append(msg.send_time)
        recv_times.append(msg.recv_time)
        srcs.append(msg.src)
        dsts.append(msg.dst)
        sizes.append(msg.size)
        ids.append(msg.msg_id)
        port_idx.append(sid(msg.port))
        kind_idx.append(sid(msg.kind))
        path_idx.append(sid(path))
        payloads.append(msg.payload)

    ack_ids, ack_ts = [], []
    for _tag, _dst, msg_id, t_deposit in acks:
        min_time = min(min_time, t_deposit)
        ack_ids.append(msg_id)
        ack_ts.append(t_deposit)

    nm, na = len(msgs), len(acks)
    parts = [b"".join(struct.pack("<H", len(s)) + s for s in strs)]
    if nm:
        # One pickle for the whole payload tuple (all-None rides as an
        # empty blob): the per-call cost of pickle dwarfs the bytes for
        # the tiny payloads fine-grain apps ship.
        blob = b"" if all(p is None for p in payloads) \
            else pickle.dumps(tuple(payloads), -1)
        parts += [
            struct.pack(f"<{nm}d", *arrivals),
            struct.pack(f"<{nm}d", *send_times),
            struct.pack(f"<{nm}d", *recv_times),
            struct.pack(f"<{nm}i", *srcs),
            struct.pack(f"<{nm}i", *dsts),
            struct.pack(f"<{nm}q", *sizes),
            struct.pack(f"<{nm}q", *ids),
            struct.pack(f"<{nm}H", *port_idx),
            struct.pack(f"<{nm}H", *kind_idx),
            struct.pack(f"<{nm}H", *path_idx),
            _U32.pack(len(blob)), blob,
        ]
    if na:
        parts += [struct.pack(f"<{na}q", *ack_ids),
                  struct.pack(f"<{na}d", *ack_ts)]
    body = b"".join(parts)
    return _SEC_HDR.pack(dst, nm, na, len(strs), min_time, len(body)) + body


def encode_sections(items: Sequence[tuple]) -> List[bytes]:
    """Group one epoch's outbox by destination, preserving item order."""
    groups = {}
    for item in items:
        groups.setdefault(item[1], []).append(item)
    return [_encode_section(dst, group) for dst, group in groups.items()]


def _parse_section(block: bytes, off: int) -> Tuple[Section, int]:
    dst, nm, na, _ns, min_time, blen = _SEC_HDR.unpack_from(block, off)
    end = off + _SEC_HDR.size + blen
    return Section(dst, nm, na, min_time, block[off:end]), end


def decode_section_items(raw: bytes) -> List[tuple]:
    """Rebuild the routed item tuples ``PartitionBoundary.receive``
    expects from one packed section."""
    dst, nm, na, ns, _min_time, _blen = _SEC_HDR.unpack_from(raw, 0)
    off = _SEC_HDR.size
    strs = []
    for _ in range(ns):
        (ln,) = struct.unpack_from("<H", raw, off)
        off += 2
        strs.append(raw[off:off + ln].decode())
        off += ln
    items: List[tuple] = []
    if nm:
        arrivals = struct.unpack_from(f"<{nm}d", raw, off); off += 8 * nm
        send_times = struct.unpack_from(f"<{nm}d", raw, off); off += 8 * nm
        recv_times = struct.unpack_from(f"<{nm}d", raw, off); off += 8 * nm
        srcs = struct.unpack_from(f"<{nm}i", raw, off); off += 4 * nm
        dsts = struct.unpack_from(f"<{nm}i", raw, off); off += 4 * nm
        sizes = struct.unpack_from(f"<{nm}q", raw, off); off += 8 * nm
        ids = struct.unpack_from(f"<{nm}q", raw, off); off += 8 * nm
        ports = struct.unpack_from(f"<{nm}H", raw, off); off += 2 * nm
        kinds = struct.unpack_from(f"<{nm}H", raw, off); off += 2 * nm
        paths = struct.unpack_from(f"<{nm}H", raw, off); off += 2 * nm
        (ln,) = _U32.unpack_from(raw, off)
        off += 4
        payloads = pickle.loads(raw[off:off + ln]) if ln else (None,) * nm
        off += ln
        global _Message
        if _Message is None:        # deferred: message -> sim cycles
            from ...network.message import Message as _Message
        Message = _Message
        for k in range(nm):
            msg = Message(src=srcs[k], dst=dsts[k], size=sizes[k],
                          payload=payloads[k], port=strs[ports[k]],
                          kind=strs[kinds[k]], msg_id=ids[k],
                          send_time=send_times[k], recv_time=recv_times[k])
            items.append(("msg", dst, msg, arrivals[k], strs[paths[k]]))
    if na:
        ack_ids = struct.unpack_from(f"<{na}q", raw, off); off += 8 * na
        ack_ts = struct.unpack_from(f"<{na}d", raw, off); off += 8 * na
        for k in range(na):
            items.append(("ack", dst, ack_ids[k], ack_ts[k]))
    return items


def encode_grant(cap: Optional[float], gmin: float,
                 sections: Sequence[bytes]) -> bytes:
    """One epoch grant: cap (``None`` rides as inf), gmin, routed items."""
    cap_w = INF if cap is None else cap
    if not sections:
        return _GRANT_HDR.pack(GRANT, cap_w, gmin, 0)
    return b"".join([_GRANT_HDR.pack(GRANT, cap_w, gmin, len(sections)),
                     *sections])


def encode_finish() -> bytes:
    return _GRANT_HDR.pack(FINISH, 0.0, 0.0, 0)


def decode_grant(block: bytes):
    """``(kind, cap_or_None, gmin, items)`` from a grant/finish block."""
    kind, cap, gmin, n_sec = _GRANT_HDR.unpack_from(block, 0)
    if kind == FINISH:
        return FINISH, None, 0.0, ()
    if not n_sec:
        return GRANT, (None if cap == INF else cap), gmin, _NO_ITEMS
    items: List[tuple] = []
    off = _GRANT_HDR.size
    for _ in range(n_sec):
        blen = _SEC_HDR.unpack_from(block, off)[5]
        end = off + _SEC_HDR.size + blen
        items.extend(decode_section_items(block[off:end]))
        off = end
    return GRANT, (None if cap == INF else cap), gmin, items


def encode_report(clock: float, frontier: Optional[float],
                  pendings: Sequence[Tuple[int, float]],
                  sections: Sequence[bytes]) -> bytes:
    """One epoch report: clock, frontier (``None`` rides as NaN), the
    un-acked floor list, and the packed outbox sections."""
    hdr = _REPORT_HDR.pack(REPORT, clock,
                           NAN if frontier is None else frontier,
                           len(pendings), len(sections))
    if not pendings and not sections:
        return hdr
    parts = [hdr]
    parts += [_PEND.pack(owing, floor) for owing, floor in pendings]
    parts += list(sections)
    return b"".join(parts)


_NO_ITEMS: tuple = ()


def decode_report(block: bytes):
    """``(clock, frontier, pendings, [Section])`` — sections unparsed."""
    kind, clock, frontier, n_pend, n_sec = _REPORT_HDR.unpack_from(block, 0)
    if kind != REPORT:
        raise SimulationError(f"pdes: bad report block kind {kind}")
    if frontier != frontier:            # NaN: the worker is dry
        frontier = None
    if not n_pend and not n_sec:        # quiet epoch: the common case
        return clock, frontier, _NO_ITEMS, _NO_ITEMS
    off = _REPORT_HDR.size
    pendings = []
    for _ in range(n_pend):
        owing, floor = _PEND.unpack_from(block, off)
        off += _PEND.size
        pendings.append((owing, floor))
    sections = []
    for _ in range(n_sec):
        sec, off = _parse_section(block, off)
        sections.append(sec)
    return clock, frontier, pendings, sections


# ------------------------------------------------------------------- ring

class ShmRing:
    """SPSC byte ring over a fork-inherited ``RawArray``.

    ``head``/``tail`` are process-local cursors (the producer and
    consumer each own exactly one); only the consumer's published
    position crosses the fork, so a stale read can only *under*-state
    free space — the safe direction.  Records are ``u32`` length +
    payload, wrapping via split copies; synchronization (both the
    wake-up and the memory barrier) is the caller's semaphore.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._raw = mp.RawArray("B", capacity)
        self._done = mp.RawArray("Q", 1)    # consumer's published position
        self.head = 0                       # producer-local write cursor
        self.tail = 0                       # consumer-local read cursor
        self._mv = None                     # per-process views, built
        self._dv = None                     # lazily (after any fork)

    @property
    def mv(self) -> memoryview:
        if self._mv is None:
            self._mv = memoryview(self._raw).cast("B")
        return self._mv

    @property
    def dv(self) -> memoryview:
        """The published-position cell as a memoryview — element access
        on the ctypes array itself costs microseconds per op, and the
        producer reads it on every write."""
        if self._dv is None:
            self._dv = memoryview(self._done).cast("B").cast("Q")
        return self._dv

    def try_write(self, data: bytes) -> bool:
        """Append one record; ``False`` (untouched) if it cannot fit."""
        rec = _U32.pack(len(data)) + data
        if len(rec) > self.capacity - (self.head - self.dv[0]):
            return False
        self._put(rec)
        return True

    def read(self) -> bytes:
        """Pop one record (caller holds the announcing semaphore)."""
        cap = self.capacity
        pos = self.tail % cap
        if pos + 4 <= cap:              # contiguous: no intermediate copy
            (ln,) = _U32.unpack_from(self.mv, pos)
            self.tail += 4
        else:
            (ln,) = _U32.unpack(self._get(4))
        data = self._get(ln)
        self.dv[0] = self.tail
        return data

    def _put(self, data: bytes) -> None:
        mv, cap = self.mv, self.capacity
        pos, n = self.head % cap, len(data)
        if pos + n <= cap:              # contiguous: single slice store
            mv[pos:pos + n] = data
        else:
            first = cap - pos
            mv[pos:] = data[:first]
            mv[:n - first] = data[first:]
        self.head += n

    def _get(self, n: int) -> bytes:
        mv, cap = self.mv, self.capacity
        pos = self.tail % cap
        first = min(n, cap - pos)
        data = bytes(mv[pos:pos + first])
        if first < n:
            data += bytes(mv[:n - first])
        self.tail += n
        return data


# --------------------------------------------------------------- channels

def _raise_worker_error(msg, part_id: int):
    """Re-raise a worker's shipped error exactly as the PR-9 pool did."""
    if isinstance(msg, tuple) and msg and msg[0] == "error":
        exc = msg[2] if len(msg) > 2 else None
        if exc is not None:
            raise exc              # the app's own error, same type as serial
        raise SimulationError(
            f"pdes: partition {part_id} worker failed:\n{msg[1]}")
    raise SimulationError(
        f"pdes: partition {part_id} protocol error: "
        f"unexpected pipe message {msg!r}")


class _ChannelBase:
    """Shared liveness/error plumbing; subclasses supply the transport.

    Parent-side calls: :meth:`send` / :meth:`recv` (plus ``conn`` for
    the ready/final handshakes).  Worker-side calls are the ``w_``
    twins.  Counters (``bytes_out``/``bytes_in``/``overflows``) are
    kept parent-side only, where the coordinator reads them.
    """

    kind = "?"

    def __init__(self, ctx):
        self.conn, self.wconn = ctx.Pipe()
        self.bytes_out = 0
        self.bytes_in = 0
        self.overflows = 0

    def p_setup(self) -> None:
        """Parent, just after fork: drop the child's pipe end."""
        self.wconn.close()

    def w_setup(self) -> None:
        """Child, first thing: drop the parent's pipe end."""
        self.conn.close()

    def close(self) -> None:
        for conn in (self.conn, self.wconn):
            try:
                conn.close()
            except OSError:
                pass

    def _died(self, proc, part_id: int):
        """The worker is gone: surface any shipped error, else EOF."""
        if proc is not None:
            proc.join(timeout=5)
        try:
            if self.conn.poll(0):
                _raise_worker_error(self.conn.recv(), part_id)
        except (EOFError, OSError):
            pass
        raise SimulationError(
            f"pdes: partition {part_id} worker died without reporting")


class PipeChannel(_ChannelBase):
    """Escape hatch: the packed blocks over the setup pipe itself."""

    kind = "pipe"

    def send(self, block: bytes) -> None:
        self.bytes_out += len(block)
        self.conn.send_bytes(block)

    def recv(self, proc, part_id: int) -> bytes:
        while not self.conn.poll(0.5):
            if proc is not None and not proc.is_alive():
                self._died(proc, part_id)
        try:
            block = self.conn.recv_bytes()
        except EOFError:
            self._died(proc, part_id)
        if block[:1] == b"\x80":        # a pickled tuple: the error path
            _raise_worker_error(pickle.loads(block), part_id)
        self.bytes_in += len(block)
        return block

    def w_recv(self) -> bytes:
        return self.wconn.recv_bytes()

    def w_send(self, block: bytes) -> None:
        self.wconn.send_bytes(block)

    def w_post_error(self) -> None:
        pass    # the error tuple is already on the (only) channel


class ShmChannel(_ChannelBase):
    """The fast lane: one ring + one semaphore per direction.

    The protocol alternates strictly (a grant is answered by a report
    before the next grant), so each ring holds at most one block — an
    overflow can only mean the block outgrew the ring, in which case a
    1-byte marker keeps ring ordering and the pipe carries the bytes.
    """

    kind = "shm"

    def __init__(self, ctx, capacity: int):
        super().__init__(ctx)
        self._g_ring = ShmRing(capacity)    # parent -> worker (grants)
        self._r_ring = ShmRing(capacity)    # worker -> parent (reports)
        self._g_sem = ctx.Semaphore(0)
        self._r_sem = ctx.Semaphore(0)

    # -- parent side ----------------------------------------------------

    def send(self, block: bytes) -> None:
        self.bytes_out += len(block)
        if not self._g_ring.try_write(block):
            self.overflows += 1
            if not self._g_ring.try_write(_VIA_PIPE):
                raise SimulationError(
                    "pdes: channel ring too small for the overflow marker")
            self.conn.send_bytes(block)
        self._g_sem.release()

    def recv(self, proc, part_id: int) -> bytes:
        # Uncontended fast path first: on a loaded host the report is
        # usually already posted by the time the coordinator collects
        # it, and sem_trywait skips the timed wait's deadline setup.
        if not self._r_sem.acquire(False):
            while not self._r_sem.acquire(True, 0.5):
                if proc is not None and not proc.is_alive():
                    self._died(proc, part_id)
        block = self._r_ring.read()
        if block == _VIA_PIPE:
            self.overflows += 1
            block = self.conn.recv_bytes()
        elif block == _ERROR_MARK:
            _raise_worker_error(self.conn.recv(), part_id)
        self.bytes_in += len(block)
        return block

    # -- worker side ----------------------------------------------------

    def w_recv(self) -> bytes:
        self._g_sem.acquire()
        block = self._g_ring.read()
        if block == _VIA_PIPE:
            block = self.wconn.recv_bytes()
        return block

    def w_send(self, block: bytes) -> None:
        if not self._r_ring.try_write(block):
            if not self._r_ring.try_write(_VIA_PIPE):
                raise SimulationError(
                    "pdes: channel ring too small for the overflow marker")
            self.wconn.send_bytes(block)
        self._r_sem.release()

    def w_post_error(self) -> None:
        """After shipping an error tuple on the pipe: wake the parent.

        Posting the semaphore without a ring record would desynchronize
        the ring, so the marker is mandatory; if even one byte cannot
        be written the parent's liveness loop finds the error via
        ``is_alive``/pipe polling instead.
        """
        try:
            if self._r_ring.try_write(_ERROR_MARK):
                self._r_sem.release()
        except Exception:
            pass


def make_channel(kind: str, ctx, capacity: int) -> _ChannelBase:
    if kind == "pipe":
        return PipeChannel(ctx)
    return ShmChannel(ctx, capacity)
