"""Conservative parallel discrete-event simulation of the cluster model.

One simulation, all host cores: the simulated clusters are split into
contiguous blocks (:mod:`.plan`), each block runs in a forked worker on
its own core, and the workers synchronize conservatively at WAN
horizons — the WAN propagation latency is the lookahead
(:mod:`.coordinator`).  Cross-partition sends become timestamped
messages exported a full lookahead before they land (:mod:`.boundary`);
everything inside a partition (LAN fast paths, the compiled event core,
tracing, scenarios) runs unchanged.

The single-process engine stays the oracle: a PDES run produces
bit-identical answers, finish times and trace record contents — the
golden parity suite (``tests/test_pdes_golden.py``) holds that line.

Selection mirrors ``REPRO_ENGINE``, via ``REPRO_PDES`` or the
``pdes=`` argument to ``run_app`` (CLI: ``--pdes``):

* ``off`` (default, also the empty string) — single-process always;
* ``on`` — partition when the run is eligible; warn on stderr and fall
  back to single-process when it is not;
* ``auto`` — partition eligible runs silently, staying off inside
  sweep-pool workers (the host is already busy; see
  :mod:`repro.harness.jobs`).
"""

from __future__ import annotations

import os

from ..engine import SimulationError
from .boundary import EpochBreak, PartitionBoundary
from .channel import (CAPACITY_ENV, CHANNEL_ENV, PipeChannel, ShmChannel,
                      ShmRing, channel_kind)
from .coordinator import (WorkerSpec, compute_caps, run_app_pdes, run_epoch,
                          shutdown_pool)
from .plan import (channel_capacity, cluster_partition_map,
                   partition_clusters, pdes_ineligible_reason, wan_lookahead)

__all__ = [
    "PDES_ENV",
    "CHANNEL_ENV",
    "CAPACITY_ENV",
    "pdes_mode",
    "EpochBreak",
    "PartitionBoundary",
    "ShmRing",
    "ShmChannel",
    "PipeChannel",
    "channel_kind",
    "channel_capacity",
    "WorkerSpec",
    "compute_caps",
    "run_epoch",
    "run_app_pdes",
    "shutdown_pool",
    "partition_clusters",
    "cluster_partition_map",
    "pdes_ineligible_reason",
    "wan_lookahead",
]

PDES_ENV = "REPRO_PDES"
_MODES = ("off", "on", "auto")


def pdes_mode(explicit=None) -> str:
    """Resolve the PDES mode: explicit argument, else ``REPRO_PDES``.

    Unknown values raise, like ``REPRO_ENGINE``'s selector — a typo
    silently running everything single-process would defeat the point
    of asking.
    """
    raw = explicit if explicit is not None \
        else os.environ.get(PDES_ENV, "off")
    mode = str(raw).strip().lower() or "off"
    if mode not in _MODES:
        raise SimulationError(
            f"unknown {PDES_ENV} value {raw!r} "
            f"(expected 'off', 'on', or 'auto')")
    return mode
