"""The partition boundary: the fabric's window onto the other workers.

One :class:`PartitionBoundary` lives in each partition worker, attached
to its fabric as ``fabric.pdes``.  The fabric calls four methods:

* :meth:`owns` — routing test: does this partition simulate ``cluster``?
* :meth:`register` — source side, before the WAN legs launch: remember
  the sender's delivery event when the send is synchronous.
* :meth:`export` — source side, at PVC release: the arrival instant at
  the remote gateway is now known (release + propagation), a full
  lookahead before it happens.  The message ships to the owning
  partition through the coordinator.
* :meth:`export_ack` — destination side, at deposit: every delivered
  cross-partition message acks its deposit time back to the source
  partition, which fires the sender's delivery event there (or drops
  the ack when nobody waits).

Synchronous sends are where conservatism gets subtle: the sender blocks
until a *remote* deposit whose time depends on remote queueing, so the
source partition must not outrun it.  An armed (awaited) export plants
a *floor* at its arrival time: the coordinator caps the partition at
``max(arrival, N_dst)`` until the ack lands, and a probe scheduled at
the floor raises :class:`EpochBreak` out of ``Simulator.run`` if the
cap would otherwise sail past it (floors created mid-epoch).  The
worker catches it, shortens the epoch, and re-enters the run loop.

Every export — armed or not — additionally plants an *echo bound* at
``arrival + lookahead`` for the rest of the epoch.  The epoch's cap
was computed before the export existed; the message can wake an idle
peer whose earliest response lands strictly after ``arrival +
lookahead`` (the reply still crosses the WAN, and the remote deposit
is strictly later than the arrival).  Without the bound, a partition
running under a loose cap could sail past its own traffic's echoes.
Next round the coordinator takes over seamlessly: the routed message
lowers the destination's effective frontier to ``arrival``, capping
this partition at the same ``arrival + lookahead``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine import fire

__all__ = ["EpochBreak", "PartitionBoundary"]


class EpochBreak(Exception):
    """Raised inside ``Simulator.run`` when an ack floor comes due."""


def _inject_key(item) -> tuple:
    """Serial-engine tie order for same-instant routed deliveries.

    The serial engine schedules same-instant WAN completions in the
    order the sends entered the pipeline — node-index order for sends
    issued at one instant — so held arrivals enter the heap sorted by
    (time, source node, id) regardless of which epoch routed them.
    """
    return (item[3], item[2].src, item[2].msg_id)


class PartitionBoundary:
    """Cross-partition traffic staging for one PDES worker."""

    def __init__(self, sim, topo, cluster_partition: Sequence[int],
                 part_id: int, lookahead: float = 0.0):
        self.sim = sim
        self.topo = topo
        self.part = tuple(cluster_partition)   # cluster -> partition index
        self.part_id = part_id
        self.lookahead = lookahead
        self.fabric = None                     # attached by the worker
        self.outbox: List[tuple] = []          # drained every epoch
        # msg_id -> (msg, done event): synchronous sends awaiting acks.
        self._armed: Dict[int, Tuple[Any, Any]] = {}
        # msg_id -> (arrival, owing partition): armed *and* exported.
        self._floors: Dict[int, Tuple[float, int]] = {}
        # Armed exports the coordinator has not heard about yet: these
        # bound the *current* epoch only.  Once reported, the
        # coordinator's ``max(arrival, N_dst)`` cap term takes over —
        # it tracks the destination's live frontier, so the partition
        # may then run up to (but never past) the eventual deposit.
        self._fresh: set = set()
        # Earliest possible echo of this epoch's exports: min over fresh
        # exports of (arrival + lookahead).  Bounds the current epoch
        # only; cleared at drain (the routed message then lowers the
        # destination's frontier, and the coordinator's cap algebra
        # enforces the same bound).
        self._echo: Optional[float] = None
        # msg_id -> source partition, for acking injected messages back.
        self._ack_to: Dict[int, int] = {}
        # Routed-in message deliveries not yet proven dispatchable.
        self._hold: List[tuple] = []
        # Counters (merged into the run's sim_stats by the coordinator).
        self.exported = 0
        self.injected = 0
        self.acks_out = 0
        self.acks_in = 0
        self.epoch_breaks = 0

    # ------------------------------------------------- fabric-facing API

    def owns(self, cluster: int) -> bool:
        return self.part[cluster] == self.part_id

    def register(self, msg, done, wait: bool) -> None:
        """Source side, before the WAN legs: arm synchronous sends."""
        if wait:
            self._armed[msg.msg_id] = (msg, done)

    def export(self, msg, arrival: float, path: str) -> None:
        """Source side, at PVC release: ship the message at ``arrival``."""
        dst_part = self.part[self.topo.cluster_of(msg.dst)]
        self.outbox.append(("msg", dst_part, msg, arrival, path))
        self.exported += 1
        if msg.msg_id in self._armed:
            self._floors[msg.msg_id] = (arrival, dst_part)
            self._fresh.add(msg.msg_id)
            self.sim.call_at(arrival, self._probe)
        echo = arrival + self.lookahead
        if self._echo is None or echo < self._echo:
            self._echo = echo
            self.sim.call_at(echo, self._probe)

    def export_ack(self, msg_id: int, t_deposit: float) -> None:
        """Destination side, at deposit: ack back to the source partition."""
        src_part = self._ack_to.pop(msg_id)
        self.outbox.append(("ack", src_part, msg_id, t_deposit))
        self.acks_out += 1

    # ------------------------------------------------- worker-facing API

    def receive(self, items) -> None:
        """Take one epoch's routed items: acks apply now, messages hold.

        Message deliveries are *not* scheduled immediately: same-instant
        arrivals from different partitions can reach this worker in
        different epochs, and heap insertion order would then leak the
        epoch schedule into downstream FIFO stages (the destination
        gateway serves same-instant arrivals in insertion order).  They
        wait in a holding pen until :meth:`flush` proves every arrival
        at their instant is present, then enter the heap in the serial
        engine's tie order.
        """
        for item in items:
            if item[0] == "msg":
                self._hold.append(item)
            else:
                _kind, _dst, msg_id, t_deposit = item
                self.acks_in += 1
                entry = self._armed.pop(msg_id, None)
                self._floors.pop(msg_id, None)
                self._fresh.discard(msg_id)
                if entry is None:
                    # Asynchronous send: the sender never looked back.
                    continue
                msg, done = entry
                msg.recv_time = t_deposit
                self.sim.call_at(
                    t_deposit, lambda d=done, m=msg: self._complete(d, m))

    def flush(self, cap, gmin) -> None:
        """Schedule held arrivals that this epoch may legally dispatch.

        An arrival at ``T`` is released once ``T < cap`` or ``T ==
        gmin`` (the global minimum): either condition implies every
        partition's frontier plus the lookahead clears ``T``, so any
        other message arriving at the same instant has already been
        exported and routed here — the whole instant is in hand and can
        be ordered the way the serial engine would have (see
        :func:`_inject_key`).  ``cap=None`` (every other partition dry)
        releases everything.

        ``call_at`` refuses past times, so each schedule *is* the
        conservative guarantee: a cross-partition message can never be
        delivered earlier than this partition has already simulated.
        If the cap algebra were ever wrong, this raises instead of
        silently corrupting the timeline.
        """
        if not self._hold:
            return
        if cap is None:
            due, self._hold = self._hold, []
        else:
            due = [it for it in self._hold
                   if it[3] < cap or it[3] == gmin]
            if not due:
                return
            self._hold = [it for it in self._hold
                          if not (it[3] < cap or it[3] == gmin)]
        due.sort(key=_inject_key)
        for _kind, _dst, msg, arrival, path in due:
            self._ack_to[msg.msg_id] = self.part[self.topo.cluster_of(msg.src)]
            self.injected += 1
            self.sim.call_at(
                arrival, lambda m=msg, p=path: self.fabric.pdes_arrive(m, p))

    def held_min(self):
        """Earliest held arrival — part of this partition's frontier."""
        if not self._hold:
            return None
        return min(item[3] for item in self._hold)

    def drain_outbox(self) -> List[tuple]:
        """End of epoch: hand over exports, promote fresh floors.

        Clearing ``_fresh`` (and the echo bound) is what lets the
        partition move again next epoch — the floors it reported become
        the coordinator's responsibility (the ack term in
        ``compute_caps``), and the routed messages lower their
        destinations' effective frontiers.
        """
        self._fresh.clear()
        self._echo = None
        out, self.outbox = self.outbox, []
        return out

    def pending(self) -> List[Tuple[int, float]]:
        """Armed, exported, un-acked sends: ``(owing partition, floor)``."""
        return [(owing, arrival)
                for arrival, owing in self._floors.values()]

    def floor(self) -> Optional[float]:
        """Earliest bound the coordinator has not seen — the current
        epoch may not run past it (armed-export floors and the echo
        bound of any fresh export)."""
        if not self._fresh:
            return self._echo
        low = min(self._floors[mid][0] for mid in self._fresh)
        if self._echo is not None and self._echo < low:
            return self._echo
        return low

    # ------------------------------------------------------------ guts

    def _probe(self) -> None:
        """Scheduled at each floor/echo bound: break the epoch when due.

        Bounds planted *mid-epoch* (an export inside a running window)
        can undercut the epoch's cap; the probe turns that into an
        :class:`EpochBreak` exactly at the bound, before any event past
        it dispatches.  Probes whose floor was acked away (or whose
        echo bound was drained) in the meantime fall through
        harmlessly.
        """
        now = self.sim.now
        if self._echo is not None and self._echo <= now:
            self.epoch_breaks += 1
            raise EpochBreak
        for mid in self._fresh:
            if self._floors[mid][0] <= now:
                self.epoch_breaks += 1
                raise EpochBreak

    def _complete(self, done, msg) -> None:
        """Fire the sender's delivery event at the acked deposit time.

        Same inline-when-quiet dispatch as the fabric's
        ``_deposit_complete`` — the sender resumes at the exact depth
        the single-process engine would have used.
        """
        sim = self.sim
        if sim.idle_at_now():
            fire(done, msg)
        else:
            done.succeed(msg)
