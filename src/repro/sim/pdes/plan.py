"""Partition planning and eligibility for conservative PDES runs.

The cut follows the paper's own structure: the simulated machine is a
collection of clusters joined by a WAN, and *every* interaction between
clusters crosses a WAN PVC with a fixed propagation latency.  That
latency is the conservative lookahead — a partition that has run to
virtual time ``t`` cannot affect another partition before ``t + L`` —
so partitioning *per cluster* (or per contiguous block of clusters)
puts the whole synchronization cost on the slowest link in the model,
exactly where the paper puts the application's communication cost.

Eligibility is decided statically, before any process forks.  The
rules are conservative: anything whose cross-cluster control flow the
cut cannot reproduce (totally-ordered broadcasts, striped transfers,
faults that seize both directions of a PVC) keeps the run on the
single-process engine, which remains the oracle for every feature.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

__all__ = [
    "partition_clusters",
    "cluster_partition_map",
    "channel_capacity",
    "pdes_ineligible_reason",
    "wan_lookahead",
]


def partition_clusters(n_clusters: int, n_partitions: int
                       ) -> List[Tuple[int, ...]]:
    """Split ``n_clusters`` into contiguous, balanced blocks.

    Contiguity matters for the nearest-neighbour apps (SOR exchanges
    border rows between adjacent node ranges): adjacent clusters in the
    same block keep their WAN legs partition-internal, so only the
    block borders synchronize.  Sizes differ by at most one.
    """
    if n_clusters < 1:
        raise ValueError(f"need at least one cluster: {n_clusters}")
    width = max(1, min(n_partitions, n_clusters))
    base, extra = divmod(n_clusters, width)
    blocks: List[Tuple[int, ...]] = []
    start = 0
    for i in range(width):
        size = base + (1 if i < extra else 0)
        blocks.append(tuple(range(start, start + size)))
        start += size
    return blocks


def cluster_partition_map(blocks: Sequence[Sequence[int]]) -> Tuple[int, ...]:
    """``cluster -> partition index`` lookup table from a block list."""
    n = sum(len(b) for b in blocks)
    owner = [-1] * n
    for pi, block in enumerate(blocks):
        for c in block:
            owner[c] = pi
    return tuple(owner)


def channel_capacity(n_partitions: int, n_nodes: int) -> int:
    """Fast-lane ring bytes per direction for this geometry.

    A grant must hold one round's worth of routed sections for one
    partition; traffic scales with the node count (every node's border
    exchange can land in one epoch), so wide topologies (the 64-cluster
    demo) get proportionally bigger rings.  The figure is a planning
    *default* — ``REPRO_PDES_CHANNEL_CAP`` overrides it, and a block
    that still outgrows the ring falls back to the pipe, loudly, with
    no correctness impact (see :mod:`.channel`).
    """
    from .channel import DEFAULT_CAPACITY

    return max(DEFAULT_CAPACITY, 2048 * n_nodes)


def pdes_ineligible_reason(app, n_clusters: int, *, scenario=None,
                           decision=None,
                           utilization: bool = False) -> Optional[str]:
    """Why this run must stay single-process, or ``None`` if it may split.

    Every reason names a feature whose cross-cluster behavior the
    per-cluster cut cannot reproduce bit-identically; the single-process
    engine stays the oracle for all of them.
    """
    if n_clusters < 2:
        return "single-cluster topology has no WAN cut to partition on"
    if not getattr(app, "pdes_capable", False):
        return (f"{app.name} issues totally-ordered broadcasts or "
                f"sequencer traffic, which fans out across every cluster")
    from ...apps import ALL_APPS
    if app.name not in ALL_APPS or type(app) is not ALL_APPS[app.name][0]:
        return (f"{app.name!r} is not the registered application class, "
                f"so partition workers cannot rebuild it")
    if scenario is not None and scenario.faults:
        return "scenario faults act on shared state across partitions"
    if decision is not None:
        return "a decision model may stripe WAN transfers across the cut"
    if utilization:
        return "utilization collection reads one shared fabric"
    return None


def wan_lookahead(network, scenario=None) -> float:
    """Conservative lookahead for this network under this scenario.

    Normally the WAN propagation latency: every cross-partition effect
    rides a PVC, and nothing shortens propagation.  The ``jitter``
    impairment is the one exception — its lognormal factor can dip
    *below* 1, so an impaired delivery may undercut the nominal
    latency; under jitter the lookahead collapses to 0 and the
    partitions min-step in lockstep (slower, still exact).  The other
    impairment models (loss, bw_dip, cross_traffic) only stretch
    transmission or add retries, never shrink propagation.
    """
    if scenario is not None:
        for imp in scenario.impairments:
            if imp.model == "jitter":
                return 0.0
    return network.wan.latency
