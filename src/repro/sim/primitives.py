"""Synchronization and queuing primitives on top of the event engine.

These are the building blocks the network and runtime layers use:

* :class:`Channel` — an unbounded FIFO mailbox (message delivery).
* :class:`Resource` — a counted FIFO resource (CPUs, link capacity).
* :class:`CPU` — a single-server resource with an ``execute(seconds)``
  convenience used to charge compute and protocol-overhead time.
* :class:`Barrier` — rendezvous for a fixed number of parties.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .engine import Event, SimulationError, Simulator, fire

__all__ = ["Channel", "Resource", "CPU", "Barrier"]


class Channel:
    """Unbounded FIFO channel; ``get()`` blocks until an item is available."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:  # skip interrupted/cancelled getters
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: an item or ``None``."""
        if self._items:
            return self._items.popleft()
        return None


class Resource:
    """A counted resource with FIFO granting per priority level.

    Two priority levels: 0 (urgent — protocol/interrupt work) and 1
    (background — application compute).  Level-0 waiters are always
    granted before level-1 waiters; within a level the order is FIFO.
    This mirrors interrupt-driven message handling preempting user
    compute between quanta on a real node.

    Usage from a process::

        grant = yield resource.request()
        ...
        resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()       # priority 0
        self._low_waiters: Deque[Event] = deque()   # priority 1
        # Occupancy accounting (for utilization reports).
        self._busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters) + len(self._low_waiters)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Integral of in-use servers over time (divide by elapsed for util)."""
        self._account()
        return self._busy_time

    def request(self, priority: int = 0) -> Event:
        """Ask for one slot; the returned event fires when granted."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            ev.succeed(self)
        elif priority <= 0:
            self._waiters.append(ev)
        else:
            self._low_waiters.append(ev)
        return ev

    def occupy(self, seconds: float, priority: int = 0) -> Event:
        """One-shot request/hold/release; returns the completion event.

        The event-minimizing counterpart of the request/timeout/release
        process pattern.  When a slot is free the grant is synchronous
        and the hold is a single analytically-scheduled timeout — no
        generator, no :class:`~.engine.Process`.  When the resource is
        contended it falls back to the queued path: the request joins
        the same FIFO (per priority level) as :meth:`request`, so fast
        and queued occupancies interleave with identical semantics.

        The completion event is *posted* after the release (not the
        hold timeout itself), so a waiter resumes one dispatch later —
        the same position a process-based request/timeout/release
        caller resumes at, after the slot has been handed to the next
        waiter.

        Dispatch-order parity: when other events are pending at the
        current instant, the request and grant go through the heap at
        the same dispatch depths the process pattern used (request one
        dispatch after the call, hold scheduled one dispatch after the
        grant), so same-instant races — a release racing a fresh
        arrival, holds on different resources expiring together —
        linearize identically in fast and process-based runs.  When
        nothing else is scheduled at this instant the deferrals are
        unobservable and are elided: one timeout, zero intermediate
        dispatches.  Virtual-time behavior is identical to the process
        pattern either way — only the host-side event count differs.
        """
        if seconds < 0:
            raise SimulationError(f"negative occupy time: {seconds}")
        sim = self.sim
        done = Event(sim)
        if sim.idle_at_now():
            # Quiet instant: grant (or enqueue) synchronously.
            if self._in_use < self.capacity:
                self._account()
                self._in_use += 1
                self._occupy_granted(done, seconds)
            else:
                gate = Event(sim)
                if priority <= 0:
                    self._waiters.append(gate)
                else:
                    self._low_waiters.append(gate)
                gate.callbacks.append(
                    lambda _ev, d=done, s=seconds: self._occupy_granted(d, s))
            return done

        # Busy instant: request one dispatch later (request() posts the
        # grant, putting the hold two dispatches out — process parity).
        sim._n_fallback += 1

        def _request() -> None:
            gate = self.request(priority)
            gate.callbacks.append(
                lambda _e, d=done, s=seconds: self._occupy_granted(d, s))

        sim.after_call(0.0, _request)
        return done

    def _occupy_granted(self, done: Event, seconds: float) -> None:
        # The hold is a bare call slot — one heap entry (same count as the
        # timeout the process pattern scheduled), zero boxed events.
        def _fin(self=self, done=done) -> None:
            self.release()
            sim = self.sim
            if sim.idle_at_now():
                fire(done, None)  # quiet: complete inline, skip one dispatch
            else:
                done.succeed(None)

        self.sim.after_call(seconds, _fin)

    def release(self) -> None:
        """Return a slot; the next waiter (urgent first) is granted."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        for queue in (self._waiters, self._low_waiters):
            while queue:
                waiter = queue.popleft()
                if not waiter.triggered:
                    waiter.succeed(self)  # hand the slot over directly
                    return
        self._account()
        self._in_use -= 1


class CPU(Resource):
    """A single-server CPU; ``execute`` charges busy time FIFO.

    All compute *and* per-message protocol overhead on a node goes through
    its CPU, so a node flooded with incoming messages genuinely loses
    compute throughput — the mechanism behind RA's WAN collapse.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        super().__init__(sim, capacity=1, name=name)

    def execute(self, seconds: float, priority: int = 0) -> Generator:
        """Process-style: occupy the CPU for ``seconds`` of virtual time.

        ``priority=0`` (default) is protocol/interrupt work; application
        compute quanta use ``priority=1`` so message handling preempts
        them at quantum boundaries."""
        if seconds < 0:
            raise SimulationError(f"negative execute time: {seconds}")
        yield self.request(priority)
        try:
            yield self.sim.timeout(seconds)
        finally:
            self.release()

    def execute_ev(self, seconds: float, priority: int = 0) -> Event:
        """One-shot ``execute``: returns the completion event directly.

        Exactly :meth:`execute`'s virtual-time semantics without the
        generator — uncontended charges schedule a single timeout (see
        :meth:`Resource.occupy`).  The hot path for per-message protocol
        overhead in the fabric and the Orca runtime.
        """
        return self.occupy(seconds, priority)


class Barrier:
    """A reusable barrier for a fixed number of parties.

    With ``fast=True`` the last arriver completes the episode
    analytically: at a quiet instant (nothing else scheduled *now*) the
    gate is fired inline, resuming every earlier arriver immediately
    instead of one dispatch later.  The last arriver itself then waits
    on an already-processed gate, which costs the usual recycled kick
    event — so the heap sees exactly one entry per episode either way
    and ``Simulator.stats()['events_processed']`` is unchanged.  At
    busy instants the gate is posted through the heap at the legacy
    dispatch depth (counted as a fallback), so same-instant races
    linearize identically in fast and legacy runs.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = "",
                 fast: bool = False):
        if parties < 1:
            raise SimulationError(f"barrier parties must be >= 1: {parties}")
        self.sim = sim
        self.parties = parties
        self.name = name
        self.fast = fast
        self._arrived = 0
        self._gate = Event(sim)
        self.generation = 0

    def wait(self) -> Event:
        """Return an event that fires when all parties have arrived."""
        self._arrived += 1
        gate = self._gate
        if self._arrived == self.parties:
            sim = self.sim
            self._arrived = 0
            self._gate = Event(sim)
            self.generation += 1
            if self.fast and sim.idle_at_now():
                fire(gate, self.generation)  # fire() counts the completion
            else:
                if self.fast:
                    sim._n_fallback += 1
                gate.succeed(self.generation)
        return gate
