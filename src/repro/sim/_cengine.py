"""Compiled tier: loads ``_ccore`` and finishes its Python-side wiring.

The C extension implements the hot core (event store, dispatch loop,
generator protocol); this module supplies the pieces that belong in
Python — the shared exception types and PENDING sentinel (imported
from ``_pyengine`` so ``isinstance`` and identity checks agree across
tiers), the AllOf/AnyOf condition classes (Python subclasses of the C
Event via the shared factory), and the spawn-tracing hook — then
injects them into the extension via ``_ccore._set_helpers``.

Importing this module raises when no compiler/headers are available;
``engine.py`` turns that into a fallback (``REPRO_ENGINE=auto``) or a
hard error (``REPRO_ENGINE=compiled``).
"""

from __future__ import annotations

from ._build import load_ccore
from ._conditions import build_conditions
from ._pyengine import PENDING, Interrupt, SimulationError

_ccore = load_ccore()

Event = _ccore.Event
Timeout = _ccore.Timeout
Process = _ccore.Process
Simulator = _ccore.Simulator
fire = _ccore.fire
chain = _ccore.chain

AllOf, AnyOf = build_conditions(Event)

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Simulator",
    "Interrupt",
    "SimulationError",
    "chain",
    "fire",
    "PENDING",
]


def _spawn_obs(sim, proc):
    """Emit proc.spawn / proc.finish records for a traced spawn.

    Called by the C core only when ``sim.obs`` is set; mirrors the pure
    tier's spawn() observability branch exactly (same record kinds,
    same pid numbering from the spawn counter).
    """
    obs = sim.obs
    if obs is None or not obs.enabled:
        return
    pid = sim._n_spawned
    obs.emit(sim.now, "proc.spawn", pid=pid, name=proc.name)
    proc.callbacks.append(
        lambda ev, p=proc, i=pid: obs.emit(
            sim.now, "proc.finish", pid=i, name=p.name, ok=p._ok))


def _drop_arg(fn):
    """Adapt a zero-arg fn into an event callback (for call_at)."""
    return lambda _ev: fn()


_ccore._set_helpers(
    pending=PENDING,
    simerror=SimulationError,
    interrupt=Interrupt,
    allof=AllOf,
    anyof=AnyOf,
    spawn_obs=_spawn_obs,
    drop_arg=_drop_arg,
)
