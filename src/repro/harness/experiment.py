"""Experiment runner: one application variant on one machine configuration.

``run_app`` builds the full stack (simulator, fabric, Orca runtime),
registers the application, spawns one worker process per compute node,
and measures the virtual time from start to the completion of the last
worker — the paper's "core parallel algorithm, excluding program startup"
measurement.  ``speedup_curve`` repeats it over cluster/CPU counts to
produce the numbers behind Figures 1-14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..apps import ALL_APPS
from ..apps.base import Application, AppResult
from ..network import DAS_PARAMS, Fabric, NetworkParams, Topology, uniform_clusters
from ..orca import OrcaRuntime
from ..sim import SimulationError, Simulator, Tracer

__all__ = ["run_app", "speedup_curve", "CurvePoint", "PAPER_CPU_COUNTS"]

#: CPU counts the paper plots on its speedup figures.
PAPER_CPU_COUNTS = (1, 8, 16, 32, 60)


def run_app(app: Application, variant: str, n_clusters: int,
            nodes_per_cluster: int, params: Any,
            network: NetworkParams = DAS_PARAMS,
            sequencer: Optional[str] = None,
            trace: bool = False,
            utilization: bool = False,
            dedicated_sequencer_node: bool = False,
            topology: Optional[Topology] = None,
            tracer: Optional[Tracer] = None,
            fast_paths: bool = True,
            runtime_fast_paths: Optional[bool] = None,
            scenario: Optional["Scenario"] = None,
            decision: Optional[Any] = None,
            pdes: Optional[str] = None,
            pdes_workers: Optional[int] = None) -> AppResult:
    """Run ``app``/``variant`` on ``n_clusters`` x ``nodes_per_cluster``.

    ``dedicated_sequencer_node`` applies the paper's further broadcast
    optimization of stamping on each cluster's last node instead of its
    first (which usually also runs hot application roles like masters,
    queue owners and combiners).

    ``topology`` overrides the uniform layout — pass (a slice of)
    :func:`repro.network.das_real` to run on the real, nonuniform DAS;
    ``n_clusters``/``nodes_per_cluster`` then only label the result.

    ``trace=True`` enables structured tracing (see ``docs/TRACING.md``);
    ``tracer`` supplies the collection buffer, letting a sweep share one
    tracer across grid points (call ``tracer.clear()`` between points —
    the profiler does).  Tracing never changes virtual-time results.

    ``fast_paths=False`` selects the fabric's legacy process-per-leg
    message paths — the reference implementation the golden equivalence
    suite compares the default callback-chained paths against.
    ``runtime_fast_paths`` independently selects the Orca control-plane
    tier (broadcast delivery, RPC service); ``None`` inherits
    ``fast_paths``.  Passing ``runtime_fast_paths=False`` with
    ``fast_paths=True`` isolates the runtime layer for its golden
    suite.

    ``scenario`` (a :class:`repro.scenario.Scenario`) applies WAN
    impairments, heterogeneity tweaks and timed faults to the run; a
    default/empty scenario is a guaranteed no-op (see docs/SCENARIOS.md).

    ``decision`` (a :class:`repro.tuner.DecisionModel`) installs a
    calibrated protocol-selection model: the Orca broadcast consults it
    for PB/BB, WAN fan-out shape and striping, and the fabric for
    point-to-point WAN striping.  ``None`` — the default — keeps the
    fixed strategy, bit-identical to the pre-tuner stack (see
    docs/TUNING.md).

    ``pdes`` selects partitioned execution (``"off"``/``"on"``/
    ``"auto"``; ``None`` defers to ``REPRO_PDES``): eligible runs split
    per cluster block across ``pdes_workers`` forked workers and
    synchronize conservatively at WAN horizons, producing the identical
    result (see docs/ARCHITECTURE.md and :mod:`repro.sim.pdes`).
    """
    app.check_variant(variant)
    topo = topology if topology is not None \
        else uniform_clusters(n_clusters, nodes_per_cluster)
    if scenario is not None:
        from ..scenario import install, scenario_topology
        topo = scenario_topology(scenario, topo)

    from ..sim.pdes import pdes_ineligible_reason, pdes_mode
    mode = pdes_mode(pdes)
    if mode != "off":
        from ..sim.pdes import run_app_pdes
        from . import jobs
        reason = pdes_ineligible_reason(
            app, topo.n_clusters, scenario=scenario, decision=decision,
            utilization=utilization)
        if reason is None and mode == "auto" and not jobs.pdes_auto_allowed():
            reason = "auto declines to nest inside a sweep-pool worker"
        width = jobs.pdes_workers(topo.n_clusters, requested=pdes_workers)
        if reason is None and width < 2:
            reason = "only one partition worker resolved"
        if reason is None:
            return run_app_pdes(
                app, variant, n_clusters, nodes_per_cluster, params,
                network=network, sequencer=sequencer,
                dedicated_sequencer_node=dedicated_sequencer_node,
                topo=topo, trace=trace, tracer=tracer,
                fast_paths=fast_paths,
                runtime_fast_paths=runtime_fast_paths,
                scenario=scenario, n_workers=width)
        if mode == "on":
            import sys
            print(f"repro: warning: REPRO_PDES=on but {app.name}/{variant} "
                  f"cannot be partitioned ({reason}); "
                  f"running single-process", file=sys.stderr)

    # Run-local ids: traces (which join on message/request ids) come out
    # identical no matter how many runs preceded this one in the process.
    from ..network.message import reset_ids
    from ..orca.runtime import reset_req_ids
    reset_ids()
    reset_req_ids()
    sim = Simulator()
    fabric = Fabric(sim, topo, network, tracer=tracer, fast_paths=fast_paths)
    if trace:
        fabric.tracer.enabled = True
        sim.obs = fabric.tracer  # process-lifecycle records
    if scenario is not None:
        install(sim, fabric, scenario)
    if decision is not None:
        fabric.decision = decision
    seq_kind = sequencer if sequencer is not None else app.sequencer_for(variant)
    rts = OrcaRuntime(sim, fabric, sequencer=seq_kind,
                      dedicated_sequencer_node=dedicated_sequencer_node,
                      fast_paths=runtime_fast_paths, decision=decision)

    shared = app.register(rts, params, variant)
    finished_at: List[float] = [0.0] * topo.n_nodes

    def timed(nid):
        value = yield from app.process(rts.context(nid), params, variant,
                                       shared)
        finished_at[nid] = sim.now
        return value

    workers = [sim.spawn(timed(nid), name=f"{app.name}{nid}")
               for nid in range(topo.n_nodes)]
    sim.run()
    for w in workers:
        if not w.triggered:
            raise SimulationError(
                f"{app.name}/{variant} on {n_clusters}x{nodes_per_cluster}: "
                f"worker {w.name} never finished (deadlock at t={sim.now})")
        if not w._ok:
            raise w._value
    elapsed = max(finished_at)
    answer = app.finalize(rts, params, variant, shared)
    util = None
    if utilization:
        from ..metrics.utilization import collect_utilization
        util = collect_utilization(fabric, elapsed)
    return AppResult(
        app=app.name, variant=variant, n_clusters=n_clusters,
        nodes_per_cluster=nodes_per_cluster, elapsed=elapsed, answer=answer,
        stats=app.stats(rts, params, variant, shared),
        traffic=rts.meter.snapshot(), utilization=util,
        sim_stats=sim.stats())


@dataclass
class CurvePoint:
    n_clusters: int
    n_cpus: int
    elapsed: float
    speedup: float
    result: AppResult


def speedup_curve(app: Application, variant: str, params: Any,
                  cluster_counts: Sequence[int] = (1, 2, 4),
                  cpu_counts: Sequence[int] = PAPER_CPU_COUNTS,
                  network: NetworkParams = DAS_PARAMS,
                  sequencer: Optional[str] = None,
                  baseline_elapsed: Optional[float] = None,
                  runner: Optional["ParallelRunner"] = None,
                  ) -> Dict[int, List[CurvePoint]]:
    """Speedup vs CPU count, one curve per cluster count (Figures 1-14).

    Speedup is relative to the same program on one processor, as in the
    paper ("speedup relative to the one-processor case" for originals,
    "relative to itself" for optimized programs).

    The grid points are independent simulations; they are dispatched
    through ``runner`` (a :class:`~repro.harness.sweeps.ParallelRunner`),
    which parallelizes and caches them.  With no runner, a default one is
    built (``REPRO_JOBS`` workers, no cache).  Apps not in the registry
    (custom :class:`Application` subclasses) fall back to in-process
    serial execution, since their specs cannot be rebuilt by a worker.
    """
    from .sweeps import ParallelRunner, RunSpec

    grid: List[tuple] = []  # (n_clusters, n_cpus, per)
    for n_clusters in cluster_counts:
        for n_cpus in cpu_counts:
            if n_cpus % n_clusters != 0:
                continue  # equal number of processors per cluster
            per = n_cpus // n_clusters
            if per < 1:
                continue
            grid.append((n_clusters, n_cpus, per))

    if app.name in ALL_APPS:
        if runner is None:
            runner = ParallelRunner()
        need_base = baseline_elapsed is None
        specs = [RunSpec(app.name, variant, c, per, params, network=network,
                         sequencer=sequencer) for (c, _n, per) in grid]
        if need_base:
            specs.append(RunSpec(app.name, variant, 1, 1, params,
                                 network=network, sequencer=sequencer))
        outcomes = runner.run(specs)
        if need_base:
            baseline_elapsed = outcomes[-1].elapsed
            outcomes = outcomes[:-1]
    else:  # unregistered app: run in-process
        if baseline_elapsed is None:
            baseline_elapsed = run_app(app, variant, 1, 1, params,
                                       network=network,
                                       sequencer=sequencer).elapsed
        outcomes = [run_app(app, variant, c, per, params, network=network,
                            sequencer=sequencer) for (c, _n, per) in grid]

    curves: Dict[int, List[CurvePoint]] = {c: [] for c in cluster_counts}
    for (n_clusters, n_cpus, _per), res in zip(grid, outcomes):
        speed = baseline_elapsed / res.elapsed if res.elapsed > 0 else 0.0
        curves[n_clusters].append(
            CurvePoint(n_clusters, n_cpus, res.elapsed, speed, res))
    return curves
